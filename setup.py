"""Setuptools shim.

The runtime environment here has no ``wheel`` package, so PEP 517
editable installs fail; ``python setup.py develop`` (or ``pip install -e .``
on environments with wheel) installs the package.  All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
