#!/usr/bin/env python3
"""The paper's Figure 1 service graph, deployed through the orchestrator.

    source -> firewall -> monitor -> { web traffic     -> cache -> out
                                     { non-web traffic ---------> out

The source->firewall and firewall->monitor links are total (point-to-
point), so the transparent highway upgrades them to bypass channels.
The monitor's egress carries a classified split (TCP/80 vs the rest),
which is *not* point-to-point — that port stays on the vSwitch, showing
the two kinds of links coexisting in one deployed service.

Run:  python examples/firewall_monitor_cache.py
"""

from repro.apps import FirewallApp, FirewallRule, ForwarderApp, MonitorApp, WebCacheApp
from repro.orchestration import NfvNode, Orchestrator, ServiceGraph
from repro.packet.headers import ETH_TYPE_IPV4, IP_PROTO_TCP, ipv4_to_int
from repro.sim.engine import Environment
from repro.traffic import SinkApp, SourceApp
from repro.traffic.profiles import uniform_profile


def build_graph():
    graph = ServiceGraph("fw-mon-cache")
    graph.add_vnf("source", ["out"])
    graph.add_vnf(
        "firewall", ["in", "out"],
        app_factory=lambda pmds: FirewallApp(
            "firewall", pmds["in"], pmds["out"],
            deny_rules=[FirewallRule(ip_src=ipv4_to_int("10.66.0.0")
                                     | 0x1)],
        ),
    )
    graph.add_vnf(
        "monitor", ["in", "out"],
        app_factory=lambda pmds: MonitorApp("monitor", pmds["in"],
                                            pmds["out"]),
    )
    graph.add_vnf(
        "cache", ["in", "out"],
        app_factory=lambda pmds: WebCacheApp("cache", pmds["in"],
                                             pmds["out"]),
    )
    graph.add_vnf("web_sink", ["in"])
    graph.add_vnf("other_sink", ["in"])

    # Total links: bypass candidates.
    graph.connect("source.out", "firewall.in")
    graph.connect("firewall.out", "monitor.in")
    graph.connect("cache.out", "web_sink.in")
    # Classified split on the monitor's egress: stays on the vSwitch.
    graph.connect("monitor.out", "cache.in",
                  match_fields={"eth_type": ETH_TYPE_IPV4,
                                "ip_proto": IP_PROTO_TCP, "l4_dst": 80})
    graph.connect("monitor.out", "other_sink.in")
    graph.validate()
    return graph


def main():
    env = Environment()
    node = NfvNode(env=env)
    graph = build_graph()
    deployment = Orchestrator(node).deploy(graph)

    print("deployed %r: %d VMs, %d steering rules, %d bypasses active"
          % (graph.name, len(deployment.vm_handles),
             len(node.switch.bridge.table), node.active_bypasses))
    for src, link in sorted(node.manager.active_links.items()):
        print("  bypass: %s -> %s" % (link.src_port_name,
                                      link.dst_port_name))
    blocked = node.manager.detector.link_for(node.ofport("monitor.out"))
    print("  monitor.out p2p link: %s (classified split keeps it on the "
          "vSwitch)" % blocked)

    # Traffic: a 50/50 mix of web (TCP/80) and other (UDP) flows.
    web = uniform_profile(128, flows=4, web=True)
    other = uniform_profile(64, flows=4)
    mixed = type(web)(name="mixed",
                      templates=web.templates + other.templates)
    source = SourceApp("traffic", deployment.pmd("source.out"),
                       profile=mixed, rate_pps=1e6)
    web_sink = SinkApp("web_sink", deployment.pmd("web_sink.in"))
    other_sink = SinkApp("other_sink", deployment.pmd("other_sink.in"))

    deployment.start_apps(env)
    source.start(env)
    web_sink.start(env)
    other_sink.start(env)
    env.run(until=env.now + 0.02)

    firewall = deployment.apps["firewall"]
    monitor = deployment.apps["monitor"]
    cache = deployment.apps["cache"]
    print("\nafter 20 ms of traffic at 1 Mpps:")
    print("  firewall: passed=%d dropped=%d"
          % (firewall.passed, firewall.dropped))
    print("  monitor:  %d distinct flows tracked" % monitor.flow_count)
    print("  cache:    hits=%d misses=%d" % (cache.hits, cache.misses))
    print("  sinks:    web=%d other=%d"
          % (web_sink.received, other_sink.received))
    print("  vSwitch rx on bypassed port source.out: %d (all direct)"
          % node.ports["source.out"].rx_packets)
    print("  vSwitch rx on classified port monitor.out: %d (all switched)"
          % node.ports["monitor.out"].rx_packets)


if __name__ == "__main__":
    main()
