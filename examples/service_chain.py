#!/usr/bin/env python3
"""The paper's evaluation scenario: a chain of forwarding VMs.

Reproduces a small version of Figure 3(a): chains of VMs connected by
point-to-point links, bidirectional 64-byte traffic, first/last VM as
source/sink, comparing vanilla OVS-DPDK against the transparent highway.

Run:  python examples/service_chain.py  [max_chain_length]
"""

import sys

from repro.experiments import ChainExperiment
from repro.metrics import format_table


def main():
    max_len = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    rows = []
    for num_vms in range(2, max_len + 1):
        for bypass in (False, True):
            result = ChainExperiment(
                num_vms=num_vms,
                bypass=bypass,
                memory_only=True,
                duration=0.002,
            ).run()
            rows.append(result.row())
            print("ran: %d VMs, %s -> %.2f Mpps"
                  % (num_vms, "bypass" if bypass else "vanilla",
                     result.throughput_mpps))
    print()
    print(format_table(
        ["VMs", "approach", "Mpps (bidir)", "mean latency us", "bypasses"],
        rows,
    ))
    print("\nThe highway keeps throughput flat with chain length; the")
    print("vanilla datapath decays as every hop shares the OVS PMD cores.")


if __name__ == "__main__":
    main()
