#!/usr/bin/env python3
"""Quickstart: watch a flowmod turn into a transparent bypass channel.

Builds one NFV host with two VMs, installs a single OpenFlow rule
steering all traffic from VM1's port to VM2's port, and shows:

1. the p-2-p link detector recognizing the rule,
2. the bypass channel being plugged into both VMs,
3. packets flowing VM-to-VM without touching the vSwitch,
4. the controller still seeing correct statistics (transparency).

Run:  python examples/quickstart.py
"""

from repro.orchestration import NfvNode
from repro.packet import make_udp_packet
from repro.packet.mbuf import Mbuf


def mbuf_with(packet):
    mbuf = Mbuf()
    mbuf.packet = packet
    mbuf.wire_length = packet.wire_length
    return mbuf


def main():
    # One host: vSwitch + hypervisor + compute agent, highway enabled.
    node = NfvNode()
    node.create_vm("vm1", ["dpdkr0"])
    node.create_vm("vm2", ["dpdkr1"])
    print("host up:", node)

    # The controller (unmodified, speaking real OpenFlow 1.3 bytes)
    # installs: "everything from dpdkr0 -> output dpdkr1".
    node.install_p2p_rule("dpdkr0", "dpdkr1")
    node.settle_control_plane()

    link = next(iter(node.manager.active_links.values()))
    print("\ndetector recognized: %s" % link.link)
    print("bypass memzone %r mapped into: %s" % (
        link.zone_name, node.registry.lookup(link.zone_name).mapped_by))

    # VM1's application transmits on its ordinary port; the dual-channel
    # PMD silently routes the packets through the bypass ring.
    tx_pmd = node.vms["vm1"].pmd("dpdkr0")
    rx_pmd = node.vms["vm2"].pmd("dpdkr1")
    for index in range(5):
        tx_pmd.tx_burst([mbuf_with(make_udp_packet(
            src_port=1000 + index, frame_size=64))])
    received = rx_pmd.rx_burst(32)
    print("\nVM2 received %d packets directly from VM1" % len(received))
    print("vSwitch saw %d of them (port rx counter)"
          % node.ports["dpdkr0"].rx_packets)
    print("PMD tx path used: bypass=%d normal=%d"
          % (tx_pmd.tx_via_bypass, tx_pmd.tx_via_normal))

    # Transparency: the controller's stats request returns the counters
    # the guest PMD maintained in shared memory.
    node.controller.request_flow_stats()
    node.controller.request_port_stats()
    node.switch.step_control()
    node.controller.poll()
    flow_stat = node.controller.latest_flow_stats.stats[0]
    print("\ncontroller-visible flow stats: %d packets, %d bytes"
          % (flow_stat.packet_count, flow_stat.byte_count))
    port_stats = {s.port_no: s
                  for s in node.controller.latest_port_stats.stats}
    print("controller-visible port stats: dpdkr0 rx=%d, dpdkr1 tx=%d"
          % (port_stats[node.ofport("dpdkr0")].rx_packets,
             port_stats[node.ofport("dpdkr1")].tx_packets))

    # Dynamicity: removing the rule falls back to the vSwitch path.
    from repro.openflow.match import Match

    node.controller.delete_flow(Match(in_port=node.ofport("dpdkr0")))
    node.settle_control_plane()
    print("\nafter rule removal: active bypasses = %d, "
          "PMD back on normal channel = %s"
          % (node.active_bypasses, not tx_pmd.bypass_tx_active))


if __name__ == "__main__":
    main()
