#!/usr/bin/env python3
"""An operator's session: text-based management of a live highway node.

Walks the ovs-ofctl / ovs-appctl surface end to end: installing flows
from text, watching bypasses in ``bypass/show``, mirroring a port into
an IDS (and seeing the bypass yield to it), rate-limiting a port,
taking a port down, and saving/restoring the whole flow configuration.

Run:  python examples/operator_session.py
"""

from repro.openflow.messages import PortMod
from repro.orchestration import NfvNode, verify_host_invariants
from repro.packet.builder import make_udp_packet
from repro.packet.mbuf import Mbuf
from repro.vswitch.appctl import AppCtl


def shell(ctl, command, argument=""):
    prompt = "$ ovs %s %s" % (command, argument)
    print("\n%s" % prompt.rstrip())
    print(ctl.run(command, argument))


def send(node, port_name, count=3):
    pmd = node.vms[node.agent.owner_of(port_name)].pmd(port_name)
    for index in range(count):
        mbuf = Mbuf()
        mbuf.packet = make_udp_packet(src_port=4000 + index,
                                      frame_size=64)
        mbuf.wire_length = 64
        pmd.tx_burst([mbuf])
    node.switch.step_dataplane()


def main():
    node = NfvNode()
    node.create_vm("web", ["web0"])
    node.create_vm("db", ["db0"])
    node.create_vm("ids", ["ids0"])
    ctl = AppCtl(node.switch, node.manager)

    shell(ctl, "add-flow", "in_port=1,actions=output:2")
    shell(ctl, "add-flow", "in_port=2,actions=output:1")
    shell(ctl, "bypass/show")

    send(node, "web0")
    shell(ctl, "dump-flows")

    print("\n--- operator mirrors web0 into the IDS ---")
    node.switch.add_mirror("ids-tap", output="ids0",
                           select_src=["web0"])
    shell(ctl, "show")
    shell(ctl, "bypass/show")
    send(node, "web0")
    captured = node.vms["ids"].pmd("ids0").rx_burst(32)
    print("IDS captured %d packets (bypass yielded to the mirror)"
          % len(captured))
    node.switch.remove_mirror("ids-tap")
    print("mirror removed -> bypasses: %d" % node.active_bypasses)

    print("\n--- operator rate-limits db0 and takes it down ---")
    node.switch.set_ingress_policing("db0", rate_pps=10000)
    shell(ctl, "show")
    node.connection.controller_send(
        PortMod(port_no=node.ofport("db0"), down=True)
    )
    node.switch.step_control()
    shell(ctl, "bypass/show")
    node.connection.controller_send(
        PortMod(port_no=node.ofport("db0"), down=False)
    )
    node.switch.step_control()
    node.switch.set_ingress_policing("db0", rate_pps=0)

    print("\n--- save, wipe, restore ---")
    saved = ctl.run("save-flows")
    print(saved)
    print(ctl.run("del-flows"))
    print("bypasses after wipe: %d" % node.active_bypasses)
    print(ctl.run("restore-flows", saved))
    print("bypasses after restore: %d" % node.active_bypasses)

    checks = verify_host_invariants(node)
    print("\ninvariant checks passed: %s" % ", ".join(checks))


if __name__ == "__main__":
    main()
