#!/usr/bin/env python3
"""Deploy a UNIFY NF-FG document and inspect the node like an operator.

The paper's prototype lives inside the un-orchestrator NFV node, whose
northbound API takes NF-FG JSON.  This example feeds such a document
(a firewall -> monitor chain with a web split) to the orchestrator,
then inspects the result through the ovs-appctl-style commands —
including ``bypass/show``, the command the paper's modification adds —
and a control-plane event timeline.

Run:  python examples/nffg_deploy.py
"""

import json

from repro.metrics import EventTimeline, attach_highway_tracing
from repro.orchestration import NfvNode, Orchestrator, load_nffg
from repro.sim.engine import Environment
from repro.vswitch.appctl import AppCtl

NFFG_DOCUMENT = json.dumps({
    "forwarding-graph": {
        "id": "web-service",
        "VNFs": [
            {"id": "firewall", "type": "firewall",
             "ports": [{"id": "in"}, {"id": "out"}]},
            {"id": "monitor", "type": "monitor",
             "ports": [{"id": "in"}, {"id": "out"}]},
            {"id": "cache", "type": "cache",
             "ports": [{"id": "in"}, {"id": "out"}]},
            {"id": "sink", "type": "forwarder",
             "ports": [{"id": "in"}, {"id": "unused"}]},
        ],
        "end-points": [],
        "big-switch": {"flow-rules": [
            # Total links: upgraded to bypass channels automatically.
            {"match": {"port_in": "vnf:firewall:out"},
             "actions": [{"output_to_port": "vnf:monitor:in"}]},
            {"match": {"port_in": "vnf:cache:out"},
             "actions": [{"output_to_port": "vnf:sink:in"}]},
            # Classified split on the monitor's egress: stays on OVS.
            {"match": {"port_in": "vnf:monitor:out", "protocol": "tcp",
                       "dest_port": 80},
             "actions": [{"output_to_port": "vnf:cache:in"}],
             "priority": 200},
            {"match": {"port_in": "vnf:monitor:out"},
             "actions": [{"output_to_port": "vnf:sink:in"}]},
        ]},
    }
})


def main():
    env = Environment()
    node = NfvNode(env=env)
    timeline = EventTimeline(clock=lambda: env.now)
    attach_highway_tracing(timeline, node.manager.detector, node.manager)

    graph = load_nffg(NFFG_DOCUMENT)
    print("loaded NF-FG %r: %d VNFs, %d flow rules"
          % (graph.name, len(graph.vnfs), len(graph.links)))
    deployment = Orchestrator(node).deploy(graph)
    print("deployed: %d VMs, %d app instances"
          % (len(deployment.vm_handles), len(deployment.apps)))

    ctl = AppCtl(node.switch, node.manager)
    print("\n$ ovs-ofctl show")
    print(ctl.run("show"))
    print("\n$ ovs-ofctl dump-flows")
    print(ctl.run("dump-flows"))
    print("\n$ ovs-appctl bypass/show")
    print(ctl.run("bypass/show"))
    print("\ncontrol-plane timeline:")
    print(timeline.render())
    establishments = timeline.spans("p2p-detected", "bypass-active",
                                    key="src")
    if establishments:
        print("\nmean establishment: %.1f ms"
              % (1e3 * sum(establishments) / len(establishments)))


if __name__ == "__main__":
    main()
