#!/usr/bin/env python3
"""Dynamicity: bypasses come and go with the OpenFlow rules, mid-traffic.

A two-VM setup with continuous traffic while the controller:

1. installs a p-2-p rule           -> bypass established (~100 ms),
2. installs a higher-priority rule
   diverting web traffic elsewhere -> bypass torn down on the fly,
3. deletes the diverting rule      -> bypass re-established.

No packet is lost across either transition; the script prints the
timeline and the conservation check.

Run:  python examples/dynamic_rules.py
"""

from repro.openflow.actions import OutputAction
from repro.openflow.match import Match
from repro.orchestration import NfvNode
from repro.packet.headers import ETH_TYPE_IPV4, IP_PROTO_TCP
from repro.sim.engine import Environment
from repro.traffic import SinkApp, SourceApp


def main():
    env = Environment()
    node = NfvNode(env=env)
    node.create_vm("vm1", ["dpdkr0"])
    node.create_vm("vm2", ["dpdkr1"])
    node.create_vm("vm3", ["dpdkr2"])  # where web traffic gets diverted
    node.switch.start()

    source = SourceApp("src", node.vms["vm1"].pmd("dpdkr0"),
                       rate_pps=2e6)
    sink = SinkApp("sink", node.vms["vm2"].pmd("dpdkr1"))
    diverted_sink = SinkApp("sink.web", node.vms["vm3"].pmd("dpdkr2"))
    source.start(env)
    sink.start(env)
    diverted_sink.start(env)

    tx_pmd = node.vms["vm1"].pmd("dpdkr0")

    def report(tag):
        print("t=%7.1f ms  %-28s bypasses=%d tx_bypass=%-8d "
              "tx_normal=%-8d delivered=%d" % (
                  env.now * 1e3, tag, node.active_bypasses,
                  tx_pmd.tx_via_bypass, tx_pmd.tx_via_normal,
                  sink.received + diverted_sink.received))

    report("traffic started (no rules)")

    # 1. The p-2-p rule: detector -> agent -> bypass in ~100 ms.
    node.install_p2p_rule("dpdkr0", "dpdkr1")
    env.run(until=env.now + 0.02)
    report("p2p rule installed (+20ms)")
    env.run(until=env.now + 0.15)
    report("bypass established")

    link = node.manager.history[0]
    print("    establishment took %.1f ms (detection -> sender on bypass)"
          % (link.setup_request.setup_duration * 1e3))

    env.run(until=env.now + 0.1)
    report("traffic riding the bypass")

    # 2. Divert web traffic: the port is no longer point-to-point.
    node.controller.install_flow(
        Match(in_port=node.ofport("dpdkr0"), eth_type=ETH_TYPE_IPV4,
              ip_proto=IP_PROTO_TCP, l4_dst=80),
        [OutputAction(node.ofport("dpdkr2"))],
        priority=0xF000,
    )
    env.run(until=env.now + 0.2)
    report("web-divert rule -> fallback")

    # 3. Remove the divert: p-2-p again, new bypass.
    node.controller.delete_flow(
        Match(in_port=node.ofport("dpdkr0"), eth_type=ETH_TYPE_IPV4,
              ip_proto=IP_PROTO_TCP, l4_dst=80),
        strict=True, priority=0xF000,
    )
    env.run(until=env.now + 0.2)
    report("divert removed -> re-established")

    source.stop()
    env.run(until=env.now + 0.01)

    generated = source.generated
    delivered = sink.received + diverted_sink.received
    in_flight = source.pool.size - source.pool.available
    print("\nconservation: generated=%d delivered=%d in_flight=%d lost=%d"
          % (generated, delivered, in_flight,
             generated - delivered - in_flight))
    print("bypass link history: %s" % [
        "%s->%s %s" % (l.src_port_name, l.dst_port_name, l.state.value)
        for l in node.manager.history
    ])


if __name__ == "__main__":
    main()
