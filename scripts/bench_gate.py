#!/usr/bin/env python
"""Benchmark regression gate: compare the newest trend lines against
history and fail on regressions.

Reads ``BENCH_TRENDS.jsonl`` (every line schema-checked), splits it into
the *current* run group — the lines carrying the newest git sha, or an
explicit ``--current`` file — and the *baseline* history, then compares
each headline metric against the median of the last ``--window``
comparable runs (same scenario, same quick/full sizing).

Metric direction follows the naming convention the workloads share:

* **higher is better**: any throughput unit token (``*mpps*``,
  ``*pps``, ``*_pps_*``) — decided first, so ``zero_loss_mpps_64b``
  measures a rate, not a loss — then ``*rate``, ``*ratio``,
  ``*gain*``, ``*preserved*``;
* **lower is better**: ``*_us``, ``*_s``/``*seconds*``, ``*loss*``,
  ``*drop*``, ``*cycles*``;
* anything else is informational and never gated.

A metric regresses when it falls outside the tolerance band around the
baseline median (default 10%).  A current line whose ``checks_passed``
is false fails outright.  Scenarios with no comparable history pass
with a note — the first run creates the baseline.

Usage::

    PYTHONPATH=src python scripts/bench_gate.py                   # gate HEAD
    PYTHONPATH=src python scripts/bench_gate.py --trends ci.jsonl \
        --current new.jsonl --tolerance 0.15
"""

import argparse
import sys

from repro.bench.schema import (
    TRENDS_BASENAME,
    read_trend_lines,
    tail_by_scenario,
    validate_trend_file,
    validate_trend_line,
)

HIGHER_TOKENS = ("mpps", "pps", "rate", "ratio", "gain", "preserved")
LOWER_TOKENS = ("_us", "seconds", "loss", "drop", "cycles")


def metric_direction(name):
    """``higher`` / ``lower`` / ``neutral`` from the metric's name.

    A throughput unit token anywhere in the name decides first —
    ``zero_loss_mpps_64b`` and ``zero_loss_pps`` measure a rate, not a
    loss, even with a per-size suffix after the unit; otherwise
    lower-is-better tokens win ties (``loss_rate`` is a loss first).
    """
    lowered = name.lower()
    if ("mpps" in lowered or lowered.endswith("pps")
            or "_pps_" in lowered):
        return "higher"
    if lowered.endswith("_s") or any(token in lowered
                                     for token in LOWER_TOKENS):
        return "lower"
    if any(token in lowered for token in HIGHER_TOKENS):
        return "higher"
    return "neutral"


def median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def gate_line(current, history, window, tolerance):
    """Judge one current trend line; returns (problems, notes)."""
    problems, notes = [], []
    scenario = current.get("scenario", "?")
    if not current.get("checks_passed"):
        problems.append("%s: checks_passed is false" % scenario)
    baseline = tail_by_scenario(history, scenario,
                                quick=current.get("quick"),
                                window=window)
    if not baseline:
        notes.append("%s: no comparable history (baseline created)"
                     % scenario)
        return problems, notes
    for name, value in sorted(current.get("metrics", {}).items()):
        direction = metric_direction(name)
        if direction == "neutral":
            continue
        samples = [line["metrics"][name] for line in baseline
                   if isinstance(line.get("metrics", {}).get(name),
                                 (int, float))]
        if not samples:
            notes.append("%s.%s: new metric (no history)"
                         % (scenario, name))
            continue
        base = median(samples)
        # Sentinel/zero baselines give no meaningful band; report only.
        if base <= 0:
            notes.append("%s.%s: baseline %g not gateable"
                         % (scenario, name, base))
            continue
        if direction == "lower" and value > base * (1 + tolerance):
            problems.append(
                "%s.%s regressed: %g > baseline %g +%d%%"
                % (scenario, name, value, base, tolerance * 100))
        elif direction == "higher" and value < base * (1 - tolerance):
            problems.append(
                "%s.%s regressed: %g < baseline %g -%d%%"
                % (scenario, name, value, base, tolerance * 100))
    return problems, notes


def main(argv=None):
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    parser.add_argument("--trends", default=TRENDS_BASENAME,
                        help="trend history file (default: %(default)s)")
    parser.add_argument("--current", metavar="PATH", default=None,
                        help="JSONL of the lines to judge (default: the "
                             "newest git sha's lines inside --trends)")
    parser.add_argument("--window", type=int, default=5,
                        help="baseline runs per scenario "
                             "(default: %(default)s)")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed relative drift "
                             "(default: %(default)s)")
    parser.add_argument("--schema-only", action="store_true",
                        help="validate the trend file and exit")
    args = parser.parse_args(argv)
    if not 0 <= args.tolerance < 1:
        parser.error("--tolerance must be in [0, 1)")
    if args.window < 1:
        parser.error("--window must be >= 1")

    schema_problems = validate_trend_file(args.trends)
    if schema_problems:
        for problem in schema_problems:
            print("SCHEMA: %s" % problem, file=sys.stderr)
        return 2
    history = read_trend_lines(args.trends)
    if args.schema_only:
        print("%s: %d valid trend line(s)" % (args.trends, len(history)))
        return 0

    if args.current:
        current_problems = validate_trend_file(args.current)
        if current_problems:
            for problem in current_problems:
                print("SCHEMA: %s" % problem, file=sys.stderr)
            return 2
        current_lines = read_trend_lines(args.current)
    else:
        newest_sha = history[-1].get("git_sha")
        current_lines = [line for line in history
                         if line.get("git_sha") == newest_sha]
        history = [line for line in history
                   if line.get("git_sha") != newest_sha]
        print("gating %d line(s) at sha %.12s against %d history "
              "line(s)" % (len(current_lines), newest_sha,
                           len(history)))
    for line in current_lines:
        problems = validate_trend_line(line)
        if problems:
            for problem in problems:
                print("SCHEMA: %s" % problem, file=sys.stderr)
            return 2

    all_problems, all_notes = [], []
    for line in current_lines:
        problems, notes = gate_line(line, history, args.window,
                                    args.tolerance)
        all_problems.extend(problems)
        all_notes.extend(notes)
    for note in all_notes:
        print("NOTE: %s" % note)
    for problem in all_problems:
        print("REGRESSION: %s" % problem, file=sys.stderr)
    verdict = "FAIL" if all_problems else "PASS"
    print("%s: %d scenario line(s), %d regression(s), tolerance %d%%, "
          "window %d" % (verdict, len(current_lines),
                         len(all_problems), args.tolerance * 100,
                         args.window))
    return 1 if all_problems else 0


if __name__ == "__main__":
    sys.exit(main())
