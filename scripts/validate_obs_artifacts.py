#!/usr/bin/env python
"""Validate the observability artifacts a run wrote with ``--obs-out``.

The CI obs-smoke job runs a short traced experiment, points this script
at the artifact directory, and fails the job unless:

* ``metrics.prom`` parses under the Prometheus text grammar and carries
  the families the paper's story depends on (datapath, poll loops,
  resilience);
* ``snapshots.jsonl`` round-trips as JSON Lines snapshots with
  monotone timestamps;
* ``traces.jsonl`` holds well-formed traces, at least one of which
  proves the bypass path (``bypass-ring`` hop, no classifier hop);
* ``report.txt`` contains all four report sections.

It also validates benchmark artifacts against the unified schema
(:mod:`repro.bench.schema`): ``--bench`` schema-checks benchmark JSON
documents (family resolved from their ``schema`` tag), ``--trends``
schema-checks a ``BENCH_TRENDS.jsonl`` file.

Usage::

    python scripts/validate_obs_artifacts.py <artifact-dir>
    python scripts/validate_obs_artifacts.py --bench BENCH_*.json
    python scripts/validate_obs_artifacts.py --trends BENCH_TRENDS.jsonl
"""

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), os.pardir, "src")
)

from repro.obs.export import (  # noqa: E402
    parse_jsonl_snapshots,
    validate_prometheus_text,
)

REQUIRED_METRIC_PREFIXES = (
    "repro_datapath_packets_processed",
    "repro_pollloop_busy_cycles",
    "repro_resilience_total",
    "coverage_total",
)

SWITCH_PATH_HOPS = {"switch-rx", "emc", "classifier", "upcall",
                    "switch-tx"}

REPORT_SECTIONS = ("pmd/stats-show", "coverage/show", "trace/dump",
                   "metrics/dump")


def fail(message):
    print("FAIL: %s" % message, file=sys.stderr)
    raise SystemExit(1)


def check_metrics(path):
    with open(path) as handle:
        text = handle.read()
    count = validate_prometheus_text(text)
    for prefix in REQUIRED_METRIC_PREFIXES:
        if prefix not in text:
            fail("%s: missing metric family %r" % (path, prefix))
    print("ok: %s (%d sample lines)" % (path, count))


def check_snapshots(path):
    with open(path) as handle:
        snapshots = parse_jsonl_snapshots(handle.read())
    if not snapshots:
        fail("%s: no snapshots" % path)
    times = [snap["time"] for snap in snapshots]
    if times != sorted(times):
        fail("%s: snapshot timestamps not monotone" % path)
    print("ok: %s (%d snapshots)" % (path, len(snapshots)))


def check_traces(path):
    bypassed = 0
    total = 0
    with open(path) as handle:
        for lineno, line in enumerate(handle, 1):
            if not line.strip():
                continue
            trace = json.loads(line)
            for key in ("trace_id", "seq", "start", "spans"):
                if key not in trace:
                    fail("%s line %d: trace missing %r"
                         % (path, lineno, key))
            hops = [span["hop"] for span in trace["spans"]]
            if not hops or hops[0] != "ingress" or hops[-1] != "sink":
                fail("%s line %d: trace not ingress..sink: %r"
                     % (path, lineno, hops))
            total += 1
            if "bypass-ring" in hops:
                if SWITCH_PATH_HOPS & set(hops):
                    fail("%s line %d: bypassed packet also shows "
                         "switch hops %r" % (path, lineno, hops))
                bypassed += 1
    if total == 0:
        fail("%s: no traces" % path)
    if bypassed == 0:
        fail("%s: no trace proves the bypass path" % path)
    print("ok: %s (%d traces, %d via bypass)" % (path, total, bypassed))


def check_report(path):
    with open(path) as handle:
        text = handle.read()
    for section in REPORT_SECTIONS:
        if section not in text:
            fail("%s: missing section %r" % (path, section))
    print("ok: %s" % path)


def check_bench_doc(path):
    from repro.bench.schema import validate_document
    from repro.bench.workloads import by_schema_tag

    with open(path) as handle:
        doc = json.load(handle)
    module = by_schema_tag(doc.get("schema"))
    if module is not None:
        problems = module.validate(doc)  # family payload + base schema
        kind = module.SCHEMA
    else:
        problems = validate_document(doc)  # matrix/unknown family
        kind = doc.get("schema", "?")
    for problem in problems:
        print("FAIL: %s: %s" % (path, problem), file=sys.stderr)
    if problems:
        raise SystemExit(1)
    print("ok: %s (%s)" % (path, kind))


def check_trend_file(path):
    from repro.bench.schema import read_trend_lines, validate_trend_file

    problems = validate_trend_file(path)
    for problem in problems:
        print("FAIL: %s: %s" % (path, problem), file=sys.stderr)
    if problems:
        raise SystemExit(1)
    print("ok: %s (%d trend lines)" % (path, len(read_trend_lines(path))))


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    parser.add_argument("artifact_dir", nargs="?",
                        help="--obs-out artifact directory to validate")
    parser.add_argument("--bench", nargs="+", default=[],
                        metavar="JSON",
                        help="benchmark documents to schema-check")
    parser.add_argument("--trends", default=None, metavar="JSONL",
                        help="trend file to schema-check")
    args = parser.parse_args(argv[1:])
    if not args.artifact_dir and not args.bench and not args.trends:
        parser.print_help()
        return 2
    if args.artifact_dir:
        out_dir = args.artifact_dir
        check_metrics(os.path.join(out_dir, "metrics.prom"))
        check_snapshots(os.path.join(out_dir, "snapshots.jsonl"))
        check_traces(os.path.join(out_dir, "traces.jsonl"))
        check_report(os.path.join(out_dir, "report.txt"))
        print("all observability artifacts valid")
    for path in args.bench:
        check_bench_doc(path)
    if args.trends:
        check_trend_file(args.trends)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
