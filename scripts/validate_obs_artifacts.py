#!/usr/bin/env python
"""Validate the observability artifacts a run wrote with ``--obs-out``.

The CI obs-smoke job runs a short traced experiment, points this script
at the artifact directory, and fails the job unless:

* ``metrics.prom`` parses under the Prometheus text grammar and carries
  the families the paper's story depends on (datapath, poll loops,
  resilience);
* ``snapshots.jsonl`` round-trips as JSON Lines snapshots with
  monotone timestamps;
* ``traces.jsonl`` holds well-formed traces, at least one of which
  proves the bypass path (``bypass-ring`` hop, no classifier hop);
* ``report.txt`` contains all four report sections.

Usage: ``python scripts/validate_obs_artifacts.py <artifact-dir>``
"""

import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), os.pardir, "src")
)

from repro.obs.export import (  # noqa: E402
    parse_jsonl_snapshots,
    validate_prometheus_text,
)

REQUIRED_METRIC_PREFIXES = (
    "repro_datapath_packets_processed",
    "repro_pollloop_busy_cycles",
    "repro_resilience_total",
    "coverage_total",
)

SWITCH_PATH_HOPS = {"switch-rx", "emc", "classifier", "upcall",
                    "switch-tx"}

REPORT_SECTIONS = ("pmd/stats-show", "coverage/show", "trace/dump",
                   "metrics/dump")


def fail(message):
    print("FAIL: %s" % message, file=sys.stderr)
    raise SystemExit(1)


def check_metrics(path):
    with open(path) as handle:
        text = handle.read()
    count = validate_prometheus_text(text)
    for prefix in REQUIRED_METRIC_PREFIXES:
        if prefix not in text:
            fail("%s: missing metric family %r" % (path, prefix))
    print("ok: %s (%d sample lines)" % (path, count))


def check_snapshots(path):
    with open(path) as handle:
        snapshots = parse_jsonl_snapshots(handle.read())
    if not snapshots:
        fail("%s: no snapshots" % path)
    times = [snap["time"] for snap in snapshots]
    if times != sorted(times):
        fail("%s: snapshot timestamps not monotone" % path)
    print("ok: %s (%d snapshots)" % (path, len(snapshots)))


def check_traces(path):
    bypassed = 0
    total = 0
    with open(path) as handle:
        for lineno, line in enumerate(handle, 1):
            if not line.strip():
                continue
            trace = json.loads(line)
            for key in ("trace_id", "seq", "start", "spans"):
                if key not in trace:
                    fail("%s line %d: trace missing %r"
                         % (path, lineno, key))
            hops = [span["hop"] for span in trace["spans"]]
            if not hops or hops[0] != "ingress" or hops[-1] != "sink":
                fail("%s line %d: trace not ingress..sink: %r"
                     % (path, lineno, hops))
            total += 1
            if "bypass-ring" in hops:
                if SWITCH_PATH_HOPS & set(hops):
                    fail("%s line %d: bypassed packet also shows "
                         "switch hops %r" % (path, lineno, hops))
                bypassed += 1
    if total == 0:
        fail("%s: no traces" % path)
    if bypassed == 0:
        fail("%s: no trace proves the bypass path" % path)
    print("ok: %s (%d traces, %d via bypass)" % (path, total, bypassed))


def check_report(path):
    with open(path) as handle:
        text = handle.read()
    for section in REPORT_SECTIONS:
        if section not in text:
            fail("%s: missing section %r" % (path, section))
    print("ok: %s" % path)


def main(argv):
    if len(argv) != 2:
        print(__doc__)
        return 2
    out_dir = argv[1]
    check_metrics(os.path.join(out_dir, "metrics.prom"))
    check_snapshots(os.path.join(out_dir, "snapshots.jsonl"))
    check_traces(os.path.join(out_dir, "traces.jsonl"))
    check_report(os.path.join(out_dir, "report.txt"))
    print("all observability artifacts valid")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
