#!/usr/bin/env python
"""Chaos soak benchmark (family ``chaos``).

Thin wrapper over :mod:`repro.bench.workloads.chaos`, which owns the
measurement code; this script keeps the historical entry point and CLI.

Usage::

    PYTHONPATH=src python scripts/bench_chaos.py              # full run
    PYTHONPATH=src python scripts/bench_chaos.py --quick --check
    PYTHONPATH=src python scripts/bench_chaos.py --validate BENCH_chaos.json
"""

import sys

from repro.bench.cli import script_main

if __name__ == "__main__":
    sys.exit(script_main("chaos"))
