#!/usr/bin/env python
"""Overload control benchmark (family ``overload``).

Thin wrapper over :mod:`repro.bench.workloads.overload`, which owns the
measurement code; this script keeps the historical entry point and CLI.

Usage::

    PYTHONPATH=src python scripts/bench_overload.py            # full run
    PYTHONPATH=src python scripts/bench_overload.py --quick --check
    PYTHONPATH=src python scripts/bench_overload.py --validate BENCH_overload.json
"""

import sys

from repro.bench.cli import script_main

if __name__ == "__main__":
    sys.exit(script_main("overload"))
