#!/usr/bin/env python
"""Fast-path baseline benchmark (family ``fastpath``).

Thin wrapper over :mod:`repro.bench.workloads.fastpath`, which owns the
measurement code; this script keeps the historical entry point and CLI.

Usage::

    PYTHONPATH=src python scripts/bench_baseline.py            # full run
    PYTHONPATH=src python scripts/bench_baseline.py --quick --check
    PYTHONPATH=src python scripts/bench_baseline.py --validate BENCH_fastpath.json
"""

import sys

from repro.bench.cli import script_main

if __name__ == "__main__":
    sys.exit(script_main("fastpath"))
