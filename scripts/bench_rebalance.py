#!/usr/bin/env python
"""PMD rxq scheduler benchmark (family ``sched``).

Thin wrapper over :mod:`repro.bench.workloads.sched`, which owns the
measurement code; this script keeps the historical entry point and CLI.

Usage::

    PYTHONPATH=src python scripts/bench_rebalance.py            # full run
    PYTHONPATH=src python scripts/bench_rebalance.py --quick --check
    PYTHONPATH=src python scripts/bench_rebalance.py --validate BENCH_sched.json
"""

import sys

from repro.bench.cli import script_main

if __name__ == "__main__":
    sys.exit(script_main("sched"))
