#!/usr/bin/env python
"""PMD scheduler benchmark: static hash vs measured-load rebalancing.

Builds one vSwitch with four PMD cores and eight receive ports carrying
a Zipf-skewed load whose two hottest ports collide on the same core
under the static ``ofport % n_cores`` hash.  Three variants:

* ``static``   — the round-robin hash, left alone (the baseline);
* ``cycles``   — same adversarial start, then one manual
  ``pmd-rxq-assign=cycles`` rebalance from measured load after warmup;
* ``auto_lb``  — same start, the auto load balancer detects the
  overloaded core and rebalances live during traffic.

Writes one JSON document (schema ``repro-bench-sched/1``); the
committed ``BENCH_sched.json`` at the repo root is the output of a full
(non ``--quick``) run.

Usage::

    PYTHONPATH=src python scripts/bench_rebalance.py            # full run
    PYTHONPATH=src python scripts/bench_rebalance.py --quick --check
    PYTHONPATH=src python scripts/bench_rebalance.py --validate BENCH_sched.json

``--check`` enforces the scheduler invariants (cycles and auto-lb each
beating the static hash, the auto-LB actually firing) and exits
non-zero if any fails; ``--validate`` schema-checks an existing
document instead of running anything.
"""

import argparse
import json
import sys

from repro.dpdk.dpdkr import DpdkrPmd
from repro.openflow.actions import OutputAction
from repro.openflow.match import Match
from repro.openflow.table import FlowEntry
from repro.sched.autolb import AutoLbPolicy
from repro.sim.engine import Environment
from repro.traffic.generator import SourceApp
from repro.traffic.profiles import hot_port_rates, uniform_profile
from repro.traffic.sink import SinkApp
from repro.vswitch.vswitchd import VSwitchd

SCHEMA = "repro-bench-sched/1"

N_CORES = 4
N_PORTS = 8
# Receive ofports chosen adversarially: the two hottest ports (rates[0]
# and rates[1] below land on ofports 1 and 5) are congruent mod 4, so
# the static hash stacks them on the same PMD core.
RX_OFPORTS = (1, 5, 2, 3, 4, 6, 7, 8)
ZIPF_EXPONENT = 1.0


def build_switch(env, auto_lb_interval=None):
    switch = VSwitchd(
        env=env, n_pmd_cores=N_CORES, name="bench-sched",
        auto_lb=auto_lb_interval is not None,
        auto_lb_policy=(
            AutoLbPolicy(rebalance_interval=auto_lb_interval)
            if auto_lb_interval is not None else AutoLbPolicy()
        ),
    )
    rx_ports, tx_ports = [], []
    for index, ofport in enumerate(RX_OFPORTS):
        rx_ports.append(switch.add_dpdkr_port(
            "rx%d" % index, ofport=ofport))
    for index in range(N_PORTS):
        tx_ports.append(switch.add_dpdkr_port(
            "out%d" % index, ofport=100 + index))
    for rx, tx in zip(rx_ports, tx_ports):
        switch.bridge.table.add(FlowEntry(
            Match(in_port=rx.ofport), [OutputAction(tx.ofport)],
            priority=10,
        ))
    return switch, rx_ports, tx_ports


def run_variant(variant, total_pps, duration, warmup):
    """One full run; returns the measured numbers for one variant."""
    env = Environment()
    auto_lb_interval = warmup / 4 if variant == "auto_lb" else None
    switch, rx_ports, tx_ports = build_switch(env, auto_lb_interval)
    profile = uniform_profile(64, flows=4)
    rates = hot_port_rates(total_pps, N_PORTS, ZIPF_EXPONENT)
    sources, sinks = [], []
    for index, (rx, rate) in enumerate(zip(rx_ports, rates)):
        pmd = DpdkrPmd(index, rx.rings)
        sources.append(SourceApp(
            "src%d" % index, pmd, profile=profile, rate_pps=rate,
        ))
    for index, tx in enumerate(tx_ports):
        pmd = DpdkrPmd(100 + index, tx.rings)
        sinks.append(SinkApp("sink%d" % index, pmd,
                             record_latency=False))
    switch.start()
    for app in sources + sinks:
        app.start(env)
    if variant == "auto_lb":
        # Ports were placed by the static hash (the adversarial start);
        # from here on the balancer re-plans with measured cycles.
        switch.set_rxq_assign("cycles")
    env.run(until=warmup)
    if variant == "cycles":
        switch.set_rxq_assign("cycles")
        switch.rebalance()
    switch.reset_pmd_accounting()
    received_mark = [sink.received for sink in sinks]
    env.run(until=warmup + duration)
    delivered = sum(sink.received - mark
                    for sink, mark in zip(sinks, received_mark))
    scheduler = switch.scheduler
    core_busy = [round(loop.utilization, 4)
                 for loop in switch._pmd_loops]
    out = {
        "variant": variant,
        "offered_pps": round(total_pps, 1),
        "delivered": delivered,
        "throughput_mpps": round(delivered / duration / 1e6, 4),
        "core_busy": core_busy,
        "rebalances": scheduler.rebalances,
        "port_moves": scheduler.port_moves,
        "assignment": {
            str(core): [port.name for port in ports]
            for core, ports in enumerate(scheduler.core_ports)
        },
    }
    if switch.auto_lb is not None:
        out["auto_lb_checks"] = switch.auto_lb.checks_run
        out["auto_lb_applied"] = switch.auto_lb.rebalances_applied
    switch.stop()
    for app in sources + sinks:
        app.stop()
    return out


# -- checks -------------------------------------------------------------------


def run_checks(doc):
    """The scheduler invariants; each returns (name, passed, detail)."""
    workloads = doc["workloads"]
    static = workloads["static"]["throughput_mpps"]
    cycles = workloads["cycles"]["throughput_mpps"]
    auto_lb = workloads["auto_lb"]["throughput_mpps"]
    return [
        ("cycles_beats_static_hash", cycles > static,
         "%.4f > %.4f Mpps" % (cycles, static)),
        ("auto_lb_beats_static_hash", auto_lb > static,
         "%.4f > %.4f Mpps" % (auto_lb, static)),
        ("cycles_rebalance_moved_ports",
         workloads["cycles"]["port_moves"] > 0,
         "%d port move(s)" % workloads["cycles"]["port_moves"]),
        ("auto_lb_applied_a_rebalance",
         workloads["auto_lb"]["auto_lb_applied"] >= 1,
         "%d rebalance(s) applied"
         % workloads["auto_lb"]["auto_lb_applied"]),
        ("static_left_alone",
         workloads["static"]["port_moves"] == 0,
         "%d port move(s)" % workloads["static"]["port_moves"]),
    ]


# -- schema -------------------------------------------------------------------

REQUIRED_VARIANT_KEYS = {
    "variant", "offered_pps", "delivered", "throughput_mpps",
    "core_busy", "rebalances", "port_moves", "assignment",
}


def validate(doc):
    """Structural schema check; returns a list of problems (empty = ok)."""
    problems = []
    if doc.get("schema") != SCHEMA:
        problems.append("schema != %s" % SCHEMA)
    workloads = doc.get("workloads", {})
    for name in ("static", "cycles", "auto_lb"):
        variant = workloads.get(name)
        if variant is None:
            problems.append("missing workload %s" % name)
            continue
        missing = REQUIRED_VARIANT_KEYS - set(variant)
        if missing:
            problems.append("%s missing %s" % (name, sorted(missing)))
        if name == "auto_lb" and "auto_lb_applied" not in variant:
            problems.append("auto_lb missing auto_lb_applied")
    if not isinstance(doc.get("checks"), list) or not doc["checks"]:
        problems.append("missing checks")
    return problems


# -- driver -------------------------------------------------------------------


def run_bench(quick):
    duration = 0.01 if quick else 0.04
    warmup = 0.008 if quick else 0.016
    # Tuned so the two colliding hot ports saturate one core under the
    # static hash while the spread layout keeps every core below
    # capacity: the delta between variants is pure scheduling.
    total_pps = 2.0e7
    doc = {
        "schema": SCHEMA,
        "config": {
            "quick": quick,
            "n_pmd_cores": N_CORES,
            "n_rx_ports": N_PORTS,
            "rx_ofports": list(RX_OFPORTS),
            "zipf_exponent": ZIPF_EXPONENT,
            "offered_pps_total": total_pps,
            "duration_s": duration,
            "warmup_s": warmup,
        },
        "workloads": {},
    }
    for step, variant in enumerate(("static", "cycles", "auto_lb"), 1):
        print("[%d/3] %s..." % (step, variant), file=sys.stderr)
        doc["workloads"][variant] = run_variant(
            variant, total_pps, duration, warmup)
    doc["checks"] = [
        {"name": name, "passed": passed, "detail": detail}
        for name, passed, detail in run_checks(doc)
    ]
    return doc


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_sched.json",
                        help="output JSON path (default: %(default)s)")
    parser.add_argument("--quick", action="store_true",
                        help="reduced budget (CI smoke)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero if a scheduler invariant fails")
    parser.add_argument("--validate", metavar="PATH",
                        help="schema-check an existing document and exit")
    args = parser.parse_args(argv)

    if args.validate:
        with open(args.validate) as handle:
            doc = json.load(handle)
        problems = validate(doc)
        for problem in problems:
            print("INVALID: %s" % problem, file=sys.stderr)
        print("%s: %s" % (args.validate,
                          "invalid" if problems else "valid (%s)" % SCHEMA))
        return 1 if problems else 0

    doc = run_bench(args.quick)
    problems = validate(doc)
    if problems:  # the generator must always satisfy its own schema
        for problem in problems:
            print("INTERNAL SCHEMA ERROR: %s" % problem, file=sys.stderr)
        return 2
    with open(args.out, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % args.out)
    for check in doc["checks"]:
        status = "PASS" if check["passed"] else "FAIL"
        print("  %-40s %s  (%s)" % (check["name"], status, check["detail"]))
    if args.check and not all(check["passed"] for check in doc["checks"]):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
