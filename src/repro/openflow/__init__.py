"""OpenFlow subset: matches, actions, flow tables, messages and codec.

This models the slice of OpenFlow the paper's system consumes: an
OpenFlow controller installs traffic-steering ``FlowMod``s into the
vSwitch; the p-2-p link detector analyses them; flow/port statistics flow
back to the controller.  Messages encode to real OpenFlow-1.3-style
binary (see :mod:`repro.openflow.wire`) so transparency can be asserted
at the wire level, not just against Python objects.
"""

from repro.openflow.actions import (
    Action,
    ControllerAction,
    GotoTableAction,
    OutputAction,
    SetFieldAction,
    PORT_CONTROLLER,
    actions_equal,
)
from repro.openflow.match import FIELD_WIDTHS, Match, MatchError
from repro.openflow.messages import (
    BarrierReply,
    BarrierRequest,
    EchoReply,
    EchoRequest,
    ErrorMsg,
    FeaturesReply,
    FeaturesRequest,
    FlowMod,
    FlowModCommand,
    FlowRemoved,
    FlowRemovedReason,
    FlowStatsReply,
    FlowStatsRequest,
    Hello,
    OpenFlowMessage,
    PacketIn,
    PacketInReason,
    PacketOut,
    PortStatsReply,
    PortStatsRequest,
)
from repro.openflow.table import FlowEntry, FlowTable, TableModResult
from repro.openflow.controller import ControllerConnection, SimpleController
from repro.openflow.flowsyntax import (
    FlowSyntaxError,
    format_flow,
    parse_flow,
)
from repro.openflow.learning import LearningSwitchApp

__all__ = [
    "Action",
    "FlowSyntaxError",
    "GotoTableAction",
    "LearningSwitchApp",
    "format_flow",
    "parse_flow",
    "BarrierReply",
    "BarrierRequest",
    "ControllerAction",
    "ControllerConnection",
    "EchoReply",
    "EchoRequest",
    "ErrorMsg",
    "FIELD_WIDTHS",
    "FeaturesReply",
    "FeaturesRequest",
    "FlowEntry",
    "FlowMod",
    "FlowModCommand",
    "FlowRemoved",
    "FlowRemovedReason",
    "FlowStatsReply",
    "FlowStatsRequest",
    "FlowTable",
    "Hello",
    "Match",
    "MatchError",
    "OpenFlowMessage",
    "OutputAction",
    "PORT_CONTROLLER",
    "PacketIn",
    "PacketInReason",
    "PacketOut",
    "PortStatsReply",
    "PortStatsRequest",
    "SetFieldAction",
    "SimpleController",
    "TableModResult",
    "actions_equal",
]
