"""The OpenFlow flow table: priority lookup, modify/delete semantics,
timeouts, counters and change notification.

The table is the contract between three parties: the controller (programs
it with flowmods), the datapath (looks packets up in it), and the paper's
p-2-p link detector (subscribes to change events to re-analyse port
connectivity).  Change listeners receive ``(kind, entry)`` with kind in
``{"added", "modified", "removed"}`` — exactly the hook the prototype adds
inside vswitchd.
"""

import enum
import itertools
from typing import Callable, Iterable, List, NamedTuple, Optional, Sequence

from repro.openflow.actions import Action
from repro.openflow.match import Match
from repro.packet.flowkey import FlowKey


class FlowEntry:
    """One installed rule."""

    __slots__ = (
        "match",
        "priority",
        "actions",
        "cookie",
        "idle_timeout",
        "hard_timeout",
        "install_time",
        "last_used",
        "packet_count",
        "byte_count",
        "flow_id",
    )

    _ids = itertools.count(1)

    def __init__(
        self,
        match: Match,
        actions: Sequence[Action],
        priority: int = 0x8000,
        cookie: int = 0,
        idle_timeout: float = 0.0,
        hard_timeout: float = 0.0,
        install_time: float = 0.0,
    ) -> None:
        if not 0 <= priority <= 0xFFFF:
            raise ValueError("priority out of range: %d" % priority)
        self.match = match
        self.priority = priority
        self.actions = list(actions)
        self.cookie = cookie
        self.idle_timeout = idle_timeout
        self.hard_timeout = hard_timeout
        self.install_time = install_time
        self.last_used = install_time
        self.packet_count = 0
        self.byte_count = 0
        self.flow_id = next(FlowEntry._ids)

    def account(self, packets: int, byte_count: int, now: float) -> None:
        """Bump counters (called by the datapath or the stats merger)."""
        self.packet_count += packets
        self.byte_count += byte_count
        self.last_used = now

    def is_expired(self, now: float) -> Optional["ExpiryReason"]:
        if self.hard_timeout and now - self.install_time >= self.hard_timeout:
            return ExpiryReason.HARD
        if self.idle_timeout and now - self.last_used >= self.idle_timeout:
            return ExpiryReason.IDLE
        return None

    def __repr__(self) -> str:
        return "<FlowEntry prio=%d %r -> %s n_packets=%d>" % (
            self.priority, self.match, self.actions, self.packet_count
        )


class ExpiryReason(enum.Enum):
    IDLE = "idle"
    HARD = "hard"


class TableModResult(NamedTuple):
    """Outcome of a table mutation (what the bridge reports/notifies)."""

    added: List[FlowEntry]
    modified: List[FlowEntry]
    removed: List[FlowEntry]


ChangeListener = Callable[[str, FlowEntry], None]


class FlowTable:
    """A single OpenFlow table (the paper's pipeline is one table)."""

    def __init__(self, table_id: int = 0) -> None:
        self.table_id = table_id
        self._entries: List[FlowEntry] = []  # kept sorted by -priority
        self._listeners: List[ChangeListener] = []
        self.lookup_count = 0
        self.matched_count = 0

    # -- subscription -------------------------------------------------------

    def add_listener(self, listener: ChangeListener) -> None:
        """Register for (kind, entry) change events."""
        self._listeners.append(listener)

    def remove_listener(self, listener: ChangeListener) -> None:
        self._listeners.remove(listener)

    def _notify(self, kind: str, entry: FlowEntry) -> None:
        for listener in self._listeners:
            listener(kind, entry)

    # -- read access -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterable[FlowEntry]:
        return iter(self._entries)

    def entries(self) -> List[FlowEntry]:
        """Snapshot of entries, highest priority first."""
        return list(self._entries)

    def lookup(self, key: FlowKey) -> Optional[FlowEntry]:
        """Highest-priority entry matching ``key`` (None = table miss).

        Ties between equal-priority overlapping entries resolve to the
        earliest inserted, matching OVS behaviour.
        """
        self.lookup_count += 1
        for entry in self._entries:
            if entry.match.matches(key):
                self.matched_count += 1
                return entry
        return None

    def entries_for_in_port(self, port: int) -> List[FlowEntry]:
        """Entries that could match traffic from ``port``.

        Includes entries that wildcard in_port; the detector uses this to
        reason about everything that might touch a port's traffic.
        """
        result = []
        for entry in self._entries:
            in_port = entry.match.in_port
            if in_port is None or in_port == port:
                result.append(entry)
        return result

    # -- mutation ----------------------------------------------------------------

    def add(
        self,
        entry: FlowEntry,
        *,
        replace: bool = True,
        check_overlap: bool = False,
    ) -> TableModResult:
        """OFPFC_ADD: insert, replacing an identical (match, priority) rule.

        With ``check_overlap`` the add is refused (ValueError) when an
        existing same-priority entry overlaps the new one — OpenFlow's
        OFPFF_CHECK_OVERLAP flag.
        """
        if check_overlap:
            for existing in self._entries:
                if (
                    existing.priority == entry.priority
                    and existing.match.overlaps(entry.match)
                    and existing.match != entry.match
                ):
                    raise ValueError(
                        "overlap check failed against %r" % existing
                    )
        removed: List[FlowEntry] = []
        if replace:
            for existing in list(self._entries):
                if (
                    existing.priority == entry.priority
                    and existing.match == entry.match
                ):
                    self._entries.remove(existing)
                    removed.append(existing)
        self._insert_sorted(entry)
        for old in removed:
            self._notify("removed", old)
        self._notify("added", entry)
        return TableModResult(added=[entry], modified=[], removed=removed)

    def _insert_sorted(self, entry: FlowEntry) -> None:
        # Insert after existing entries of the same priority (FIFO ties).
        index = len(self._entries)
        for position, existing in enumerate(self._entries):
            if existing.priority < entry.priority:
                index = position
                break
        self._entries.insert(index, entry)

    def modify(
        self,
        match: Match,
        actions: Sequence[Action],
        *,
        strict: bool = False,
        priority: int = 0x8000,
        cookie: Optional[int] = None,
    ) -> TableModResult:
        """OFPFC_MODIFY(_STRICT): update actions of matching entries.

        Non-strict updates every entry whose match is *covered by*
        ``match``; strict requires identical match and priority.  Counters
        and timeouts are preserved (per spec).
        """
        modified: List[FlowEntry] = []
        for entry in self._entries:
            if cookie is not None and entry.cookie != cookie:
                continue
            if strict:
                selected = (
                    entry.priority == priority and entry.match == match
                )
            else:
                selected = match.covers(entry.match)
            if selected:
                entry.actions = list(actions)
                modified.append(entry)
        for entry in modified:
            self._notify("modified", entry)
        return TableModResult(added=[], modified=modified, removed=[])

    def delete(
        self,
        match: Match,
        *,
        strict: bool = False,
        priority: int = 0x8000,
        cookie: Optional[int] = None,
        out_port: Optional[int] = None,
    ) -> TableModResult:
        """OFPFC_DELETE(_STRICT): remove matching entries.

        ``out_port`` additionally restricts deletion to entries with an
        output action to that port (OpenFlow's out_port filter).
        """
        from repro.openflow.actions import output_ports

        removed: List[FlowEntry] = []
        for entry in list(self._entries):
            if cookie is not None and entry.cookie != cookie:
                continue
            if strict:
                selected = (
                    entry.priority == priority and entry.match == match
                )
            else:
                selected = match.covers(entry.match)
            if selected and out_port is not None:
                selected = out_port in output_ports(entry.actions)
            if selected:
                self._entries.remove(entry)
                removed.append(entry)
        for entry in removed:
            self._notify("removed", entry)
        return TableModResult(added=[], modified=[], removed=removed)

    def expire(self, now: float) -> List["tuple[FlowEntry, ExpiryReason]"]:
        """Remove timed-out entries; returns (entry, reason) pairs."""
        expired = []
        for entry in list(self._entries):
            reason = entry.is_expired(now)
            if reason is not None:
                self._entries.remove(entry)
                expired.append((entry, reason))
        for entry, _reason in expired:
            self._notify("removed", entry)
        return expired

    def clear(self) -> List[FlowEntry]:
        """Remove everything (bridge deletion / controller flush)."""
        removed, self._entries = self._entries, []
        for entry in removed:
            self._notify("removed", entry)
        return removed
