"""OpenFlow protocol messages (the subset the system exchanges).

These are plain value objects; :mod:`repro.openflow.wire` maps them to
and from OpenFlow 1.3 binary.  The xid threading, handshake and
request/reply pairing live in :mod:`repro.openflow.controller` and
:mod:`repro.vswitch.bridge`.
"""

import enum
import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.openflow.actions import Action
from repro.openflow.match import Match

_xids = itertools.count(1)


def next_xid() -> int:
    return next(_xids)


@dataclass
class OpenFlowMessage:
    """Base message: every message carries a transaction id."""

    xid: int = field(default_factory=next_xid)


@dataclass
class Hello(OpenFlowMessage):
    version: int = 4  # OpenFlow 1.3


@dataclass
class EchoRequest(OpenFlowMessage):
    data: bytes = b""


@dataclass
class EchoReply(OpenFlowMessage):
    data: bytes = b""


@dataclass
class FeaturesRequest(OpenFlowMessage):
    pass


@dataclass
class FeaturesReply(OpenFlowMessage):
    datapath_id: int = 0
    n_buffers: int = 0
    n_tables: int = 1
    capabilities: int = 0


class FlowModCommand(enum.IntEnum):
    ADD = 0
    MODIFY = 1
    MODIFY_STRICT = 2
    DELETE = 3
    DELETE_STRICT = 4


@dataclass
class FlowMod(OpenFlowMessage):
    """The message the p-2-p link detector analyses."""

    command: FlowModCommand = FlowModCommand.ADD
    match: Match = field(default_factory=Match)
    actions: List[Action] = field(default_factory=list)
    priority: int = 0x8000
    cookie: int = 0
    idle_timeout: int = 0
    hard_timeout: int = 0
    table_id: int = 0
    out_port: Optional[int] = None  # delete filter
    check_overlap: bool = False


class FlowRemovedReason(enum.IntEnum):
    IDLE_TIMEOUT = 0
    HARD_TIMEOUT = 1
    DELETE = 2


@dataclass
class FlowRemoved(OpenFlowMessage):
    match: Match = field(default_factory=Match)
    priority: int = 0x8000
    cookie: int = 0
    reason: FlowRemovedReason = FlowRemovedReason.DELETE
    duration_sec: float = 0.0
    packet_count: int = 0
    byte_count: int = 0


class PacketInReason(enum.IntEnum):
    NO_MATCH = 0
    ACTION = 1


@dataclass
class PacketIn(OpenFlowMessage):
    in_port: int = 0
    reason: PacketInReason = PacketInReason.NO_MATCH
    data: bytes = b""


@dataclass
class PacketOut(OpenFlowMessage):
    """Controller-injected packet.

    With the bypass active this is the message that still has to travel
    through the *normal* channel — the reason the PMD keeps polling it.
    """

    in_port: int = 0xFFFFFFFE  # OFPP_CONTROLLER as ingress
    actions: List[Action] = field(default_factory=list)
    data: bytes = b""


@dataclass
class FlowStatsRequest(OpenFlowMessage):
    match: Match = field(default_factory=Match)
    out_port: Optional[int] = None


@dataclass
class FlowStatsEntry:
    match: Match
    priority: int
    cookie: int
    packet_count: int
    byte_count: int
    duration_sec: float
    actions: Sequence[Action] = ()


@dataclass
class FlowStatsReply(OpenFlowMessage):
    stats: List[FlowStatsEntry] = field(default_factory=list)


@dataclass
class PortStatsRequest(OpenFlowMessage):
    port_no: Optional[int] = None  # None = all ports


@dataclass
class PortStatsEntry:
    port_no: int
    rx_packets: int
    tx_packets: int
    rx_bytes: int
    tx_bytes: int
    rx_dropped: int = 0
    tx_dropped: int = 0


@dataclass
class PortStatsReply(OpenFlowMessage):
    stats: List[PortStatsEntry] = field(default_factory=list)


@dataclass
class PortMod(OpenFlowMessage):
    """Administratively enable/disable a port (OFPPC_PORT_DOWN)."""

    port_no: int = 0
    down: bool = False


@dataclass
class BarrierRequest(OpenFlowMessage):
    pass


@dataclass
class BarrierReply(OpenFlowMessage):
    pass


@dataclass
class ErrorMsg(OpenFlowMessage):
    error_type: int = 0
    code: int = 0
    data: bytes = b""
