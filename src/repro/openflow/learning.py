"""A reactive L2 learning-switch controller application.

The classic OpenFlow controller program: unknown traffic is punted to
the controller (table miss), source MACs are learned against their
ingress ports, known destinations get a flow installed and the pending
packet re-injected with packet-out, unknown destinations are flooded.

In this repository it serves two purposes:

* it exercises the full reactive path (PacketIn -> FlowMod + PacketOut)
  over the binary OpenFlow codec;
* it demonstrates the detector's conservatism: learning-switch rules
  match on ``eth_dst`` and are *not* point-to-point, so none of them
  triggers a bypass — reactive L2 switching and the transparent highway
  coexist without interfering.
"""

from typing import Dict, List, Optional

from repro.openflow.actions import OutputAction
from repro.openflow.controller import SimpleController
from repro.openflow.match import Match
from repro.openflow.messages import PacketIn
from repro.packet.headers import Ethernet
from repro.packet.packet import Packet


class LearningSwitchApp:
    """Drives a :class:`SimpleController` as an L2 learning switch."""

    def __init__(
        self,
        controller: SimpleController,
        ports: List[int],
        idle_timeout: int = 30,
        priority: int = 10,
    ) -> None:
        """``ports`` is the set of switch ports to flood over (the
        controller cannot discover them in this OF subset)."""
        self.controller = controller
        self.ports = list(ports)
        self.idle_timeout = idle_timeout
        self.priority = priority
        self.mac_table: Dict[int, int] = {}
        self.floods = 0
        self.flows_installed = 0
        controller.on_packet_in = self.on_packet_in

    def add_port(self, ofport: int) -> None:
        if ofport not in self.ports:
            self.ports.append(ofport)

    def lookup(self, mac_value: int) -> Optional[int]:
        return self.mac_table.get(mac_value)

    def on_packet_in(self, message: PacketIn) -> None:
        packet = Packet.unpack(message.data)
        eth = packet.get(Ethernet)
        if eth is None:
            return
        # Learn (or migrate) the source.
        self.mac_table[eth.src.value] = message.in_port

        out_port = self.mac_table.get(eth.dst.value)
        if (out_port is None or eth.dst.is_broadcast
                or eth.dst.is_multicast):
            self._flood(message)
            return
        if out_port == message.in_port:
            return  # destination is behind the ingress port: drop
        # Program the fast path for this destination, then release the
        # pending packet along the same route.
        self.controller.install_flow(
            Match(eth_dst=eth.dst.value),
            [OutputAction(out_port)],
            priority=self.priority,
            idle_timeout=self.idle_timeout,
        )
        self.flows_installed += 1
        self.controller.packet_out(message.data, [OutputAction(out_port)])

    def _flood(self, message: PacketIn) -> None:
        self.floods += 1
        actions = [OutputAction(port) for port in self.ports
                   if port != message.in_port]
        if actions:
            self.controller.packet_out(message.data, actions)
