"""OpenFlow match: masked field constraints plus the set algebra the
p-2-p link detector relies on (overlap, cover, totality).

A :class:`Match` constrains a subset of the :class:`~repro.packet.flowkey.
FlowKey` fields; unconstrained fields are wildcards.  Fields may carry a
bitmask (``None`` mask = exact).  Besides per-packet matching, matches
support the region algebra used for flow-table semantics and detector
analysis:

* :meth:`overlaps` — do two matches share at least one packet?
* :meth:`covers` — does this match's region contain another's entirely?
* :meth:`is_total_for_port` — is this exactly "everything from port N"?
"""

from typing import Dict, Iterator, Optional, Tuple

from repro.packet.flowkey import FlowKey

# Field name -> bit width. The field set mirrors FlowKey.
FIELD_WIDTHS: Dict[str, int] = {
    "in_port": 32,
    "eth_src": 48,
    "eth_dst": 48,
    "eth_type": 16,
    "vlan_vid": 12,
    "ip_src": 32,
    "ip_dst": 32,
    "ip_proto": 8,
    "ip_tos": 8,
    "l4_src": 16,
    "l4_dst": 16,
}

# Fields OpenFlow treats as exact-only (no arbitrary bitmasks).
_EXACT_ONLY = frozenset(
    {"in_port", "eth_type", "vlan_vid", "ip_proto", "ip_tos",
     "l4_src", "l4_dst"}
)

# Prerequisite chains (OpenFlow 1.3 §7.2.3.8): constraining an upper-layer
# field requires pinning the lower-layer demux field.
_PREREQUISITES = {
    "ip_src": "eth_type",
    "ip_dst": "eth_type",
    "ip_proto": "eth_type",
    "ip_tos": "eth_type",
    "l4_src": "ip_proto",
    "l4_dst": "ip_proto",
}


class MatchError(ValueError):
    """Raised for malformed matches (unknown field, bad mask, prereqs)."""


def _full_mask(width: int) -> int:
    return (1 << width) - 1


class Match:
    """An immutable set of masked field constraints.

    Construct with keyword arguments; each value is either an ``int``
    (exact match) or an ``(int value, int mask)`` tuple::

        Match(in_port=1)
        Match(eth_type=0x0800, ip_dst=(0x0A000000, 0xFF000000))  # 10/8
    """

    __slots__ = ("_fields", "_hash")

    def __init__(self, **constraints) -> None:
        fields: Dict[str, Tuple[int, int]] = {}
        for name, raw in constraints.items():
            width = FIELD_WIDTHS.get(name)
            if width is None:
                raise MatchError("unknown match field %r" % name)
            if isinstance(raw, tuple):
                value, mask = raw
            else:
                value, mask = raw, _full_mask(width)
            full = _full_mask(width)
            if not 0 <= value <= full:
                raise MatchError(
                    "value %#x out of range for %s" % (value, name)
                )
            if not 0 <= mask <= full:
                raise MatchError("mask %#x out of range for %s" % (mask, name))
            if mask == 0:
                continue  # all-zero mask is a wildcard: drop the field
            if name in _EXACT_ONLY and mask != full:
                raise MatchError("field %s supports exact match only" % name)
            if value & ~mask:
                raise MatchError(
                    "value %#x has bits outside mask %#x for %s"
                    % (value, mask, name)
                )
            fields[name] = (value, mask)
        self._check_prerequisites(fields)
        self._fields = fields
        self._hash = hash(frozenset(fields.items()))

    @staticmethod
    def _check_prerequisites(fields: Dict[str, Tuple[int, int]]) -> None:
        from repro.packet.headers import ETH_TYPE_IPV4, ETH_TYPE_IPV6

        for name in fields:
            prereq = _PREREQUISITES.get(name)
            if prereq is None:
                continue
            if prereq not in fields:
                raise MatchError(
                    "field %s requires %s to be set" % (name, prereq)
                )
            if prereq == "eth_type":
                eth_type = fields["eth_type"][0]
                if eth_type not in (ETH_TYPE_IPV4, ETH_TYPE_IPV6):
                    raise MatchError(
                        "field %s requires an IP eth_type, got %#x"
                        % (name, eth_type)
                    )

    # -- accessors -----------------------------------------------------------

    @property
    def fields(self) -> Dict[str, Tuple[int, int]]:
        """Constrained fields as ``{name: (value, mask)}`` (copy)."""
        return dict(self._fields)

    def get(self, name: str) -> Optional[Tuple[int, int]]:
        return self._fields.get(name)

    def constrains(self, name: str) -> bool:
        return name in self._fields

    def __iter__(self) -> Iterator[str]:
        return iter(self._fields)

    def __len__(self) -> int:
        return len(self._fields)

    @property
    def is_wildcard_all(self) -> bool:
        """True when the match accepts every packet."""
        return not self._fields

    # -- packet matching -------------------------------------------------------

    def matches(self, key: FlowKey) -> bool:
        """True when ``key`` falls inside this match's region."""
        for name, (value, mask) in self._fields.items():
            if (getattr(key, name) & mask) != value:
                return False
        return True

    # -- region algebra ---------------------------------------------------------

    def overlaps(self, other: "Match") -> bool:
        """True when some packet satisfies both matches.

        For each field constrained by both, the constraints must agree on
        the intersection of their masks; fields constrained by only one
        side never exclude overlap.
        """
        for name, (value_a, mask_a) in self._fields.items():
            other_constraint = other._fields.get(name)
            if other_constraint is None:
                continue
            value_b, mask_b = other_constraint
            common = mask_a & mask_b
            if (value_a & common) != (value_b & common):
                return False
        return True

    def covers(self, other: "Match") -> bool:
        """True when every packet matching ``other`` also matches self."""
        for name, (value_a, mask_a) in self._fields.items():
            other_constraint = other._fields.get(name)
            if other_constraint is None:
                return False  # other is wider on this field
            value_b, mask_b = other_constraint
            if (mask_a & mask_b) != mask_a:
                return False  # other's mask misses bits self pins
            if (value_b & mask_a) != value_a:
                return False
        return True

    def is_total_for_port(self, port: int) -> bool:
        """True when this match is exactly "all traffic from ``port``".

        This is the pattern the p-2-p link detector looks for: the only
        constraint is an exact ``in_port``.
        """
        if len(self._fields) != 1:
            return False
        constraint = self._fields.get("in_port")
        return constraint == (port, _full_mask(32))

    @property
    def in_port(self) -> Optional[int]:
        """The exact in_port constraint, if any."""
        constraint = self._fields.get("in_port")
        return constraint[0] if constraint else None

    # -- identity -------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Match):
            return NotImplemented
        return self._fields == other._fields

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        if not self._fields:
            return "Match(*)"
        parts = []
        for name in FIELD_WIDTHS:
            constraint = self._fields.get(name)
            if constraint is None:
                continue
            value, mask = constraint
            if mask == _full_mask(FIELD_WIDTHS[name]):
                parts.append("%s=%#x" % (name, value))
            else:
                parts.append("%s=%#x/%#x" % (name, value, mask))
        return "Match(%s)" % ", ".join(parts)
