"""ovs-ofctl flow syntax: parse and format rules as text.

The operators of the paper's prototype program it with ``ovs-ofctl
add-flow br0 "in_port=1,actions=output:2"``.  This module implements
that textual surface for the supported match fields and actions, in both
directions, so examples, tests and the appctl layer can speak the same
dialect as real deployments::

    parse_flow("priority=100,in_port=1,actions=output:2")
    parse_flow("tcp,tp_dst=80,actions=set_field:2->eth_dst,output:3")
    format_flow(match, actions, priority=100)

Supported match keys: ``in_port``, ``dl_src``, ``dl_dst``, ``dl_type``,
``dl_vlan``, ``nw_src``, ``nw_dst`` (both with ``/mask`` or ``/prefix``),
``nw_proto``, ``nw_tos``, ``tp_src``, ``tp_dst``, plus the protocol
shorthands ``ip``, ``arp``, ``tcp``, ``udp``, ``icmp``.
Supported actions: ``output:N`` / bare port number, ``drop``,
``controller``, ``set_field:V->F`` and ``mod_dl_dst``/``mod_dl_src``/
``mod_nw_src``/``mod_nw_dst``/``mod_tp_src``/``mod_tp_dst``.
"""

from typing import Dict, List, Optional, Sequence, Tuple

from repro.openflow.actions import (
    Action,
    ControllerAction,
    OutputAction,
    SetFieldAction,
)
from repro.openflow.match import FIELD_WIDTHS, Match, MatchError
from repro.packet.headers import (
    ETH_TYPE_ARP,
    ETH_TYPE_IPV4,
    IP_PROTO_ICMP,
    IP_PROTO_TCP,
    IP_PROTO_UDP,
    MacAddress,
    int_to_ipv4,
    ipv4_to_int,
)


class FlowSyntaxError(ValueError):
    """Raised on malformed flow text."""


# ovs-ofctl key -> our match field name.
_KEY_TO_FIELD = {
    "in_port": "in_port",
    "dl_src": "eth_src",
    "dl_dst": "eth_dst",
    "dl_type": "eth_type",
    "dl_vlan": "vlan_vid",
    "nw_src": "ip_src",
    "nw_dst": "ip_dst",
    "nw_proto": "ip_proto",
    "nw_tos": "ip_tos",
    "tp_src": "l4_src",
    "tp_dst": "l4_dst",
}
_FIELD_TO_KEY = {field: key for key, field in _KEY_TO_FIELD.items()}

_SHORTHANDS = {
    "ip": {"eth_type": ETH_TYPE_IPV4},
    "arp": {"eth_type": ETH_TYPE_ARP},
    "tcp": {"eth_type": ETH_TYPE_IPV4, "ip_proto": IP_PROTO_TCP},
    "udp": {"eth_type": ETH_TYPE_IPV4, "ip_proto": IP_PROTO_UDP},
    "icmp": {"eth_type": ETH_TYPE_IPV4, "ip_proto": IP_PROTO_ICMP},
}

_MOD_ACTIONS = {
    "mod_dl_src": "eth_src",
    "mod_dl_dst": "eth_dst",
    "mod_nw_src": "ip_src",
    "mod_nw_dst": "ip_dst",
    "mod_tp_src": "l4_src",
    "mod_tp_dst": "l4_dst",
}

_MAC_FIELDS = {"eth_src", "eth_dst"}
_IP_FIELDS = {"ip_src", "ip_dst"}


def _parse_value(field: str, text: str) -> int:
    text = text.strip()
    if field in _MAC_FIELDS and ":" in text:
        return MacAddress.from_string(text).value
    if field in _IP_FIELDS and "." in text:
        return ipv4_to_int(text)
    try:
        return int(text, 0)
    except ValueError:
        raise FlowSyntaxError(
            "cannot parse %r as a value for %s" % (text, field)
        ) from None


def _parse_masked(field: str, text: str):
    """Handle ``value/mask`` and ``a.b.c.d/prefix`` notations."""
    if "/" not in text:
        return _parse_value(field, text)
    value_text, mask_text = text.split("/", 1)
    value = _parse_value(field, value_text)
    if (field in _IP_FIELDS and "." not in mask_text
            and not mask_text.lower().startswith("0x")):
        prefix = int(mask_text)
        if not 0 <= prefix <= 32:
            raise FlowSyntaxError("bad prefix length %r" % mask_text)
        mask = ((1 << prefix) - 1) << (32 - prefix) if prefix else 0
    else:
        mask = _parse_value(field, mask_text)
    return (value & mask, mask)


def _split_top_level(text: str) -> List[str]:
    """Split a flow spec on commas, respecting nothing fancier (the
    supported grammar has no nested commas)."""
    return [part for part in (p.strip() for p in text.split(",")) if part]


def parse_actions(text: str) -> List[Action]:
    """Parse an ovs-ofctl action list (comma separated)."""
    actions: List[Action] = []
    for part in _split_top_level(text):
        lowered = part.lower()
        if lowered == "drop":
            if actions:
                raise FlowSyntaxError("drop cannot follow other actions")
            return []
        if lowered in ("controller", "controller:65535"):
            actions.append(ControllerAction())
            continue
        if lowered.startswith("output:"):
            actions.append(OutputAction(int(part.split(":", 1)[1], 0)))
            continue
        if lowered.startswith("goto_table:") or lowered.startswith(
            "resubmit:"
        ):
            from repro.openflow.actions import GotoTableAction

            actions.append(
                GotoTableAction(int(part.split(":", 1)[1], 0))
            )
            continue
        if lowered.startswith("set_field:"):
            body = part[len("set_field:"):]
            if "->" not in body:
                raise FlowSyntaxError("set_field needs value->field")
            value_text, key = body.rsplit("->", 1)
            field = _KEY_TO_FIELD.get(key.strip(), key.strip())
            if field not in FIELD_WIDTHS:
                raise FlowSyntaxError("unknown set_field target %r" % key)
            actions.append(
                SetFieldAction(field, _parse_value(field, value_text))
            )
            continue
        mod_field = _MOD_ACTIONS.get(lowered.split(":", 1)[0])
        if mod_field is not None and ":" in part:
            value_text = part.split(":", 1)[1]
            actions.append(
                SetFieldAction(mod_field,
                               _parse_value(mod_field, value_text))
            )
            continue
        if part.isdigit():
            actions.append(OutputAction(int(part)))
            continue
        raise FlowSyntaxError("unknown action %r" % part)
    return actions


def parse_flow(text: str) -> "Tuple[Match, List[Action], Dict[str, int]]":
    """Parse a full ovs-ofctl flow spec.

    Returns ``(match, actions, attributes)`` where attributes holds
    ``priority`` / ``idle_timeout`` / ``hard_timeout`` / ``cookie`` when
    present.
    """
    if "actions=" not in text:
        raise FlowSyntaxError("flow spec needs an actions= clause")
    match_part, actions_part = text.split("actions=", 1)
    actions = parse_actions(actions_part)

    constraints: Dict[str, object] = {}
    attributes: Dict[str, int] = {}
    for part in _split_top_level(match_part):
        if "=" not in part:
            shorthand = _SHORTHANDS.get(part.lower())
            if shorthand is None:
                raise FlowSyntaxError("unknown match token %r" % part)
            constraints.update(shorthand)
            continue
        key, value_text = part.split("=", 1)
        key = key.strip().lower()
        if key in ("priority", "idle_timeout", "hard_timeout", "cookie",
                   "table"):
            attributes[key] = int(value_text, 0)
            continue
        field = _KEY_TO_FIELD.get(key)
        if field is None:
            raise FlowSyntaxError("unknown match key %r" % key)
        constraints[field] = _parse_masked(field, value_text)
    try:
        match = Match(**constraints)
    except MatchError as error:
        raise FlowSyntaxError(str(error)) from None
    return match, actions, attributes


def format_value(field: str, value: int) -> str:
    if field in _MAC_FIELDS:
        return str(MacAddress(value))
    if field in _IP_FIELDS:
        return int_to_ipv4(value)
    if field == "eth_type":
        return "0x%04x" % value
    return str(value)


def format_match(match: Match) -> str:
    """Format a match in ovs-ofctl syntax (stable field order)."""
    parts = []
    for field in FIELD_WIDTHS:
        constraint = match.get(field)
        if constraint is None:
            continue
        value, mask = constraint
        key = _FIELD_TO_KEY[field]
        full = (1 << FIELD_WIDTHS[field]) - 1
        if mask == full:
            parts.append("%s=%s" % (key, format_value(field, value)))
        else:
            parts.append("%s=%s/%s" % (key, format_value(field, value),
                                       format_value(field, mask)))
    return ",".join(parts) if parts else "*"


def format_actions(actions: Sequence[Action]) -> str:
    if not actions:
        return "drop"
    from repro.openflow.actions import GotoTableAction

    parts = []
    for action in actions:
        if isinstance(action, GotoTableAction):
            parts.append("goto_table:%d" % action.table_id)
        elif isinstance(action, SetFieldAction):
            parts.append("set_field:%s->%s" % (
                format_value(action.field, action.value),
                _FIELD_TO_KEY[action.field],
            ))
        elif isinstance(action, OutputAction):
            if action.is_controller:
                parts.append("controller")
            else:
                parts.append("output:%d" % action.port)
        else:
            raise FlowSyntaxError("cannot format action %r" % action)
    return ",".join(parts)


def format_flow(match: Match, actions: Sequence[Action],
                priority: Optional[int] = None,
                counters: Optional[Tuple[int, int]] = None) -> str:
    """One dump-flows style line."""
    parts = []
    if counters is not None:
        parts.append("n_packets=%d, n_bytes=%d," % counters)
    if priority is not None:
        match_text = format_match(match)
        if match_text == "*":
            parts.append("priority=%d" % priority)
        else:
            parts.append("priority=%d,%s" % (priority, match_text))
    else:
        parts.append(format_match(match))
    parts.append("actions=%s" % format_actions(actions))
    return " ".join(parts)
