"""OpenFlow 1.3 binary encoding for the message subset.

Transparency is one of the paper's headline properties: an unmodified
controller must be able to talk to the modified switch.  Encoding
messages to real OpenFlow 1.3 bytes lets the test suite assert
transparency at the wire level — a stats reply for a bypassed port is
byte-for-byte a normal ``OFPT_MULTIPART_REPLY``.

Layout follows the OF1.3 spec for the implemented subset: the fixed
8-byte header, OXM TLV matches, apply-actions instructions, and the
multipart (stats) framing.
"""

import struct
from typing import List, Tuple

from repro.openflow.actions import (
    Action,
    OutputAction,
    SetFieldAction,
)
from repro.openflow.match import Match
from repro.openflow.messages import (
    BarrierReply,
    BarrierRequest,
    EchoReply,
    EchoRequest,
    ErrorMsg,
    FeaturesReply,
    FeaturesRequest,
    FlowMod,
    FlowModCommand,
    FlowRemoved,
    FlowRemovedReason,
    FlowStatsEntry,
    FlowStatsReply,
    FlowStatsRequest,
    Hello,
    OpenFlowMessage,
    PacketIn,
    PacketInReason,
    PacketOut,
    PortStatsEntry,
    PortStatsReply,
    PortMod,
    PortStatsRequest,
)

OFP_VERSION = 0x04
OFP_HEADER = struct.Struct("!BBHI")

# Message types (OF1.3 §A.1).
OFPT_HELLO = 0
OFPT_ERROR = 1
OFPT_ECHO_REQUEST = 2
OFPT_ECHO_REPLY = 3
OFPT_FEATURES_REQUEST = 5
OFPT_FEATURES_REPLY = 6
OFPT_PACKET_IN = 10
OFPT_FLOW_REMOVED = 11
OFPT_PACKET_OUT = 13
OFPT_FLOW_MOD = 14
OFPT_PORT_MOD = 16
OFPPC_PORT_DOWN = 1 << 0
OFPT_MULTIPART_REQUEST = 18
OFPT_MULTIPART_REPLY = 19
OFPT_BARRIER_REQUEST = 20
OFPT_BARRIER_REPLY = 21

OFPMP_FLOW = 1
OFPMP_PORT_STATS = 4

OFPP_ANY = 0xFFFFFFFF

# OXM: class 0x8000 (OPENFLOW_BASIC), field ids from OF1.3 §7.2.3.7.
OXM_CLASS = 0x8000
_OXM_BY_NAME = {
    "in_port": (0, 4),
    "eth_dst": (3, 6),
    "eth_src": (4, 6),
    "eth_type": (5, 2),
    "vlan_vid": (6, 2),
    "ip_tos": (8, 1),   # encoded as IP_DSCP
    "ip_proto": (10, 1),
    "ip_src": (11, 4),
    "ip_dst": (12, 4),
}
_L4_OXM = {  # (proto -> (src_field_id, dst_field_id))
    6: (13, 14),   # TCP_SRC / TCP_DST
    17: (15, 16),  # UDP_SRC / UDP_DST
}
_NAME_BY_OXM = {v[0]: (k, v[1]) for k, v in _OXM_BY_NAME.items()}
_NAME_BY_OXM[13] = ("l4_src", 2)
_NAME_BY_OXM[14] = ("l4_dst", 2)
_NAME_BY_OXM[15] = ("l4_src", 2)
_NAME_BY_OXM[16] = ("l4_dst", 2)


class WireError(ValueError):
    """Raised when bytes cannot be decoded as a supported message."""


def _pad_to8(length: int) -> int:
    return (length + 7) // 8 * 8


# ---------------------------------------------------------------------------
# OXM match
# ---------------------------------------------------------------------------

def encode_match(match: Match) -> bytes:
    """Encode an OXM match (ofp_match: type=1/OXM, length, fields, pad)."""
    fields = match.fields
    proto = fields.get("ip_proto", (None, None))[0]
    body = b""
    for name, (value, mask) in sorted(fields.items()):
        if name in ("l4_src", "l4_dst"):
            pair = _L4_OXM.get(proto, (13, 14))
            field_id = pair[0] if name == "l4_src" else pair[1]
            size = 2
        else:
            field_id, size = _OXM_BY_NAME[name]
        full_mask = (1 << (size * 8)) - 1
        has_mask = mask != full_mask and name not in ("vlan_vid",)
        header = (
            (OXM_CLASS << 16)
            | (field_id << 9)
            | (0x100 if has_mask else 0)
            | (size * 2 if has_mask else size)
        )
        body += struct.pack("!I", header) + value.to_bytes(size, "big")
        if has_mask:
            body += mask.to_bytes(size, "big")
    raw_length = 4 + len(body)
    padded = _pad_to8(raw_length)
    return (
        struct.pack("!HH", 1, raw_length)
        + body
        + b"\x00" * (padded - raw_length)
    )


def decode_match(data: bytes) -> Tuple[Match, int]:
    """Decode an OXM match; returns (match, bytes consumed incl. padding)."""
    if len(data) < 4:
        raise WireError("truncated ofp_match")
    match_type, raw_length = struct.unpack("!HH", data[:4])
    if match_type != 1:
        raise WireError("unsupported match type %d" % match_type)
    if len(data) < raw_length:
        raise WireError("truncated ofp_match body")
    offset = 4
    constraints = {}
    while offset < raw_length:
        (header,) = struct.unpack("!I", data[offset:offset + 4])
        offset += 4
        oxm_class = header >> 16
        field_id = (header >> 9) & 0x7F
        has_mask = bool(header & 0x100)
        payload_len = header & 0xFF
        if oxm_class != OXM_CLASS:
            raise WireError("unsupported OXM class %#x" % oxm_class)
        entry = _NAME_BY_OXM.get(field_id)
        if entry is None:
            raise WireError("unsupported OXM field %d" % field_id)
        name, size = entry
        if has_mask:
            if payload_len != size * 2:
                raise WireError("bad masked OXM length for %s" % name)
            value = int.from_bytes(data[offset:offset + size], "big")
            mask = int.from_bytes(data[offset + size:offset + 2 * size],
                                  "big")
            constraints[name] = (value, mask)
            offset += size * 2
        else:
            if payload_len != size:
                raise WireError("bad OXM length for %s" % name)
            value = int.from_bytes(data[offset:offset + size], "big")
            constraints[name] = value
            offset += size
    return Match(**constraints), _pad_to8(raw_length)


# ---------------------------------------------------------------------------
# Actions / instructions
# ---------------------------------------------------------------------------

OFPAT_OUTPUT = 0
OFPAT_SET_FIELD = 25
OFPIT_GOTO_TABLE = 1
OFPIT_APPLY_ACTIONS = 4


def encode_actions(actions) -> bytes:
    from repro.openflow.actions import GotoTableAction

    body = b""
    for action in actions:
        if isinstance(action, GotoTableAction):
            continue  # encoded as an instruction, not an action
        if isinstance(action, OutputAction):
            body += struct.pack(
                "!HHIH6x", OFPAT_OUTPUT, 16, action.port, 0xFFFF
            )
        elif isinstance(action, SetFieldAction):
            field_id, size = _OXM_BY_NAME.get(
                action.field, (13 if action.field == "l4_src" else 14, 2)
            )
            oxm = struct.pack(
                "!I", (OXM_CLASS << 16) | (field_id << 9) | size
            ) + action.value.to_bytes(size, "big")
            total = _pad_to8(4 + len(oxm))
            body += (
                struct.pack("!HH", OFPAT_SET_FIELD, total)
                + oxm
                + b"\x00" * (total - 4 - len(oxm))
            )
        else:
            raise WireError("cannot encode action %r" % action)
    return body


def decode_actions(data: bytes) -> List[Action]:
    actions: List[Action] = []
    offset = 0
    while offset < len(data):
        action_type, length = struct.unpack("!HH", data[offset:offset + 4])
        if length < 8 or offset + length > len(data):
            raise WireError("bad action length")
        if action_type == OFPAT_OUTPUT:
            (port,) = struct.unpack("!I", data[offset + 4:offset + 8])
            actions.append(OutputAction(port))
        elif action_type == OFPAT_SET_FIELD:
            (header,) = struct.unpack("!I", data[offset + 4:offset + 8])
            field_id = (header >> 9) & 0x7F
            size = header & 0xFF
            entry = _NAME_BY_OXM.get(field_id)
            if entry is None:
                raise WireError("unsupported set-field OXM %d" % field_id)
            value = int.from_bytes(
                data[offset + 8:offset + 8 + size], "big"
            )
            actions.append(SetFieldAction(entry[0], value))
        else:
            raise WireError("unsupported action type %d" % action_type)
        offset += length
    return actions


def _encode_instructions(actions) -> bytes:
    from repro.openflow.actions import goto_table_of

    if not actions:
        return b""
    blob = b""
    plain = [a for a in actions
             if type(a).__name__ != "GotoTableAction"]
    if plain:
        body = encode_actions(plain)
        blob += struct.pack("!HH4x", OFPIT_APPLY_ACTIONS,
                            8 + len(body)) + body
    goto = goto_table_of(actions)
    if goto is not None:
        blob += struct.pack("!HHB3x", OFPIT_GOTO_TABLE, 8, goto.table_id)
    return blob


def _decode_instructions(data: bytes) -> List[Action]:
    from repro.openflow.actions import GotoTableAction

    actions: List[Action] = []
    goto: List[Action] = []
    offset = 0
    while offset < len(data):
        instr_type, length = struct.unpack("!HH", data[offset:offset + 4])
        if length < 8 or offset + length > len(data):
            raise WireError("bad instruction length")
        if instr_type == OFPIT_APPLY_ACTIONS:
            actions.extend(decode_actions(data[offset + 8:offset + length]))
        elif instr_type == OFPIT_GOTO_TABLE:
            (table_id,) = struct.unpack("!B", data[offset + 4:offset + 5])
            goto = [GotoTableAction(table_id)]
        offset += length
    return actions + goto


# ---------------------------------------------------------------------------
# Top-level encode
# ---------------------------------------------------------------------------

def _frame(msg_type: int, xid: int, body: bytes) -> bytes:
    return OFP_HEADER.pack(OFP_VERSION, msg_type, 8 + len(body), xid) + body


def encode(message: OpenFlowMessage) -> bytes:
    """Serialize ``message`` to OpenFlow 1.3 bytes."""
    if isinstance(message, Hello):
        return _frame(OFPT_HELLO, message.xid, b"")
    if isinstance(message, EchoRequest):
        return _frame(OFPT_ECHO_REQUEST, message.xid, message.data)
    if isinstance(message, EchoReply):
        return _frame(OFPT_ECHO_REPLY, message.xid, message.data)
    if isinstance(message, FeaturesRequest):
        return _frame(OFPT_FEATURES_REQUEST, message.xid, b"")
    if isinstance(message, FeaturesReply):
        body = struct.pack(
            "!QIBB2xII",
            message.datapath_id,
            message.n_buffers,
            message.n_tables,
            0,
            message.capabilities,
            0,
        )
        return _frame(OFPT_FEATURES_REPLY, message.xid, body)
    if isinstance(message, FlowMod):
        body = struct.pack(
            "!QQBBHHHIIIH2x",
            message.cookie,
            0,  # cookie mask
            message.table_id,
            int(message.command),
            int(message.idle_timeout),
            int(message.hard_timeout),
            message.priority,
            0xFFFFFFFF,  # buffer id: none
            message.out_port if message.out_port is not None else OFPP_ANY,
            OFPP_ANY,  # out group
            0x0002 if message.check_overlap else 0,  # flags
        )
        body += encode_match(message.match)
        body += _encode_instructions(message.actions)
        return _frame(OFPT_FLOW_MOD, message.xid, body)
    if isinstance(message, FlowRemoved):
        duration_sec = int(message.duration_sec)
        duration_nsec = int((message.duration_sec - duration_sec) * 1e9)
        body = struct.pack(
            "!QHBBIIHHQQ",
            message.cookie,
            message.priority,
            int(message.reason),
            0,
            duration_sec,
            duration_nsec,
            0,
            0,
            message.packet_count,
            message.byte_count,
        )
        body += encode_match(message.match)
        return _frame(OFPT_FLOW_REMOVED, message.xid, body)
    if isinstance(message, PacketIn):
        # buffer_id, total_len, reason, table_id, cookie, match, pad, data
        body = struct.pack(
            "!IHBBQ",
            0xFFFFFFFF,
            len(message.data),
            int(message.reason),
            0,
            0,
        )
        body += encode_match(Match(in_port=message.in_port))
        body += b"\x00\x00" + message.data
        return _frame(OFPT_PACKET_IN, message.xid, body)
    if isinstance(message, PacketOut):
        actions = encode_actions(message.actions)
        body = struct.pack(
            "!IIH6x", 0xFFFFFFFF, message.in_port, len(actions)
        )
        body += actions + message.data
        return _frame(OFPT_PACKET_OUT, message.xid, body)
    if isinstance(message, FlowStatsRequest):
        inner = struct.pack(
            "!B3xII4xQQ",
            0,
            OFPP_ANY if message.out_port is None else message.out_port,
            OFPP_ANY,
            0,
            0,
        ) + encode_match(message.match)
        body = struct.pack("!HH4x", OFPMP_FLOW, 0) + inner
        return _frame(OFPT_MULTIPART_REQUEST, message.xid, body)
    if isinstance(message, FlowStatsReply):
        inner = b""
        for stat in message.stats:
            duration_sec = int(stat.duration_sec)
            duration_nsec = int((stat.duration_sec - duration_sec) * 1e9)
            match_blob = encode_match(stat.match)
            instr_blob = _encode_instructions(stat.actions)
            length = 48 + len(match_blob) + len(instr_blob)
            inner += struct.pack(
                "!HBxIIHHHH4xQQQ",
                length,
                0,
                duration_sec,
                duration_nsec,
                stat.priority,
                0,
                0,
                0,
                stat.cookie,
                stat.packet_count,
                stat.byte_count,
            ) + match_blob + instr_blob
        body = struct.pack("!HH4x", OFPMP_FLOW, 0) + inner
        return _frame(OFPT_MULTIPART_REPLY, message.xid, body)
    if isinstance(message, PortStatsRequest):
        port = OFPP_ANY if message.port_no is None else message.port_no
        body = struct.pack("!HH4x", OFPMP_PORT_STATS, 0)
        body += struct.pack("!I4x", port)
        return _frame(OFPT_MULTIPART_REQUEST, message.xid, body)
    if isinstance(message, PortStatsReply):
        inner = b""
        for stat in message.stats:
            inner += struct.pack(
                "!I4xQQQQQQQQQQQQII",
                stat.port_no,
                stat.rx_packets,
                stat.tx_packets,
                stat.rx_bytes,
                stat.tx_bytes,
                stat.rx_dropped,
                stat.tx_dropped,
                0, 0, 0, 0, 0, 0,
                0, 0,
            )
        body = struct.pack("!HH4x", OFPMP_PORT_STATS, 0) + inner
        return _frame(OFPT_MULTIPART_REPLY, message.xid, body)
    if isinstance(message, PortMod):
        config = OFPPC_PORT_DOWN if message.down else 0
        body = struct.pack(
            "!I4x6s2xIII4x",
            message.port_no,
            b"\x00" * 6,           # hw_addr (unused in this model)
            config,
            OFPPC_PORT_DOWN,       # mask: we only manage the down bit
            0,                     # advertise
        )
        return _frame(OFPT_PORT_MOD, message.xid, body)
    if isinstance(message, BarrierRequest):
        return _frame(OFPT_BARRIER_REQUEST, message.xid, b"")
    if isinstance(message, BarrierReply):
        return _frame(OFPT_BARRIER_REPLY, message.xid, b"")
    if isinstance(message, ErrorMsg):
        body = struct.pack("!HH", message.error_type, message.code)
        return _frame(OFPT_ERROR, message.xid, body + message.data)
    raise WireError("cannot encode %r" % type(message).__name__)


# ---------------------------------------------------------------------------
# Top-level decode
# ---------------------------------------------------------------------------

def decode(data: bytes) -> OpenFlowMessage:
    """Parse one OpenFlow message from ``data`` (exact frame).

    Malformed input of any kind raises :class:`WireError` — a switch
    must survive a misbehaving controller connection.
    """
    try:
        return _decode_checked(data)
    except WireError:
        raise
    except Exception as error:  # struct.error, bad enum values, ...
        raise WireError("malformed frame: %s" % error) from error


def _decode_checked(data: bytes) -> OpenFlowMessage:
    if len(data) < 8:
        raise WireError("truncated OpenFlow header")
    version, msg_type, length, xid = OFP_HEADER.unpack(data[:8])
    if version != OFP_VERSION:
        raise WireError("unsupported OpenFlow version %d" % version)
    if length != len(data):
        raise WireError(
            "frame length mismatch: header says %d, got %d"
            % (length, len(data))
        )
    body = data[8:]
    if msg_type == OFPT_HELLO:
        return Hello(xid=xid)
    if msg_type == OFPT_ECHO_REQUEST:
        return EchoRequest(xid=xid, data=body)
    if msg_type == OFPT_ECHO_REPLY:
        return EchoReply(xid=xid, data=body)
    if msg_type == OFPT_FEATURES_REQUEST:
        return FeaturesRequest(xid=xid)
    if msg_type == OFPT_FEATURES_REPLY:
        datapath_id, n_buffers, n_tables, _aux, caps, _res = struct.unpack(
            "!QIBB2xII", body[:24]
        )
        return FeaturesReply(xid=xid, datapath_id=datapath_id,
                             n_buffers=n_buffers, n_tables=n_tables,
                             capabilities=caps)
    if msg_type == OFPT_FLOW_MOD:
        (cookie, _cookie_mask, table_id, command, idle, hard, priority,
         _buffer, out_port, _out_group, flags) = struct.unpack(
            "!QQBBHHHIIIH", body[:38]
        )
        offset = 40  # includes 2 pad bytes
        match, consumed = decode_match(body[offset:])
        actions = _decode_instructions(body[offset + consumed:])
        return FlowMod(
            xid=xid,
            command=FlowModCommand(command),
            match=match,
            actions=actions,
            priority=priority,
            cookie=cookie,
            idle_timeout=idle,
            hard_timeout=hard,
            table_id=table_id,
            out_port=None if out_port == OFPP_ANY else out_port,
            check_overlap=bool(flags & 0x0002),
        )
    if msg_type == OFPT_FLOW_REMOVED:
        (cookie, priority, reason, _table, dsec, dnsec, _idle, _hard,
         packets, byte_count) = struct.unpack("!QHBBIIHHQQ", body[:40])
        match, _consumed = decode_match(body[40:])
        return FlowRemoved(
            xid=xid, match=match, priority=priority, cookie=cookie,
            reason=FlowRemovedReason(reason),
            duration_sec=dsec + dnsec / 1e9,
            packet_count=packets, byte_count=byte_count,
        )
    if msg_type == OFPT_PACKET_IN:
        _buffer, _total, reason, _table, _cookie = struct.unpack(
            "!IHBBQ", body[:16]
        )
        match, consumed = decode_match(body[16:])
        data_part = body[16 + consumed + 2:]
        in_port = match.in_port or 0
        return PacketIn(xid=xid, in_port=in_port,
                        reason=PacketInReason(reason), data=data_part)
    if msg_type == OFPT_PACKET_OUT:
        _buffer, in_port, actions_len = struct.unpack("!IIH", body[:10])
        actions = decode_actions(body[16:16 + actions_len])
        return PacketOut(xid=xid, in_port=in_port, actions=actions,
                         data=body[16 + actions_len:])
    if msg_type == OFPT_MULTIPART_REQUEST:
        part_type, _flags = struct.unpack("!HH", body[:4])
        inner = body[8:]
        if part_type == OFPMP_FLOW:
            _table, out_port, _group, _cookie, _mask = struct.unpack(
                "!B3xII4xQQ", inner[:32]
            )
            match, _consumed = decode_match(inner[32:])
            return FlowStatsRequest(
                xid=xid, match=match,
                out_port=None if out_port == OFPP_ANY else out_port,
            )
        if part_type == OFPMP_PORT_STATS:
            (port,) = struct.unpack("!I", inner[:4])
            return PortStatsRequest(
                xid=xid, port_no=None if port == OFPP_ANY else port
            )
        raise WireError("unsupported multipart request %d" % part_type)
    if msg_type == OFPT_MULTIPART_REPLY:
        part_type, _flags = struct.unpack("!HH", body[:4])
        inner = body[8:]
        if part_type == OFPMP_FLOW:
            stats = []
            offset = 0
            while offset < len(inner):
                (length, _table, dsec, dnsec, priority, _idle, _hard,
                 _flags, cookie, packets, byte_count) = struct.unpack(
                    "!HBxIIHHHH4xQQQ", inner[offset:offset + 48]
                )
                match, consumed = decode_match(inner[offset + 48:])
                actions = _decode_instructions(
                    inner[offset + 48 + consumed:offset + length]
                )
                stats.append(FlowStatsEntry(
                    match=match, priority=priority, cookie=cookie,
                    packet_count=packets, byte_count=byte_count,
                    duration_sec=dsec + dnsec / 1e9, actions=actions,
                ))
                offset += length
            return FlowStatsReply(xid=xid, stats=stats)
        if part_type == OFPMP_PORT_STATS:
            stats = []
            entry_size = 8 + 12 * 8 + 8
            offset = 0
            while offset < len(inner):
                values = struct.unpack(
                    "!I4xQQQQQQQQQQQQII", inner[offset:offset + entry_size]
                )
                stats.append(PortStatsEntry(
                    port_no=values[0],
                    rx_packets=values[1], tx_packets=values[2],
                    rx_bytes=values[3], tx_bytes=values[4],
                    rx_dropped=values[5], tx_dropped=values[6],
                ))
                offset += entry_size
            return PortStatsReply(xid=xid, stats=stats)
        raise WireError("unsupported multipart reply %d" % part_type)
    if msg_type == OFPT_PORT_MOD:
        port_no, _hw, config, mask, _adv = struct.unpack(
            "!I4x6s2xIII4x", body[:32]
        )
        return PortMod(xid=xid, port_no=port_no,
                       down=bool(config & mask & OFPPC_PORT_DOWN))
    if msg_type == OFPT_BARRIER_REQUEST:
        return BarrierRequest(xid=xid)
    if msg_type == OFPT_BARRIER_REPLY:
        return BarrierReply(xid=xid)
    if msg_type == OFPT_ERROR:
        error_type, code = struct.unpack("!HH", body[:4])
        return ErrorMsg(xid=xid, error_type=error_type, code=code,
                        data=body[4:])
    raise WireError("unsupported message type %d" % msg_type)
