"""The OpenFlow controller side: connection channel + a simple controller.

The channel passes every message through the binary codec by default, so
an end-to-end test that drives the controller is also a wire-format
conformance test — an unmodified controller speaking OF1.3 bytes cannot
tell our modified vSwitch from a vanilla one (the paper's transparency
property).
"""

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence

from repro.faults import CONTROLLER_CONN, FaultMode
from repro.openflow import wire
from repro.openflow.actions import Action
from repro.openflow.match import Match
from repro.openflow.messages import (
    BarrierRequest,
    EchoRequest,
    FeaturesReply,
    FeaturesRequest,
    FlowMod,
    FlowModCommand,
    FlowRemoved,
    FlowStatsReply,
    FlowStatsRequest,
    Hello,
    OpenFlowMessage,
    PacketIn,
    PacketOut,
    PortStatsReply,
    PortStatsRequest,
)


class ControllerConnection:
    """A bidirectional OpenFlow channel (controller <-> switch).

    With ``encode_on_wire`` (default) every message is serialized to
    OF1.3 bytes and re-parsed on delivery; disable only in micro-
    benchmarks where codec cost would dominate.

    Both direction queues are bounded (``max_pending``): a dead peer
    cannot leak memory — the newest message is dropped and counted
    instead.  The channel also models connectivity: ``disconnect()``
    (or an injected ``controller.conn`` ERROR/CRASH fault) marks it
    down, sends while down are dropped and counted, and ``reconnect()``
    restores it — but only while ``peer_available`` is True, which is
    how outage scenarios keep the controller unreachable for a window.
    """

    def __init__(self, encode_on_wire: bool = True,
                 max_pending: int = 4096, faults=None) -> None:
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.encode_on_wire = encode_on_wire
        self.max_pending = max_pending
        self.faults = faults
        self.connected = True
        self.peer_available = True
        self._to_switch: Deque[OpenFlowMessage] = deque()
        self._to_controller: Deque[OpenFlowMessage] = deque()
        self.bytes_to_switch = 0
        self.bytes_to_controller = 0
        self.dropped_to_switch = 0
        self.dropped_to_controller = 0
        self.dropped_disconnected = 0
        self.faults_dropped = 0
        self.disconnects = 0
        self.reconnects = 0

    def _transfer(self, message: OpenFlowMessage) -> "tuple[OpenFlowMessage, int]":
        if not self.encode_on_wire:
            return message, 0
        frame = wire.encode(message)
        return wire.decode(frame), len(frame)

    # -- connectivity ------------------------------------------------------

    def disconnect(self) -> None:
        """Drop the channel (controller crash / TCP reset)."""
        if self.connected:
            self.connected = False
            self.disconnects += 1

    def reconnect(self) -> bool:
        """Attempt to re-establish; fails while the peer is unreachable."""
        if self.connected:
            return True
        if not self.peer_available:
            return False
        self.connected = True
        self.reconnects += 1
        return True

    def _gate(self) -> bool:
        """Common send-side gating: connectivity + injected faults.
        Returns True if the message may proceed."""
        if not self.connected:
            self.dropped_disconnected += 1
            return False
        if self.faults is not None and self.faults.has_specs(
                CONTROLLER_CONN):
            action = self.faults.fire(CONTROLLER_CONN)
            if action is not None:
                if action.mode in (FaultMode.ERROR, FaultMode.CRASH):
                    self.disconnect()
                self.faults_dropped += 1
                return False
        return True

    # -- controller side ---------------------------------------------------

    def controller_send(self, message: OpenFlowMessage) -> None:
        if not self._gate():
            return
        delivered, size = self._transfer(message)
        self.bytes_to_switch += size
        if len(self._to_switch) >= self.max_pending:
            self.dropped_to_switch += 1
            return
        self._to_switch.append(delivered)

    def controller_recv(self) -> Optional[OpenFlowMessage]:
        if not self._to_controller:
            return None
        return self._to_controller.popleft()

    # -- switch side ----------------------------------------------------------

    def switch_send(self, message: OpenFlowMessage) -> None:
        if not self._gate():
            return
        delivered, size = self._transfer(message)
        self.bytes_to_controller += size
        if len(self._to_controller) >= self.max_pending:
            self.dropped_to_controller += 1
            return
        self._to_controller.append(delivered)

    def switch_recv(self) -> Optional[OpenFlowMessage]:
        if not self._to_switch:
            return None
        return self._to_switch.popleft()

    @property
    def pending_for_switch(self) -> int:
        return len(self._to_switch)

    @property
    def pending_for_controller(self) -> int:
        return len(self._to_controller)

    @property
    def dropped_total(self) -> int:
        return (self.dropped_to_switch + self.dropped_to_controller
                + self.dropped_disconnected + self.faults_dropped)


class SimpleController:
    """A minimal controller: installs steering rules, gathers stats.

    It never learns about bypass channels — it speaks plain OpenFlow.
    Callbacks:

    * ``on_packet_in(message)`` — table misses / controller actions;
    * ``on_flow_removed(message)`` — expirations and deletions.
    """

    def __init__(self, connection: ControllerConnection,
                 name: str = "controller") -> None:
        self.connection = connection
        self.name = name
        self.features: Optional[FeaturesReply] = None
        self.flow_stats: List[FlowStatsReply] = []
        self.port_stats: List[PortStatsReply] = []
        self.packet_ins: List[PacketIn] = []
        self.flow_removed: List[FlowRemoved] = []
        self.errors: List[OpenFlowMessage] = []
        self.on_packet_in: Optional[Callable[[PacketIn], None]] = None
        self.on_flow_removed: Optional[Callable[[FlowRemoved], None]] = None
        self._pending_replies: Dict[int, str] = {}

    # -- handshake ------------------------------------------------------------

    def handshake(self) -> None:
        """Send HELLO + FEATURES_REQUEST (switch replies are polled)."""
        self.connection.controller_send(Hello())
        self.connection.controller_send(FeaturesRequest())

    # -- programming ------------------------------------------------------------

    def install_flow(
        self,
        match: Match,
        actions: Sequence[Action],
        priority: int = 0x8000,
        idle_timeout: int = 0,
        hard_timeout: int = 0,
        cookie: int = 0,
    ) -> FlowMod:
        """Send an OFPFC_ADD flowmod; returns the message for reference."""
        flowmod = FlowMod(
            command=FlowModCommand.ADD,
            match=match,
            actions=list(actions),
            priority=priority,
            idle_timeout=idle_timeout,
            hard_timeout=hard_timeout,
            cookie=cookie,
        )
        self.connection.controller_send(flowmod)
        return flowmod

    def delete_flow(self, match: Match, *, strict: bool = False,
                    priority: int = 0x8000,
                    out_port: Optional[int] = None) -> FlowMod:
        flowmod = FlowMod(
            command=(FlowModCommand.DELETE_STRICT if strict
                     else FlowModCommand.DELETE),
            match=match,
            priority=priority,
            out_port=out_port,
        )
        self.connection.controller_send(flowmod)
        return flowmod

    def modify_flow(self, match: Match, actions: Sequence[Action], *,
                    strict: bool = False,
                    priority: int = 0x8000) -> FlowMod:
        flowmod = FlowMod(
            command=(FlowModCommand.MODIFY_STRICT if strict
                     else FlowModCommand.MODIFY),
            match=match,
            actions=list(actions),
            priority=priority,
        )
        self.connection.controller_send(flowmod)
        return flowmod

    def packet_out(self, data: bytes, actions: Sequence[Action]) -> None:
        self.connection.controller_send(
            PacketOut(actions=list(actions), data=data)
        )

    def barrier(self) -> None:
        self.connection.controller_send(BarrierRequest())

    def echo(self, data: bytes = b"ping") -> None:
        self.connection.controller_send(EchoRequest(data=data))

    # -- statistics ----------------------------------------------------------------

    def request_flow_stats(self, match: Optional[Match] = None) -> int:
        request = FlowStatsRequest(match=match or Match())
        self.connection.controller_send(request)
        return request.xid

    def request_port_stats(self, port_no: Optional[int] = None) -> int:
        request = PortStatsRequest(port_no=port_no)
        self.connection.controller_send(request)
        return request.xid

    # -- message pump -----------------------------------------------------------------

    def poll(self) -> int:
        """Drain replies/asynchronous messages; returns messages handled."""
        handled = 0
        while True:
            message = self.connection.controller_recv()
            if message is None:
                return handled
            handled += 1
            if isinstance(message, FeaturesReply):
                self.features = message
            elif isinstance(message, FlowStatsReply):
                self.flow_stats.append(message)
            elif isinstance(message, PortStatsReply):
                self.port_stats.append(message)
            elif isinstance(message, PacketIn):
                self.packet_ins.append(message)
                if self.on_packet_in is not None:
                    self.on_packet_in(message)
            elif isinstance(message, FlowRemoved):
                self.flow_removed.append(message)
                if self.on_flow_removed is not None:
                    self.on_flow_removed(message)
            elif type(message).__name__ == "ErrorMsg":
                self.errors.append(message)
            # Hello/EchoReply/BarrierReply need no bookkeeping.

    @property
    def latest_flow_stats(self) -> Optional[FlowStatsReply]:
        return self.flow_stats[-1] if self.flow_stats else None

    @property
    def latest_port_stats(self) -> Optional[PortStatsReply]:
        return self.port_stats[-1] if self.port_stats else None
