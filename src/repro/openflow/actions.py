"""OpenFlow actions.

Only the actions the paper's steering rules need: output to a port,
punt to the controller, and header rewrites (SetField, used by the
negative tests — a rule that rewrites headers is *not* eligible for a
p-2-p bypass even if it outputs to a single port, because the vSwitch
performs the rewrite).
"""

from typing import List, Sequence

PORT_CONTROLLER = 0xFFFFFFFD  # OFPP_CONTROLLER
PORT_FLOOD = 0xFFFFFFFB       # OFPP_FLOOD


class Action:
    """Base class; concrete actions are small value objects."""

    __slots__ = ()

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self):
        return ()


class OutputAction(Action):
    """Forward the packet to ``port``."""

    __slots__ = ("port",)

    def __init__(self, port: int) -> None:
        if port < 0:
            raise ValueError("invalid output port %d" % port)
        self.port = port

    def _key(self):
        return (self.port,)

    @property
    def is_controller(self) -> bool:
        return self.port == PORT_CONTROLLER

    def __repr__(self) -> str:
        if self.is_controller:
            return "output:CONTROLLER"
        return "output:%d" % self.port


class ControllerAction(OutputAction):
    """Punt to the controller (sugar for output:CONTROLLER)."""

    __slots__ = ()

    def __init__(self, max_len: int = 128) -> None:
        super().__init__(PORT_CONTROLLER)
        # max_len kept implicit; PacketIn always carries the whole frame.

    def __repr__(self) -> str:
        return "controller"


class GotoTableAction(Action):
    """Continue pipeline processing in a later table (OF1.3 goto_table).

    Modelled as a terminal pseudo-action: it must be the last entry in
    an action list and cannot be combined with SetField (header rewrites
    would invalidate the lookup key for the next table — a deliberate
    subset restriction, enforced by the bridge).
    """

    __slots__ = ("table_id",)

    def __init__(self, table_id: int) -> None:
        if not 0 <= table_id <= 254:
            raise ValueError("invalid goto table id %d" % table_id)
        self.table_id = table_id

    def _key(self):
        return (self.table_id,)

    def __repr__(self) -> str:
        return "goto_table:%d" % self.table_id


def goto_table_of(actions: Sequence[Action]):
    """The GotoTableAction in ``actions``, or None."""
    for action in actions:
        if isinstance(action, GotoTableAction):
            return action
    return None


class SetFieldAction(Action):
    """Rewrite one match-capable field before subsequent actions."""

    __slots__ = ("field", "value")

    def __init__(self, field: str, value: int) -> None:
        from repro.openflow.match import FIELD_WIDTHS, MatchError

        if field not in FIELD_WIDTHS:
            raise MatchError("unknown settable field %r" % field)
        self.field = field
        self.value = value

    def _key(self):
        return (self.field, self.value)

    def __repr__(self) -> str:
        return "set_field:%s=%#x" % (self.field, self.value)


def actions_equal(first: Sequence[Action], second: Sequence[Action]) -> bool:
    """Order-sensitive action-list equality (OpenFlow lists are ordered)."""
    return len(first) == len(second) and all(
        a == b for a, b in zip(first, second)
    )


def output_ports(actions: Sequence[Action]) -> List[int]:
    """All ports the action list outputs to (controller port included)."""
    return [
        action.port for action in actions if isinstance(action, OutputAction)
    ]


def is_pure_single_output(actions: Sequence[Action]) -> bool:
    """True when the list is exactly one plain output to a real port.

    This is the action shape required for p-2-p bypass eligibility:
    no header rewrites, no controller copy, no multicast.
    """
    if len(actions) != 1:
        return False
    action = actions[0]
    return (
        isinstance(action, OutputAction)
        and not action.is_controller
        and action.port != PORT_FLOOD
    )
