"""Orchestration: the NFV node, service graphs and their deployment.

:class:`NfvNode` wires a complete host (vSwitch + hypervisor + compute
agent + transparent highway); :class:`ServiceGraph` describes VNFs and
the links between them (point-to-point or classified); the
:class:`Orchestrator` turns a graph into VMs, dpdkr ports and OpenFlow
steering rules — after which the p-2-p detector transparently upgrades
every eligible link to a bypass channel.
"""

from repro.orchestration.graph import (
    Endpoint,
    GraphLink,
    ServiceGraph,
    VnfSpec,
)
from repro.orchestration.nffg import NffgError, dump_nffg, load_nffg
from repro.orchestration.node import NfvNode, VmHandle
from repro.orchestration.orchestrator import Deployment, Orchestrator
from repro.orchestration.repair import (
    ChainRepairer,
    DEFAULT_REPAIR_POLICY,
    NfRecord,
    RepairPolicy,
)
from repro.orchestration.validation import (
    InvariantViolation,
    verify_host_invariants,
)

__all__ = [
    "ChainRepairer",
    "DEFAULT_REPAIR_POLICY",
    "Deployment",
    "Endpoint",
    "GraphLink",
    "NfRecord",
    "NffgError",
    "NfvNode",
    "Orchestrator",
    "RepairPolicy",
    "ServiceGraph",
    "VmHandle",
    "VnfSpec",
    "InvariantViolation",
    "dump_nffg",
    "load_nffg",
    "verify_host_invariants",
]
