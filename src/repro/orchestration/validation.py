"""Host invariant checker: one call to validate a node's global state.

Useful after any experiment or chaotic test sequence: it cross-checks
the detector, the bypass manager, the guest PMDs, the memzone registry
and the port flags against each other and raises
:class:`InvariantViolation` with a precise message on the first
inconsistency.  The stateful fuzz suite enforces the same properties
step by step; this is the packaged, user-callable version.
"""

from typing import List

from repro.core.bypass import LinkState
from repro.vswitch.ports import DpdkrOvsPort


class InvariantViolation(AssertionError):
    """A cross-component consistency check failed."""


def verify_host_invariants(node) -> List[str]:
    """Validate ``node`` (an :class:`~repro.orchestration.node.NfvNode`).

    Returns the list of checks performed (for reporting); raises
    :class:`InvariantViolation` on the first failure.
    """
    checks: List[str] = []

    def ensure(condition: bool, message: str) -> None:
        if not condition:
            raise InvariantViolation(message)

    manager = node.manager
    if manager is None:
        checks.append("highway disabled: nothing to validate")
        return checks
    detector = manager.detector
    datapath = node.switch.datapath

    # 1. Every managed link is a currently-detected link, and healthy.
    for src_ofport, bypass_link in manager.active_links.items():
        ensure(
            bypass_link.state in (LinkState.PENDING,
                                  LinkState.ESTABLISHING,
                                  LinkState.ACTIVE,
                                  LinkState.TEARING_DOWN),
            "link %s in terminal state yet still tracked"
            % bypass_link.zone_name,
        )
        if bypass_link.state == LinkState.ACTIVE \
                and not bypass_link.revoked:
            ensure(
                src_ofport in detector.links,
                "active bypass %s has no detected p2p link"
                % bypass_link.zone_name,
            )
    checks.append("manager links consistent with detector")

    # 2. Guest PMD channel state matches the managed links.
    for handle in node.vms.values():
        if not handle.vm.running:
            continue
        for port_name, pmd in handle.pmds.items():
            ofport = node.ofport(port_name)
            expected_tx = any(
                link.link.src_ofport == ofport
                and link.state in (LinkState.ESTABLISHING,
                                   LinkState.ACTIVE)
                and (link.setup_request is None
                     or (link.setup_request.completed
                         and link.setup_request.error is None))
                for link in manager.active_links.values()
            )
            if expected_tx:
                ensure(pmd.bypass_tx_active,
                       "PMD %s should be on a bypass TX" % port_name)
            expected_rx = sum(
                1 for link in manager.active_links.values()
                if link.link.dst_ofport == ofport
                and link.state == LinkState.ACTIVE
            )
            ensure(
                len(pmd.bypass_rx_rings) >= expected_rx,
                "PMD %s polls %d bypass rings, expected >= %d"
                % (port_name, len(pmd.bypass_rx_rings), expected_rx),
            )
    checks.append("guest PMD channel state consistent")

    # 3. Memzone accounting: every bypass zone belongs to a live link;
    #    every mapping points at a live VM.
    live_vms = {name for name, handle in node.vms.items()
                if handle.vm.running}
    active_zones = {link.zone_name
                    for link in manager.active_links.values()}
    for zone_name in list(node.registry._zones):
        zone = node.registry.lookup(zone_name)
        for vm_name in zone.mapped_by:
            ensure(vm_name in live_vms,
                   "zone %s mapped into dead VM %s"
                   % (zone_name, vm_name))
        if zone_name.startswith("bypass."):
            ensure(zone_name in active_zones,
                   "orphan bypass zone %s" % zone_name)
    checks.append("memzone registry clean")

    # 4. Port bypass flags mirror ACTIVE links.
    involved = set()
    for link in manager.active_links.values():
        if link.state == LinkState.ACTIVE:
            involved.add(link.link.src_ofport)
            involved.add(link.link.dst_ofport)
    for ofport, port in datapath.ports.items():
        if isinstance(port, DpdkrOvsPort):
            ensure(port.bypass_active == (ofport in involved),
                   "port %s bypass flag out of sync" % port.name)
    checks.append("port flags consistent")

    # 5. Historic links are terminal (or quarantined, waiting for their
    #    re-attempt) and never lose a stats block that carried traffic.
    for link in manager.history:
        if link not in manager.active_links.values():
            ensure(link.state in (LinkState.REMOVED,
                                  LinkState.QUARANTINED),
                   "historic link %s not terminal" % link.zone_name)
        if link.stats is not None and link.stats.tx_packets > 0:
            ensure(link.stats in manager.stats_blocks,
                   "stats block of %s lost" % link.zone_name)
    checks.append("history terminal, stats retained")

    return checks
