"""Chain self-healing: detect dead NFs, re-create them, re-steer traffic.

The bypass manager's crash handling (emergency teardown, ledger
reclamation, ``peer_crashed`` quarantine) keeps the *switch* consistent
when a guest dies; nothing yet puts the *service* back together.  The
:class:`ChainRepairer` is that supervisor.  It runs on a housekeeping
:class:`~repro.sim.pollloop.PollLoop` and, for every VNF of a deployed
service graph:

* **detects** death — the VM vanished from the hypervisor.  Only
  *crashes* are repaired; a graceful destroy is an operator decision
  the repairer must not fight.
* **repairs** — re-creates the VM on the same dpdkr ports (the port
  zones survive the crash, so the replacement PMD drains whatever
  backlog accumulated while the NF was down), rebuilds the app from the
  graph's ``app_factory``, and replays the NF's steering flows
  (delete + re-install: precise EMC invalidation plus fresh p-2-p
  detection, which re-establishes the bypass).  Restarts are bounded
  with exponential backoff.
* **demotes** — an NF that exhausts its restart budget is removed from
  the chain: its steering rules are withdrawn and *bridging* rules are
  installed that steer each inbound link directly to the dead hop's
  outbound neighbour, so the (degraded) chain keeps forwarding.
  Packets already queued toward the dead hop are flushed and counted.

All decisions run synchronously inside one poll iteration; the repairer
never re-enters ``env.run`` (orchestrator calls use ``settle=False``).
"""

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.dpdk.dpdkr import dpdkr_zone_name
from repro.orchestration.graph import Endpoint, GraphLink
from repro.orchestration.orchestrator import Deployment, Orchestrator
from repro.sim.pollloop import PollLoop


@dataclass(frozen=True)
class RepairPolicy:
    """Restart budget and pacing of the chain supervisor."""

    poll_interval: float = 0.002   # seconds between health passes
    max_restarts: int = 5          # per NF, before demotion
    base_backoff: float = 0.002    # delay before restart attempt n+1
    backoff_factor: float = 2.0
    max_backoff: float = 0.05
    check_cost: float = 2e-6       # simulated CPU per health pass

    def restart_delay(self, restarts: int) -> float:
        return min(
            self.base_backoff * self.backoff_factor ** max(restarts - 1, 0),
            self.max_backoff,
        )


DEFAULT_REPAIR_POLICY = RepairPolicy()


@dataclass
class NfRecord:
    """The repairer's per-VNF memory."""

    name: str
    state: str = "running"     # running | down | demoted | removed
    restarts: int = 0          # repair attempts consumed
    crashes_seen: int = 0
    next_attempt: float = 0.0  # earliest restart time (simulated seconds)


class ChainRepairer:
    """Supervises one deployment; puts crashed NFs back into the chain."""

    def __init__(
        self,
        orchestrator: Orchestrator,
        deployment: Deployment,
        policy: RepairPolicy = DEFAULT_REPAIR_POLICY,
    ) -> None:
        self.orchestrator = orchestrator
        self.deployment = deployment
        self.node = orchestrator.node
        self.policy = policy
        self.records: Dict[str, NfRecord] = {
            name: NfRecord(name) for name in deployment.graph.vnfs
        }
        self.bridges: List[GraphLink] = []  # demotion detour rules
        # Monotonic counters (``appctl chain/health``, obs collectors).
        self.crashes_detected = 0
        self.repairs_started = 0
        self.repairs_succeeded = 0
        self.repairs_failed = 0
        self.demotions = 0
        self.flows_replayed = 0
        self.packets_flushed = 0
        # Called with (event, nf_name) on every lifecycle transition:
        # nf-down, nf-repair-started, nf-repaired, nf-repair-failed,
        # nf-demoted, nf-removed.
        self.on_event: List[Callable[[str, str], None]] = []
        self.loop: Optional[PollLoop] = None

    # -- lifecycle ---------------------------------------------------------

    def start(self, env) -> "ChainRepairer":
        """Run the health pass on a housekeeping loop (sim mode)."""
        if self.loop is not None:
            raise RuntimeError("chain repairer already started")
        self.loop = PollLoop(
            env, "chain.repairer", self._iteration,
            period=self.policy.poll_interval,
        ).start()
        return self

    def stop(self) -> None:
        if self.loop is not None:
            self.loop.stop()
            self.loop = None

    def _iteration(self) -> float:
        self.check_once()
        return self.policy.check_cost

    def _now(self) -> float:
        env = self.node.env
        return env.now if env is not None else 0.0

    def _emit(self, event: str, nf_name: str) -> None:
        for callback in self.on_event:
            callback(event, nf_name)

    # -- the health pass ---------------------------------------------------

    def check_once(self) -> int:
        """One pass over every VNF; returns how many needed action."""
        now = self._now()
        acted = 0
        for record in self.records.values():
            if record.state == "running":
                if record.name in self.node.hypervisor.vms:
                    continue
                acted += 1
                self._on_nf_down(record, now)
            elif record.state == "down":
                if now >= record.next_attempt:
                    acted += 1
                    if record.restarts >= self.policy.max_restarts:
                        self._demote(record)
                    else:
                        self._attempt_repair(record, now)
            elif record.state == "demoted":
                # Stragglers cached toward the dead hop before the EMC
                # invalidation landed keep trickling in; flush them.
                self.packets_flushed += self._flush_nf_rings(record.name)
        return acted

    def _on_nf_down(self, record: NfRecord, now: float) -> None:
        name = record.name
        app = self.deployment.apps.get(name)
        if app is not None:
            # The poll loop of the dead guest's app burns simulated CPU
            # against killed PMDs; stop it.
            app.stop()
        if not self.node.hypervisor.was_crashed(name):
            # Graceful destroy: the operator removed it on purpose.
            record.state = "removed"
            self._emit("nf-removed", name)
            return
        self.crashes_detected += 1
        record.crashes_seen += 1
        record.state = "down"
        record.next_attempt = now  # first attempt immediately
        self._emit("nf-down", name)

    # -- repair ------------------------------------------------------------

    def _nf_links(self, name: str) -> List[GraphLink]:
        return [
            link for link in self.deployment.graph.links
            if name in (link.src.vnf, link.dst.vnf)
        ]

    def _attempt_repair(self, record: NfRecord, now: float) -> None:
        name = record.name
        graph = self.deployment.graph
        spec = graph.vnfs[name]
        record.restarts += 1
        self.repairs_started += 1
        self._emit("nf-repair-started", name)
        port_names = [
            graph.port_key(Endpoint(name, port)) for port in spec.ports
        ]
        try:
            handle = self.node.create_vm(name, port_names)
        except Exception:  # noqa: BLE001 - boot failed: back off, retry
            self.repairs_failed += 1
            record.next_attempt = now + self.policy.restart_delay(
                record.restarts
            )
            self._emit("nf-repair-failed", name)
            return
        self.deployment.vm_handles[name] = handle
        if spec.app_factory is not None:
            pmds = {
                logical: handle.pmd(graph.port_key(Endpoint(name, logical)))
                for logical in spec.ports
            }
            app = spec.app_factory(pmds)
            self.deployment.apps[name] = app
            if self.node.env is not None:
                app.start(self.node.env)
        # Replay the NF's steering flows: the delete half invalidates
        # exactly the cached entries that pointed at the dead instance,
        # the install half re-triggers p-2-p detection so eligible
        # bypasses come back on their own.
        for link in self._nf_links(name):
            self.orchestrator.redeploy_link(
                graph, link, self.deployment, settle=False
            )
            self.flows_replayed += 1
        record.state = "running"
        self.repairs_succeeded += 1
        self._emit("nf-repaired", name)

    # -- demotion ----------------------------------------------------------

    def _demote(self, record: NfRecord) -> None:
        name = record.name
        graph = self.deployment.graph
        self.demotions += 1
        record.state = "demoted"
        in_links = [l for l in graph.links if l.dst.vnf == name]
        out_links = [l for l in graph.links if l.src.vnf == name]
        for link in in_links + out_links:
            self.orchestrator.undeploy_link(
                graph, link, self.deployment, settle=False
            )
        # Steer around the dead hop: each inbound link is bridged to the
        # outbound link leaving through a *different* port of the dead
        # NF (the one its app would have forwarded to).
        for in_link in in_links:
            for out_link in out_links:
                if out_link.src.port == in_link.dst.port:
                    continue
                bridge = GraphLink(
                    src=in_link.src,
                    dst=out_link.dst,
                    match_fields=dict(in_link.match_fields),
                    priority=in_link.priority,
                )
                self.orchestrator.deploy_link(graph, bridge, settle=False)
                self.bridges.append(bridge)
                break
        self.packets_flushed += self._flush_nf_rings(name)
        self._emit("nf-demoted", name)

    def _flush_nf_rings(self, name: str) -> int:
        """Free everything queued toward the dead NF's ports."""
        graph = self.deployment.graph
        spec = graph.vnfs[name]
        flushed = 0
        for port in spec.ports:
            zone_name = dpdkr_zone_name(
                graph.port_key(Endpoint(name, port))
            )
            if zone_name not in self.node.registry:
                continue
            zone = self.node.registry.lookup(zone_name)
            for mbuf in zone.get("rx").drain():
                flushed += 1
                mbuf.free()
        return flushed

    # -- introspection -----------------------------------------------------

    def rows(self) -> List[List]:
        """``[nf, state, restarts, crashes]`` rows for ``chain/health``."""
        return [
            [record.name, record.state, record.restarts,
             record.crashes_seen]
            for record in sorted(self.records.values(),
                                 key=lambda r: r.name)
        ]

    def __repr__(self) -> str:
        return "<ChainRepairer nfs=%d crashes=%d repaired=%d>" % (
            len(self.records), self.crashes_detected, self.repairs_succeeded
        )
