"""Service graphs: the operator's view of a network service.

A graph is VNFs plus directed links between their logical ports
(Figure 1(a) of the paper).  Links come in two kinds:

* **total** links (no match constraints) — "everything leaving this port
  goes there"; these compile to the in_port-only rules the p-2-p
  detector recognizes and upgrades to bypass channels;
* **classified** links (extra match fields, e.g. ``l4_dst=80``) — the
  web / non-web split in the paper's example; these compile to
  higher-priority rules and keep their port on the vSwitch path.
"""

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

EXTERNAL = "__external__"


@dataclass(frozen=True)
class Endpoint:
    """One attachment point: a VNF's logical port, or an external NIC."""

    vnf: str
    port: str

    @property
    def is_external(self) -> bool:
        return self.vnf == EXTERNAL

    def __str__(self) -> str:
        if self.is_external:
            return "ext:%s" % self.port
        return "%s.%s" % (self.vnf, self.port)


def external(nic_name: str) -> Endpoint:
    return Endpoint(EXTERNAL, nic_name)


@dataclass
class VnfSpec:
    """A VNF to instantiate: name, logical ports, optional app factory.

    ``app_factory(pmds)`` receives ``{logical port name: ethdev}`` and
    returns a started-able app (anything with ``iteration``/``start``).
    """

    name: str
    ports: List[str]
    app_factory: Optional[Callable[[Dict[str, object]], object]] = None


@dataclass
class GraphLink:
    """A directed steering edge."""

    src: Endpoint
    dst: Endpoint
    match_fields: Dict[str, object] = field(default_factory=dict)
    priority: Optional[int] = None  # default chosen by the compiler

    @property
    def is_total(self) -> bool:
        return not self.match_fields


class GraphError(ValueError):
    """Malformed service graph."""


class ServiceGraph:
    """VNFs + links, with validation."""

    def __init__(self, name: str = "service") -> None:
        self.name = name
        self.vnfs: Dict[str, VnfSpec] = {}
        self.links: List[GraphLink] = []
        self.external_ports: List[str] = []

    # -- construction --------------------------------------------------------

    def add_vnf(self, name: str, ports: List[str],
                app_factory=None) -> VnfSpec:
        if name == EXTERNAL:
            raise GraphError("%r is a reserved VNF name" % name)
        if name in self.vnfs:
            raise GraphError("VNF %r already in graph" % name)
        if len(set(ports)) != len(ports):
            raise GraphError("duplicate port names on VNF %r" % name)
        spec = VnfSpec(name=name, ports=list(ports),
                       app_factory=app_factory)
        self.vnfs[name] = spec
        return spec

    def add_external(self, nic_name: str) -> Endpoint:
        if nic_name in self.external_ports:
            raise GraphError("external port %r already declared" % nic_name)
        self.external_ports.append(nic_name)
        return external(nic_name)

    def _resolve(self, endpoint) -> Endpoint:
        if isinstance(endpoint, Endpoint):
            return endpoint
        if isinstance(endpoint, str):
            vnf, _sep, port = endpoint.partition(".")
            if not port:
                raise GraphError(
                    "endpoint %r must be 'vnf.port' or an Endpoint"
                    % endpoint
                )
            return Endpoint(vnf, port)
        raise GraphError("cannot interpret endpoint %r" % (endpoint,))

    def connect(self, src, dst, *, match_fields: Optional[Dict] = None,
                priority: Optional[int] = None,
                bidirectional: bool = False) -> List[GraphLink]:
        """Add a directed link (or a pair with ``bidirectional=True``)."""
        src = self._resolve(src)
        dst = self._resolve(dst)
        for endpoint in (src, dst):
            self._check_endpoint(endpoint)
        links = [GraphLink(src=src, dst=dst,
                           match_fields=dict(match_fields or {}),
                           priority=priority)]
        if bidirectional:
            links.append(GraphLink(src=dst, dst=src,
                                   match_fields=dict(match_fields or {}),
                                   priority=priority))
        self.links.extend(links)
        return links

    def _check_endpoint(self, endpoint: Endpoint) -> None:
        if endpoint.is_external:
            if endpoint.port not in self.external_ports:
                raise GraphError(
                    "external port %r not declared" % endpoint.port
                )
            return
        spec = self.vnfs.get(endpoint.vnf)
        if spec is None:
            raise GraphError("unknown VNF %r" % endpoint.vnf)
        if endpoint.port not in spec.ports:
            raise GraphError(
                "VNF %r has no port %r" % (endpoint.vnf, endpoint.port)
            )

    # -- analysis -----------------------------------------------------------------

    def validate(self) -> None:
        """Reject graphs with conflicting total links from one port."""
        total_sources: Dict[Endpoint, Endpoint] = {}
        for link in self.links:
            if not link.is_total:
                continue
            existing = total_sources.get(link.src)
            if existing is not None and existing != link.dst:
                raise GraphError(
                    "port %s has total links to both %s and %s"
                    % (link.src, existing, link.dst)
                )
            total_sources[link.src] = link.dst

    def p2p_candidate_links(self) -> List[GraphLink]:
        """Total VNF-to-VNF links — the ones the detector should upgrade
        (provided no classified link shares the source port)."""
        classified_sources = {
            link.src for link in self.links if not link.is_total
        }
        return [
            link for link in self.links
            if link.is_total
            and not link.src.is_external
            and not link.dst.is_external
            and link.src not in classified_sources
        ]

    def links_from(self, endpoint) -> List[GraphLink]:
        endpoint = self._resolve(endpoint)
        return [link for link in self.links if link.src == endpoint]

    def port_key(self, endpoint: Endpoint) -> str:
        """The dpdkr port name an endpoint compiles to."""
        if endpoint.is_external:
            return endpoint.port
        return "%s.%s" % (endpoint.vnf, endpoint.port)
