"""NfvNode: a fully-wired single host.

Bundles everything the paper's Figure 1(b) shows on one server: the
vSwitch (with the p-2-p detector and bypass manager installed), the
OpenFlow controller connection, the hypervisor, and the compute agent.
VM creation goes through the node so the agent's port-ownership map and
the guest PMD managers stay consistent.
"""

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.core.bypass import (
    BypassManager, DEFAULT_RETRY_POLICY, RetryPolicy,
)
from repro.core.watchdog import DEFAULT_WATCHDOG_POLICY, WatchdogPolicy
from repro.core.pmd import DualChannelPmd, GuestPmdManager
from repro.core.transparency import enable_transparent_highway
from repro.dpdk.dpdkr import dpdkr_zone_name
from repro.hypervisor.compute_agent import ComputeAgent
from repro.hypervisor.qemu import Hypervisor, VirtualMachine
from repro.mem.memzone import MemzoneRegistry
from repro.obs.plane import Observability
from repro.sched.autolb import AutoLbPolicy, DEFAULT_AUTO_LB_POLICY
from repro.openflow.controller import ControllerConnection, SimpleController
from repro.sim.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.sim.engine import Environment
from repro.sim.nic import Nic
from repro.vswitch.ports import DpdkrOvsPort, PhyOvsPort
from repro.vswitch.vswitchd import VSwitchd

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults import FaultPlan


@dataclass
class VmHandle:
    """Everything a test/experiment needs about one deployed VM."""

    vm: VirtualMachine
    guest: GuestPmdManager
    pmds: Dict[str, DualChannelPmd] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.vm.name

    def pmd(self, port_name: str) -> DualChannelPmd:
        return self.pmds[port_name]


class NfvNode:
    """One server: vSwitch + hypervisor + agent + transparent highway."""

    def __init__(
        self,
        env: Optional[Environment] = None,
        costs: CostModel = DEFAULT_COST_MODEL,
        n_pmd_cores: int = 2,
        highway_enabled: bool = True,
        ring_size: int = 1024,
        retry_policy: RetryPolicy = DEFAULT_RETRY_POLICY,
        faults: Optional["FaultPlan"] = None,
        watchdog_policy: WatchdogPolicy = DEFAULT_WATCHDOG_POLICY,
        obs: Optional[Observability] = None,
        trace_sample_interval: Optional[int] = None,
        rxq_assign: str = "roundrobin",
        auto_lb: bool = False,
        auto_lb_policy: Optional["AutoLbPolicy"] = None,
        bounded_upcalls: bool = True,
        upcall_policy=None,
        fail_mode: str = "standalone",
        failmode_policy=None,
        overload: bool = False,
        overload_policy=None,
        megaflow_enabled: bool = True,
    ) -> None:
        self.env = env
        self.costs = costs
        self.faults = faults
        self.registry = MemzoneRegistry(faults=faults)
        clock = (lambda: env.now) if env is not None else None
        self.obs = obs if obs is not None else Observability(
            clock=clock, trace_sample_interval=trace_sample_interval,
        )
        self.connection = ControllerConnection(faults=faults)
        self.switch = VSwitchd(
            env=env,
            registry=self.registry,
            connection=self.connection,
            costs=costs,
            n_pmd_cores=n_pmd_cores,
            rxq_assign=rxq_assign,
            auto_lb=auto_lb,
            auto_lb_policy=(auto_lb_policy if auto_lb_policy is not None
                            else DEFAULT_AUTO_LB_POLICY),
            bounded_upcalls=bounded_upcalls,
            upcall_policy=upcall_policy,
            fail_mode=fail_mode,
            failmode_policy=failmode_policy,
            overload=overload,
            overload_policy=overload_policy,
        )
        self.switch.datapath.megaflow_enabled = megaflow_enabled
        if self.switch.failmode is not None:
            self.switch.failmode.faults = faults
        self.controller = SimpleController(self.connection)
        self.hypervisor = Hypervisor(self.registry, env=env, costs=costs,
                                     faults=faults)
        self.agent = ComputeAgent(self.hypervisor, env=env, costs=costs,
                                  faults=faults)
        self.manager: Optional[BypassManager] = None
        self.highway_enabled = highway_enabled
        if highway_enabled:
            self.manager = enable_transparent_highway(
                self.switch, self.agent, env=env, ring_size=ring_size,
                retry_policy=retry_policy, faults=faults,
                watchdog_policy=watchdog_policy,
            )
        self.vms: Dict[str, VmHandle] = {}
        self.ports: Dict[str, object] = {}  # name -> OvsPort
        self.nics: Dict[str, Nic] = {}
        # Ownership-tracked mempools feeding this node's traffic; the
        # bypass manager sweeps dead holders out of these on a crash.
        self.mempools: List = []
        self.obs.register_vswitchd(self.switch)
        if self.manager is not None:
            self.obs.register_manager(self.manager)

    def track_mempool(self, pool) -> None:
        """Register a pool for crash-time ledger reclamation + obs."""
        if pool in self.mempools:
            return
        self.mempools.append(pool)
        if self.manager is not None:
            self.manager.mempools = self.mempools
        self.obs.register_mempool(pool)

    # -- ports -----------------------------------------------------------------

    def add_dpdkr_port(self, port_name: str,
                       ring_size: int = 1024) -> DpdkrOvsPort:
        port = self.switch.add_dpdkr_port(port_name, ring_size=ring_size)
        self.ports[port_name] = port
        self.obs.register_dpdkr_port(port.rings)
        return port

    def add_nic(self, nic_name: str, ring_size: int = 4096) -> PhyOvsPort:
        """Attach a 10 G NIC as a phy port (requires an environment)."""
        if self.env is None:
            raise RuntimeError("NICs need a simulation environment")
        nic = Nic(self.env, nic_name, ring_size=ring_size)
        self.nics[nic_name] = nic
        port = self.switch.add_phy_port(nic_name, nic)
        self.ports[nic_name] = port
        return port

    def ofport(self, port_name: str) -> int:
        return self.ports[port_name].ofport

    # -- VMs --------------------------------------------------------------------------

    def create_vm(self, vm_name: str, port_names: List[str],
                  ring_size: int = 1024) -> VmHandle:
        """Create dpdkr ports (if needed), boot a VM plugged into them,
        and attach a dual-channel PMD to each port."""
        for port_name in port_names:
            if port_name not in self.ports:
                self.add_dpdkr_port(port_name, ring_size=ring_size)
        vm = self.hypervisor.create_vm(
            vm_name,
            boot_zones=[dpdkr_zone_name(p) for p in port_names],
        )
        guest = GuestPmdManager(vm)
        handle = VmHandle(vm=vm, guest=guest)
        for port_name in port_names:
            self.agent.register_port_owner(port_name, vm_name)
            pmd = guest.create_pmd(port_name)
            handle.pmds[port_name] = pmd
            self.obs.register_guest_pmd(pmd, vm_name, port_name)
        self.vms[vm_name] = handle
        return handle

    # -- fault injection ----------------------------------------------------------------

    def install_fault_plan(self, plan: Optional["FaultPlan"]) -> None:
        """Arm (or disarm, with ``None``) a fault plan on every wired
        component — including serial channels of VMs that already exist.

        Useful when the topology should come up cleanly and faults only
        start firing for a later phase of a scenario.
        """
        self.faults = plan
        self.registry.faults = plan
        self.hypervisor.faults = plan
        self.agent.faults = plan
        self.connection.faults = plan
        if self.switch.failmode is not None:
            self.switch.failmode.faults = plan
        if self.manager is not None:
            self.manager.faults = plan
            for bypass_link in self.manager.active_links.values():
                if bypass_link.ring is not None:
                    bypass_link.ring.faults = plan
        for handle in self.vms.values():
            handle.vm.serial.faults = plan
            handle.guest.install_faults(plan)

    # -- convenience --------------------------------------------------------------------

    def install_p2p_rule(self, src_port_name: str, dst_port_name: str,
                         priority: int = 0x8000) -> None:
        from repro.openflow.actions import OutputAction
        from repro.openflow.match import Match

        self.controller.install_flow(
            Match(in_port=self.ofport(src_port_name)),
            [OutputAction(self.ofport(dst_port_name))],
            priority=priority,
        )

    def settle_control_plane(self, extra_time: float = 0.25) -> None:
        """Let flowmods land and bypasses establish.

        Sync mode pumps once; simulation mode advances time far enough
        for detection + two hot-plugs + PMD reconfiguration (~0.1 s per
        link, serialized through the single agent worker).
        """
        if self.env is None:
            self.switch.step_control()
            return
        if not self.switch._running:
            self.switch.start()
        self.env.run(until=self.env.now + extra_time)

    @property
    def active_bypasses(self) -> int:
        """Bypass links whose sender PMD is actually on the bypass."""
        if self.manager is None:
            return 0
        from repro.core.bypass import LinkState

        return sum(
            1 for link in self.manager.active_links.values()
            if link.state == LinkState.ACTIVE
        )

    def __repr__(self) -> str:
        return "<NfvNode vms=%d ports=%d highway=%s>" % (
            len(self.vms), len(self.ports), self.highway_enabled
        )
