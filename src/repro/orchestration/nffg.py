"""NF-FG: the UNIFY network-function forwarding-graph JSON format.

The paper's prototype extends the *un-orchestrator* NFV node
(github.com/netgroup-polito/un-orchestrator), whose northbound input is
an NF-FG document: VNFs with ports, end-points, and the ``big-switch``
flow rules steering traffic between them.  This module implements a
practical subset of that schema in both directions:

* :func:`load_nffg` — NF-FG dict/JSON text -> :class:`ServiceGraph`;
* :func:`dump_nffg` — :class:`ServiceGraph` -> NF-FG dict.

Port references use the NF-FG convention ``vnf:<name>:<port>`` and
``endpoint:<name>``.  Match keys supported: ``ether_type``,
``source_mac``, ``dest_mac``, ``vlan_id``, ``source_ip``, ``dest_ip``,
``protocol`` (``tcp``/``udp``/``icmp`` or a number), ``source_port``,
``dest_port``.  VNF ``type`` selects an application from
:data:`VNF_TYPE_REGISTRY` (forwarder, firewall, monitor, cache).
"""

import json
from typing import Callable, Dict, Optional, Union

from repro.apps import FirewallApp, ForwarderApp, MonitorApp, WebCacheApp
from repro.orchestration.graph import Endpoint, ServiceGraph, external
from repro.packet.headers import (
    IP_PROTO_ICMP,
    IP_PROTO_TCP,
    IP_PROTO_UDP,
    ETH_TYPE_IPV4,
    MacAddress,
    ipv4_to_int,
)


class NffgError(ValueError):
    """Malformed NF-FG document."""


def _two_port_factory(app_cls, name):
    def factory(pmds):
        ports = list(pmds.values())
        if len(ports) != 2:
            raise NffgError(
                "VNF type needs exactly 2 ports, got %d" % len(ports)
            )
        return app_cls(name, ports[0], ports[1])
    return factory


VNF_TYPE_REGISTRY: Dict[str, Callable] = {
    "forwarder": lambda name: _two_port_factory(ForwarderApp, name),
    "firewall": lambda name: _two_port_factory(FirewallApp, name),
    "monitor": lambda name: _two_port_factory(MonitorApp, name),
    "cache": lambda name: _two_port_factory(WebCacheApp, name),
}

_PROTO_NAMES = {"tcp": IP_PROTO_TCP, "udp": IP_PROTO_UDP,
                "icmp": IP_PROTO_ICMP}
_PROTO_BY_NUMBER = {value: key for key, value in _PROTO_NAMES.items()}


def _parse_port_ref(text: str) -> Endpoint:
    parts = text.split(":")
    if len(parts) == 3 and parts[0] == "vnf":
        return Endpoint(parts[1], parts[2])
    if len(parts) == 2 and parts[0] == "endpoint":
        return external(parts[1])
    raise NffgError("bad port reference %r" % text)


def _format_port_ref(endpoint: Endpoint) -> str:
    if endpoint.is_external:
        return "endpoint:%s" % endpoint.port
    return "vnf:%s:%s" % (endpoint.vnf, endpoint.port)


def _parse_match(match_obj: Dict) -> "tuple[Endpoint, Dict]":
    """Split an NF-FG match into (ingress endpoint, our match fields)."""
    if "port_in" not in match_obj:
        raise NffgError("flow rule match needs port_in")
    src = _parse_port_ref(match_obj["port_in"])
    fields: Dict[str, object] = {}
    for key, value in match_obj.items():
        if key == "port_in":
            continue
        if key == "ether_type":
            fields["eth_type"] = int(value, 0) if isinstance(value, str) \
                else int(value)
        elif key == "source_mac":
            fields["eth_src"] = MacAddress.from_string(value).value
        elif key == "dest_mac":
            fields["eth_dst"] = MacAddress.from_string(value).value
        elif key == "vlan_id":
            fields["vlan_vid"] = int(value)
        elif key in ("source_ip", "dest_ip"):
            field = "ip_src" if key == "source_ip" else "ip_dst"
            text = str(value)
            if "/" in text:
                address, prefix = text.split("/", 1)
                bits = int(prefix)
                mask = ((1 << bits) - 1) << (32 - bits) if bits else 0
                fields[field] = (ipv4_to_int(address) & mask, mask)
            else:
                fields[field] = ipv4_to_int(text)
            fields.setdefault("eth_type", ETH_TYPE_IPV4)
        elif key == "protocol":
            if isinstance(value, str):
                proto = _PROTO_NAMES.get(value.lower())
                if proto is None:
                    raise NffgError("unknown protocol %r" % value)
            else:
                proto = int(value)
            fields["ip_proto"] = proto
            fields.setdefault("eth_type", ETH_TYPE_IPV4)
        elif key in ("source_port", "dest_port"):
            field = "l4_src" if key == "source_port" else "l4_dst"
            fields[field] = int(value)
            fields.setdefault("eth_type", ETH_TYPE_IPV4)
            if "ip_proto" not in fields:
                raise NffgError("%s requires protocol" % key)
        else:
            raise NffgError("unsupported match key %r" % key)
    return src, fields


def load_nffg(document: Union[str, Dict]) -> ServiceGraph:
    """Build a :class:`ServiceGraph` from an NF-FG document."""
    if isinstance(document, str):
        document = json.loads(document)
    try:
        body = document["forwarding-graph"]
    except (TypeError, KeyError):
        raise NffgError("document has no forwarding-graph") from None

    graph = ServiceGraph(body.get("id", "nffg"))
    for vnf in body.get("VNFs", []):
        name = vnf.get("id")
        if not name:
            raise NffgError("VNF without id")
        ports = [port["id"] for port in vnf.get("ports", [])]
        if not ports:
            raise NffgError("VNF %r has no ports" % name)
        app_factory = None
        vnf_type = vnf.get("type")
        if vnf_type is not None:
            maker = VNF_TYPE_REGISTRY.get(vnf_type)
            if maker is None:
                raise NffgError("unknown VNF type %r" % vnf_type)
            app_factory = maker(name)
        graph.add_vnf(name, ports, app_factory=app_factory)
    for endpoint in body.get("end-points", []):
        graph.add_external(endpoint["id"])

    rules = body.get("big-switch", {}).get("flow-rules", [])
    for rule in rules:
        src, fields = _parse_match(rule.get("match", {}))
        actions = rule.get("actions", [])
        outputs = [a["output_to_port"] for a in actions
                   if "output_to_port" in a]
        if len(outputs) != 1:
            raise NffgError(
                "flow rule must have exactly one output_to_port"
            )
        dst = _parse_port_ref(outputs[0])
        graph.connect(src, dst, match_fields=fields,
                      priority=rule.get("priority"))
    graph.validate()
    return graph


def dump_nffg(graph: ServiceGraph) -> Dict:
    """Serialize a :class:`ServiceGraph` back to an NF-FG dict."""
    vnfs = []
    for spec in graph.vnfs.values():
        vnfs.append({
            "id": spec.name,
            "ports": [{"id": port} for port in spec.ports],
        })
    rules = []
    for index, link in enumerate(graph.links):
        match: Dict[str, object] = {
            "port_in": _format_port_ref(link.src)
        }
        for field, value in link.match_fields.items():
            if field == "eth_type":
                match["ether_type"] = "0x%04x" % _value_of(value)
            elif field == "ip_proto":
                number = _value_of(value)
                match["protocol"] = _PROTO_BY_NUMBER.get(number, number)
            elif field == "l4_src":
                match["source_port"] = _value_of(value)
            elif field == "l4_dst":
                match["dest_port"] = _value_of(value)
            elif field == "vlan_vid":
                match["vlan_id"] = _value_of(value)
            elif field in ("ip_src", "ip_dst"):
                from repro.packet.headers import int_to_ipv4

                key = "source_ip" if field == "ip_src" else "dest_ip"
                if isinstance(value, tuple):
                    address, mask = value
                    prefix = bin(mask).count("1")
                    match[key] = "%s/%d" % (int_to_ipv4(address), prefix)
                else:
                    match[key] = int_to_ipv4(value)
            elif field in ("eth_src", "eth_dst"):
                key = "source_mac" if field == "eth_src" else "dest_mac"
                match[key] = str(MacAddress(_value_of(value)))
        rule = {
            "id": str(index + 1),
            "match": match,
            "actions": [{"output_to_port": _format_port_ref(link.dst)}],
        }
        if link.priority is not None:
            rule["priority"] = link.priority
        rules.append(rule)
    return {
        "forwarding-graph": {
            "id": graph.name,
            "VNFs": vnfs,
            "end-points": [{"id": name} for name in graph.external_ports],
            "big-switch": {"flow-rules": rules},
        }
    }


def _value_of(constraint) -> int:
    if isinstance(constraint, tuple):
        return constraint[0]
    return int(constraint)
