"""The orchestrator: compile a service graph onto an NFV node.

Mirrors the paper's Figure 1(b): the orchestrator receives the graph,
sends *compute commands* (create the VMs with their dpdkr ports — via
the node's hypervisor/agent) and *network commands* (the OpenFlow
steering rules — via the controller).  It never mentions bypasses: those
appear on their own when the p-2-p link detector recognizes the rules.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.openflow.actions import OutputAction
from repro.openflow.match import Match
from repro.orchestration.graph import Endpoint, GraphLink, ServiceGraph
from repro.orchestration.node import NfvNode, VmHandle

TOTAL_LINK_PRIORITY = 100
CLASSIFIED_LINK_PRIORITY = 200


@dataclass
class Deployment:
    """The realized service: handles to everything that was created."""

    graph: ServiceGraph
    node: NfvNode
    vm_handles: Dict[str, VmHandle] = field(default_factory=dict)
    apps: Dict[str, object] = field(default_factory=dict)
    installed_rules: List[GraphLink] = field(default_factory=list)

    def pmd(self, endpoint_text: str):
        """The guest-side ethdev for ``"vnf.port"``."""
        vnf, _sep, port = endpoint_text.partition(".")
        return self.vm_handles[vnf].pmd(endpoint_text)

    def start_apps(self, env) -> None:
        for app in self.apps.values():
            app.start(env)

    def stop_apps(self) -> None:
        for app in self.apps.values():
            app.stop()


class Orchestrator:
    """Deploys service graphs onto a single NFV node."""

    def __init__(self, node: NfvNode) -> None:
        self.node = node

    def deploy(self, graph: ServiceGraph) -> Deployment:
        graph.validate()
        deployment = Deployment(graph=graph, node=self.node)
        self._create_externals(graph)
        self._create_vms(graph, deployment)
        self._install_steering(graph, deployment)
        return deployment

    # -- compute commands -----------------------------------------------------

    def _create_externals(self, graph: ServiceGraph) -> None:
        for nic_name in graph.external_ports:
            if nic_name not in self.node.ports:
                self.node.add_nic(nic_name)

    def _create_vms(self, graph: ServiceGraph,
                    deployment: Deployment) -> None:
        for spec in graph.vnfs.values():
            port_names = [
                graph.port_key(Endpoint(spec.name, port))
                for port in spec.ports
            ]
            handle = self.node.create_vm(spec.name, port_names)
            deployment.vm_handles[spec.name] = handle
            if spec.app_factory is not None:
                pmds = {
                    logical: handle.pmd(
                        graph.port_key(Endpoint(spec.name, logical))
                    )
                    for logical in spec.ports
                }
                deployment.apps[spec.name] = spec.app_factory(pmds)

    # -- network commands ----------------------------------------------------------

    def _install_steering(self, graph: ServiceGraph,
                          deployment: Deployment) -> None:
        for link in graph.links:
            self.deploy_link(graph, link, deployment, settle=False)
        self.node.settle_control_plane(
            extra_time=0.15 * max(1, len(graph.links))
        )

    def _link_match(self, graph: ServiceGraph, link: GraphLink) -> Match:
        return Match(
            in_port=self.node.ofport(graph.port_key(link.src)),
            **link.match_fields,
        )

    def deploy_link(self, graph: ServiceGraph, link: GraphLink,
                    deployment: Optional[Deployment] = None,
                    settle: bool = True) -> None:
        """Install one steering rule (and record it on the deployment).

        ``settle=False`` skips the control-plane settling run — required
        when calling from inside a poll loop (the chain repairer), where
        re-entering ``env.run`` is illegal; the caller's own simulated
        time advance lets the flowmod land.
        """
        priority = link.priority
        if priority is None:
            priority = (TOTAL_LINK_PRIORITY if link.is_total
                        else CLASSIFIED_LINK_PRIORITY)
        self.node.controller.install_flow(
            self._link_match(graph, link),
            [OutputAction(self.node.ofport(graph.port_key(link.dst)))],
            priority=priority,
        )
        if deployment is not None and link not in deployment.installed_rules:
            deployment.installed_rules.append(link)
        if settle:
            self.node.settle_control_plane(extra_time=0.15)

    def undeploy_link(self, graph: ServiceGraph, link: GraphLink,
                      deployment: Optional[Deployment] = None,
                      settle: bool = True) -> None:
        """Remove one steering rule (triggers bypass teardown if any).

        With a ``deployment`` the rule is also dropped from
        ``installed_rules``, so undeploy + redeploy round-trips leave no
        duplicate bookkeeping behind.
        """
        self.node.controller.delete_flow(self._link_match(graph, link))
        if deployment is not None and link in deployment.installed_rules:
            deployment.installed_rules.remove(link)
        if settle:
            self.node.settle_control_plane(extra_time=0.1)

    def redeploy_link(self, graph: ServiceGraph, link: GraphLink,
                      deployment: Optional[Deployment] = None,
                      settle: bool = True) -> None:
        """Delete + re-install one rule: the flow-replay primitive.

        The delete invalidates exactly the cached fast-path entries the
        rule produced (precise EMC invalidation), the re-install lets
        the p-2-p detector see the rule afresh — which is how a repaired
        VM gets its bypass re-established.
        """
        self.undeploy_link(graph, link, deployment, settle=False)
        self.deploy_link(graph, link, deployment, settle=settle)
