"""Transparency layer: make the bypass invisible to the controller.

Two pieces:

* :class:`BypassStatsAugmentor` — the bridge-side stats hook.  When the
  controller asks for flow or port statistics, counters accumulated by
  the guest PMDs in shared memory are merged into the ordinary OpenFlow
  reply: the flow entry implementing a p-2-p link reports the packets
  that crossed the bypass, the source port reports them as received and
  the destination port as transmitted — exactly the numbers a vanilla
  OVS would have produced had it forwarded them itself.

* :func:`enable_transparent_highway` — the one-call wiring that
  retrofits an existing :class:`~repro.vswitch.vswitchd.VSwitchd` with
  the detector, the bypass manager and the stats augmentor; the
  counterpart of applying the paper's patches to OVS.
"""

from typing import TYPE_CHECKING, Optional

from repro.core.bypass import (
    BypassManager, DEFAULT_RETRY_POLICY, RetryPolicy,
)
from repro.core.detector import P2PLinkDetector
from repro.core.watchdog import DEFAULT_WATCHDOG_POLICY, WatchdogPolicy
from repro.hypervisor.compute_agent import ComputeAgent
from repro.openflow.table import FlowEntry
from repro.sim.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.sim.engine import Environment
from repro.vswitch.bridge import StatsAugmentor
from repro.vswitch.ports import DpdkrOvsPort
from repro.vswitch.vswitchd import VSwitchd

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults import FaultPlan


class BypassStatsAugmentor(StatsAugmentor):
    """Merges shared-memory bypass counters into OpenFlow statistics."""

    def __init__(self, manager: BypassManager) -> None:
        self.manager = manager

    def flow_extra(self, entry: FlowEntry) -> "tuple[int, int]":
        packets = 0
        byte_count = 0
        for block in self.manager.stats_blocks:
            extra_packets, extra_bytes = block.flow_counters(entry.flow_id)
            packets += extra_packets
            byte_count += extra_bytes
        return packets, byte_count

    def port_extra(self, ofport: int) -> "tuple[int, int, int, int]":
        rx_packets = rx_bytes = tx_packets = tx_bytes = 0
        for block in self.manager.stats_blocks:
            if block.src_ofport == ofport:
                # Logically these packets entered the switch here.
                rx_packets += block.tx_packets
                rx_bytes += block.tx_bytes
            if block.dst_ofport == ofport:
                tx_packets += block.tx_packets
                tx_bytes += block.tx_bytes
        return rx_packets, rx_bytes, tx_packets, tx_bytes


def enable_transparent_highway(
    vswitchd: VSwitchd,
    agent: ComputeAgent,
    env: Optional[Environment] = None,
    ring_size: int = 1024,
    retry_policy: RetryPolicy = DEFAULT_RETRY_POLICY,
    faults: Optional["FaultPlan"] = None,
    watchdog_policy: WatchdogPolicy = DEFAULT_WATCHDOG_POLICY,
) -> BypassManager:
    """Retrofit ``vswitchd`` with the paper's transparent highway.

    Installs the p-2-p link detector on the bridge's flow table
    (restricted to dpdkr ports), the bypass manager driving the compute
    ``agent``, and the stats augmentor on the bridge.  Returns the
    manager (the handle experiments use to observe link lifecycle).
    """
    datapath = vswitchd.datapath

    def is_eligible(ofport: int) -> bool:
        # Only dpdkr-to-dpdkr connections are accelerated, and never on
        # a mirrored, policed or administratively-down port: the vSwitch
        # can only mirror/police/block what it forwards, so bypassing
        # such a port would silently disable the operator's policy.
        port = datapath.ports.get(ofport)
        if not isinstance(port, DpdkrOvsPort) or not port.up:
            return False
        if ofport in vswitchd.mirrored_ports():
            return False
        return ofport not in vswitchd.policed_ports()

    detector = P2PLinkDetector(vswitchd.bridge.table,
                               is_eligible_port=is_eligible)
    manager = BypassManager(vswitchd, agent, detector, env=env,
                            ring_size=ring_size,
                            retry_policy=retry_policy, faults=faults,
                            watchdog_policy=watchdog_policy)
    vswitchd.bridge.stats_augmentor = BypassStatsAugmentor(manager)
    # Mirror/policer/port-state changes alter port eligibility without
    # touching the flow table; re-analyse so links appear/disappear.
    vswitchd.on_mirror_change.append(lambda _mirror: detector.refresh_all())
    vswitchd.bridge.on_port_mod.append(
        lambda _port: detector.refresh_all()
    )
    return manager
