"""Host-side runtime health monitoring for active bypass channels.

Establishment and teardown are protocols; an ACTIVE bypass is just two
PMDs and a ring.  If the consumer VNF crashes or hangs mid-traffic,
nothing in the data path says so — the sender keeps enqueueing until
ring-full and every queued packet is stranded.  The
:class:`BypassWatchdog` closes that gap using only shared memory the
host can already read:

* the consumer PMD publishes a heartbeat epoch + dequeue cursor into
  the channel's :class:`~repro.core.stats.BypassStatsBlock` on every
  receive poll, and a port-level
  :class:`~repro.core.stats.PortHeartbeat` into its dpdkr zone;
* once per :attr:`WatchdogPolicy.poll_interval` the watchdog snapshots
  those against the ring's occupancy and classifies each ACTIVE link:

  ========== ==========================================================
  verdict    evidence
  ========== ==========================================================
  STALLED    occupancy > 0 and the dequeue cursor frozen for
             ``stall_polls`` consecutive checks (consumer signed on
             earlier, so "nobody ever polled" never false-positives)
  WEDGED     port heartbeat frozen for ``heartbeat_polls`` checks while
             the normal channel is backing up — the guest is hung, not
             idle
  DEAD_PEER  the compute agent already knows an endpoint VM is dead but
             the link is still ACTIVE (janitor backstop)
  PEER_CRASHED an endpoint VM died *abruptly* — the agent records a
             crash, or the consumer's heartbeat zone vanished outright
             (a crashed VM's force-unplug dropped it), which is peer
             death evidence, not mere staleness
  CORRUPT    :meth:`~repro.mem.ring.Ring.validate` failed (slot or
             generation-tag corruption), or the consumer flagged
             ``rx_integrity_errors`` after dequeuing a smashed slot
  ========== ==========================================================

Any non-healthy verdict hands the link to
:meth:`~repro.core.bypass.BypassManager.degrade_link`, the emergency
live fallback (ordered handover in reverse), and from there to the
quarantine ladder with the ``degraded`` reason, whose re-admission is
gated on the peer heartbeating again.

In simulation the watchdog runs on a fixed-period
:class:`~repro.sim.pollloop.PollLoop`; synchronous tests drive
:meth:`BypassWatchdog.check_once` by hand.
"""

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.mem.ring import RingIntegrityError
from repro.sim.pollloop import PollLoop

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.bypass import BypassLink, BypassManager
    from repro.sim.engine import Environment


class HealthState(enum.Enum):
    """Per-link verdict of one watchdog check."""

    HEALTHY = "healthy"
    STALLED = "stalled"
    WEDGED = "wedged"
    DEAD_PEER = "dead_peer"
    PEER_CRASHED = "peer_crashed"
    CORRUPT = "corrupt"


@dataclass(frozen=True)
class WatchdogPolicy:
    """Detection thresholds; the poll budget of the acceptance tests.

    Worst-case detection latency for a stalled consumer is
    ``poll_interval * (stall_polls + 1)`` (one interval to snapshot a
    baseline, ``stall_polls`` frozen deltas), and analogously with
    ``heartbeat_polls`` for a wedged guest.
    """

    poll_interval: float = 0.005   # seconds between checks
    stall_polls: int = 3           # frozen-cursor checks before STALLED
    heartbeat_polls: int = 6       # frozen-heartbeat checks before WEDGED
    validate_ring: bool = True     # run Ring.validate() every check
    check_cost: float = 1.5e-6     # simulated CPU per checked link


DEFAULT_WATCHDOG_POLICY = WatchdogPolicy()


@dataclass
class LinkHealth:
    """The watchdog's per-link memory between checks."""

    key: int                       # src ofport
    zone_name: Optional[str]       # invalidates the track on re-provision
    generation: int                # ring generation pinned at track start
    signed_on: bool = False        # consumer ever heartbeat the channel
    port_signed_on: bool = False   # guest ever heartbeat the port
    last_dequeued: Optional[int] = None
    last_port_epoch: Optional[int] = None
    stall_streak: int = 0
    frozen_streak: int = 0
    checks: int = 0
    verdict: HealthState = HealthState.HEALTHY


class BypassWatchdog:
    """Periodically classifies every ACTIVE link; triggers fallback.

    Owned by the :class:`~repro.core.bypass.BypassManager`; reachable
    from the CLI via ``appctl bypass/health``.
    """

    def __init__(self, manager: "BypassManager",
                 policy: WatchdogPolicy = DEFAULT_WATCHDOG_POLICY) -> None:
        self.manager = manager
        self.policy = policy
        self.health: Dict[int, LinkHealth] = {}
        self.checks_run = 0
        self.loop: Optional[PollLoop] = None

    def start(self, env: "Environment") -> "BypassWatchdog":
        """Run on a fixed-period poll loop (simulation mode)."""
        if self.loop is not None:
            raise RuntimeError("bypass watchdog already started")
        self.loop = PollLoop(
            env, "bypass.watchdog", self._iteration,
            period=self.policy.poll_interval,
        ).start()
        return self

    def _iteration(self) -> float:
        checked = self.check_once()
        return self.policy.check_cost * checked if checked else 0.0

    def check_once(self) -> int:
        """One pass over every ACTIVE link; returns how many it checked.

        Unhealthy links are handed to ``manager.degrade_link`` inside
        the pass, so by the time this returns the fallback has already
        happened (the degrade path is synchronous).
        """
        from repro.core.bypass import LinkState

        manager = self.manager
        self.checks_run += 1
        active = {
            key: bypass_link
            for key, bypass_link in manager.active_links.items()
            if bypass_link.state == LinkState.ACTIVE
        }
        for key in [k for k in self.health if k not in active]:
            del self.health[key]
        checked = 0
        for key, bypass_link in active.items():
            track = self.health.get(key)
            if track is None or track.zone_name != bypass_link.zone_name:
                track = LinkHealth(
                    key=key,
                    zone_name=bypass_link.zone_name,
                    generation=(bypass_link.ring.generation
                                if bypass_link.ring is not None else 0),
                )
                self.health[key] = track
            verdict = self._check_link(bypass_link, track)
            track.verdict = verdict
            track.checks += 1
            checked += 1
            if verdict != HealthState.HEALTHY:
                manager.degrade_link(bypass_link, verdict)
                del self.health[key]
        return checked

    def _check_link(self, bypass_link: "BypassLink",
                    track: LinkHealth) -> HealthState:
        manager = self.manager
        policy = self.policy
        if not (manager.agent.is_port_alive(bypass_link.src_port_name)
                and manager.agent.is_port_alive(bypass_link.dst_port_name)):
            if (manager.agent.is_port_crashed(bypass_link.src_port_name)
                    or manager.agent.is_port_crashed(
                        bypass_link.dst_port_name)):
                return HealthState.PEER_CRASHED
            return HealthState.DEAD_PEER
        if (track.port_signed_on and not manager.heartbeat_zone_present(
                bypass_link.dst_port_name)):
            # The consumer heartbeat zone is *gone*, not merely stale —
            # a crashed VM's force-unplug (or host-side port cleanup)
            # dropped it.  Before this check the classifier would read
            # a None epoch, call the link HEALTHY, and later paths that
            # blindly looked the zone up would raise out of the
            # watchdog (the crash-window race).
            return HealthState.PEER_CRASHED
        ring = bypass_link.ring
        if policy.validate_ring and ring is not None:
            try:
                ring.validate(expected_generation=track.generation)
            except RingIntegrityError:
                return HealthState.CORRUPT
        stats = bypass_link.stats
        occupancy = len(ring) if ring is not None else 0
        if stats is not None and stats.rx_integrity_errors > 0:
            # The consumer already pulled (and dropped) a smashed slot;
            # the ring is structurally clean again but the memory rotted.
            return HealthState.CORRUPT
        if stats is not None:
            if stats.rx_epoch > 0:
                track.signed_on = True
            if track.last_dequeued is not None:
                # A frozen cursor only means something once a baseline
                # exists and the consumer has proven it polls at all.
                if (track.signed_on and occupancy > 0
                        and stats.rx_dequeued == track.last_dequeued):
                    track.stall_streak += 1
                else:
                    track.stall_streak = 0
            track.last_dequeued = stats.rx_dequeued
            if track.stall_streak >= policy.stall_polls:
                return HealthState.STALLED
        port_epoch = manager.consumer_heartbeat_epoch(
            bypass_link.dst_port_name
        )
        if port_epoch is not None:
            if port_epoch > 0:
                track.port_signed_on = True
            if track.last_port_epoch is not None:
                if (track.port_signed_on
                        and port_epoch == track.last_port_epoch):
                    track.frozen_streak += 1
                else:
                    track.frozen_streak = 0
            track.last_port_epoch = port_epoch
            if (track.frozen_streak >= policy.heartbeat_polls
                    and manager.normal_backlog(
                        bypass_link.dst_port_name) > 0):
                # Heartbeat frozen *and* undrained switch-path packets:
                # the guest is hung, not merely idle.
                return HealthState.WEDGED
        return HealthState.HEALTHY

    def rows(self) -> List[List]:
        """``[link, verdict, detail]`` rows for ``bypass/health``."""
        out = []
        for key in sorted(self.health):
            track = self.health[key]
            out.append([
                key,
                track.verdict.value,
                "checks=%d stall_streak=%d frozen_streak=%d signed_on=%s"
                % (track.checks, track.stall_streak, track.frozen_streak,
                   "yes" if track.signed_on else "no"),
            ])
        return out

    def __repr__(self) -> str:
        return "<BypassWatchdog links=%d checks=%d>" % (
            len(self.health), self.checks_run
        )
