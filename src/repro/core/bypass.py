"""The bypass manager: from p-2-p detection to a live direct channel.

Listens to the :class:`~repro.core.detector.P2PLinkDetector` and drives
channel lifecycle through the compute agent:

* **establish** — reserve a fresh memzone holding the bypass ring and
  its :class:`~repro.core.stats.BypassStatsBlock`, then ask the agent to
  plug it into both VMs and reconfigure the PMDs (receiver before
  sender);
* **teardown** — ask the agent to detach the sender, drain, detach the
  receiver, unplug; afterwards release the zone.  The stats block is
  retained forever so flow/port statistics stay correct.

All operations run through a single FIFO worker (one compute agent, one
request at a time), which also serializes the detect-while-establishing
races: a link revoked mid-establishment is simply torn down right after
it becomes active.

The manager is **self-healing**: every establishment step runs under a
timeout, failed attempts are rolled back (zones unplugged and freed,
partially-configured PMDs detached, stranded packets accounted) and
retried with bounded exponential backoff, links that exhaust the retry
budget are *quarantined* — traffic stays on the switch path and the
link is re-attempted later with growing backoff instead of being
dropped forever — and detector churn is flap-damped so no flowmod storm
can turn into an establishment storm.  Every recovery action is counted
in :class:`~repro.metrics.resilience.ResilienceCounters` (see ``appctl
bypass/faults``), and the whole machinery is exercised deterministically
by injecting faults through :class:`~repro.faults.FaultPlan`.
"""

import enum
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set

from repro.core.detector import P2PLink, P2PLinkDetector
from repro.core.stats import BypassStatsBlock
from repro.core.watchdog import (
    DEFAULT_WATCHDOG_POLICY,
    BypassWatchdog,
    HealthState,
    WatchdogPolicy,
)
from repro.hypervisor.compute_agent import AgentRequest, ComputeAgent
from repro.mem.memzone import MemzoneError, MemzoneRegistry
from repro.mem.ring import Ring, RingMode
from repro.metrics.resilience import ResilienceCounters
from repro.sim.engine import Environment
from repro.vswitch.ports import DpdkrOvsPort
from repro.vswitch.vswitchd import VSwitchd

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults import FaultPlan


class LinkState(enum.Enum):
    PENDING = "pending"
    ESTABLISHING = "establishing"
    ACTIVE = "active"
    TEARING_DOWN = "tearing_down"
    REMOVED = "removed"
    QUARANTINED = "quarantined"


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout/retry/backoff knobs of the self-healing control plane.

    The defaults are sized against the calibrated cost model: a clean
    establishment takes ~100 ms (RPC + hot-plug + two serial RTTs), so a
    250 ms step timeout only fires when something was genuinely lost.
    """

    request_timeout: float = 0.25      # per establishment attempt
    teardown_timeout: float = 0.35     # per teardown request
    max_attempts: int = 4              # establishment tries before quarantine
    base_backoff: float = 0.05         # first retry delay
    backoff_factor: float = 2.0
    max_backoff: float = 0.4
    quarantine_backoff: float = 0.8    # first out-of-quarantine re-attempt
    quarantine_backoff_factor: float = 2.0
    max_quarantine_backoff: float = 6.4
    flap_window: float = 1.0           # seconds of detector history examined
    flap_threshold: int = 5            # creations in window before damping
    flap_hold: float = 0.5             # settle time before a damped admit

    def retry_delay(self, attempt: int) -> float:
        """Backoff before re-attempt number ``attempt + 1``."""
        return min(
            self.base_backoff * self.backoff_factor ** max(attempt - 1, 0),
            self.max_backoff,
        )

    def quarantine_delay(self, failures: int) -> float:
        return min(
            self.quarantine_backoff
            * self.quarantine_backoff_factor ** max(failures - 1, 0),
            self.max_quarantine_backoff,
        )


DEFAULT_RETRY_POLICY = RetryPolicy()


@dataclass
class BypassLink:
    """Runtime state of one directed bypass channel."""

    link: P2PLink
    src_port_name: str
    dst_port_name: str
    # Provisioned per establishment attempt (a rolled-back attempt frees
    # its zone; the next attempt gets a fresh one).
    zone_name: Optional[str] = None
    ring: Optional[Ring] = None
    stats: Optional[BypassStatsBlock] = None
    state: LinkState = LinkState.PENDING
    revoked: bool = False          # detector withdrew it before/while active
    attempts: int = 0              # establishment attempts consumed
    t_detected: float = 0.0
    t_active: float = 0.0
    t_teardown_started: float = 0.0
    t_removed: float = 0.0
    setup_request: Optional[AgentRequest] = None
    teardown_request: Optional[AgentRequest] = None

    @property
    def setup_time(self) -> float:
        """Seconds from p-2-p recognition to the sender using the bypass."""
        return self.t_active - self.t_detected


@dataclass
class QuarantineRecord:
    """Bookkeeping for a link held off the highway after repeated failure.

    ``reason`` distinguishes why the link is here: ``"establish"`` (the
    retry budget for setting it up ran out), ``"degraded"`` (it *was*
    ACTIVE and the watchdog executed a live fallback) or
    ``"peer_crashed"`` (an endpoint VM died abruptly and the emergency
    teardown dismantled the channel).  Degraded and crashed records
    additionally carry ``heartbeat_mark`` — the consumer port's
    heartbeat epoch at degrade/crash time — and re-admission is
    deferred until the epoch moves past it, i.e. until the peer (or a
    repaired replacement attached to the same dpdkr zone) demonstrably
    polls again.
    """

    link: P2PLink
    failures: int = 0      # quarantine entries (grows the backoff)
    until: float = 0.0     # earliest re-attempt time (simulated seconds)
    reason: str = "establish"
    heartbeat_mark: Optional[int] = None


class BypassManager:
    """Creates and destroys bypass channels in response to detector events."""

    def __init__(
        self,
        vswitchd: VSwitchd,
        agent: ComputeAgent,
        detector: P2PLinkDetector,
        env: Optional[Environment] = None,
        ring_size: int = 1024,
        retry_policy: RetryPolicy = DEFAULT_RETRY_POLICY,
        faults: Optional["FaultPlan"] = None,
        watchdog_policy: WatchdogPolicy = DEFAULT_WATCHDOG_POLICY,
    ) -> None:
        self.vswitchd = vswitchd
        self.registry: MemzoneRegistry = vswitchd.registry
        self.agent = agent
        self.detector = detector
        self.env = env
        self.ring_size = ring_size
        self.retry_policy = retry_policy
        self.faults = faults
        self.resilience = ResilienceCounters()
        self._zone_serial = itertools.count(1)
        self._active: Dict[int, BypassLink] = {}   # src ofport -> link
        self.history: List[BypassLink] = []
        self.stats_blocks: List[BypassStatsBlock] = []
        self.on_link_active: List[Callable[[BypassLink], None]] = []
        self.on_link_removed: List[Callable[[BypassLink], None]] = []
        # Runtime-health lifecycle hooks: (link, verdict) on live
        # fallback, (link) on heartbeat-gated re-admission, (src ofport)
        # when a re-admission is deferred by a silent peer.
        self.on_link_degraded: List[Callable] = []
        self.on_link_readmitted: List[Callable[[BypassLink], None]] = []
        self.on_readmission_deferred: List[Callable[[int], None]] = []
        # FIFO worker queue (simulation mode).
        self._ops: List = []
        self._ops_available = None
        self._worker = None
        # Self-healing state.
        self._quarantine: Dict[int, QuarantineRecord] = {}
        self._flap_history: Dict[int, List[float]] = {}
        self._damped: Set[int] = set()
        detector.on_created.append(self._on_p2p_created)
        detector.on_removed.append(self._on_p2p_removed)
        agent.hypervisor.on_destroy.append(self._on_vm_failure)
        self.failed_links: List[BypassLink] = []
        self.packets_lost_to_failures = 0
        # Mempools whose ownership ledgers cover this node's traffic;
        # wired by NfvNode.  A crashed guest's leases ("vm:<name>") are
        # swept back into these pools by the crash handler.
        self.mempools: List = []
        # Runtime health: periodic in simulation, check_once() in sync
        # tests (mirroring the worker-vs-direct split above).
        self.watchdog = BypassWatchdog(self, watchdog_policy)
        if env is not None:
            self._ops_available = env.event()
            self._worker = env.process(self._worker_process(),
                                       name="bypass.worker")
            self.watchdog.start(env)

    # -- state access ---------------------------------------------------------

    @property
    def active_links(self) -> Dict[int, BypassLink]:
        return dict(self._active)

    @property
    def quarantined_links(self) -> Dict[int, QuarantineRecord]:
        return dict(self._quarantine)

    def link_for_src(self, src_ofport: int) -> Optional[BypassLink]:
        return self._active.get(src_ofport)

    def port_has_bypass(self, ofport: int) -> bool:
        return any(
            bl.state == LinkState.ACTIVE
            and ofport in (bl.link.src_ofport, bl.link.dst_ofport)
            for bl in self._active.values()
        )

    # -- detector events -----------------------------------------------------------

    def _now(self) -> float:
        return self.env.now if self.env is not None else 0.0

    def _eligible_ports(self, link: P2PLink):
        """The (src, dst) DpdkrOvsPorts of an acceleratable link, or None."""
        src_port = self.vswitchd.datapath.ports.get(link.src_ofport)
        dst_port = self.vswitchd.datapath.ports.get(link.dst_ofport)
        if not isinstance(src_port, DpdkrOvsPort) or not isinstance(
            dst_port, DpdkrOvsPort
        ):
            return None  # only dpdkr-to-dpdkr connections are accelerated
        if not (self.agent.is_port_alive(src_port.name)
                and self.agent.is_port_alive(dst_port.name)):
            return None  # endpoint VM unknown or dead: leave it on the switch
        return src_port, dst_port

    def _on_p2p_created(self, link: P2PLink) -> None:
        if self._eligible_ports(link) is None:
            return
        key = link.src_ofport
        if key in self._quarantine:
            if self.env is not None:
                # The quarantine's scheduled re-attempt owns re-admission;
                # detector churn must not short-circuit the backoff.
                return
            # Sync mode has no clock to schedule with: the next detector
            # event *is* the re-attempt trigger.
            self.resilience.quarantine_reattempts += 1
        if self._flap_damped(key):
            return
        self._admit_link(link)

    def _flap_damped(self, key: int) -> bool:
        """Record a creation event; True when the link is churning too
        fast and admission was deferred to the damper."""
        if self.env is None:
            return False  # no clock to measure churn against
        now = self._now()
        window = self.retry_policy.flap_window
        history = self._flap_history.setdefault(key, [])
        history.append(now)
        while history and history[0] < now - window:
            history.pop(0)
        if len(history) <= self.retry_policy.flap_threshold:
            return False
        self.resilience.flaps_damped += 1
        if key not in self._damped:
            self._damped.add(key)
            self.env.process(self._damped_admit(key),
                             name="bypass.damper.%d" % key)
        return True

    def _damped_admit(self, key: int):
        """After the hold time, admit whatever link the detector holds now.

        A previous admission may still be winding down (revoked, waiting
        for the serialized worker to finish its establish + teardown);
        in that case hold again rather than dropping the current rule on
        the floor — the damper owns admission until the key is clean.
        """
        while True:
            yield self.env.timeout(self.retry_policy.flap_hold)
            current = self.detector.link_for(key)
            if current is None or key in self._quarantine:
                break  # rule gone, or quarantine owns re-admission
            old = self._active.get(key)
            if old is not None:
                if old.link == current and not old.revoked:
                    break  # the surviving rule is already being served
                continue  # stale link still tearing down: hold again
            self._admit_link(current)
            break
        self._damped.discard(key)

    def _admit_link(self, link: P2PLink) -> None:
        ports = self._eligible_ports(link)
        if ports is None:
            return
        src_port, dst_port = ports
        bypass_link = BypassLink(
            link=link,
            src_port_name=src_port.name,
            dst_port_name=dst_port.name,
            t_detected=self._now(),
        )
        self._active[link.src_ofport] = bypass_link
        self.history.append(bypass_link)
        self._enqueue_op(("establish", bypass_link))

    def _on_p2p_removed(self, link: P2PLink) -> None:
        record = self._quarantine.get(link.src_ofport)
        if record is not None and record.link == link and \
                self.env is not None:
            # The rule that kept failing is gone; stop re-attempting
            # (the scheduled re-attempt notices and drops the record
            # too, whichever runs first).  Sync mode has no scheduled
            # re-attempt, so there the record must survive removal:
            # a re-created rule is the only re-attempt trigger it has.
            del self._quarantine[link.src_ofport]
        bypass_link = self._active.get(link.src_ofport)
        if bypass_link is None or bypass_link.link != link:
            return
        bypass_link.revoked = True
        bypass_link.t_teardown_started = self._now()
        if bypass_link.state == LinkState.ACTIVE:
            self._enqueue_op(("teardown", bypass_link))
        # If still PENDING/ESTABLISHING, the worker notices `revoked`
        # right after establishment and queues the teardown itself.

    # -- operation execution ----------------------------------------------------------

    def _enqueue_op(self, op) -> None:
        if self.env is None:
            self._run_op_sync(op)
            return
        self._ops.append(op)
        if not self._ops_available.triggered:
            self._ops_available.succeed()

    def _worker_process(self):
        env = self.env
        while True:
            if not self._ops:
                self._ops_available = env.event()
                yield self._ops_available
                continue
            kind, bypass_link = self._ops.pop(0)
            if kind == "establish":
                yield from self._establish_sim(bypass_link)
            else:
                yield from self._teardown_sim(bypass_link)

    # provisioning --------------------------------------------------------------------

    def _provision(self, bypass_link: BypassLink) -> Optional[str]:
        """Reserve a fresh zone + ring + stats block for one attempt.

        Returns an error string on failure (nothing was allocated).
        """
        serial = next(self._zone_serial)
        zone_name = "bypass.%d.%s-%s" % (
            serial,
            bypass_link.src_port_name, bypass_link.dst_port_name,
        )
        try:
            zone = self.registry.reserve(zone_name, owner="ovs")
        except MemzoneError as error:
            return str(error)
        ring = zone.put("ring", Ring(
            "%s.ring" % zone_name, self.ring_size, RingMode.SP_SC,
            watermark=(self.ring_size * 3) // 4,
        ))
        # The generation tag pins this provisioning; the watchdog
        # validates against it so re-provisioned memory is never
        # mistaken for corruption (or vice versa).  Arming the plan
        # enables the ring.corrupt injection point on bypass rings only.
        ring.generation = serial
        ring.faults = self.faults
        # Ownership ledger: mbufs parked in the bypass ring are charged
        # to the ring, so a crash sweep knows exactly where they sit.
        ring.holder_token = "ring:%s" % zone_name
        stats = zone.put("stats", BypassStatsBlock(
            zone_name, bypass_link.link.src_ofport,
            bypass_link.link.dst_ofport,
        ))
        self.stats_blocks.append(stats)
        bypass_link.zone_name = zone_name
        bypass_link.ring = ring
        bypass_link.stats = stats
        return None

    # establish -----------------------------------------------------------------------

    def _establish_sim(self, bypass_link: BypassLink):
        policy = self.retry_policy
        bypass_link.state = LinkState.ESTABLISHING
        bypass_link.attempts += 1
        if bypass_link.ring is None:
            error = self._provision(bypass_link)
            if error is not None:
                self.resilience.provision_failures += 1
                self._attempt_failed(bypass_link)
                return
        self.resilience.establish_attempts += 1
        request = self.agent.setup_bypass(
            bypass_link.src_port_name,
            bypass_link.dst_port_name,
            bypass_link.zone_name,
            flow_id=bypass_link.link.flow_id,
        )
        bypass_link.setup_request = request
        yield self.env.any_of([
            request.done_event,
            self.env.timeout(policy.request_timeout),
        ])
        if request.completed and request.error is None:
            self._mark_active(bypass_link)
            if bypass_link.revoked:
                # Withdrawn while we were establishing: undo immediately.
                yield from self._teardown_sim(bypass_link)
            return
        if not request.completed:
            # Some step was silently lost: give up on the request and
            # reclaim whatever it plugged before going dark.
            self.resilience.timeouts += 1
            self.agent.cancel(
                request,
                "establishment exceeded %.3fs" % policy.request_timeout,
            )
        else:
            self.resilience.rpc_errors += 1
        self._rollback_partial(bypass_link)
        self._attempt_failed(bypass_link)

    def _run_op_sync(self, op) -> None:
        kind, bypass_link = op
        if kind == "establish":
            self._establish_once_sync(bypass_link)
        else:
            self._do_teardown_sync(bypass_link)

    def _establish_once_sync(self, bypass_link: BypassLink) -> None:
        bypass_link.state = LinkState.ESTABLISHING
        bypass_link.attempts += 1
        if bypass_link.ring is None:
            error = self._provision(bypass_link)
            if error is not None:
                self.resilience.provision_failures += 1
                self._attempt_failed(bypass_link)
                return
        self.resilience.establish_attempts += 1
        request = self.agent.setup_bypass(
            bypass_link.src_port_name,
            bypass_link.dst_port_name,
            bypass_link.zone_name,
            flow_id=bypass_link.link.flow_id,
        )
        bypass_link.setup_request = request
        if request.error is not None:
            # The agent aborted partway (fault injection, dead VM): the
            # link must not go ACTIVE on a half-configured channel.
            self.resilience.rpc_errors += 1
            self._rollback_partial(bypass_link)
            self._attempt_failed(bypass_link)
            return
        self._mark_active(bypass_link)
        if bypass_link.revoked:
            self._run_op_sync(("teardown", bypass_link))

    def _attempt_failed(self, bypass_link: BypassLink) -> None:
        """Decide what a failed attempt becomes: retry, quarantine, abort."""
        if bypass_link.revoked or not self._endpoints_alive(bypass_link):
            self.resilience.links_abandoned += 1
            self._abort_establishment(bypass_link)
            return
        if bypass_link.attempts >= self.retry_policy.max_attempts:
            self._enter_quarantine(bypass_link)
            return
        self.resilience.retries += 1
        if self.env is None:
            # No clock to back off against: re-attempt immediately.
            self._run_op_sync(("establish", bypass_link))
        else:
            self.env.process(
                self._retry_later(bypass_link),
                name="bypass.retry.%d" % bypass_link.link.src_ofport,
            )

    def _retry_later(self, bypass_link: BypassLink):
        yield self.env.timeout(
            self.retry_policy.retry_delay(bypass_link.attempts)
        )
        if bypass_link.revoked or not self._endpoints_alive(bypass_link):
            self.resilience.links_abandoned += 1
            self._abort_establishment(bypass_link)
            return
        self._enqueue_op(("establish", bypass_link))

    def _endpoints_alive(self, bypass_link: BypassLink) -> bool:
        return (self.agent.is_port_alive(bypass_link.src_port_name)
                and self.agent.is_port_alive(bypass_link.dst_port_name))

    def _mark_active(self, bypass_link: BypassLink) -> None:
        bypass_link.state = LinkState.ACTIVE
        bypass_link.t_active = self._now()
        record = self._quarantine.pop(bypass_link.link.src_ofport, None)
        if bypass_link.attempts > 1 or record is not None:
            self.resilience.links_recovered += 1
        if record is not None and record.reason in ("degraded",
                                                    "peer_crashed"):
            if record.reason == "degraded":
                self.resilience.degraded_readmissions += 1
            else:
                self.resilience.crashed_peer_readmissions += 1
            for callback in self.on_link_readmitted:
                callback(bypass_link)
        self._update_port_flags()
        for callback in self.on_link_active:
            callback(bypass_link)

    # quarantine ------------------------------------------------------------------------

    def _enter_quarantine(self, bypass_link: BypassLink,
                          reason: str = "establish",
                          heartbeat_mark: Optional[int] = None) -> None:
        """Degrade to the switch path: retry budget spent, or a live
        fallback just ran (``reason="degraded"``).

        The link keeps forwarding through the vSwitch exactly as before
        detection; establishment is re-attempted after a (growing)
        backoff rather than abandoned outright.  Degraded/crashed
        entries additionally wait for the consumer's port heartbeat to
        move past ``heartbeat_mark`` — re-admitting a bypass toward a
        still-frozen (or still-dead) peer would only re-strand packets.
        """
        self._quarantine_record(bypass_link, reason, heartbeat_mark)
        self.failed_links.append(bypass_link)
        self._finish_teardown(bypass_link)
        bypass_link.state = LinkState.QUARANTINED

    def _quarantine_record(self, bypass_link: BypassLink, reason: str,
                           heartbeat_mark: Optional[int]
                           ) -> QuarantineRecord:
        """Create/refresh the key's record and schedule the re-attempt.

        Shared between :meth:`_enter_quarantine` (which also runs the
        teardown bookkeeping) and the crash handler, whose emergency
        teardown has *already* finished the link — running
        ``_finish_teardown`` twice would double-fire the removal
        callbacks.
        """
        key = bypass_link.link.src_ofport
        record = self._quarantine.get(key)
        if record is None:
            record = QuarantineRecord(link=bypass_link.link)
            self._quarantine[key] = record
        record.link = bypass_link.link
        record.failures += 1
        record.reason = reason
        record.heartbeat_mark = heartbeat_mark
        self.resilience.quarantines += 1
        if self.env is not None:
            delay = self.retry_policy.quarantine_delay(record.failures)
            record.until = self._now() + delay
            self.env.process(
                self._quarantine_reattempt(key, record, delay),
                name="bypass.quarantine.%d" % key,
            )
        return record

    def _quarantine_reattempt(self, key: int, record: QuarantineRecord,
                              delay: float):
        yield self.env.timeout(delay)
        if self._quarantine.get(key) is not record:
            return  # cleared (rule removed, or the link recovered)
        current = self.detector.link_for(key)
        if current is None:
            del self._quarantine[key]
            return
        if key in self._active:
            return
        peer_silent = (record.reason in ("degraded", "peer_crashed")
                       and not self._peer_heartbeating(record))
        if peer_silent or self._eligible_ports(current) is None:
            # The consumer has not polled since the fallback/crash, or
            # an endpoint VM is (still) dead: hold the link on the
            # switch path and look again after another backoff (the
            # record keeps its failure count — a silent peer must not
            # reset the ladder).  Deferring on dead endpoints matters:
            # _admit_link would silently no-op and nothing would ever
            # re-schedule this record, stranding the link in quarantine
            # even after a repair revived the peer.
            self.resilience.readmissions_deferred += 1
            for callback in self.on_readmission_deferred:
                callback(key)
            record.until = self._now() + delay
            self.env.process(
                self._quarantine_reattempt(key, record, delay),
                name="bypass.quarantine.%d" % key,
            )
            return
        self.resilience.quarantine_reattempts += 1
        self._admit_link(current)

    def _peer_heartbeating(self, record: QuarantineRecord) -> bool:
        """Has the consumer polled since the mark was taken?"""
        if record.heartbeat_mark is None:
            return True
        port = self.vswitchd.datapath.ports.get(record.link.dst_ofport)
        if port is None:
            return True
        epoch = self.consumer_heartbeat_epoch(port.name)
        return epoch is None or epoch > record.heartbeat_mark

    # runtime health -----------------------------------------------------------------

    def heartbeat_zone_present(self, port_name: str) -> bool:
        """Does the port's dpdkr zone (the heartbeat's home) still exist?

        A vanished zone is peer-death evidence, not staleness: host-side
        port cleanup freed it, or a test fixture yanked it.  The
        watchdog checks this before any path does a blind
        ``registry.lookup`` (the crash-window race).
        """
        from repro.dpdk.dpdkr import dpdkr_zone_name

        return dpdkr_zone_name(port_name) in self.registry

    def consumer_heartbeat_epoch(self, port_name: str) -> Optional[int]:
        """The port's guest-published heartbeat epoch (None: no signal)."""
        from repro.dpdk.dpdkr import dpdkr_zone_name

        zone_name = dpdkr_zone_name(port_name)
        if zone_name not in self.registry:
            return None
        zone = self.registry.lookup(zone_name)
        if "heartbeat" not in zone:
            return None
        return zone.get("heartbeat").epoch

    def normal_backlog(self, port_name: str) -> int:
        """Occupancy of the port's normal (switch -> guest) ring."""
        from repro.dpdk.dpdkr import dpdkr_zone_name

        zone_name = dpdkr_zone_name(port_name)
        if zone_name not in self.registry:
            return 0
        return len(self.registry.lookup(zone_name).get("rx"))

    def degrade_link(self, bypass_link: BypassLink,
                     verdict: HealthState) -> None:
        """Emergency live fallback: the watchdog found the channel sick.

        The ordered-handover machinery run in reverse, synchronously (no
        sim time passes, so nothing can interleave):

        1. stall the sender (``TxState.STALLED`` — bursts refused with
           ring-full semantics);
        2. detach the receiver's bypass RX;
        3. salvage everything still in the bypass ring onto the
           receiver's *normal* channel, in ring order — receivers poll
           the normal channel first, so salvaged packets are delivered
           before anything the sender later pushes via the vSwitch;
        4. resume the sender on the switch path;
        5. unplug the zone from both endpoints and hand the link to the
           quarantine ladder with the ``degraded`` reason (heartbeat-
           gated automatic re-admission).

        Zero loss toward a living receiver, zero reordering — the same
        guarantee orderly teardown gives, under failure.
        """
        if bypass_link.state != LinkState.ACTIVE:
            return
        res = self.resilience
        if verdict == HealthState.STALLED:
            res.stalled_consumers += 1
        elif verdict == HealthState.WEDGED:
            res.wedged_guests += 1
        elif verdict == HealthState.DEAD_PEER:
            res.dead_peer_fallbacks += 1
        elif verdict == HealthState.PEER_CRASHED:
            res.peer_crashes += 1
        elif verdict == HealthState.CORRUPT:
            res.ring_integrity_failures += 1
        res.links_degraded += 1
        for callback in self.on_link_degraded:
            callback(bypass_link, verdict)
        bypass_link.state = LinkState.TEARING_DOWN
        bypass_link.t_teardown_started = self._now()
        src = bypass_link.src_port_name
        dst = bypass_link.dst_port_name
        src_alive = self.agent.is_port_alive(src)
        dst_alive = self.agent.is_port_alive(dst)
        if src_alive:
            self._try_direct_command(src, "detach_bypass",
                                     bypass_link.zone_name, "tx",
                                     stall=True)
        if dst_alive:
            # A frozen consumer still executes host-delivered control
            # commands: the wedge is in the app's poll loop, the PMD
            # state lives in shared memory the host can fix up.
            self._try_direct_command(dst, "detach_bypass",
                                     bypass_link.zone_name, "rx")
        leftovers = (bypass_link.ring.drain()
                     if bypass_link.ring is not None else [])
        # A CORRUPT verdict means some occupied slot may hold None (the
        # smashed packet): it is unrecoverable — counted lost, never
        # forwarded to the receiver as garbage.
        smashed = sum(1 for mbuf in leftovers if mbuf is None)
        if smashed:
            self.packets_lost_to_failures += smashed
            leftovers = [mbuf for mbuf in leftovers if mbuf is not None]
        if leftovers:
            salvaged = 0
            if dst_alive and self.heartbeat_zone_present(dst):
                from repro.dpdk.dpdkr import dpdkr_zone_name

                zone = self.registry.lookup(dpdkr_zone_name(dst))
                salvaged = zone.get("rx").enqueue_burst(leftovers)
                res.packets_salvaged += salvaged
            for mbuf in leftovers[salvaged:]:
                self.packets_lost_to_failures += 1
                mbuf.free()
        if src_alive:
            self._try_direct_command(src, "resume_tx",
                                     bypass_link.zone_name, "tx")
        if (bypass_link.zone_name is not None
                and bypass_link.zone_name in self.registry):
            zone = self.registry.lookup(bypass_link.zone_name)
            for port_name in (src, dst):
                owner = self.agent.owner_of(port_name)
                if owner in zone.mapped_by and owner in \
                        self.agent.hypervisor.vms:
                    self.agent.hypervisor.force_unplug(
                        owner, bypass_link.zone_name
                    )
        self._enter_quarantine(
            bypass_link,
            reason=("peer_crashed" if verdict == HealthState.PEER_CRASHED
                    else "degraded"),
            heartbeat_mark=self.consumer_heartbeat_epoch(dst),
        )

    # teardown ------------------------------------------------------------------------

    def _teardown_sim(self, bypass_link: BypassLink):
        if bypass_link.state != LinkState.ACTIVE:
            return
        bypass_link.state = LinkState.TEARING_DOWN
        request = self.agent.teardown_bypass(
            bypass_link.src_port_name,
            bypass_link.dst_port_name,
            bypass_link.zone_name,
            ring=bypass_link.ring,
        )
        bypass_link.teardown_request = request
        yield self.env.any_of([
            request.done_event,
            self.env.timeout(self.retry_policy.teardown_timeout),
        ])
        if not request.completed:
            self.resilience.timeouts += 1
            self.resilience.teardown_failures += 1
            self.agent.cancel(
                request,
                "teardown exceeded %.3fs" % self.retry_policy.teardown_timeout,
            )
            self._janitor_teardown(bypass_link)
        elif request.error is not None:
            self.resilience.teardown_failures += 1
            self._janitor_teardown(bypass_link)
        self._finish_teardown(bypass_link)

    def _do_teardown_sync(self, bypass_link: BypassLink) -> None:
        if bypass_link.state != LinkState.ACTIVE:
            return
        bypass_link.state = LinkState.TEARING_DOWN
        request = self.agent.teardown_bypass(
            bypass_link.src_port_name,
            bypass_link.dst_port_name,
            bypass_link.zone_name,
            ring=bypass_link.ring,
        )
        bypass_link.teardown_request = request
        if request.error is not None:
            self.resilience.teardown_failures += 1
            self._janitor_teardown(bypass_link)
        self._finish_teardown(bypass_link)

    # failure cleanup -------------------------------------------------------------------

    def _try_direct_command(self, port_name: str, command: str,
                            zone_name: Optional[str], role: str,
                            **extra) -> None:
        """Best-effort direct PMD command for rollback/janitor paths.

        Delivered host-side (no serial channel, no fault injection); a
        guest that never reached the state being undone simply rejects
        the command, which is exactly the don't-care case.  ``extra``
        rides along in the message args (e.g. ``stall=True`` for the
        degrade path's ordered stall).
        """
        from repro.dpdk.virtio_serial import ControlMessage

        if not self.agent.is_port_alive(port_name):
            return
        vm = self.agent.hypervisor.vms.get(self.agent.owner_of(port_name))
        if vm is None:
            return
        args = {
            "request_id": -1,
            "port_name": port_name,
            "zone_name": zone_name,
            "role": role,
        }
        args.update(extra)
        try:
            vm.serial.guest_handler(ControlMessage(command, args))
        except Exception:  # noqa: BLE001 - nothing was attached: done
            pass

    def _rollback_partial(self, bypass_link: BypassLink) -> None:
        """Undo whatever a failed establishment attempt left behind.

        The attempt may have died at any step: zones plugged into one or
        both VMs, the receiver configured, even the sender configured
        with only the completion reply lost.  Detach both PMD sides,
        count and free any packets stranded in the attempt's ring,
        unplug surviving mappings and release the zone.  Idempotent —
        abort paths may run it after a retry path already has.
        """
        self.resilience.rollbacks += 1
        # Detach before unplugging: the receiver resolves the ring
        # through the still-mapped zone.
        self._try_direct_command(bypass_link.dst_port_name, "detach_bypass",
                                 bypass_link.zone_name, "rx")
        self._try_direct_command(bypass_link.src_port_name, "detach_bypass",
                                 bypass_link.zone_name, "tx")
        if bypass_link.ring is not None:
            for mbuf in bypass_link.ring.drain():
                # The sender reached the bypass before the attempt was
                # abandoned; with the receiver detached these packets
                # are unrecoverable.
                self.packets_lost_to_failures += 1
                mbuf.free()
        if (bypass_link.zone_name is not None
                and bypass_link.zone_name in self.registry):
            zone = self.registry.lookup(bypass_link.zone_name)
            for port_name in (bypass_link.src_port_name,
                              bypass_link.dst_port_name):
                owner = self.agent.owner_of(port_name)
                if owner in zone.mapped_by and owner in \
                        self.agent.hypervisor.vms:
                    self.agent.hypervisor.force_unplug(
                        owner, bypass_link.zone_name
                    )
            if not zone.mapped_by:
                self.registry.free(bypass_link.zone_name)
                if (bypass_link.stats is not None
                        and bypass_link.stats.tx_packets == 0
                        and bypass_link.stats in self.stats_blocks):
                    # The attempt carried nothing; no counters to retain.
                    self.stats_blocks.remove(bypass_link.stats)
        # Force the next attempt to provision afresh.
        bypass_link.ring = None

    def _abort_establishment(self, bypass_link: BypassLink) -> None:
        """Terminal cleanup of a link whose establishment will not be
        retried (endpoint died, or the detector revoked it)."""
        self._rollback_partial(bypass_link)
        self.failed_links.append(bypass_link)
        self._finish_teardown(bypass_link)

    def _janitor_teardown(self, bypass_link: BypassLink) -> None:
        """Forcibly dismantle a channel whose orderly teardown failed.

        Ordering is best-effort at this point; the priority is that no
        guest keeps a mapping and no PMD stays wedged on a dead channel.
        """
        self._try_direct_command(bypass_link.src_port_name, "detach_bypass",
                                 bypass_link.zone_name, "tx")
        self._try_direct_command(bypass_link.src_port_name, "resume_tx",
                                 bypass_link.zone_name, "tx")
        self._try_direct_command(bypass_link.dst_port_name, "detach_bypass",
                                 bypass_link.zone_name, "rx")
        leftovers = (bypass_link.ring.drain()
                     if bypass_link.ring is not None else [])
        if leftovers:
            salvaged = 0
            if (self.agent.is_port_alive(bypass_link.dst_port_name)
                    and self.heartbeat_zone_present(
                        bypass_link.dst_port_name)):
                from repro.dpdk.dpdkr import dpdkr_zone_name

                zone = self.registry.lookup(
                    dpdkr_zone_name(bypass_link.dst_port_name)
                )
                salvaged = zone.get("rx").enqueue_burst(leftovers)
            for mbuf in leftovers[salvaged:]:
                self.packets_lost_to_failures += 1
                mbuf.free()
        if (bypass_link.zone_name is not None
                and bypass_link.zone_name in self.registry):
            zone = self.registry.lookup(bypass_link.zone_name)
            for port_name in (bypass_link.src_port_name,
                              bypass_link.dst_port_name):
                owner = self.agent.owner_of(port_name)
                if owner in zone.mapped_by and owner in \
                        self.agent.hypervisor.vms:
                    self.agent.hypervisor.force_unplug(
                        owner, bypass_link.zone_name
                    )

    def _finish_teardown(self, bypass_link: BypassLink) -> None:
        bypass_link.state = LinkState.REMOVED
        bypass_link.t_removed = self._now()
        current = self._active.get(bypass_link.link.src_ofport)
        if current is bypass_link:
            del self._active[bypass_link.link.src_ofport]
        if (bypass_link.zone_name is not None
                and bypass_link.zone_name in self.registry):
            zone = self.registry.lookup(bypass_link.zone_name)
            if not zone.mapped_by:
                self.registry.free(bypass_link.zone_name)
            # else: a mapping survived an abnormal path; the zone stays
            # allocated rather than yanking memory from under a guest.
        self._update_port_flags()
        for callback in self.on_link_removed:
            callback(bypass_link)

    # VM failure handling ----------------------------------------------------------------

    def _on_vm_failure(self, vm_name: str) -> None:
        """A VM died: immediately dismantle every bypass touching it.

        Unlike the orderly teardown, this runs synchronously even in
        simulation mode — it is the host-side janitor reacting to a
        death, and the surviving PMD is reconfigured by delivering the
        control message directly (the dead peer cannot participate in
        any protocol).  Packets sitting in a ring whose receiver died
        are unrecoverable and are counted in
        :attr:`packets_lost_to_failures`.

        When the death was a *crash* (abrupt process kill, per the
        hypervisor's crash record) two extra things happen: the torn
        link is quarantined with reason ``"peer_crashed"`` — so a
        repaired replacement VM gets its bypass back through the
        heartbeat-gated re-admission instead of waiting for detector
        churn — and every mbuf the ownership ledger charges to the dead
        guest is swept back into the node's mempools.
        """
        crashed = self.agent.hypervisor.was_crashed(vm_name)
        dead_ports = set(self.agent.ports_of(vm_name))
        for bypass_link in list(self._active.values()):
            if (bypass_link.src_port_name not in dead_ports
                    and bypass_link.dst_port_name not in dead_ports):
                continue
            if bypass_link.state == LinkState.ACTIVE:
                self._emergency_teardown(bypass_link, dead_ports)
                if crashed:
                    # If the detector later withdraws the rule, the
                    # scheduled re-attempt notices and drops the record.
                    self._quarantine_record(
                        bypass_link, "peer_crashed",
                        self.consumer_heartbeat_epoch(
                            bypass_link.dst_port_name),
                    )
                    bypass_link.state = LinkState.QUARANTINED
            else:
                # Mid-establishment: the agent's in-flight request fails
                # (dead-VM guards / failed reply events) and the worker
                # aborts the link when it resumes.
                bypass_link.revoked = True
        if crashed:
            self.resilience.peer_crashes += 1
            self._reclaim_dead_holder(vm_name)

    def _reclaim_dead_holder(self, vm_name: str) -> None:
        """Sweep the crashed guest's mbuf leases back into the pools."""
        holder = "vm:%s" % vm_name
        for pool in self.mempools:
            report = pool.reclaim(holder)
            self.resilience.mbufs_reclaimed += report.reclaimed

    def _emergency_teardown(self, bypass_link: BypassLink,
                            dead_ports) -> None:
        from repro.dpdk.virtio_serial import ControlMessage

        hypervisor = self.agent.hypervisor
        ring = bypass_link.ring
        src_dead = bypass_link.src_port_name in dead_ports
        dst_dead = bypass_link.dst_port_name in dead_ports
        bypass_link.state = LinkState.TEARING_DOWN
        bypass_link.revoked = True
        bypass_link.t_teardown_started = self._now()

        was_established = (bypass_link.setup_request is not None
                           and bypass_link.setup_request.completed
                           and bypass_link.setup_request.error is None)
        if not src_dead and was_established:
            self._direct_pmd_command(
                bypass_link.src_port_name, ControlMessage(
                    "detach_bypass",
                    {"request_id": -1,
                     "port_name": bypass_link.src_port_name,
                     "zone_name": bypass_link.zone_name, "role": "tx"},
                )
            )
        if dst_dead:
            # The receiver is gone: whatever sits in the ring is lost.
            for mbuf in ring.drain():
                self.packets_lost_to_failures += 1
                mbuf.free()
        elif was_established:
            # The sender is gone: no ordering hazard, salvage leftovers
            # onto the survivor's normal channel, then detach it.
            leftovers = ring.drain()
            if leftovers:
                accepted = 0
                if self.heartbeat_zone_present(bypass_link.dst_port_name):
                    from repro.dpdk.dpdkr import dpdkr_zone_name

                    zone = self.registry.lookup(
                        dpdkr_zone_name(bypass_link.dst_port_name)
                    )
                    accepted = zone.get("rx").enqueue_burst(leftovers)
                for mbuf in leftovers[accepted:]:
                    self.packets_lost_to_failures += 1
                    mbuf.free()
            self._direct_pmd_command(
                bypass_link.dst_port_name, ControlMessage(
                    "detach_bypass",
                    {"request_id": -1,
                     "port_name": bypass_link.dst_port_name,
                     "zone_name": bypass_link.zone_name, "role": "rx"},
                )
            )
        # Release the survivor's mapping; the dead VM's mapping was
        # already dropped by destroy_vm / crash_vm.
        if bypass_link.zone_name in self.registry:
            zone = self.registry.lookup(bypass_link.zone_name)
            for port_name in (bypass_link.src_port_name,
                              bypass_link.dst_port_name):
                owner = self.agent.owner_of(port_name)
                if owner in zone.mapped_by:
                    hypervisor.force_unplug(owner, bypass_link.zone_name)
        self.failed_links.append(bypass_link)
        self._finish_teardown(bypass_link)

    def _direct_pmd_command(self, port_name: str, message) -> None:
        """Deliver a control message to a (living) guest immediately."""
        vm = self.agent.hypervisor.vms[self.agent.owner_of(port_name)]
        vm.serial.guest_handler(message)

    # port flags ------------------------------------------------------------------------

    def _update_port_flags(self) -> None:
        """Keep DpdkrOvsPort.bypass_active in sync (observability only)."""
        involved = set()
        for bypass_link in self._active.values():
            if bypass_link.state == LinkState.ACTIVE:
                involved.add(bypass_link.link.src_ofport)
                involved.add(bypass_link.link.dst_ofport)
        for ofport, port in self.vswitchd.datapath.ports.items():
            if isinstance(port, DpdkrOvsPort):
                port.bypass_active = ofport in involved
