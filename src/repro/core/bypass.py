"""The bypass manager: from p-2-p detection to a live direct channel.

Listens to the :class:`~repro.core.detector.P2PLinkDetector` and drives
channel lifecycle through the compute agent:

* **establish** — reserve a fresh memzone holding the bypass ring and
  its :class:`~repro.core.stats.BypassStatsBlock`, then ask the agent to
  plug it into both VMs and reconfigure the PMDs (receiver before
  sender);
* **teardown** — ask the agent to detach the sender, drain, detach the
  receiver, unplug; afterwards release the zone.  The stats block is
  retained forever so flow/port statistics stay correct.

All operations run through a single FIFO worker (one compute agent, one
request at a time), which also serializes the detect-while-establishing
races: a link revoked mid-establishment is simply torn down right after
it becomes active.
"""

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.detector import P2PLink, P2PLinkDetector
from repro.core.stats import BypassStatsBlock
from repro.hypervisor.compute_agent import AgentRequest, ComputeAgent
from repro.mem.memzone import Memzone, MemzoneRegistry
from repro.mem.ring import Ring, RingMode
from repro.sim.engine import Environment
from repro.vswitch.ports import DpdkrOvsPort
from repro.vswitch.vswitchd import VSwitchd


class LinkState(enum.Enum):
    PENDING = "pending"
    ESTABLISHING = "establishing"
    ACTIVE = "active"
    TEARING_DOWN = "tearing_down"
    REMOVED = "removed"


@dataclass
class BypassLink:
    """Runtime state of one directed bypass channel."""

    link: P2PLink
    zone_name: str
    src_port_name: str
    dst_port_name: str
    ring: Ring
    stats: BypassStatsBlock
    state: LinkState = LinkState.PENDING
    revoked: bool = False          # detector withdrew it before/while active
    t_detected: float = 0.0
    t_active: float = 0.0
    t_teardown_started: float = 0.0
    t_removed: float = 0.0
    setup_request: Optional[AgentRequest] = None
    teardown_request: Optional[AgentRequest] = None

    @property
    def setup_time(self) -> float:
        """Seconds from p-2-p recognition to the sender using the bypass."""
        return self.t_active - self.t_detected


class BypassManager:
    """Creates and destroys bypass channels in response to detector events."""

    def __init__(
        self,
        vswitchd: VSwitchd,
        agent: ComputeAgent,
        detector: P2PLinkDetector,
        env: Optional[Environment] = None,
        ring_size: int = 1024,
    ) -> None:
        self.vswitchd = vswitchd
        self.registry: MemzoneRegistry = vswitchd.registry
        self.agent = agent
        self.detector = detector
        self.env = env
        self.ring_size = ring_size
        self._zone_serial = itertools.count(1)
        self._active: Dict[int, BypassLink] = {}   # src ofport -> link
        self.history: List[BypassLink] = []
        self.stats_blocks: List[BypassStatsBlock] = []
        self.on_link_active: List[Callable[[BypassLink], None]] = []
        self.on_link_removed: List[Callable[[BypassLink], None]] = []
        # FIFO worker queue (simulation mode).
        self._ops: List = []
        self._ops_available = None
        self._worker = None
        detector.on_created.append(self._on_p2p_created)
        detector.on_removed.append(self._on_p2p_removed)
        agent.hypervisor.on_destroy.append(self._on_vm_failure)
        self.failed_links: List[BypassLink] = []
        self.packets_lost_to_failures = 0
        if env is not None:
            self._ops_available = env.event()
            self._worker = env.process(self._worker_process(),
                                       name="bypass.worker")

    # -- state access ---------------------------------------------------------

    @property
    def active_links(self) -> Dict[int, BypassLink]:
        return dict(self._active)

    def link_for_src(self, src_ofport: int) -> Optional[BypassLink]:
        return self._active.get(src_ofport)

    def port_has_bypass(self, ofport: int) -> bool:
        return any(
            bl.state == LinkState.ACTIVE
            and ofport in (bl.link.src_ofport, bl.link.dst_ofport)
            for bl in self._active.values()
        )

    # -- detector events -----------------------------------------------------------

    def _now(self) -> float:
        return self.env.now if self.env is not None else 0.0

    def _on_p2p_created(self, link: P2PLink) -> None:
        src_port = self.vswitchd.datapath.ports.get(link.src_ofport)
        dst_port = self.vswitchd.datapath.ports.get(link.dst_ofport)
        if not isinstance(src_port, DpdkrOvsPort) or not isinstance(
            dst_port, DpdkrOvsPort
        ):
            return  # only dpdkr-to-dpdkr connections are accelerated
        if not (self.agent.is_port_alive(src_port.name)
                and self.agent.is_port_alive(dst_port.name)):
            return  # endpoint VM unknown or dead: leave it on the switch
        zone_name = "bypass.%d.%s-%s" % (
            next(self._zone_serial), src_port.name, dst_port.name
        )
        zone = self.registry.reserve(zone_name, owner="ovs")
        ring = zone.put("ring", Ring(
            "%s.ring" % zone_name, self.ring_size, RingMode.SP_SC,
            watermark=(self.ring_size * 3) // 4,
        ))
        stats = zone.put("stats", BypassStatsBlock(
            zone_name, link.src_ofport, link.dst_ofport
        ))
        self.stats_blocks.append(stats)
        bypass_link = BypassLink(
            link=link,
            zone_name=zone_name,
            src_port_name=src_port.name,
            dst_port_name=dst_port.name,
            ring=ring,
            stats=stats,
            t_detected=self._now(),
        )
        self._active[link.src_ofport] = bypass_link
        self.history.append(bypass_link)
        self._enqueue_op(("establish", bypass_link))

    def _on_p2p_removed(self, link: P2PLink) -> None:
        bypass_link = self._active.get(link.src_ofport)
        if bypass_link is None or bypass_link.link != link:
            return
        bypass_link.revoked = True
        bypass_link.t_teardown_started = self._now()
        if bypass_link.state == LinkState.ACTIVE:
            self._enqueue_op(("teardown", bypass_link))
        # If still PENDING/ESTABLISHING, the worker notices `revoked`
        # right after establishment and queues the teardown itself.

    # -- operation execution ----------------------------------------------------------

    def _enqueue_op(self, op) -> None:
        if self.env is None:
            self._run_op_sync(op)
            return
        self._ops.append(op)
        if not self._ops_available.triggered:
            self._ops_available.succeed()

    def _worker_process(self):
        env = self.env
        while True:
            if not self._ops:
                self._ops_available = env.event()
                yield self._ops_available
                continue
            kind, bypass_link = self._ops.pop(0)
            if kind == "establish":
                yield from self._establish_sim(bypass_link)
            else:
                yield from self._teardown_sim(bypass_link)

    # establish -----------------------------------------------------------------------

    def _establish_sim(self, bypass_link: BypassLink):
        bypass_link.state = LinkState.ESTABLISHING
        request = self.agent.setup_bypass(
            bypass_link.src_port_name,
            bypass_link.dst_port_name,
            bypass_link.zone_name,
            flow_id=bypass_link.link.flow_id,
        )
        bypass_link.setup_request = request
        yield request.done_event
        if request.error is not None:
            # A VM died while we were establishing: abort and clean up.
            self._abort_establishment(bypass_link)
            return
        self._mark_active(bypass_link)
        if bypass_link.revoked:
            # Withdrawn while we were establishing: undo immediately.
            yield from self._teardown_sim(bypass_link)

    def _run_op_sync(self, op) -> None:
        kind, bypass_link = op
        if kind == "establish":
            bypass_link.state = LinkState.ESTABLISHING
            bypass_link.setup_request = self.agent.setup_bypass(
                bypass_link.src_port_name,
                bypass_link.dst_port_name,
                bypass_link.zone_name,
                flow_id=bypass_link.link.flow_id,
            )
            self._mark_active(bypass_link)
            if bypass_link.revoked:
                self._run_op_sync(("teardown", bypass_link))
        else:
            self._do_teardown_sync(bypass_link)

    def _mark_active(self, bypass_link: BypassLink) -> None:
        bypass_link.state = LinkState.ACTIVE
        bypass_link.t_active = self._now()
        self._update_port_flags()
        for callback in self.on_link_active:
            callback(bypass_link)

    # teardown ------------------------------------------------------------------------

    def _teardown_sim(self, bypass_link: BypassLink):
        if bypass_link.state != LinkState.ACTIVE:
            return
        bypass_link.state = LinkState.TEARING_DOWN
        request = self.agent.teardown_bypass(
            bypass_link.src_port_name,
            bypass_link.dst_port_name,
            bypass_link.zone_name,
            ring=bypass_link.ring,
        )
        bypass_link.teardown_request = request
        yield request.done_event
        self._finish_teardown(bypass_link)

    def _do_teardown_sync(self, bypass_link: BypassLink) -> None:
        if bypass_link.state != LinkState.ACTIVE:
            return
        bypass_link.state = LinkState.TEARING_DOWN
        bypass_link.teardown_request = self.agent.teardown_bypass(
            bypass_link.src_port_name,
            bypass_link.dst_port_name,
            bypass_link.zone_name,
            ring=bypass_link.ring,
        )
        self._finish_teardown(bypass_link)

    def _abort_establishment(self, bypass_link: BypassLink) -> None:
        """Clean up a link whose establishment failed (endpoint died).

        The surviving VM may have had the zone plugged and its RX side
        configured before the failure; undo whatever exists.
        """
        from repro.dpdk.virtio_serial import ControlMessage

        request = bypass_link.setup_request
        zone = self.registry.lookup(bypass_link.zone_name)
        if request is not None and request.t_rx_configured:
            if self.agent.is_port_alive(bypass_link.dst_port_name):
                self._direct_pmd_command(
                    bypass_link.dst_port_name, ControlMessage(
                        "detach_bypass",
                        {"request_id": -1,
                         "port_name": bypass_link.dst_port_name,
                         "zone_name": bypass_link.zone_name,
                         "role": "rx"},
                    )
                )
        for port_name in (bypass_link.src_port_name,
                          bypass_link.dst_port_name):
            owner = self.agent.owner_of(port_name)
            if owner in zone.mapped_by and owner in \
                    self.agent.hypervisor.vms:
                self.agent.hypervisor.force_unplug(
                    owner, bypass_link.zone_name
                )
        self.failed_links.append(bypass_link)
        self._finish_teardown(bypass_link)

    def _finish_teardown(self, bypass_link: BypassLink) -> None:
        bypass_link.state = LinkState.REMOVED
        bypass_link.t_removed = self._now()
        current = self._active.get(bypass_link.link.src_ofport)
        if current is bypass_link:
            del self._active[bypass_link.link.src_ofport]
        zone = self.registry.lookup(bypass_link.zone_name)
        if not zone.mapped_by:
            self.registry.free(bypass_link.zone_name)
        # else: a mapping survived an abnormal path; the zone stays
        # allocated rather than yanking memory from under a guest.
        self._update_port_flags()
        for callback in self.on_link_removed:
            callback(bypass_link)

    # VM failure handling ----------------------------------------------------------------

    def _on_vm_failure(self, vm_name: str) -> None:
        """A VM died: immediately dismantle every bypass touching it.

        Unlike the orderly teardown, this runs synchronously even in
        simulation mode — it is the host-side janitor reacting to a
        crash, and the surviving PMD is reconfigured by delivering the
        control message directly (the dead peer cannot participate in
        any protocol).  Packets sitting in a ring whose receiver died
        are unrecoverable and are counted in
        :attr:`packets_lost_to_failures`.
        """
        dead_ports = set(self.agent.ports_of(vm_name))
        for bypass_link in list(self._active.values()):
            if (bypass_link.src_port_name not in dead_ports
                    and bypass_link.dst_port_name not in dead_ports):
                continue
            if bypass_link.state == LinkState.ACTIVE:
                self._emergency_teardown(bypass_link, dead_ports)
            else:
                # Mid-establishment: the agent's in-flight request fails
                # (dead-VM guards / failed reply events) and the worker
                # aborts the link when it resumes.
                bypass_link.revoked = True

    def _emergency_teardown(self, bypass_link: BypassLink,
                            dead_ports) -> None:
        from repro.dpdk.virtio_serial import ControlMessage

        hypervisor = self.agent.hypervisor
        ring = bypass_link.ring
        src_dead = bypass_link.src_port_name in dead_ports
        dst_dead = bypass_link.dst_port_name in dead_ports
        bypass_link.state = LinkState.TEARING_DOWN
        bypass_link.revoked = True
        bypass_link.t_teardown_started = self._now()

        was_established = (bypass_link.setup_request is not None
                           and bypass_link.setup_request.completed)
        if not src_dead and was_established:
            self._direct_pmd_command(
                bypass_link.src_port_name, ControlMessage(
                    "detach_bypass",
                    {"request_id": -1,
                     "port_name": bypass_link.src_port_name,
                     "zone_name": bypass_link.zone_name, "role": "tx"},
                )
            )
        if dst_dead:
            # The receiver is gone: whatever sits in the ring is lost.
            for mbuf in ring.drain():
                self.packets_lost_to_failures += 1
                mbuf.free()
        elif was_established:
            # The sender is gone: no ordering hazard, salvage leftovers
            # onto the survivor's normal channel, then detach it.
            leftovers = ring.drain()
            if leftovers:
                from repro.dpdk.dpdkr import dpdkr_zone_name

                zone = self.registry.lookup(
                    dpdkr_zone_name(bypass_link.dst_port_name)
                )
                accepted = zone.get("rx").enqueue_burst(leftovers)
                for mbuf in leftovers[accepted:]:
                    self.packets_lost_to_failures += 1
                    mbuf.free()
            self._direct_pmd_command(
                bypass_link.dst_port_name, ControlMessage(
                    "detach_bypass",
                    {"request_id": -1,
                     "port_name": bypass_link.dst_port_name,
                     "zone_name": bypass_link.zone_name, "role": "rx"},
                )
            )
        # Release the survivor's mapping; the dead VM's mapping was
        # already dropped by destroy_vm.
        zone = self.registry.lookup(bypass_link.zone_name)
        for port_name in (bypass_link.src_port_name,
                          bypass_link.dst_port_name):
            owner = self.agent.owner_of(port_name)
            if owner in zone.mapped_by:
                hypervisor.force_unplug(owner, bypass_link.zone_name)
        self.failed_links.append(bypass_link)
        self._finish_teardown(bypass_link)

    def _direct_pmd_command(self, port_name: str, message) -> None:
        """Deliver a control message to a (living) guest immediately."""
        vm = self.agent.hypervisor.vms[self.agent.owner_of(port_name)]
        vm.serial.guest_handler(message)

    # port flags ------------------------------------------------------------------------

    def _update_port_flags(self) -> None:
        """Keep DpdkrOvsPort.bypass_active in sync (observability only)."""
        involved = set()
        for bypass_link in self._active.values():
            if bypass_link.state == LinkState.ACTIVE:
                involved.add(bypass_link.link.src_ofport)
                involved.add(bypass_link.link.dst_ofport)
        for ofport, port in self.vswitchd.datapath.ports.items():
            if isinstance(port, DpdkrOvsPort):
                port.bypass_active = ofport in involved
