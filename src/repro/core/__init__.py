"""The paper's contribution: transparent p-2-p bypass for OVS-DPDK.

Four localized additions, mirroring the prototype's patches:

* :mod:`repro.core.detector` — the p-2-p link detector inside vswitchd:
  analyses flow-table changes and decides, per dpdkr port, whether the
  rules currently forward *all* of its traffic to exactly one other
  dpdkr port.
* :mod:`repro.core.pmd` — the modified dpdkr PMD: one port, two
  channels (normal + bypass), plus the in-guest manager that executes
  virtio-serial reconfiguration commands.
* :mod:`repro.core.stats` — the shared-memory counters the sending PMD
  maintains for OpenFlow rule/port statistics while the vSwitch is out
  of the path.
* :mod:`repro.core.bypass` — the bypass manager: drives channel
  lifecycle (create zone -> plug receiver -> plug sender -> active;
  reverse for teardown) through the compute agent.
* :mod:`repro.core.transparency` — the stats augmentor that merges
  shared-memory counters into ordinary OpenFlow replies, plus the
  one-call :func:`enable_transparent_highway` wiring helper.
"""

from repro.core.bypass import BypassLink, BypassManager, LinkState
from repro.core.detector import P2PLink, P2PLinkDetector
from repro.core.pmd import DualChannelPmd, GuestPmdManager
from repro.core.stats import BypassStatsBlock
from repro.core.transparency import (
    BypassStatsAugmentor,
    enable_transparent_highway,
)

__all__ = [
    "BypassLink",
    "BypassManager",
    "BypassStatsAugmentor",
    "DualChannelPmd",
    "GuestPmdManager",
    "LinkState",
    "P2PLink",
    "P2PLinkDetector",
    "BypassStatsBlock",
    "enable_transparent_highway",
]
