"""The p-2-p link detector: the new vswitchd module.

Watches the bridge's flow table and decides, for every dpdkr port A,
whether the installed rules currently steer *all* traffic received from
A to exactly one other dpdkr port B with no side effects — the condition
under which the vSwitch can be bypassed without changing semantics.

Detection condition (see DESIGN.md §5.1):

1. there is a *total* rule for A — match is exactly ``in_port=A`` (every
   other field wildcarded) — whose actions are a single plain
   ``output:B``;
2. every other rule that can match traffic from A (``in_port=A`` or
   in_port wildcarded) and that would win over the total rule for some
   packet (higher priority, or same priority but earlier in the table)
   also forwards purely to the same B.

Rules strictly shadowed by the total rule cannot attract any of A's
packets and are ignored.  Rules with set-field/controller/multi-output
actions in the winning set disqualify the port: the vSwitch performs
work the bypass could not reproduce.

The detector is purely analytical: it emits ``on_created(P2PLink)`` /
``on_removed(P2PLink)`` callbacks; acting on them is the bypass
manager's job.
"""

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.openflow.actions import OutputAction, is_pure_single_output
from repro.openflow.table import FlowEntry, FlowTable


@dataclass(frozen=True)
class P2PLink:
    """A detected directed point-to-point link."""

    src_ofport: int
    dst_ofport: int
    flow_id: int      # the total rule implementing the link
    cookie: int = 0

    def __str__(self) -> str:
        return "p2p %d->%d (flow %d)" % (
            self.src_ofport, self.dst_ofport, self.flow_id
        )


LinkCallback = Callable[[P2PLink], None]


class P2PLinkDetector:
    """Analyses flowmod-driven table changes into p-2-p link events."""

    def __init__(
        self,
        table: FlowTable,
        is_eligible_port: Optional[Callable[[int], bool]] = None,
    ) -> None:
        """``is_eligible_port(ofport)`` restricts endpoints (the prototype
        only bypasses dpdkr-to-dpdkr connections); default allows all."""
        self.table = table
        self.is_eligible_port = is_eligible_port or (lambda _ofport: True)
        self.on_created: List[LinkCallback] = []
        self.on_removed: List[LinkCallback] = []
        self._links: Dict[int, P2PLink] = {}  # src ofport -> link
        self.analyses = 0
        self.events_emitted = 0
        table.add_listener(self._on_table_change)

    # -- public state ---------------------------------------------------------

    @property
    def links(self) -> Dict[int, P2PLink]:
        """Currently detected links, keyed by source ofport (copy)."""
        return dict(self._links)

    def link_for(self, src_ofport: int) -> Optional[P2PLink]:
        return self._links.get(src_ofport)

    # -- change handling ----------------------------------------------------------

    def _on_table_change(self, kind: str, entry: FlowEntry) -> None:
        affected = self._affected_ports(entry)
        for ofport in affected:
            self._reanalyze(ofport)

    def _affected_ports(self, entry: FlowEntry) -> List[int]:
        in_port = entry.match.in_port
        if in_port is not None:
            # A rule pinned to one input port can only change that port's
            # analysis... and the analyses of ports currently linked *to*
            # it are unaffected (links are directional).
            return [in_port]
        # in_port wildcarded: every currently-known or rule-referenced
        # port could be affected; re-analyse all ports seen in the table
        # plus those with existing links.
        ports = set(self._links)
        for existing in self.table.entries():
            existing_port = existing.match.in_port
            if existing_port is not None:
                ports.add(existing_port)
        return sorted(ports)

    def refresh_all(self) -> None:
        """Full recompute (used after attaching to a populated table)."""
        ports = set(self._links)
        for entry in self.table.entries():
            if entry.match.in_port is not None:
                ports.add(entry.match.in_port)
        for ofport in sorted(ports):
            self._reanalyze(ofport)

    def _reanalyze(self, ofport: int) -> None:
        new_link = self.analyze_port(ofport)
        old_link = self._links.get(ofport)
        if new_link == old_link:
            return
        if old_link is not None:
            del self._links[ofport]
            self._emit(self.on_removed, old_link)
        if new_link is not None:
            self._links[ofport] = new_link
            self._emit(self.on_created, new_link)

    def _emit(self, callbacks: List[LinkCallback], link: P2PLink) -> None:
        self.events_emitted += 1
        for callback in callbacks:
            callback(link)

    # -- the analysis itself ----------------------------------------------------------

    def analyze_port(self, ofport: int) -> Optional[P2PLink]:
        """Decide whether ``ofport`` currently has a p-2-p link.

        Returns the link, or None.  Pure function of the flow table.
        """
        self.analyses += 1
        if not self.is_eligible_port(ofport):
            return None
        entries = self.table.entries()  # highest priority first, FIFO ties

        # 1. Find the winning total rule for this port: the first entry in
        #    lookup order whose match is exactly in_port=ofport.
        total_rule: Optional[FlowEntry] = None
        total_index = -1
        for index, entry in enumerate(entries):
            if entry.match.is_total_for_port(ofport):
                total_rule = entry
                total_index = index
                break
        if total_rule is None:
            return None
        if not is_pure_single_output(total_rule.actions):
            return None
        dst_ofport = total_rule.actions[0].port
        if dst_ofport == ofport or not self.is_eligible_port(dst_ofport):
            return None

        # 2. Every rule that would beat the total rule for some packet
        #    from this port must also forward purely to the same port.
        for entry in entries[:total_index]:
            in_port = entry.match.in_port
            if in_port is not None and in_port != ofport:
                continue  # cannot match traffic from this port
            if not is_pure_single_output(entry.actions):
                return None
            if entry.actions[0].port != dst_ofport:
                return None

        return P2PLink(
            src_ofport=ofport,
            dst_ofport=dst_ofport,
            flow_id=total_rule.flow_id,
            cookie=total_rule.cookie,
        )
