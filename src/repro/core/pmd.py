"""The modified dpdkr PMD: one port, two channels.

:class:`DualChannelPmd` exposes the standard ethdev interface while
internally driving the *normal* channel (shared rings with the vSwitch)
and, when configured, a *bypass* channel (a ring shared directly with the
peer VM).  The application cannot tell which is in use — the paper's
transparency-at-the-VNF property.

Rules the prototype implements, kept here exactly:

* TX rides the bypass when attached; every bypass TX bumps the
  OpenFlow rule/port counters in the shared stats block.
* RX always merges bypass *and* normal channels, because the controller
  can still inject packet-outs through the vSwitch onto the normal
  channel mid-bypass.
* Attach/detach arrive over virtio-serial and are executed by the
  per-VM :class:`GuestPmdManager`, which can only reach memzones that
  have actually been hot-plugged into its VM.

One refinement over the paper's sketch: channel handovers are *ordered*
(:class:`TxState`).  The paper only promises transparency; a naive flip
lets a packet on the new channel overtake in-flight packets on the old
one.  Here establishment gates the sender on its normal TX ring
draining (receivers poll the normal channel first), and teardown stalls
the sender while the host re-homes bypass leftovers — so a flow crosses
both transitions with no loss *and* no reordering, which the
integration suite asserts end-to-end.
"""

import enum
from typing import Callable, Dict, List, Optional

from repro.dpdk.dpdkr import DpdkrPmd, DpdkrSharedRings, dpdkr_zone_name
from repro.dpdk.virtio_serial import ControlMessage
from repro.core.stats import BypassStatsBlock
from repro.faults import PMD_RX_POLL, FaultMode, FaultPlan
from repro.hypervisor.qemu import VirtualMachine
from repro.mem.ring import Ring
from repro.packet.mbuf import Mbuf


class TxState(enum.Enum):
    """The TX side's channel-handover state machine.

    ``NORMAL -> PENDING_BYPASS -> BYPASS`` on establishment: after the
    attach command the PMD keeps transmitting on the normal channel
    until its TX ring toward the vSwitch has drained, then flips — so a
    packet can never overtake an earlier one still inside the vSwitch
    (ordered handover; the receiver polls the normal channel first).

    ``BYPASS -> STALLED -> NORMAL`` on teardown: the detach command
    stalls TX entirely (bursts are refused, standard ring-full
    backpressure) while the host salvages the bypass ring's leftovers
    onto the normal channel in order; the resume command then releases
    the sender onto the vSwitch path.
    """

    NORMAL = "normal"
    PENDING_BYPASS = "pending_bypass"
    BYPASS = "bypass"
    STALLED = "stalled"


class DualChannelPmd(DpdkrPmd):
    """dpdkr PMD handling a normal channel plus an optional bypass."""

    def __init__(self, port_id: int, rings: DpdkrSharedRings) -> None:
        super().__init__(port_id, rings)
        self.tx_state = TxState.NORMAL
        self.bypass_tx_ring: Optional[Ring] = None
        # A port can be the *destination* of several p-2-p links (two
        # different source ports each steering all their traffic here),
        # so the RX side is a list of rings, polled round-robin.
        self.bypass_rx_rings: List[Ring] = []
        self._rx_rotation = 0
        # Consumer-side stats blocks (heartbeat targets), keyed by ring
        # identity; populated when the attach command carries one.
        self._rx_stats: Dict[int, BypassStatsBlock] = {}
        self.bypass_stats: Optional[BypassStatsBlock] = None
        self.bypass_flow_id: Optional[int] = None
        # Runtime-fault hooks: a plan with pmd.rx_poll specs can freeze
        # this consumer; clock (sim time) bounds DELAY-mode freezes.
        self.faults: Optional[FaultPlan] = None
        self.clock: Optional[Callable[[], float]] = None
        self._rx_frozen_until: Optional[float] = None
        self._rx_frozen_forever = False
        # The paper's stats trick costs a little CPU on every bypass TX;
        # accounting_enabled=False is the ablation that measures it (and
        # demonstrates the transparency that is lost without it).
        self.accounting_enabled = True
        self.stats_update_cost = 4e-9
        # ordered_handover=False reverts to the paper's naive flip
        # (immediate switch, bypass polled first) — the A-handover
        # ablation measures the reordering that this reintroduces.
        self.ordered_handover = True
        # Observability counters.
        self.tx_via_bypass = 0
        self.tx_via_normal = 0
        self.rx_via_bypass = 0
        self.rx_via_normal = 0
        self.tx_stall_rejects = 0
        # Corrupted (None) bypass-ring slots dropped on dequeue.
        self.rx_integrity_drops = 0
        # Bursts that left the bypass ring above its watermark: the
        # receiver is falling behind (congestion signal in bypass/show).
        self.bypass_congestion_events = 0
        # Ownership-ledger token (``"vm:<name>"``), set by the
        # GuestPmdManager: every received mbuf is charged to this VM
        # until it is transmitted or freed, so a crash can reclaim
        # buffers sitting in guest memory.
        self.holder_token: Optional[str] = None
        # Flipped by GuestPmdManager.kill() when the VM process dies
        # abruptly: a dead guest polls nothing and accepts nothing.
        self.killed = False

    # -- channel configuration (driven over virtio-serial) -------------------

    def attach_bypass_tx(self, ring: Ring, stats: BypassStatsBlock,
                         flow_id: int) -> None:
        """Arm the bypass TX; it takes over once the normal ring drains.

        Accounting is attributed to OpenFlow rule ``flow_id``.
        """
        if self.bypass_tx_ring is not None:
            raise RuntimeError(
                "port %r already has a bypass TX channel" % self.name
            )
        self.bypass_tx_ring = ring
        self.bypass_stats = stats
        self.bypass_flow_id = flow_id
        self.tx_state = (TxState.PENDING_BYPASS if self.ordered_handover
                         else TxState.BYPASS)

    def detach_bypass_tx(self, stall: bool = False) -> None:
        """Leave the bypass.

        With ``stall=True`` (the orderly teardown protocol) TX is held
        in STALLED until :meth:`resume_tx`, giving the host a window to
        re-home the bypass ring's contents without reordering; with
        ``stall=False`` (failure handling, unit tests) TX reverts to the
        normal channel immediately.
        """
        if self.bypass_tx_ring is None:
            raise RuntimeError("port %r has no bypass TX channel" % self.name)
        self.bypass_tx_ring = None
        self.bypass_stats = None
        self.bypass_flow_id = None
        self.tx_state = (TxState.STALLED
                         if stall and self.ordered_handover
                         else TxState.NORMAL)

    def resume_tx(self) -> None:
        """Release a STALLED sender onto the normal channel.

        A no-op on an already-NORMAL port (a naive-handover PMD skips
        the stall, but the agent's teardown protocol still sends the
        resume command).
        """
        if self.tx_state == TxState.NORMAL:
            return
        if self.tx_state != TxState.STALLED:
            raise RuntimeError(
                "port %r TX is %s, not stalled"
                % (self.name, self.tx_state.value)
            )
        self.tx_state = TxState.NORMAL

    def attach_bypass_rx(self, ring: Ring,
                         stats: Optional[BypassStatsBlock] = None) -> None:
        """Start polling ``ring`` in addition to the normal channel.

        When ``stats`` (the channel's shared block) is given, every poll
        of the ring publishes a heartbeat epoch and the cumulative
        dequeue cursor into it — the consumer half of the liveness
        protocol the host watchdog reads.
        """
        if ring in self.bypass_rx_rings:
            raise RuntimeError(
                "port %r already polls this bypass ring" % self.name
            )
        self.bypass_rx_rings.append(ring)
        if stats is not None:
            self._rx_stats[id(ring)] = stats

    def detach_bypass_rx(self, ring: Optional[Ring] = None) -> None:
        """Stop polling ``ring`` (or the only attached ring)."""
        if not self.bypass_rx_rings:
            raise RuntimeError("port %r has no bypass RX channel" % self.name)
        if ring is None:
            if len(self.bypass_rx_rings) > 1:
                raise RuntimeError(
                    "port %r polls %d bypass rings; specify which"
                    % (self.name, len(self.bypass_rx_rings))
                )
            ring = self.bypass_rx_rings[0]
        if ring not in self.bypass_rx_rings:
            raise RuntimeError(
                "port %r does not poll that bypass ring" % self.name
            )
        self.bypass_rx_rings.remove(ring)
        self._rx_stats.pop(id(ring), None)

    @property
    def bypass_tx_active(self) -> bool:
        return self.tx_state in (TxState.PENDING_BYPASS, TxState.BYPASS)

    @property
    def tx_extra_cost(self) -> float:
        if self.tx_state == TxState.BYPASS and self.accounting_enabled:
            return self.stats_update_cost
        return 0.0

    @property
    def bypass_rx_active(self) -> bool:
        return bool(self.bypass_rx_rings)

    # -- data path ------------------------------------------------------------

    def _rx_frozen(self) -> bool:
        """True while an injected consumer freeze is in effect."""
        if self._rx_frozen_forever:
            return True
        if self._rx_frozen_until is not None:
            if self.clock is not None and self.clock() < self._rx_frozen_until:
                return True
            self._rx_frozen_until = None
        return False

    def _apply_rx_fault(self, action) -> None:
        """Map a ``pmd.rx_poll`` injection onto a consumer misbehaviour.

        DROP skips one poll, DELAY freezes the consumer for
        ``action.delay`` seconds of sim time (one poll when no clock is
        wired), ERROR/CRASH wedge the guest permanently — only external
        recovery (re-creating the PMD) would clear it.
        """
        if action.mode is FaultMode.DELAY and self.clock is not None:
            self._rx_frozen_until = self.clock() + action.delay
        elif action.mode in (FaultMode.ERROR, FaultMode.CRASH):
            self._rx_frozen_forever = True
        # DROP (and clockless DELAY): just this poll is lost.

    def rx_burst(self, max_count: int) -> List[Mbuf]:
        """Merge the normal channel and the bypass rings.

        The normal channel is polled *first*: during an establishment
        handover the packets still flowing through the vSwitch are older
        than anything in a bypass ring, so this order (together with the
        sender-side drain gate) keeps delivery in order — and it gives
        controller packet-outs prompt service as a side effect.

        Every completed poll publishes liveness: the port heartbeat
        epoch, and per bypass ring the (epoch, dequeue-cursor) pair in
        its shared stats block.  A frozen consumer (injected via the
        ``pmd.rx_poll`` fault point) publishes nothing and drains
        nothing — the condition the host watchdog exists to catch.
        """
        if self.killed or self._rx_frozen():
            return []
        faults = self.faults
        # Only a PMD consuming a bypass counts as a pmd.rx_poll
        # occurrence — keeps occurrence numbering deterministic per
        # channel instead of interleaving every sink on the node.
        if (faults is not None and self.bypass_rx_rings
                and faults.has_specs(PMD_RX_POLL)):
            action = faults.fire(PMD_RX_POLL)
            if action is not None:
                self._apply_rx_fault(action)
                return []
        self.rings.heartbeat.beat()
        mbufs: List[Mbuf] = []
        if self.ordered_handover:
            mbufs = self.rings.to_guest.dequeue_burst(max_count)
            self.rx_via_normal += len(mbufs)
            for mbuf in mbufs:
                if mbuf.trace is not None:
                    mbuf.trace.add(self._trace_now(), "guest-rx",
                                   channel="normal", port=self.name)
        ring_count = len(self.bypass_rx_rings)
        if ring_count:
            # Fairness rotation: start from where the last *served* poll
            # left off, and advance only past a ring that actually
            # yielded packets — an empty poll must not burn a ring's
            # turn, or one busy peer can starve another indefinitely.
            start = self._rx_rotation % ring_count
            first_served = None
            for offset in range(ring_count):
                index = (start + offset) % ring_count
                ring = self.bypass_rx_rings[index]
                if len(mbufs) < max_count:
                    got = ring.dequeue_burst(max_count - len(mbufs))
                else:
                    got = []
                smashed = 0
                if got and None in got:
                    # A corrupted slot surfaced at the consumer: there
                    # is nothing deliverable in it, so drop it — and
                    # flag the shared stats block, because once the
                    # slot is dequeued the ring looks structurally
                    # clean again and the flag is the host validator's
                    # only remaining evidence.
                    clean = [m for m in got if m is not None]
                    smashed = len(got) - len(clean)
                    got = clean
                    self.rx_integrity_drops += smashed
                stats = self._rx_stats.get(id(ring))
                if stats is not None:
                    stats.heartbeat(len(got))
                    if smashed:
                        stats.rx_integrity_errors += smashed
                if got:
                    if first_served is None:
                        first_served = index
                    self.rx_via_bypass += len(got)
                    for mbuf in got:
                        if mbuf.trace is not None:
                            mbuf.trace.add(self._trace_now(), "guest-rx",
                                           channel="bypass",
                                           port=self.name)
                    mbufs.extend(got)
            if first_served is not None:
                self._rx_rotation = (first_served + 1) % ring_count
        if not self.ordered_handover and len(mbufs) < max_count:
            normal = self.rings.to_guest.dequeue_burst(
                max_count - len(mbufs)
            )
            self.rx_via_normal += len(normal)
            mbufs.extend(normal)
        if mbufs:
            self.stats.ipackets += len(mbufs)
            self.stats.ibytes += sum(m.wire_length for m in mbufs)
            if self.holder_token is not None:
                token = self.holder_token
                for mbuf in mbufs:
                    pool = mbuf.pool
                    if pool is not None:
                        pool.assign(mbuf, token)
        return mbufs

    def tx_burst(self, mbufs: List[Mbuf]) -> int:
        if self.killed:
            self.stats.oerrors += len(mbufs)
            return 0
        state = self.tx_state
        if state == TxState.PENDING_BYPASS:
            # Flip only when nothing of ours is still queued toward the
            # vSwitch; until then the normal channel stays in use.
            if self.rings.to_switch.is_empty:
                self.tx_state = state = TxState.BYPASS
            else:
                state = TxState.NORMAL
        if state == TxState.NORMAL:
            sent = super().tx_burst(mbufs)
            self.tx_via_normal += sent
            return sent
        if state == TxState.STALLED:
            # Mid-teardown: refuse the burst (ring-full semantics); the
            # application retries or drops exactly as on congestion.
            self.tx_stall_rejects += len(mbufs)
            self.stats.oerrors += len(mbufs)
            return 0
        sent = self.bypass_tx_ring.enqueue_burst(mbufs)
        if sent and self.bypass_tx_ring.above_watermark:
            self.bypass_congestion_events += 1
        if sent:
            now = self._trace_now()
            for index in range(sent):
                if mbufs[index].trace is not None:
                    mbufs[index].trace.add(now, "guest-tx",
                                           channel="bypass",
                                           port=self.name)
                    mbufs[index].trace.add(now, "bypass-ring",
                                           ring=self.bypass_tx_ring.name)
            byte_count = sum(
                mbufs[index].wire_length for index in range(sent)
            )
            self.stats.opackets += sent
            self.stats.obytes += byte_count
            self.tx_via_bypass += sent
            if self.accounting_enabled:
                # The paper's stats trick: the PMD, not the switch, keeps
                # the OpenFlow counters for bypassed traffic.
                self.bypass_stats.account(self.bypass_flow_id, sent,
                                          byte_count)
        if sent < len(mbufs):
            self.stats.oerrors += len(mbufs) - sent
        return sent

    # -- observability --------------------------------------------------------

    def channel_stats(self) -> Dict[str, int]:
        """Per-channel counters for ``bypass/show`` and tests.

        Ring-level failure accounting distinguishes total rejections
        (``*_enqueue_failures``) from partial fits
        (``*_partial_enqueues``); see :meth:`Ring.enqueue_burst`.
        """
        out = {
            "tx_via_bypass": self.tx_via_bypass,
            "tx_via_normal": self.tx_via_normal,
            "rx_via_bypass": self.rx_via_bypass,
            "rx_via_normal": self.rx_via_normal,
            "tx_stall_rejects": self.tx_stall_rejects,
            "rx_integrity_drops": self.rx_integrity_drops,
            "bypass_congestion_events": self.bypass_congestion_events,
            "normal_enqueue_failures": self.rings.to_switch.enqueue_failures,
            "normal_partial_enqueues": self.rings.to_switch.partial_enqueues,
        }
        if self.bypass_tx_ring is not None:
            out["bypass_enqueue_failures"] = (
                self.bypass_tx_ring.enqueue_failures
            )
            out["bypass_partial_enqueues"] = (
                self.bypass_tx_ring.partial_enqueues
            )
        return out


class GuestPmdManager:
    """Per-VM runtime that owns the dual-channel PMDs.

    Registered as the VM's virtio-serial guest handler; executes the
    compute agent's attach/detach commands.  Zone lookups go through the
    guest EAL, so a command referring to a zone that was never
    hot-plugged fails — the visibility property the architecture rests on.
    """

    def __init__(self, vm: VirtualMachine) -> None:
        self.vm = vm
        self.pmds: Dict[str, DualChannelPmd] = {}
        self.faults: Optional[FaultPlan] = vm.serial.faults
        vm.serial.guest_handler = self.handle_command
        # Back-pointer so Hypervisor.crash_vm can kill the guest-side
        # runtime along with the process.
        vm.guest_runtime = self

    def create_pmd(self, port_name: str) -> DualChannelPmd:
        """Attach to a dpdkr port's normal channel and register the PMD."""
        if port_name in self.pmds:
            raise RuntimeError("PMD for %r already exists" % port_name)
        zone = self.vm.eal.lookup_memzone(dpdkr_zone_name(port_name))
        rings = DpdkrSharedRings.attach(zone)
        pmd = DualChannelPmd(port_id=-1, rings=rings)
        pmd.faults = self.faults
        env = self.vm.serial.env
        if env is not None:
            pmd.clock = lambda: env.now
        pmd.holder_token = "vm:%s" % self.vm.name
        self.vm.eal.register_port(pmd)
        self.pmds[port_name] = pmd
        return pmd

    def kill(self) -> None:
        """Abrupt death: every PMD stops polling and transmitting."""
        for pmd in self.pmds.values():
            pmd.killed = True

    def install_faults(self, faults: Optional[FaultPlan]) -> None:
        """Re-arm this VM's PMDs with ``faults`` (late plan install)."""
        self.faults = faults
        for pmd in self.pmds.values():
            pmd.faults = faults

    def pmd(self, port_name: str) -> DualChannelPmd:
        try:
            return self.pmds[port_name]
        except KeyError:
            raise RuntimeError(
                "VM %r has no PMD for port %r" % (self.vm.name, port_name)
            ) from None

    # -- virtio-serial command execution -------------------------------------

    def handle_command(self, message: ControlMessage
                       ) -> Optional[ControlMessage]:
        args = message.args
        # Per-command exception barrier: a command arriving in a state
        # it no longer fits (stale teardown after a rollback, attach to
        # a PMD that was since reconfigured) must NACK over the serial
        # channel, never unwind into the delivery path — the host side
        # treats the error reply exactly like its other failure modes.
        try:
            if message.command == "attach_bypass":
                self._attach(args)
                return ControlMessage("attach_bypass_ok",
                                      {"request_id": args["request_id"]})
            if message.command == "detach_bypass":
                self._detach(args)
                return ControlMessage("detach_bypass_ok",
                                      {"request_id": args["request_id"]})
            if message.command == "resume_tx":
                self.pmd(args["port_name"]).resume_tx()
                return ControlMessage("resume_tx_ok",
                                      {"request_id": args["request_id"]})
        except Exception as exc:
            return ControlMessage("error", {
                "request_id": args.get("request_id"),
                "reason": "%s failed: %s" % (message.command, exc),
            })
        return ControlMessage("error", {
            "request_id": args.get("request_id"),
            "reason": "unknown command %r" % message.command,
        })

    def _attach(self, args: Dict) -> None:
        pmd = self.pmd(args["port_name"])
        zone = self.vm.eal.lookup_memzone(args["zone_name"])
        ring = zone.get("ring")
        if args["role"] == "tx":
            pmd.attach_bypass_tx(ring, zone.get("stats"), args["flow_id"])
        else:
            pmd.attach_bypass_rx(ring, zone.get("stats"))

    def _detach(self, args: Dict) -> None:
        pmd = self.pmd(args["port_name"])
        if args["role"] == "tx":
            pmd.detach_bypass_tx(stall=args.get("stall", False))
        else:
            # The zone is still plugged at this point (teardown detaches
            # the PMD before unplugging the device), so the ring can be
            # resolved to identify which bypass to stop polling.
            zone = self.vm.eal.lookup_memzone(args["zone_name"])
            pmd.detach_bypass_rx(zone.get("ring"))
