"""Shared-memory statistics for bypassed traffic.

When a p-2-p bypass is active the vSwitch never touches the packets, so
it cannot count them.  The paper's fix: the sending PMD bumps, for every
packet it pushes into the bypass ring, the counters of the OpenFlow rule
and ports implementing that link, in a block of shared memory that OVS
reads lazily when a stats request arrives.

A :class:`BypassStatsBlock` lives inside the bypass channel's memzone
(so it is naturally visible to both the guest PMD that writes it and the
host that reads it) and survives the link's teardown — totals must stay
correct in flow-removed messages and later port-stats replies.
"""

from typing import Dict, Tuple


class BypassStatsBlock:
    """Counters for one directed bypass channel A -> B."""

    __slots__ = (
        "name",
        "src_ofport",
        "dst_ofport",
        "tx_packets",
        "tx_bytes",
        "flow_packets",
        "flow_bytes",
    )

    def __init__(self, name: str, src_ofport: int, dst_ofport: int) -> None:
        self.name = name
        self.src_ofport = src_ofport
        self.dst_ofport = dst_ofport
        self.tx_packets = 0
        self.tx_bytes = 0
        # Per-OpenFlow-rule attribution, keyed by FlowEntry.flow_id.
        self.flow_packets: Dict[int, int] = {}
        self.flow_bytes: Dict[int, int] = {}

    def account(self, flow_id: int, packets: int, byte_count: int) -> None:
        """Called by the sending PMD after each bypass TX burst."""
        self.tx_packets += packets
        self.tx_bytes += byte_count
        self.flow_packets[flow_id] = (
            self.flow_packets.get(flow_id, 0) + packets
        )
        self.flow_bytes[flow_id] = (
            self.flow_bytes.get(flow_id, 0) + byte_count
        )

    def flow_counters(self, flow_id: int) -> Tuple[int, int]:
        return (self.flow_packets.get(flow_id, 0),
                self.flow_bytes.get(flow_id, 0))

    def __repr__(self) -> str:
        return "<BypassStatsBlock %s %d->%d pkts=%d>" % (
            self.name, self.src_ofport, self.dst_ofport, self.tx_packets
        )
