"""Shared-memory statistics for bypassed traffic.

When a p-2-p bypass is active the vSwitch never touches the packets, so
it cannot count them.  The paper's fix: the sending PMD bumps, for every
packet it pushes into the bypass ring, the counters of the OpenFlow rule
and ports implementing that link, in a block of shared memory that OVS
reads lazily when a stats request arrives.

A :class:`BypassStatsBlock` lives inside the bypass channel's memzone
(so it is naturally visible to both the guest PMD that writes it and the
host that reads it) and survives the link's teardown — totals must stay
correct in flow-removed messages and later port-stats replies.

The block is also the channel's *liveness ledger*: the consuming PMD
publishes a heartbeat epoch and its cumulative dequeue cursor into the
same shared memory on every receive poll, which is what lets the
host-side watchdog distinguish "nothing to deliver" from "nobody is
draining" without any extra control-plane traffic.
:class:`PortHeartbeat` is the per-port equivalent living in the dpdkr
zone, so guest liveness stays observable after a bypass is torn down.
"""

from typing import Dict, Tuple


class PortHeartbeat:
    """A guest-published liveness epoch for one dpdkr port.

    Lives in the port's shared dpdkr memzone; the guest PMD bumps it on
    every receive poll and the host only ever reads it.  Because the
    normal channel outlives any bypass, this is the signal the
    quarantine ladder uses to decide a degraded peer is polling again.
    """

    __slots__ = ("epoch",)

    def __init__(self) -> None:
        self.epoch = 0

    def beat(self) -> None:
        self.epoch += 1

    def __repr__(self) -> str:
        return "<PortHeartbeat epoch=%d>" % self.epoch


class BypassStatsBlock:
    """Counters for one directed bypass channel A -> B."""

    __slots__ = (
        "name",
        "src_ofport",
        "dst_ofport",
        "tx_packets",
        "tx_bytes",
        "flow_packets",
        "flow_bytes",
        "rx_epoch",
        "rx_dequeued",
        "rx_integrity_errors",
    )

    def __init__(self, name: str, src_ofport: int, dst_ofport: int) -> None:
        self.name = name
        self.src_ofport = src_ofport
        self.dst_ofport = dst_ofport
        self.tx_packets = 0
        self.tx_bytes = 0
        # Per-OpenFlow-rule attribution, keyed by FlowEntry.flow_id.
        self.flow_packets: Dict[int, int] = {}
        self.flow_bytes: Dict[int, int] = {}
        # Consumer-side liveness: bumped by the receiving PMD on every
        # poll of the bypass ring (epoch) and every dequeue (cursor).
        # rx_epoch > 0 is the consumer's "sign-on" — before that the
        # watchdog has no baseline and stays quiet.
        self.rx_epoch = 0
        self.rx_dequeued = 0
        # Corrupted (None) slots the consumer pulled off the ring and
        # dropped.  Once a smashed slot is dequeued the ring looks
        # structurally clean again, so this flag is the only way the
        # host-side validator ever learns about it.
        self.rx_integrity_errors = 0

    def account(self, flow_id: int, packets: int, byte_count: int) -> None:
        """Called by the sending PMD after each bypass TX burst."""
        self.tx_packets += packets
        self.tx_bytes += byte_count
        self.flow_packets[flow_id] = (
            self.flow_packets.get(flow_id, 0) + packets
        )
        self.flow_bytes[flow_id] = (
            self.flow_bytes.get(flow_id, 0) + byte_count
        )

    def heartbeat(self, dequeued: int) -> None:
        """Called by the receiving PMD after each poll of the ring."""
        self.rx_epoch += 1
        self.rx_dequeued += dequeued

    def flow_counters(self, flow_id: int) -> Tuple[int, int]:
        return (self.flow_packets.get(flow_id, 0),
                self.flow_bytes.get(flow_id, 0))

    def __repr__(self) -> str:
        return "<BypassStatsBlock %s %d->%d pkts=%d>" % (
            self.name, self.src_ofport, self.dst_ofport, self.tx_packets
        )
