"""Bypass establishment time (the paper's ~100 ms claim).

"The establishment of a direct channel between two VMs, from the moment
in which OvS recognizes a p-2-p link, to the moment in which the PMD
starts to use the bypass channel, is on the order of 100 ms."

The experiment installs a single p-2-p rule and reads the stage-by-stage
timeline the compute agent recorded: RPC, parallel ivshmem hot-plugs,
receiver PMD configuration, sender PMD configuration.
"""

from dataclasses import dataclass, field
from typing import List, Optional

from repro.openflow.match import Match
from repro.orchestration.node import NfvNode
from repro.sim.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.sim.engine import Environment


@dataclass
class SetupTimeResult:
    """Breakdown of one establishment (seconds)."""

    total: float
    detection: float        # flowmod handled -> agent request issued
    rpc: float
    hotplug: float
    rx_configure: float
    tx_configure: float
    teardown_total: Optional[float] = None

    def stages(self) -> List:
        return [
            ("detection+dispatch", self.detection),
            ("OVS->agent RPC", self.rpc),
            ("ivshmem hot-plug (parallel x2)", self.hotplug),
            ("PMD attach rx (virtio-serial)", self.rx_configure),
            ("PMD attach tx (virtio-serial)", self.tx_configure),
        ]


class SetupTimeExperiment:
    """Measure establishment (and optionally teardown) of one bypass."""

    def __init__(self, costs: CostModel = DEFAULT_COST_MODEL,
                 measure_teardown: bool = True) -> None:
        self.costs = costs
        self.measure_teardown = measure_teardown

    def run(self) -> SetupTimeResult:
        env = Environment()
        node = NfvNode(env=env, costs=self.costs, n_pmd_cores=1)
        node.create_vm("vm1", ["dpdkr0"])
        node.create_vm("vm2", ["dpdkr1"])
        node.switch.start()
        t_flowmod = env.now
        node.install_p2p_rule("dpdkr0", "dpdkr1")
        env.run(until=env.now + 1.0)
        manager = node.manager
        if len(manager.history) != 1:
            raise RuntimeError("expected exactly one bypass link")
        link = manager.history[0]
        request = link.setup_request
        result = SetupTimeResult(
            total=link.t_active - link.t_detected,
            detection=link.t_detected - t_flowmod,
            rpc=request.t_rpc_done - request.t_requested,
            hotplug=request.t_zones_plugged - request.t_rpc_done,
            rx_configure=request.t_rx_configured - request.t_zones_plugged,
            tx_configure=request.t_tx_configured - request.t_rx_configured,
        )
        if self.measure_teardown:
            node.controller.delete_flow(
                Match(in_port=node.ofport("dpdkr0"))
            )
            env.run(until=env.now + 1.0)
            result.teardown_total = link.t_removed - link.t_teardown_started
        node.switch.stop()
        return result
