"""Multi-host chains: the highway's scope is a single server.

The paper optimizes inter-VNF links *within one host*.  Real services
span servers; this experiment splits a forwarding chain across two NFV
nodes connected by a 10 G cable and shows exactly what the architecture
predicts: every intra-host VM-to-VM link is upgraded to a bypass, the
inter-host segment stays on NIC + wire, and throughput is set by the
slower of the two (the wire at large frames, the vSwitches at 64 B).
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.apps.forwarder import ForwarderApp
from repro.metrics.rates import to_mpps
from repro.orchestration.node import NfvNode
from repro.sim.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.sim.engine import Environment
from repro.sim.nic import connect_nics
from repro.traffic.generator import SourceApp
from repro.traffic.profiles import uniform_profile
from repro.traffic.sink import SinkApp


@dataclass
class MultiHostResult:
    vms_per_host: int
    bypass: bool
    frame_size: int
    duration: float
    delivered: int = 0
    throughput_mpps: float = 0.0
    bypasses_host1: int = 0
    bypasses_host2: int = 0
    wire_packets: int = 0
    mean_latency: float = 0.0


class MultiHostChainExperiment:
    """A unidirectional chain spanning two hosts.

    Host 1: source VM -> (vms_per_host - 1) forwarders -> NIC ---wire---
    Host 2: NIC -> (vms_per_host - 1) forwarders -> sink VM.
    """

    def __init__(
        self,
        vms_per_host: int = 2,
        bypass: bool = True,
        frame_size: int = 64,
        duration: float = 0.01,
        costs: CostModel = DEFAULT_COST_MODEL,
        source_rate_pps: Optional[float] = None,
    ) -> None:
        if vms_per_host < 1:
            raise ValueError("need at least one VM per host")
        self.vms_per_host = vms_per_host
        self.bypass = bypass
        self.frame_size = frame_size
        self.duration = duration
        self.costs = costs
        self.source_rate_pps = source_rate_pps
        self.env: Optional[Environment] = None
        self.hosts: List[NfvNode] = []
        self.apps: List[ForwarderApp] = []
        self.source: Optional[SourceApp] = None
        self.sink: Optional[SinkApp] = None

    def build(self) -> None:
        env = Environment()
        self.env = env
        host1 = NfvNode(env=env, costs=self.costs,
                        highway_enabled=self.bypass)
        host2 = NfvNode(env=env, costs=self.costs,
                        highway_enabled=self.bypass)
        self.hosts = [host1, host2]
        for host, tag in ((host1, "h1"), (host2, "h2")):
            for index in range(1, self.vms_per_host + 1):
                host.create_vm(
                    "%s.vm%d" % (tag, index),
                    ["%s.vm%d.p0" % (tag, index),
                     "%s.vm%d.p1" % (tag, index)],
                )
            host.add_nic("%s.nic" % tag)
        connect_nics(host1.nics["h1.nic"], host2.nics["h2.nic"])

        # Host 1: vm1 sources at p1 -> vm2.p0 ... vmN.p1 -> nic.
        for index in range(1, self.vms_per_host):
            host1.install_p2p_rule("h1.vm%d.p1" % index,
                                   "h1.vm%d.p0" % (index + 1))
        host1.install_p2p_rule("h1.vm%d.p1" % self.vms_per_host, "h1.nic")
        # Host 2: nic -> vm1.p0 ... vmN.p1 -> sink at vmN.p1.
        host2.install_p2p_rule("h2.nic", "h2.vm1.p0")
        for index in range(1, self.vms_per_host):
            host2.install_p2p_rule("h2.vm%d.p1" % index,
                                   "h2.vm%d.p0" % (index + 1))

        profile = uniform_profile(self.frame_size, flows=4)
        self.source = SourceApp(
            "src", host1.vms["h1.vm1"].pmd("h1.vm1.p1"),
            profile=profile, costs=self.costs,
            rate_pps=self.source_rate_pps,
        )
        # The last VM on host 2 terminates the chain: it sinks at p0.
        self.sink = SinkApp(
            "sink",
            host2.vms["h2.vm%d" % self.vms_per_host].pmd(
                "h2.vm%d.p0" % self.vms_per_host
            ),
            costs=self.costs,
        )
        # Forwarders: host1 vm2..vmN (vm1 is the source), host2
        # vm1..vmN-1 (vmN is the sink).
        for index in range(2, self.vms_per_host + 1):
            handle = host1.vms["h1.vm%d" % index]
            self.apps.append(ForwarderApp(
                "h1.vm%d.app" % index,
                handle.pmd("h1.vm%d.p0" % index),
                handle.pmd("h1.vm%d.p1" % index),
                costs=self.costs, bidirectional=False,
            ))
        for index in range(1, self.vms_per_host):
            handle = host2.vms["h2.vm%d" % index]
            self.apps.append(ForwarderApp(
                "h2.vm%d.app" % index,
                handle.pmd("h2.vm%d.p0" % index),
                handle.pmd("h2.vm%d.p1" % index),
                costs=self.costs, bidirectional=False,
            ))

    def run(self) -> MultiHostResult:
        if self.env is None:
            self.build()
        env = self.env
        for host in self.hosts:
            host.settle_control_plane(
                extra_time=0.15 * (self.vms_per_host + 1)
            )
        for app in self.apps:
            app.start(env)
        self.sink.start(env)
        self.source.start(env)
        start = env.now
        env.run(until=start + self.duration)
        result = MultiHostResult(
            vms_per_host=self.vms_per_host,
            bypass=self.bypass,
            frame_size=self.frame_size,
            duration=self.duration,
            delivered=self.sink.received,
            throughput_mpps=to_mpps(self.sink.received, self.duration),
            bypasses_host1=self.hosts[0].active_bypasses,
            bypasses_host2=self.hosts[1].active_bypasses,
            wire_packets=self.hosts[0].nics["h1.nic"].tx_packets,
            mean_latency=(self.sink.latency.mean
                          if self.sink.latency else 0.0),
        )
        return result
