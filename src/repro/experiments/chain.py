"""The paper's evaluation workload: chains of forwarding VMs.

"In all the tests, we consider chains of VMs connected only through
p-2-p links, where each VM has two dpdkr ports and runs a single core
DPDK application that moves packets from one port to another" — and the
same VMs are used with and without the highway (transparency).

Two variants, matching Figure 3:

* ``memory_only=True`` (Fig. 3a): the first and last VM act as traffic
  source/sink, so no NIC or PCIe bottleneck is involved;
* ``memory_only=False`` (Fig. 3b): traffic enters and leaves the chain
  through two 10 G NICs.

Traffic is bidirectional 64-byte frames unless configured otherwise.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.apps.forwarder import ForwarderApp
from repro.metrics.latency import LatencyRecorder
from repro.metrics.rates import to_mpps
from repro.obs.cycles import StageAccounting
from repro.orchestration.node import NfvNode
from repro.sim.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.sim.engine import Environment
from repro.traffic.generator import SourceApp, WireSource
from repro.traffic.profiles import TrafficProfile, uniform_profile
from repro.traffic.sink import SinkApp, WireSink

# Simulated seconds the control plane gets per bypass link to establish
# (detection + RPC + parallel hot-plugs + two PMD round trips ≈ 0.1 s,
# serialized through the single compute agent).
SETTLE_PER_LINK = 0.15


@dataclass
class ChainResult:
    """Outcome of one chain run."""

    num_vms: int
    bypass: bool
    memory_only: bool
    frame_size: int
    duration: float
    forward_delivered: int = 0
    reverse_delivered: int = 0
    forward_mpps: float = 0.0
    reverse_mpps: float = 0.0
    throughput_mpps: float = 0.0       # aggregate, both directions
    latency_forward: Optional[LatencyRecorder] = None
    latency_reverse: Optional[LatencyRecorder] = None
    active_bypasses: int = 0
    ovs_utilization: List[float] = field(default_factory=list)
    setup_times: List[float] = field(default_factory=list)
    # Whole-run conservation accounting, populated when run(drain=...)
    # stops the sources and drains the pipeline: every offered packet
    # is then either delivered or genuinely lost inside the node.
    offered_total: int = 0             # generated + generator tx failures
    delivered_total: int = 0
    drained: bool = False

    @property
    def lost_total(self) -> int:
        return max(0, self.offered_total - self.delivered_total)

    @property
    def loss_fraction(self) -> float:
        if not self.offered_total:
            return 0.0
        return self.lost_total / self.offered_total

    @property
    def mean_latency(self) -> float:
        recorders = [r for r in (self.latency_forward, self.latency_reverse)
                     if r is not None and r.count]
        if not recorders:
            return 0.0
        total = sum(r.total for r in recorders)
        count = sum(r.count for r in recorders)
        return total / count

    def row(self) -> List[object]:
        return [
            self.num_vms,
            "bypass" if self.bypass else "vanilla",
            round(self.throughput_mpps, 3),
            round(self.mean_latency * 1e6, 2),
            self.active_bypasses,
        ]


class ChainExperiment:
    """Builds and runs one VM chain."""

    def __init__(
        self,
        num_vms: int,
        bypass: bool = True,
        memory_only: bool = True,
        frame_size: int = 64,
        duration: float = 0.01,
        warmup_fraction: float = 0.2,
        n_ovs_cores: int = 2,
        costs: CostModel = DEFAULT_COST_MODEL,
        ring_size: int = 1024,
        flows: int = 4,
        source_rate_pps: Optional[float] = None,
        wire_load: float = 1.0,
        burst_size: int = 32,
        emc_enabled: bool = True,
        megaflow_enabled: bool = True,
        vectorized: bool = True,
        accounting_enabled: bool = True,
        trace_sample: Optional[int] = None,
        snapshot_period: Optional[float] = None,
        rxq_assign: str = "roundrobin",
        auto_lb: bool = False,
        auto_lb_policy=None,
        bounded_upcalls: bool = True,
        upcall_policy=None,
        fail_mode: str = "standalone",
        overload: bool = False,
        overload_policy=None,
        profile: Optional[TrafficProfile] = None,
        extra_rules: int = 0,
        churn_hz: float = 0.0,
    ) -> None:
        min_vms = 2 if memory_only else 1
        if num_vms < min_vms:
            raise ValueError(
                "need at least %d VMs for this variant" % min_vms
            )
        self.num_vms = num_vms
        self.bypass = bypass
        self.memory_only = memory_only
        self.frame_size = frame_size
        self.duration = duration
        self.warmup_fraction = warmup_fraction
        self.n_ovs_cores = n_ovs_cores
        self.costs = costs
        self.ring_size = ring_size
        self.flows = flows
        self.source_rate_pps = source_rate_pps
        self.wire_load = wire_load
        self.burst_size = burst_size
        self.emc_enabled = emc_enabled
        self.megaflow_enabled = megaflow_enabled
        self.vectorized = vectorized
        self.accounting_enabled = accounting_enabled
        self.trace_sample = trace_sample
        self.snapshot_period = snapshot_period
        self.rxq_assign = rxq_assign
        self.auto_lb = auto_lb
        self.auto_lb_policy = auto_lb_policy
        self.bounded_upcalls = bounded_upcalls
        self.upcall_policy = upcall_policy
        self.fail_mode = fail_mode
        self.overload = overload
        self.overload_policy = overload_policy
        self.profile = profile
        if extra_rules < 0:
            raise ValueError("extra_rules must be >= 0")
        if churn_hz < 0:
            raise ValueError("churn_hz must be >= 0")
        self.extra_rules = extra_rules
        self.churn_hz = churn_hz
        self.flowmods_applied = 0
        self.env: Optional[Environment] = None
        self.node: Optional[NfvNode] = None
        self.apps: List = []
        self.sources: List = []
        self.sinks: Dict[str, object] = {}

    @property
    def obs(self):
        """The node's observability plane (available after build())."""
        return self.node.obs if self.node is not None else None

    # -- topology -----------------------------------------------------------

    def _port(self, vm_index: int, side: int) -> str:
        return "vm%d.p%d" % (vm_index, side)

    def build(self) -> None:
        self.env = Environment()
        self.node = NfvNode(
            env=self.env,
            costs=self.costs,
            n_pmd_cores=self.n_ovs_cores,
            highway_enabled=self.bypass,
            ring_size=self.ring_size,
            trace_sample_interval=self.trace_sample,
            rxq_assign=self.rxq_assign,
            auto_lb=self.auto_lb,
            auto_lb_policy=self.auto_lb_policy,
            bounded_upcalls=self.bounded_upcalls,
            upcall_policy=self.upcall_policy,
            fail_mode=self.fail_mode,
            overload=self.overload,
            overload_policy=self.overload_policy,
        )
        datapath = self.node.switch.datapath
        datapath.burst_size = self.burst_size
        datapath.emc_enabled = self.emc_enabled
        datapath.vectorized = self.vectorized
        # The A-emc ablation measures life without the caches: disabling
        # the EMC also disables the SMC and the megaflow cache so the
        # classifier takes every hit.  --no-megaflow ablates the
        # megaflow tier alone.
        datapath.smc_enabled = self.emc_enabled
        datapath.megaflow_enabled = (self.megaflow_enabled
                                     and self.emc_enabled)
        for vm_index in range(1, self.num_vms + 1):
            handle = self.node.create_vm(
                "vm%d" % vm_index,
                [self._port(vm_index, 0), self._port(vm_index, 1)],
                ring_size=self.ring_size,
            )
            for pmd in handle.pmds.values():
                pmd.accounting_enabled = self.accounting_enabled
        if not self.memory_only:
            self.node.add_nic("nic0")
            self.node.add_nic("nic1")
        self._install_rules()
        self._build_endpoints()

    def _install_rules(self) -> None:
        node = self.node
        # Inter-VM adjacencies, both directions (the bypassable links).
        for vm_index in range(1, self.num_vms):
            node.install_p2p_rule(self._port(vm_index, 1),
                                  self._port(vm_index + 1, 0))
            node.install_p2p_rule(self._port(vm_index + 1, 0),
                                  self._port(vm_index, 1))
        if not self.memory_only:
            node.install_p2p_rule("nic0", self._port(1, 0))
            node.install_p2p_rule(self._port(1, 0), "nic0")
            node.install_p2p_rule(self._port(self.num_vms, 1), "nic1")
            node.install_p2p_rule("nic1", self._port(self.num_vms, 1))
        if self.extra_rules:
            self._install_filler_rules(self.extra_rules)

    # Filler-rule shapes: cycling eth_src mask widths spreads the rules
    # over several classifier subtables, the table-bloat stress the rule
    # sweep measures (the p-2-p rules outrank all of them, so the
    # traffic's forwarding behaviour is untouched).
    _FILLER_MASK_SHIFTS = (0, 8, 16, 24)

    def _install_filler_rules(self, count: int) -> None:
        from repro.openflow.match import Match
        from repro.openflow.table import FlowEntry

        full = (1 << 48) - 1
        table = self.node.switch.bridge.table
        for index in range(count):
            shift = self._FILLER_MASK_SHIFTS[
                index % len(self._FILLER_MASK_SHIFTS)
            ]
            mask = (full << shift) & full
            value = ((0x02_00_00_00_00_00 | index << shift) & mask)
            table.add(FlowEntry(
                Match(eth_src=(value, mask)), [], priority=1,
            ))

    def _churn_process(self):
        """Rolling flowmods at ``churn_hz``: add then delete an unused
        rule, alternating — the EMC/SMC invalidation pressure the churn
        sweep measures, applied to a rule the traffic never matches."""
        from repro.openflow.match import Match
        from repro.openflow.table import FlowEntry

        env = self.env
        table = self.node.switch.bridge.table
        churn_match = Match(in_port=0xBE7C)  # no such port
        interval = 1.0 / self.churn_hz
        while True:
            yield env.timeout(interval)
            table.add(FlowEntry(churn_match, [], priority=1))
            table.delete(churn_match, strict=True, priority=1)
            self.flowmods_applied += 2

    def _build_endpoints(self) -> None:
        profile = self.profile or uniform_profile(
            self.frame_size, flows=self.flows
        )
        tracer = (self.node.obs.tracer
                  if self.trace_sample is not None else None)
        if self.memory_only:
            first, last = 1, self.num_vms
            first_handle = self.node.vms["vm%d" % first]
            last_handle = self.node.vms["vm%d" % last]
            # Forward direction: VM1 sources out of p1, VMN sinks at p0.
            self.sources.append(SourceApp(
                "src.fw", first_handle.pmd(self._port(first, 1)),
                profile=profile, costs=self.costs,
                rate_pps=self.source_rate_pps,
                burst_size=self.burst_size, tracer=tracer,
            ))
            self.sinks["forward"] = SinkApp(
                "sink.fw", last_handle.pmd(self._port(last, 0)),
                costs=self.costs, burst_size=self.burst_size,
            )
            # Reverse direction: VMN sources out of p0, VM1 sinks at p1.
            self.sources.append(SourceApp(
                "src.rv", last_handle.pmd(self._port(last, 0)),
                profile=profile, costs=self.costs,
                rate_pps=self.source_rate_pps,
                burst_size=self.burst_size, tracer=tracer,
            ))
            self.sinks["reverse"] = SinkApp(
                "sink.rv", first_handle.pmd(self._port(first, 1)),
                costs=self.costs, burst_size=self.burst_size,
            )
            middle = range(2, self.num_vms)
        else:
            middle = range(1, self.num_vms + 1)
        for vm_index in middle:
            handle = self.node.vms["vm%d" % vm_index]
            self.apps.append(ForwarderApp(
                "vm%d.app" % vm_index,
                handle.pmd(self._port(vm_index, 0)),
                handle.pmd(self._port(vm_index, 1)),
                costs=self.costs, burst_size=self.burst_size,
            ))

    # -- execution ------------------------------------------------------------------

    def run(self, duration: Optional[float] = None,
            drain: Optional[float] = None) -> ChainResult:
        """Run the chain; ``drain`` (simulated seconds) stops the
        sources after the measurement window and lets the pipeline
        empty, so the result carries exact offered/delivered/loss
        conservation totals (the RFC2544 harness's input)."""
        if self.env is None:
            self.build()
        duration = self.duration if duration is None else duration
        env = self.env
        node = self.node
        # Phase 1: control plane only — let every bypass establish before
        # any traffic flows (cheap in events, matches how an operator
        # would bring the service up before steering load onto it).
        link_count = 2 * (self.num_vms - 1) + (0 if self.memory_only else 4)
        node.settle_control_plane(
            extra_time=SETTLE_PER_LINK * max(1, link_count)
        )
        expected_bypasses = 2 * (self.num_vms - 1) if self.bypass else 0
        if node.active_bypasses != expected_bypasses:
            raise RuntimeError(
                "expected %d bypasses, got %d"
                % (expected_bypasses, node.active_bypasses)
            )
        # Phase 2: start the data plane.
        obs = node.obs
        for app in self.apps:
            app.stages = StageAccounting()
            obs.register_poll_loop(app.start(env), app.stages)
        if self.memory_only:
            for sink in self.sinks.values():
                obs.register_poll_loop(sink.start(env))
            for source in self.sources:
                obs.register_poll_loop(source.start(env))
        else:
            tracer = (obs.tracer
                      if self.trace_sample is not None else None)
            profile = uniform_profile(self.frame_size, flows=self.flows)
            self.sinks["forward"] = WireSink(env, self.node.nics["nic1"])
            self.sinks["reverse"] = WireSink(env, self.node.nics["nic0"])
            self.sources.append(WireSource(
                env, self.node.nics["nic0"], profile=profile,
                load=self.wire_load, tracer=tracer,
            ))
            self.sources.append(WireSource(
                env, self.node.nics["nic1"], profile=profile,
                load=self.wire_load, tracer=tracer,
            ))
        if self.snapshot_period is not None:
            obs.start_snapshotting(env, period=self.snapshot_period)
        if self.churn_hz > 0:
            env.process(self._churn_process(), name="chain.churn")
        # Warmup, then the measurement window.
        warmup_end = env.now + duration * self.warmup_fraction
        env.run(until=warmup_end)
        node.switch.reset_pmd_accounting()
        fw0 = self.sinks["forward"].received
        rv0 = self.sinks["reverse"].received
        env.run(until=warmup_end + duration)
        result = self._collect(duration, fw0, rv0)
        if drain is not None:
            # Stop offering, let every in-flight packet reach a sink
            # (or die), then account the whole run's conservation.
            for source in self.sources:
                source.stop()
            env.run(until=env.now + drain)
            result.offered_total = sum(
                source.generated + self._source_failures(source)
                for source in self.sources
            )
            result.delivered_total = sum(
                sink.received for sink in self.sinks.values()
            )
            result.drained = True
        if self.snapshot_period is not None:
            node.obs.snapshot_now()  # final registry state, post-run
        return result

    @staticmethod
    def _source_failures(source) -> int:
        """Offered-but-rejected frames: TX-ring full for an in-VM
        source, NIC ingress drop for a wire source."""
        return (getattr(source, "tx_failures", 0)
                + getattr(source, "nic_drops_seen", 0))

    def _collect(self, duration: float, fw0: int, rv0: int) -> ChainResult:
        forward = self.sinks["forward"].received - fw0
        reverse = self.sinks["reverse"].received - rv0
        result = ChainResult(
            num_vms=self.num_vms,
            bypass=self.bypass,
            memory_only=self.memory_only,
            frame_size=self.frame_size,
            duration=duration,
            forward_delivered=forward,
            reverse_delivered=reverse,
            forward_mpps=to_mpps(forward, duration),
            reverse_mpps=to_mpps(reverse, duration),
            throughput_mpps=to_mpps(forward + reverse, duration),
            latency_forward=self.sinks["forward"].latency,
            latency_reverse=self.sinks["reverse"].latency,
            active_bypasses=self.node.active_bypasses,
            ovs_utilization=self.node.switch.pmd_utilization,
        )
        if self.node.manager is not None:
            # Per-link establishment time as the agent saw it (the queue
            # wait behind earlier links of the same deployment excluded).
            result.setup_times = [
                link.setup_request.setup_duration
                for link in self.node.manager.history
                if link.setup_request is not None
                and link.setup_request.completed
            ]
        return result


def run_chain_sweep(
    lengths,
    bypass: bool,
    memory_only: bool = True,
    **kwargs,
) -> List[ChainResult]:
    """One Figure-3 series: throughput for each chain length."""
    return [
        ChainExperiment(num_vms=length, bypass=bypass,
                        memory_only=memory_only, **kwargs).run()
        for length in lengths
    ]
