"""Reusable experiment harnesses (shared by benchmarks and examples)."""

from repro.experiments.chain import (
    ChainExperiment,
    ChainResult,
    run_chain_sweep,
)
from repro.experiments.multihost import (
    MultiHostChainExperiment,
    MultiHostResult,
)
from repro.experiments.service_graph import (
    ServiceGraphExperiment,
    ServiceGraphResult,
)
from repro.experiments.setup_time import (
    SetupTimeExperiment,
    SetupTimeResult,
)

__all__ = [
    "ChainExperiment",
    "ChainResult",
    "MultiHostChainExperiment",
    "MultiHostResult",
    "ServiceGraphExperiment",
    "ServiceGraphResult",
    "SetupTimeExperiment",
    "SetupTimeResult",
    "run_chain_sweep",
]
