"""The paper's Figure 1 service, deployed and measured.

Traffic crosses firewall -> monitor, then splits: web traffic (TCP/80)
goes through a transparent cache before leaving, everything else leaves
directly.  The experiment measures the *service* with the highway on
and off:

* the p-2-p segments (source->firewall, firewall->monitor,
  cache->sink) ride bypass channels when enabled;
* the classified split stays on the vSwitch either way;
* application semantics — firewall verdicts, monitor flow table, cache
  hit ratio — must be identical in both modes (transparency at service
  level), while throughput improves with the highway.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.apps import FirewallApp, MonitorApp, WebCacheApp
from repro.metrics.rates import to_mpps
from repro.orchestration.graph import ServiceGraph
from repro.orchestration.node import NfvNode
from repro.orchestration.orchestrator import Orchestrator
from repro.packet.builder import make_tcp_packet, make_udp_packet
from repro.packet.headers import ETH_TYPE_IPV4, IP_PROTO_TCP
from repro.sim.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.sim.engine import Environment
from repro.traffic.generator import SourceApp
from repro.traffic.profiles import Template, TrafficProfile, _template
from repro.traffic.sink import SinkApp

CACHE_TOKENS = [b"GET /page%d" % index for index in range(8)]
CACHED_FRACTION = 0.5  # half the catalogue is pre-warmed


def web_mix_profile(frame_size: int = 128,
                    web_fraction: float = 0.5) -> TrafficProfile:
    """Web requests over a small cachable catalogue, mixed with UDP."""
    templates: List[Template] = []
    web_count = max(1, int(len(CACHE_TOKENS) * web_fraction * 2))
    for index in range(web_count):
        token = CACHE_TOKENS[index % len(CACHE_TOKENS)]
        packet = make_tcp_packet(
            src_port=41000 + index, dst_port=80,
            payload=token + b"\r\nHost: svc\r\n",
        )
        templates.append(_template(packet))
    for index in range(web_count):
        templates.append(_template(make_udp_packet(
            src_port=5000 + index, dst_port=9999, frame_size=frame_size,
        )))
    return TrafficProfile(name="web-mix", templates=tuple(templates))


@dataclass
class ServiceGraphResult:
    bypass: bool
    duration: float
    web_delivered: int = 0
    other_delivered: int = 0
    throughput_mpps: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_hit_rate: float = 0.0
    monitor_flows: int = 0
    firewall_passed: int = 0
    active_bypasses: int = 0
    classified_port_switched_packets: int = 0


class ServiceGraphExperiment:
    """Deploy and load the firewall -> monitor -> {cache|direct} service."""

    def __init__(
        self,
        bypass: bool = True,
        duration: float = 0.01,
        rate_pps: float = 2e6,
        costs: CostModel = DEFAULT_COST_MODEL,
    ) -> None:
        self.bypass = bypass
        self.duration = duration
        self.rate_pps = rate_pps
        self.costs = costs
        self.node: Optional[NfvNode] = None
        self.deployment = None
        self.source: Optional[SourceApp] = None
        self.sinks: Dict[str, SinkApp] = {}

    def _graph(self) -> ServiceGraph:
        graph = ServiceGraph("fig1")
        graph.add_vnf("source", ["out"])
        graph.add_vnf(
            "firewall", ["in", "out"],
            app_factory=lambda pmds: FirewallApp(
                "firewall", pmds["in"], pmds["out"], costs=self.costs
            ),
        )
        graph.add_vnf(
            "monitor", ["in", "out"],
            app_factory=lambda pmds: MonitorApp(
                "monitor", pmds["in"], pmds["out"], costs=self.costs
            ),
        )
        graph.add_vnf(
            "cache", ["in", "out"],
            app_factory=lambda pmds: WebCacheApp(
                "cache", pmds["in"], pmds["out"], costs=self.costs
            ),
        )
        graph.add_vnf("web_sink", ["in"])
        graph.add_vnf("other_sink", ["in"])
        graph.connect("source.out", "firewall.in")
        graph.connect("firewall.out", "monitor.in")
        graph.connect("cache.out", "web_sink.in")
        graph.connect("monitor.out", "cache.in",
                      match_fields={"eth_type": ETH_TYPE_IPV4,
                                    "ip_proto": IP_PROTO_TCP,
                                    "l4_dst": 80})
        graph.connect("monitor.out", "other_sink.in")
        graph.validate()
        return graph

    def run(self) -> ServiceGraphResult:
        env = Environment()
        self.node = NfvNode(env=env, costs=self.costs,
                            highway_enabled=self.bypass)
        self.deployment = Orchestrator(self.node).deploy(self._graph())
        cache: WebCacheApp = self.deployment.apps["cache"]
        for token in CACHE_TOKENS[:int(len(CACHE_TOKENS)
                                       * CACHED_FRACTION)]:
            cache.preload(token, b"200 OK cached body")

        self.source = SourceApp(
            "traffic", self.deployment.pmd("source.out"),
            profile=web_mix_profile(), costs=self.costs,
            rate_pps=self.rate_pps,
        )
        self.sinks["web"] = SinkApp(
            "web_sink", self.deployment.pmd("web_sink.in"),
            costs=self.costs,
        )
        self.sinks["other"] = SinkApp(
            "other_sink", self.deployment.pmd("other_sink.in"),
            costs=self.costs,
        )
        self.deployment.start_apps(env)
        self.source.start(env)
        for sink in self.sinks.values():
            sink.start(env)
        start = env.now
        env.run(until=start + self.duration)

        monitor: MonitorApp = self.deployment.apps["monitor"]
        firewall: FirewallApp = self.deployment.apps["firewall"]
        delivered = (self.sinks["web"].received
                     + self.sinks["other"].received)
        return ServiceGraphResult(
            bypass=self.bypass,
            duration=self.duration,
            web_delivered=self.sinks["web"].received,
            other_delivered=self.sinks["other"].received,
            throughput_mpps=to_mpps(delivered, self.duration),
            cache_hits=cache.hits,
            cache_misses=cache.misses,
            cache_hit_rate=cache.hit_rate,
            monitor_flows=monitor.flow_count,
            firewall_passed=firewall.passed,
            active_bypasses=self.node.active_bypasses,
            classified_port_switched_packets=(
                self.node.ports["monitor.out"].rx_packets
            ),
        )
