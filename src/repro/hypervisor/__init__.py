"""Hypervisor substrate: VMs, ivshmem hot-plug and the compute agent.

The paper's control plane needs two things from the platform: (1) QEMU's
ability to hot-plug a shared-memory (ivshmem) device into a running VM,
and (2) a *compute agent* on the host that knows which VM owns which
dpdkr port and can reconfigure the in-guest PMD over virtio-serial.
Both are modelled here with the latencies that dominate the ~100 ms
bypass-establishment time.
"""

from repro.hypervisor.qemu import Hypervisor, HypervisorError, VirtualMachine
from repro.hypervisor.compute_agent import AgentRequest, ComputeAgent

__all__ = [
    "AgentRequest",
    "ComputeAgent",
    "Hypervisor",
    "HypervisorError",
    "VirtualMachine",
]
