"""QEMU/KVM model: virtual machines and ivshmem device (un)plug.

A :class:`VirtualMachine` bundles a guest EAL (whose memzone visibility
is enforced by the shared :class:`~repro.mem.memzone.MemzoneRegistry`),
the set of ivshmem devices currently attached, and a virtio-serial
control channel.  The :class:`Hypervisor` exposes the monitor commands
the compute agent uses — ``device_add``/``device_del`` for ivshmem —
with the hot-plug latency that dominates bypass setup time.
"""

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.dpdk.eal import Eal
from repro.dpdk.virtio_serial import VirtioSerial
from repro.mem.memzone import MemzoneRegistry
from repro.sim.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.sim.engine import Environment, Process

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults import FaultPlan


class HypervisorError(RuntimeError):
    """VM lifecycle / device model errors."""


class VirtualMachine:
    """One KVM/QEMU guest."""

    def __init__(self, name: str, registry: MemzoneRegistry,
                 serial: VirtioSerial) -> None:
        self.name = name
        self.eal = Eal(registry, vm_name=name)
        self.serial = serial
        self.ivshmem_devices: List[str] = []  # zone names, in plug order
        self.running = True
        # True after Hypervisor.crash_vm — distinguishes "QEMU process
        # died" from a graceful destroy for the layers above.
        self.crashed = False
        # Guest-side runtime (GuestPmdManager) back-pointer, set when
        # one is created; crash_vm kills it with the process.
        self.guest_runtime = None

    def has_zone(self, zone_name: str) -> bool:
        return zone_name in self.ivshmem_devices

    def __repr__(self) -> str:
        return "<VirtualMachine %s ivshmem=%d>" % (
            self.name, len(self.ivshmem_devices)
        )


class Hypervisor:
    """The host's VM manager (QEMU monitor facade)."""

    def __init__(
        self,
        registry: MemzoneRegistry,
        env: Optional[Environment] = None,
        costs: CostModel = DEFAULT_COST_MODEL,
        faults: Optional["FaultPlan"] = None,
    ) -> None:
        self.registry = registry
        self.env = env
        self.costs = costs
        self.faults = faults
        self.vms: Dict[str, VirtualMachine] = {}
        self.hotplugs = 0
        self.hotunplugs = 0
        # Called with the VM name after a VM is destroyed/crashes; the
        # compute agent and the bypass manager subscribe here to clean
        # up channel state that references the dead guest.
        self.on_destroy: List = []
        # Called with the VM name after crash_vm only (before the
        # on_destroy listeners run).
        self.on_crash: List = []
        # Names whose most recent death was a crash (cleared when the
        # name is booted again, or superseded by a graceful destroy).
        self.crashed_vms = set()
        self.crashes = 0
        # Round-robin cursor for the vm.crash chaos point.
        self._chaos_cursor = 0

    # -- lifecycle ---------------------------------------------------------

    def create_vm(self, name: str,
                  boot_zones: Optional[List[str]] = None) -> VirtualMachine:
        """Boot a VM with ``boot_zones`` attached as cold-plugged ivshmem
        devices (the dpdkr normal channels the compute agent wires at VM
        creation)."""
        if name in self.vms:
            raise HypervisorError("VM %r already exists" % name)
        serial = VirtioSerial(
            "%s.serial" % name,
            env=self.env,
            one_way_latency=self.costs.virtio_serial_rtt / 2,
            faults=self.faults,
        )
        vm = VirtualMachine(name, self.registry, serial)
        for zone_name in boot_zones or []:
            self.registry.map_into(zone_name, name)
            vm.ivshmem_devices.append(zone_name)
        self.vms[name] = vm
        # A replacement VM reusing a crashed instance's name supersedes
        # the crash record: the name is alive again.
        self.crashed_vms.discard(name)
        return vm

    def destroy_vm(self, name: str) -> None:
        """Graceful teardown (guest shuts down, then QEMU exits).

        All its ivshmem mappings are released first, then the destroy
        listeners run so higher layers (compute agent, bypass manager)
        can clean up channels that referenced the guest.
        """
        vm = self._vm(name)
        for zone_name in list(vm.ivshmem_devices):
            self.registry.unmap_from(zone_name, name)
            vm.ivshmem_devices.remove(zone_name)
        vm.running = False
        del self.vms[name]
        self.crashed_vms.discard(name)
        for listener in list(self.on_destroy):
            listener(name)

    def crash_vm(self, name: str) -> None:
        """Abrupt VM death (the QEMU process is killed).

        Unlike :meth:`destroy_vm`, no guest-side teardown runs: the
        virtio-serial channel goes dead mid-conversation (in-flight
        messages and replies vanish), the guest runtime stops polling,
        and every plugged ivshmem zone — normal channels *and* bypass
        zones — is force-unplugged.  The ``on_crash`` listeners fire
        first, then the regular ``on_destroy`` listeners (the host's
        SIGCHLD view: a death is a death).
        """
        vm = self._vm(name)
        vm.serial.kill()
        if vm.guest_runtime is not None:
            vm.guest_runtime.kill()
        for zone_name in list(vm.ivshmem_devices):
            self.registry.unmap_from(zone_name, name)
            vm.ivshmem_devices.remove(zone_name)
        vm.running = False
        vm.crashed = True
        del self.vms[name]
        self.crashed_vms.add(name)
        self.crashes += 1
        for listener in list(self.on_crash):
            listener(name)
        for listener in list(self.on_destroy):
            listener(name)

    def was_crashed(self, name: str) -> bool:
        """True when ``name``'s most recent death was a crash."""
        return name in self.crashed_vms

    def chaos_tick(self) -> Optional[str]:
        """Fire the ``vm.crash`` fault point against one running VM.

        The victim is the fault action's ``message`` when it names a
        running VM, otherwise the next VM in name order (round-robin) —
        deterministic under a seeded plan.  Returns the crashed VM's
        name, or None when nothing fired.
        """
        if self.faults is None or not self.vms:
            return None
        from repro.faults import VM_CRASH

        if not self.faults.has_specs(VM_CRASH):
            return None
        action = self.faults.fire(VM_CRASH)
        if action is None:
            return None
        if action.message in self.vms:
            victim = action.message
        else:
            names = sorted(self.vms)
            victim = names[self._chaos_cursor % len(names)]
        self._chaos_cursor += 1
        self.crash_vm(victim)
        return victim

    def start_chaos(self, env: Environment, period: float = 0.001):
        """Run :meth:`chaos_tick` on a housekeeping loop (sim mode)."""
        from repro.sim.pollloop import PollLoop

        def iteration() -> float:
            self.chaos_tick()
            return 0.0

        loop = PollLoop(env, "hypervisor.chaos", iteration,
                        costs=self.costs, period=period)
        loop.start()
        return loop

    def force_unplug(self, vm_name: str, zone_name: str) -> None:
        """Immediate unplug for failure handling (no monitor latency)."""
        vm = self._vm(vm_name)
        if not vm.has_zone(zone_name):
            raise HypervisorError(
                "VM %r has no ivshmem for %r" % (vm_name, zone_name)
            )
        self._complete_unplug(vm, zone_name)

    def _vm(self, name: str) -> VirtualMachine:
        try:
            return self.vms[name]
        except KeyError:
            raise HypervisorError("no VM named %r" % name) from None

    # -- ivshmem hot-plug (QEMU monitor device_add/device_del) -----------------

    def plug_ivshmem(self, vm_name: str, zone_name: str
                     ) -> Optional[Process]:
        """Hot-plug ``zone_name`` into the VM.

        With an environment this takes :attr:`CostModel.ivshmem_hotplug`
        simulated seconds (QEMU device_add + guest PCI rescan) and returns
        the process to wait on; without one it is immediate.
        """
        vm = self._vm(vm_name)
        if vm.has_zone(zone_name):
            raise HypervisorError(
                "VM %r already has ivshmem for %r" % (vm_name, zone_name)
            )
        self.registry.lookup(zone_name)  # fail fast on bogus zones
        if self.env is None:
            self._monitor_fault(vm, "qemu.plug", sync=True)
            self._complete_plug(vm, zone_name)
            return None
        return self.env.process(
            self._plug_process(vm, zone_name),
            name="qemu.plug.%s" % zone_name,
        )

    def _plug_process(self, vm: VirtualMachine, zone_name: str):
        yield self.env.timeout(self.costs.qemu_monitor_cmd)
        yield from self._monitor_fault(vm, "qemu.plug")
        yield self.env.timeout(self.costs.ivshmem_hotplug)
        self._complete_plug(vm, zone_name)

    def _monitor_fault(self, vm: VirtualMachine, point: str,
                       sync: bool = False):
        """Fire the fault plan for a monitor command (plug/unplug).

        Simulation mode: a generator to ``yield from`` — DELAY stretches
        the command, DROP parks it forever (the caller's timeout is the
        only way out), ERROR raises, CRASH kills the target VM first.
        Sync mode (``sync=True``): called for its side effects; DROP has
        no hung-forever analogue, so it degrades to ERROR.
        """
        if self.faults is None:
            return () if sync else iter(())
        from repro.faults import FaultMode

        action = self.faults.fire(point)
        if action is None:
            return () if sync else iter(())
        if action.mode is FaultMode.CRASH:
            if vm.name in self.vms:
                self.destroy_vm(vm.name)
            raise HypervisorError(action.message)
        if action.mode is FaultMode.ERROR:
            raise HypervisorError(action.message)
        if sync:
            if action.mode is FaultMode.DROP:
                raise HypervisorError(action.message)
            return ()  # DELAY is meaningless without a clock

        def _effects():
            if action.mode is FaultMode.DELAY:
                yield self.env.timeout(action.delay)
            elif action.mode is FaultMode.DROP:
                yield self.env.event()  # never fires: the command hangs

        return _effects()

    def _complete_plug(self, vm: VirtualMachine, zone_name: str) -> None:
        if not vm.running:
            return  # the VM died while the hot-plug was in flight
        if zone_name not in self.registry:
            # The bypass manager rolled the establishment attempt back
            # (and freed the zone) while this device_add was in flight;
            # completing it now would map a guest into freed memory.
            return
        self.registry.map_into(zone_name, vm.name)
        vm.ivshmem_devices.append(zone_name)
        self.hotplugs += 1

    def unplug_ivshmem(self, vm_name: str, zone_name: str
                       ) -> Optional[Process]:
        """Hot-unplug; returns a waitable process in simulation mode."""
        vm = self._vm(vm_name)
        if not vm.has_zone(zone_name):
            raise HypervisorError(
                "VM %r has no ivshmem for %r" % (vm_name, zone_name)
            )
        if self.env is None:
            self._monitor_fault(vm, "qemu.unplug", sync=True)
            self._complete_unplug(vm, zone_name)
            return None
        return self.env.process(
            self._unplug_process(vm, zone_name),
            name="qemu.unplug.%s" % zone_name,
        )

    def _unplug_process(self, vm: VirtualMachine, zone_name: str):
        yield self.env.timeout(self.costs.qemu_monitor_cmd)
        yield from self._monitor_fault(vm, "qemu.unplug")
        self._complete_unplug(vm, zone_name)

    def _complete_unplug(self, vm: VirtualMachine, zone_name: str) -> None:
        if not vm.has_zone(zone_name):
            # Already detached by the failure janitor (force_unplug) or
            # by the VM's own destruction while device_del was in flight.
            return
        self.registry.unmap_from(zone_name, vm.name)
        vm.ivshmem_devices.remove(zone_name)
        self.hotunplugs += 1
