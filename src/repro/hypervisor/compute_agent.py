"""The compute agent: OVS's arm into the VM world.

OVS only knows ports and rules; it has no idea which VM a dpdkr port is
plugged into.  The compute agent (the paper extends the un-orchestrator
NFV node's agent) keeps that mapping and services two requests from the
vSwitch:

* **setup bypass** — hot-plug the bypass memzone into *both* VMs as
  ivshmem devices (in parallel), then configure the two in-guest PMDs
  over virtio-serial: receiver first, sender second (make-before-break,
  so no packet is ever written into an unwatched ring);
* **teardown bypass** — ordered shutdown: stall the sender (the
  receiver keeps draining the ring meanwhile), detach the receiver,
  re-home the ring's leftovers onto the normal channel, release the
  sender onto the vSwitch path, then unplug the device from both VMs —
  no packet is lost or reordered.

Every request records a stage-by-stage timeline; the setup-time
experiment (paper: ~100 ms from p-2-p recognition to the PMD using the
bypass) reads those timestamps.
"""

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

from repro.dpdk.virtio_serial import ControlMessage
from repro.hypervisor.qemu import Hypervisor, HypervisorError, VirtualMachine
from repro.mem.ring import Ring
from repro.sim.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.sim.engine import Environment, Event

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults import FaultPlan

_request_ids = itertools.count(1)


class RequestCancelled(RuntimeError):
    """Raised inside an in-flight request whose caller gave up on it."""


@dataclass
class AgentRequest:
    """One OVS -> agent request and its timeline (simulated seconds)."""

    request_id: int
    kind: str                     # "setup" | "teardown"
    src_port_name: str
    dst_port_name: str
    zone_name: str
    flow_id: Optional[int] = None
    t_requested: float = 0.0
    t_rpc_done: float = 0.0
    t_zones_plugged: float = 0.0
    t_rx_configured: float = 0.0
    t_tx_configured: float = 0.0
    t_drained: float = 0.0
    t_completed: float = 0.0
    salvaged_packets: int = 0     # re-homed onto the normal channel
    lost_packets: int = 0         # normal channel full: freed, not delivered
    completed: bool = False
    error: Optional[str] = None   # set when the request aborted
    cancelled: bool = False       # the caller timed out and moved on
    done_event: Optional[Event] = None

    @property
    def setup_duration(self) -> float:
        """Detection-to-bypass-in-use time (the paper's ~100 ms figure)."""
        return self.t_tx_configured - self.t_requested


class ComputeAgent:
    """The host agent that plugs bypass channels and configures PMDs."""

    def __init__(
        self,
        hypervisor: Hypervisor,
        env: Optional[Environment] = None,
        costs: CostModel = DEFAULT_COST_MODEL,
        faults: Optional["FaultPlan"] = None,
    ) -> None:
        self.hypervisor = hypervisor
        self.env = env
        self.costs = costs
        self.faults = faults
        self._port_owner: Dict[str, str] = {}
        self._pending_replies: Dict[int, Event] = {}
        # Sync mode: replies actually *delivered* back to the host,
        # keyed by reply id (a dropped reply never lands here even
        # though the send was logged).
        self._sync_replies: Dict[int, ControlMessage] = {}
        self._reply_serial = itertools.count(1)
        self.requests: list = []
        self.dead_vms: set = set()
        hypervisor.on_destroy.append(self._on_vm_destroyed)

    def _on_vm_destroyed(self, vm_name: str) -> None:
        # Ownership is kept (for post-mortem queries) but marked dead so
        # no new bypass is ever set up toward this VM's ports.
        self.dead_vms.add(vm_name)
        # Any in-flight PMD command toward this VM will never be
        # answered: fail its reply event so the waiting request aborts
        # instead of hanging.
        for reply_id, (event, owner) in list(self._pending_replies.items()):
            if owner == vm_name:
                del self._pending_replies[reply_id]
                event.fail(HypervisorError(
                    "VM %r died awaiting PMD reply" % vm_name
                ))

    # -- topology knowledge -------------------------------------------------

    def register_port_owner(self, port_name: str, vm_name: str) -> None:
        """Record that ``port_name`` is plugged into ``vm_name``.

        The agent learns this when it creates the VM and wires its dpdkr
        ports; this mapping is exactly the knowledge OVS lacks.
        """
        self._port_owner[port_name] = vm_name
        vm = self.hypervisor.vms.get(vm_name)
        if vm is not None and vm.running:
            # A replacement VM may reuse the name of a crashed one; the
            # re-registration is how the agent learns it came back.
            self.dead_vms.discard(vm_name)
        if vm is not None and vm.serial.host_handler is None:
            vm.serial.host_handler = self._on_guest_reply

    def owner_of(self, port_name: str) -> str:
        try:
            return self._port_owner[port_name]
        except KeyError:
            raise HypervisorError(
                "compute agent does not know port %r" % port_name
            ) from None

    def ports_of(self, vm_name: str) -> list:
        return [port for port, owner in self._port_owner.items()
                if owner == vm_name]

    def is_port_alive(self, port_name: str) -> bool:
        """True when the port is known and its VM is still running."""
        owner = self._port_owner.get(port_name)
        return owner is not None and owner not in self.dead_vms

    def is_port_crashed(self, port_name: str) -> bool:
        """True when the port's VM is dead because it *crashed*.

        Distinguishes abrupt process death (reclaim + quarantine with
        reason ``"peer_crashed"``) from a graceful destroy; a
        replacement VM reusing the name clears the condition.
        """
        owner = self._port_owner.get(port_name)
        return (owner is not None and owner in self.dead_vms
                and self.hypervisor.was_crashed(owner))

    # -- requests from OVS ---------------------------------------------------------

    def setup_bypass(
        self,
        src_port_name: str,
        dst_port_name: str,
        zone_name: str,
        flow_id: int,
    ) -> AgentRequest:
        """Establish a directed bypass src -> dst over ``zone_name``.

        In simulation mode returns immediately; wait on
        ``request.done_event``.  Synchronous otherwise.
        """
        request = self._new_request("setup", src_port_name, dst_port_name,
                                    zone_name, flow_id=flow_id)
        if self.env is None:
            try:
                self._setup_sync(request)
            except Exception as error:  # noqa: BLE001 - surfaced via .error
                request.error = str(error)
                request.completed = True
        else:
            self.env.process(self._setup_process(request),
                             name="agent.setup.%d" % request.request_id)
        return request

    def teardown_bypass(
        self,
        src_port_name: str,
        dst_port_name: str,
        zone_name: str,
        ring: Ring,
    ) -> AgentRequest:
        """Remove a bypass, losing none of the packets still in ``ring``."""
        request = self._new_request("teardown", src_port_name,
                                    dst_port_name, zone_name)
        if self.env is None:
            try:
                self._teardown_sync(request, ring)
            except Exception as error:  # noqa: BLE001 - surfaced via .error
                request.error = str(error)
                request.completed = True
        else:
            self.env.process(self._teardown_process(request, ring),
                             name="agent.teardown.%d" % request.request_id)
        return request

    def _new_request(self, kind: str, src: str, dst: str, zone_name: str,
                     flow_id: Optional[int] = None) -> AgentRequest:
        request = AgentRequest(
            request_id=next(_request_ids),
            kind=kind,
            src_port_name=src,
            dst_port_name=dst,
            zone_name=zone_name,
            flow_id=flow_id,
            t_requested=self._now(),
        )
        if self.env is not None:
            request.done_event = self.env.event()
        self.requests.append(request)
        return request

    def _now(self) -> float:
        return self.env.now if self.env is not None else 0.0

    def _vm_of(self, port_name: str) -> VirtualMachine:
        return self.hypervisor.vms[self.owner_of(port_name)]

    # -- cancellation and fault hooks ----------------------------------------

    def cancel(self, request: AgentRequest, reason: str) -> None:
        """Give up on an in-flight request (the caller's step timed out).

        The request's process aborts at its next resumption instead of
        performing further side effects; work already done is the
        caller's to roll back.
        """
        request.cancelled = True
        if request.error is None:
            request.error = "cancelled: %s" % reason

    @staticmethod
    def _check_cancel(request: AgentRequest) -> None:
        if request.cancelled:
            raise RequestCancelled(request.error or "request cancelled")

    def _inject(self, point: str, sync: bool = False):
        """Fire the fault plan at an agent RPC point.

        Simulation mode: a generator to ``yield from``.  DROP parks the
        request forever (only the caller's timeout recovers), DELAY
        stretches it, ERROR/CRASH raise.  Sync mode surfaces DROP as an
        error because nothing can hang synchronously.
        """
        if self.faults is None:
            return () if sync else iter(())
        from repro.faults import FaultMode

        action = self.faults.fire(point)
        if action is None:
            return () if sync else iter(())
        if action.mode in (FaultMode.ERROR, FaultMode.CRASH):
            raise HypervisorError(action.message)
        if sync:
            if action.mode is FaultMode.DROP:
                raise HypervisorError(action.message)
            return ()  # DELAY without a clock is a no-op

        def _effects():
            if action.mode is FaultMode.DELAY:
                yield self.env.timeout(action.delay)
            elif action.mode is FaultMode.DROP:
                yield self.env.event()  # never fires

        return _effects()

    def _fire_setup_crash(self, request: AgentRequest) -> None:
        """The ``vm.crash_during_setup`` injection point.

        Fired after the bypass zones are plugged but before the receiver
        PMD is configured — the crash window that leaves the most
        channel state (a mapped zone, a provisioned ring, a half-built
        link) for the failure paths to clean up.  A triggered occurrence
        kills the *receiver* VM abruptly, whatever the spec's mode.
        """
        if self.faults is None:
            return
        from repro.faults import VM_CRASH_DURING_SETUP

        if not self.faults.has_specs(VM_CRASH_DURING_SETUP):
            return
        action = self.faults.fire(VM_CRASH_DURING_SETUP)
        if action is None:
            return
        victim = self._port_owner.get(request.dst_port_name)
        if victim in self.hypervisor.vms:
            self.hypervisor.crash_vm(victim)

    @staticmethod
    def _check_reply(reply) -> None:
        """Fail the request when the guest NACKed a PMD command."""
        if isinstance(reply, ControlMessage) and reply.command == "error":
            raise HypervisorError(
                "PMD rejected command: %s"
                % reply.args.get("reason", "unknown error")
            )

    # -- synchronous execution (unit tests, env-less deployments) ------------------

    def _setup_sync(self, request: AgentRequest) -> None:
        self._inject("agent.rpc.send", sync=True)
        for port_name in (request.src_port_name, request.dst_port_name):
            self.hypervisor.plug_ivshmem(self.owner_of(port_name),
                                         request.zone_name)
        self._fire_setup_crash(request)
        self._send_pmd_command_checked(
            self._vm_of(request.dst_port_name), "attach_bypass",
            request.dst_port_name, request, role="rx")
        request.t_rx_configured = self._now()
        self._send_pmd_command_checked(
            self._vm_of(request.src_port_name), "attach_bypass",
            request.src_port_name, request, role="tx")
        request.t_tx_configured = self._now()
        self._inject("agent.rpc.reply", sync=True)
        request.completed = True

    def _teardown_sync(self, request: AgentRequest, ring: Ring) -> None:
        self._inject("agent.rpc.send", sync=True)
        self._send_pmd_command_checked(
            self._vm_of(request.src_port_name), "detach_bypass",
            request.src_port_name, request, role="tx", stall=True)
        self._send_pmd_command_checked(
            self._vm_of(request.dst_port_name), "detach_bypass",
            request.dst_port_name, request, role="rx")
        request.salvaged_packets = self._salvage(request, ring)
        self._send_pmd_command_checked(
            self._vm_of(request.src_port_name), "resume_tx",
            request.src_port_name, request, role="tx")
        for port_name in (request.src_port_name, request.dst_port_name):
            self.hypervisor.unplug_ivshmem(self.owner_of(port_name),
                                           request.zone_name)
        self._inject("agent.rpc.reply", sync=True)
        request.completed = True

    def _salvage(self, request: AgentRequest, ring: Ring) -> int:
        """Re-home packets stuck in a bypass ring onto the normal channel.

        Returns the number actually delivered; an overflowing normal
        ring (receiver badly behind) costs the tail of the salvage,
        counted separately in ``request.lost_packets`` — reporting those
        as salvaged would hide real loss from the teardown's caller.
        """
        from repro.dpdk.dpdkr import dpdkr_zone_name

        leftovers = ring.drain()
        if not leftovers:
            return 0
        zone = self.hypervisor.registry.lookup(
            dpdkr_zone_name(request.dst_port_name)
        )
        normal_rx = zone.get("rx")
        accepted = normal_rx.enqueue_burst(leftovers)
        for mbuf in leftovers[accepted:]:
            mbuf.free()
        request.lost_packets += len(leftovers) - accepted
        return accepted

    # -- simulated execution ----------------------------------------------------------

    def _setup_process(self, request: AgentRequest):
        try:
            yield from self._setup_steps(request)
        except Exception as error:  # noqa: BLE001 - a VM died mid-flight
            request.error = str(error)
            request.completed = True
            request.done_event.succeed(request)

    def _setup_steps(self, request: AgentRequest):
        env = self.env
        # 1. The OVS -> agent RPC itself.
        yield from self._inject("agent.rpc.send")
        yield env.timeout(self.costs.agent_rpc)
        self._check_cancel(request)
        request.t_rpc_done = env.now
        # 2. ivshmem hot-plug into both VMs, in parallel.
        plugs = [
            self.hypervisor.plug_ivshmem(self.owner_of(port_name),
                                         request.zone_name)
            for port_name in (request.src_port_name, request.dst_port_name)
        ]
        yield env.all_of(plugs)
        self._check_cancel(request)
        request.t_zones_plugged = env.now
        self._fire_setup_crash(request)
        # 3. Receiver PMD first: make-before-break.
        reply = yield self._pmd_command_event(
            self._vm_of(request.dst_port_name), "attach_bypass",
            request.dst_port_name, request, role="rx",
        )
        self._check_cancel(request)
        self._check_reply(reply)
        request.t_rx_configured = env.now
        # 4. Sender PMD: from the next poll iteration, TX rides the bypass.
        reply = yield self._pmd_command_event(
            self._vm_of(request.src_port_name), "attach_bypass",
            request.src_port_name, request, role="tx",
        )
        self._check_cancel(request)
        self._check_reply(reply)
        request.t_tx_configured = env.now
        # 5. The agent -> OVS completion reply.
        yield from self._inject("agent.rpc.reply")
        self._check_cancel(request)
        request.t_completed = env.now
        request.completed = True
        request.done_event.succeed(request)

    def _teardown_process(self, request: AgentRequest, ring: Ring):
        try:
            yield from self._teardown_steps(request, ring)
        except Exception as error:  # noqa: BLE001 - a VM died mid-flight
            request.error = str(error)
            request.completed = True
            request.done_event.succeed(request)

    def _teardown_steps(self, request: AgentRequest, ring: Ring):
        """Ordered teardown: rx off -> tx stalled -> salvage -> resume.

        Detaching the receiver first freezes the bypass ring's contents;
        stalling the sender opens a quiet window in which the leftovers
        are re-homed onto the normal channel *ahead of* any future
        switch-path packet, so teardown reorders nothing and loses
        nothing.
        """
        env = self.env
        yield from self._inject("agent.rpc.send")
        yield env.timeout(self.costs.agent_rpc)
        self._check_cancel(request)
        request.t_rpc_done = env.now
        # 1. Sender off the bypass, stalled until the handover is done —
        #    the still-attached receiver keeps draining the ring in the
        #    meantime, shrinking the salvage.
        reply = yield self._pmd_command_event(
            self._vm_of(request.src_port_name), "detach_bypass",
            request.src_port_name, request, role="tx", stall=True,
        )
        self._check_cancel(request)
        self._check_reply(reply)
        request.t_tx_configured = env.now
        # 2. Receiver stops polling the bypass ring.
        reply = yield self._pmd_command_event(
            self._vm_of(request.dst_port_name), "detach_bypass",
            request.dst_port_name, request, role="rx",
        )
        self._check_cancel(request)
        self._check_reply(reply)
        request.t_rx_configured = env.now
        # 3. Re-home any leftovers onto the normal channel (in order:
        #    the sender is quiesced, so nothing can overtake them).
        request.salvaged_packets = self._salvage(request, ring)
        request.t_drained = env.now
        # 4. Release the sender onto the vSwitch path.
        reply = yield self._pmd_command_event(
            self._vm_of(request.src_port_name), "resume_tx",
            request.src_port_name, request, role="tx",
        )
        self._check_cancel(request)
        self._check_reply(reply)
        unplugs = [
            self.hypervisor.unplug_ivshmem(self.owner_of(port_name),
                                           request.zone_name)
            for port_name in (request.src_port_name, request.dst_port_name)
        ]
        yield env.all_of(unplugs)
        self._check_cancel(request)
        yield from self._inject("agent.rpc.reply")
        request.t_completed = env.now
        request.completed = True
        request.done_event.succeed(request)

    # -- virtio-serial plumbing ------------------------------------------------------

    def _on_guest_reply(self, message: ControlMessage) -> None:
        reply_id = message.args.get("request_id")
        entry = self._pending_replies.pop(reply_id, None)
        if entry is not None:
            entry[0].succeed(message)
        elif self.env is None:
            self._sync_replies[reply_id] = message

    def _pmd_command_event(self, vm: VirtualMachine, command: str,
                           port_name: str, request: AgentRequest,
                           role: str, **extra) -> Event:
        if vm.name in self.dead_vms or vm.name not in self.hypervisor.vms:
            raise HypervisorError(
                "cannot configure PMD: VM %r is gone" % vm.name
            )
        event = self.env.event()
        reply_id = self._send_pmd_command(vm, command, port_name, request,
                                          role=role, **extra)
        self._pending_replies[reply_id] = (event, vm.name)
        return event

    def _send_pmd_command_checked(self, vm: VirtualMachine, command: str,
                                  port_name: str, request: AgentRequest,
                                  role: str, **extra) -> None:
        """Sync-mode send with reply verification.

        Without an environment the serial channel delivers (and replies)
        synchronously, so by the time ``host_send`` returns the reply —
        if any — sits at the tail of ``to_host_log``.  A missing reply
        (message dropped in transit) or an explicit error reply fails
        the request instead of being silently ignored.
        """
        reply_id = self._send_pmd_command(vm, command, port_name, request,
                                          role=role, **extra)
        reply = self._sync_replies.pop(reply_id, None)
        if reply is None:
            raise HypervisorError(
                "no PMD reply for %s(%s) on %r (message lost)"
                % (command, role, port_name)
            )
        self._check_reply(reply)

    def _send_pmd_command(self, vm: VirtualMachine, command: str,
                          port_name: str, request: AgentRequest,
                          role: str, **extra) -> int:
        reply_id = next(self._reply_serial)
        args = {
            "request_id": reply_id,
            "port_name": port_name,
            "zone_name": request.zone_name,
            "role": role,
            **extra,
        }
        if role == "tx" and command == "attach_bypass":
            args["flow_id"] = request.flow_id
        vm.serial.host_send(ControlMessage(command, args))
        return reply_id
