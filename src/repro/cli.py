"""Command-line interface: run the paper's experiments from a shell.

    python -m repro fig3a --lengths 2:8 --duration 0.002
    python -m repro fig3b
    python -m repro latency --rate 1e6
    python -m repro setup-time
    python -m repro multihost --vms 2

Each subcommand builds the experiment, runs it on the discrete-event
engine and prints the paper-style table.  Durations are simulated
seconds; larger values are more stable and proportionally slower to
simulate.
"""

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.experiments import (
    ChainExperiment,
    MultiHostChainExperiment,
    ServiceGraphExperiment,
    SetupTimeExperiment,
)
from repro.metrics import format_table


def _parse_range(text: str) -> List[int]:
    """``"2:8"`` -> [2..8]; ``"2,4,8"`` -> [2, 4, 8]; ``"3"`` -> [3]."""
    if ":" in text:
        start, end = text.split(":", 1)
        return list(range(int(start), int(end) + 1))
    return [int(part) for part in text.split(",")]


def _write_obs_artifacts(obs, out_dir: str) -> None:
    """Dump one experiment's observability state: Prometheus text,
    JSONL snapshots, finished traces and the rendered report."""
    from repro.obs.export import prometheus_text

    os.makedirs(out_dir, exist_ok=True)
    with open(os.path.join(out_dir, "metrics.prom"), "w") as handle:
        handle.write(prometheus_text(obs.registry))
    with open(os.path.join(out_dir, "snapshots.jsonl"), "w") as handle:
        handle.write(obs.snapshotter.to_jsonl())
    with open(os.path.join(out_dir, "traces.jsonl"), "w") as handle:
        for trace in obs.tracer.finished:
            handle.write(json.dumps(trace.as_dict()) + "\n")
    with open(os.path.join(out_dir, "report.txt"), "w") as handle:
        handle.write(obs.report() + "\n")


def _emit_obs(args: argparse.Namespace, experiment) -> None:
    obs = experiment.obs if experiment is not None else None
    if obs is None:
        return
    if getattr(args, "obs_out", None):
        obs.snapshot_now()
        _write_obs_artifacts(obs, args.obs_out)
        print("observability artifacts written to %s" % args.obs_out,
              file=sys.stderr)
    if getattr(args, "obs_report", False):
        print(obs.report())


def _sched_kwargs(args: argparse.Namespace) -> dict:
    """ChainExperiment scheduler kwargs from the --pmd-* flags."""
    kwargs = {
        "rxq_assign": getattr(args, "pmd_rxq_assign", "roundrobin"),
        "auto_lb": getattr(args, "pmd_auto_lb", False),
    }
    overrides = {}
    if getattr(args, "pmd_auto_lb_interval", None) is not None:
        overrides["rebalance_interval"] = args.pmd_auto_lb_interval
    if getattr(args, "pmd_auto_lb_load_threshold", None) is not None:
        overrides["load_threshold"] = args.pmd_auto_lb_load_threshold
    if getattr(args, "pmd_auto_lb_improvement", None) is not None:
        overrides["improvement_threshold"] = args.pmd_auto_lb_improvement
    if overrides:
        from repro.sched.autolb import AutoLbPolicy

        kwargs["auto_lb_policy"] = AutoLbPolicy(**overrides)
    return kwargs


def _overload_kwargs(args: argparse.Namespace) -> dict:
    """ChainExperiment overload kwargs from the --fail-mode/--overload
    flags (absent flags leave the experiment defaults untouched)."""
    kwargs = {}
    if getattr(args, "fail_mode", None) is not None:
        kwargs["fail_mode"] = args.fail_mode
    if getattr(args, "unbounded_upcalls", False):
        kwargs["bounded_upcalls"] = False
    if getattr(args, "overload_control", False):
        kwargs["overload"] = True
    if getattr(args, "upcall_max_queue", None) is not None:
        from repro.overload import UpcallPolicy

        kwargs["upcall_policy"] = UpcallPolicy(
            max_queue=args.upcall_max_queue)
    return kwargs


def _fastpath_kwargs(args: argparse.Namespace) -> dict:
    """ChainExperiment fast-path kwargs (--megaflow/--no-megaflow)."""
    kwargs = {}
    if not getattr(args, "megaflow", True):
        kwargs["megaflow_enabled"] = False
    return kwargs


def cmd_fig3(args: argparse.Namespace, memory_only: bool) -> int:
    rows = []
    last_experiment = None
    for num_vms in args.lengths:
        line = [num_vms]
        for bypass in (False, True):
            experiment = ChainExperiment(
                num_vms=num_vms,
                bypass=bypass,
                memory_only=memory_only,
                duration=args.duration,
                frame_size=args.frame_size,
                trace_sample=args.trace_sample,
                snapshot_period=args.snapshot_period,
                **_sched_kwargs(args),
                **_overload_kwargs(args),
                **_fastpath_kwargs(args)
            )
            result = experiment.run()
            line.append(round(result.throughput_mpps, 3))
            last_experiment = experiment
        rows.append(line)
        print("  %d VMs done" % num_vms, file=sys.stderr)
    print(format_table(
        ["# VMs", "traditional Mpps", "our approach Mpps"], rows
    ))
    _emit_obs(args, last_experiment)
    return 0


def cmd_latency(args: argparse.Namespace) -> int:
    rows = []
    last_experiment = None
    for num_vms in args.lengths:
        vanilla = ChainExperiment(num_vms=num_vms, bypass=False,
                                  duration=args.duration,
                                  source_rate_pps=args.rate).run()
        experiment = ChainExperiment(
            num_vms=num_vms, bypass=True, duration=args.duration,
            source_rate_pps=args.rate,
            trace_sample=args.trace_sample,
            snapshot_period=args.snapshot_period,
            **_sched_kwargs(args),
            **_overload_kwargs(args),
            **_fastpath_kwargs(args)
        )
        ours = experiment.run()
        last_experiment = experiment
        improvement = 1 - ours.mean_latency / vanilla.mean_latency
        rows.append([num_vms, round(vanilla.mean_latency * 1e6, 2),
                     round(ours.mean_latency * 1e6, 2),
                     "%.0f%%" % (improvement * 100)])
    print(format_table(
        ["# VMs", "traditional us", "ours us", "improvement"], rows
    ))
    _emit_obs(args, last_experiment)
    return 0


def cmd_setup_time(_args: argparse.Namespace) -> int:
    result = SetupTimeExperiment().run()
    rows = [[name, round(value * 1e3, 2)]
            for name, value in result.stages()]
    rows.append(["TOTAL", round(result.total * 1e3, 2)])
    rows.append(["teardown", round(result.teardown_total * 1e3, 2)])
    print(format_table(["stage", "ms"], rows))
    return 0


def cmd_multihost(args: argparse.Namespace) -> int:
    rows = []
    for bypass in (False, True):
        result = MultiHostChainExperiment(
            vms_per_host=args.vms, bypass=bypass,
            duration=args.duration,
        ).run()
        rows.append(["bypass" if bypass else "vanilla",
                     round(result.throughput_mpps, 3),
                     result.bypasses_host1 + result.bypasses_host2,
                     result.wire_packets])
    print(format_table(
        ["approach", "Mpps", "bypasses", "wire packets"], rows
    ))
    return 0


def cmd_service(args: argparse.Namespace) -> int:
    rows = []
    for bypass in (False, True):
        result = ServiceGraphExperiment(
            bypass=bypass, duration=args.duration, rate_pps=args.rate
        ).run()
        rows.append([
            "highway" if bypass else "vanilla",
            round(result.throughput_mpps, 3),
            "%.0f%%" % (result.cache_hit_rate * 100),
            result.monitor_flows,
            result.active_bypasses,
        ])
    print(format_table(
        ["approach", "Mpps", "cache hits", "flows", "bypasses"], rows
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the SIGCOMM'16 transparent-highway "
                    "experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, lengths_default):
        p.add_argument("--lengths", type=_parse_range,
                       default=lengths_default,
                       help="chain lengths, e.g. 2:8 or 2,4,8")
        p.add_argument("--duration", type=float, default=0.002,
                       help="simulated seconds per run")
        p.add_argument("--frame-size", type=int, default=64)
        p.add_argument("--trace-sample", type=int, default=None,
                       metavar="N",
                       help="trace 1-in-N packets (default: off)")
        p.add_argument("--snapshot-period", type=float, default=None,
                       metavar="SECONDS",
                       help="periodic metrics snapshots (simulated "
                            "seconds; default: off)")
        p.add_argument("--obs-report", action="store_true",
                       help="print the observability report after the "
                            "last run")
        p.add_argument("--obs-out", default=None, metavar="DIR",
                       help="write metrics.prom / snapshots.jsonl / "
                            "traces.jsonl / report.txt for the last run")
        p.add_argument("--pmd-rxq-assign", default="roundrobin",
                       choices=("roundrobin", "cycles", "group"),
                       help="rxq-to-core assignment policy "
                            "(default: roundrobin)")
        p.add_argument("--pmd-auto-lb", action="store_true",
                       help="enable the PMD auto load balancer")
        p.add_argument("--pmd-auto-lb-interval", type=float,
                       default=None, metavar="SECONDS",
                       help="auto-LB check interval (simulated seconds)")
        p.add_argument("--pmd-auto-lb-load-threshold", type=float,
                       default=None, metavar="FRACTION",
                       help="busy fraction a core must reach before the "
                            "auto-LB considers rebalancing")
        p.add_argument("--pmd-auto-lb-improvement", type=float,
                       default=None, metavar="FRACTION",
                       help="variance improvement required to apply a "
                            "rebalance")
        p.add_argument("--fail-mode", default=None,
                       choices=("standalone", "secure"),
                       help="controller fail mode "
                            "(default: standalone)")
        p.add_argument("--unbounded-upcalls", action="store_true",
                       help="use the legacy inline upcall path instead "
                            "of the bounded queue")
        p.add_argument("--upcall-max-queue", type=int, default=None,
                       metavar="N",
                       help="bounded upcall queue depth (default: 256)")
        p.add_argument("--overload-control", action="store_true",
                       help="enable the RX overload monitor "
                            "(qlen-driven early drop)")
        p.add_argument("--megaflow", dest="megaflow",
                       action="store_true", default=True,
                       help="enable the megaflow (wildcard) cache tier "
                            "(default)")
        p.add_argument("--no-megaflow", dest="megaflow",
                       action="store_false",
                       help="ablate the megaflow cache tier")

    p3a = sub.add_parser("fig3a", help="Figure 3(a): memory-only chains")
    common(p3a, _parse_range("2:8"))
    p3b = sub.add_parser("fig3b", help="Figure 3(b): chains through NICs")
    common(p3b, _parse_range("1:8"))
    plat = sub.add_parser("latency", help="latency vs chain length")
    common(plat, _parse_range("2,4,6,8"))
    plat.add_argument("--rate", type=float, default=1e6,
                      help="offered load per direction (pps)")
    sub.add_parser("setup-time", help="bypass establishment breakdown")
    psvc = sub.add_parser("service",
                          help="the Figure-1 firewall/monitor/cache "
                               "service, highway on vs off")
    psvc.add_argument("--duration", type=float, default=0.004)
    psvc.add_argument("--rate", type=float, default=8e6)
    pmh = sub.add_parser("multihost", help="chain across two hosts")
    pmh.add_argument("--vms", type=int, default=2,
                     help="VMs per host")
    pmh.add_argument("--duration", type=float, default=0.003)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "fig3a":
        return cmd_fig3(args, memory_only=True)
    if args.command == "fig3b":
        return cmd_fig3(args, memory_only=False)
    if args.command == "latency":
        return cmd_latency(args)
    if args.command == "setup-time":
        return cmd_setup_time(args)
    if args.command == "service":
        return cmd_service(args)
    if args.command == "multihost":
        return cmd_multihost(args)
    return 2


if __name__ == "__main__":
    sys.exit(main())
