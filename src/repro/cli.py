"""Command-line interface: run the paper's experiments from a shell.

    python -m repro fig3a --lengths 2:8 --duration 0.002
    python -m repro fig3b
    python -m repro latency --rate 1e6
    python -m repro setup-time
    python -m repro multihost --vms 2

Each subcommand builds the experiment, runs it on the discrete-event
engine and prints the paper-style table.  Durations are simulated
seconds; larger values are more stable and proportionally slower to
simulate.
"""

import argparse
import sys
from typing import List, Optional

from repro.experiments import (
    ChainExperiment,
    MultiHostChainExperiment,
    ServiceGraphExperiment,
    SetupTimeExperiment,
)
from repro.metrics import format_table


def _parse_range(text: str) -> List[int]:
    """``"2:8"`` -> [2..8]; ``"2,4,8"`` -> [2, 4, 8]; ``"3"`` -> [3]."""
    if ":" in text:
        start, end = text.split(":", 1)
        return list(range(int(start), int(end) + 1))
    return [int(part) for part in text.split(",")]


def cmd_fig3(args: argparse.Namespace, memory_only: bool) -> int:
    rows = []
    for num_vms in args.lengths:
        line = [num_vms]
        for bypass in (False, True):
            result = ChainExperiment(
                num_vms=num_vms,
                bypass=bypass,
                memory_only=memory_only,
                duration=args.duration,
                frame_size=args.frame_size,
            ).run()
            line.append(round(result.throughput_mpps, 3))
        rows.append(line)
        print("  %d VMs done" % num_vms, file=sys.stderr)
    print(format_table(
        ["# VMs", "traditional Mpps", "our approach Mpps"], rows
    ))
    return 0


def cmd_latency(args: argparse.Namespace) -> int:
    rows = []
    for num_vms in args.lengths:
        vanilla = ChainExperiment(num_vms=num_vms, bypass=False,
                                  duration=args.duration,
                                  source_rate_pps=args.rate).run()
        ours = ChainExperiment(num_vms=num_vms, bypass=True,
                               duration=args.duration,
                               source_rate_pps=args.rate).run()
        improvement = 1 - ours.mean_latency / vanilla.mean_latency
        rows.append([num_vms, round(vanilla.mean_latency * 1e6, 2),
                     round(ours.mean_latency * 1e6, 2),
                     "%.0f%%" % (improvement * 100)])
    print(format_table(
        ["# VMs", "traditional us", "ours us", "improvement"], rows
    ))
    return 0


def cmd_setup_time(_args: argparse.Namespace) -> int:
    result = SetupTimeExperiment().run()
    rows = [[name, round(value * 1e3, 2)]
            for name, value in result.stages()]
    rows.append(["TOTAL", round(result.total * 1e3, 2)])
    rows.append(["teardown", round(result.teardown_total * 1e3, 2)])
    print(format_table(["stage", "ms"], rows))
    return 0


def cmd_multihost(args: argparse.Namespace) -> int:
    rows = []
    for bypass in (False, True):
        result = MultiHostChainExperiment(
            vms_per_host=args.vms, bypass=bypass,
            duration=args.duration,
        ).run()
        rows.append(["bypass" if bypass else "vanilla",
                     round(result.throughput_mpps, 3),
                     result.bypasses_host1 + result.bypasses_host2,
                     result.wire_packets])
    print(format_table(
        ["approach", "Mpps", "bypasses", "wire packets"], rows
    ))
    return 0


def cmd_service(args: argparse.Namespace) -> int:
    rows = []
    for bypass in (False, True):
        result = ServiceGraphExperiment(
            bypass=bypass, duration=args.duration, rate_pps=args.rate
        ).run()
        rows.append([
            "highway" if bypass else "vanilla",
            round(result.throughput_mpps, 3),
            "%.0f%%" % (result.cache_hit_rate * 100),
            result.monitor_flows,
            result.active_bypasses,
        ])
    print(format_table(
        ["approach", "Mpps", "cache hits", "flows", "bypasses"], rows
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the SIGCOMM'16 transparent-highway "
                    "experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, lengths_default):
        p.add_argument("--lengths", type=_parse_range,
                       default=lengths_default,
                       help="chain lengths, e.g. 2:8 or 2,4,8")
        p.add_argument("--duration", type=float, default=0.002,
                       help="simulated seconds per run")
        p.add_argument("--frame-size", type=int, default=64)

    p3a = sub.add_parser("fig3a", help="Figure 3(a): memory-only chains")
    common(p3a, _parse_range("2:8"))
    p3b = sub.add_parser("fig3b", help="Figure 3(b): chains through NICs")
    common(p3b, _parse_range("1:8"))
    plat = sub.add_parser("latency", help="latency vs chain length")
    common(plat, _parse_range("2,4,6,8"))
    plat.add_argument("--rate", type=float, default=1e6,
                      help="offered load per direction (pps)")
    sub.add_parser("setup-time", help="bypass establishment breakdown")
    psvc = sub.add_parser("service",
                          help="the Figure-1 firewall/monitor/cache "
                               "service, highway on vs off")
    psvc.add_argument("--duration", type=float, default=0.004)
    psvc.add_argument("--rate", type=float, default=8e6)
    pmh = sub.add_parser("multihost", help="chain across two hosts")
    pmh.add_argument("--vms", type=int, default=2,
                     help="VMs per host")
    pmh.add_argument("--duration", type=float, default=0.003)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "fig3a":
        return cmd_fig3(args, memory_only=True)
    if args.command == "fig3b":
        return cmd_fig3(args, memory_only=False)
    if args.command == "latency":
        return cmd_latency(args)
    if args.command == "setup-time":
        return cmd_setup_time(args)
    if args.command == "service":
        return cmd_service(args)
    if args.command == "multihost":
        return cmd_multihost(args)
    return 2


if __name__ == "__main__":
    sys.exit(main())
