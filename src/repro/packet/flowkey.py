"""Flow-key extraction: the tuple the datapath classifies packets on.

The exact-match cache (EMC) in the vSwitch keys on the full
:class:`FlowKey`; the tuple-space classifier matches masked subsets of
its fields.  The field set mirrors the OpenFlow 1.0-ish subset the paper's
steering rules use.
"""

from typing import NamedTuple, Optional

from repro.packet.headers import (
    ETH_TYPE_IPV4,
    IP_PROTO_ICMP,
    IP_PROTO_TCP,
    IP_PROTO_UDP,
    Ethernet,
    Icmp,
    IPv4,
    IPv6,
    Tcp,
    Udp,
    Vlan,
)
from repro.packet.packet import Packet


class FlowKey(NamedTuple):
    """The classification key extracted from a packet at a port.

    All address fields are integers (MACs as 48-bit ints, IPv4 as 32-bit
    ints) so keys hash fast and masks apply with plain bitwise AND.
    Missing layers are zero — the corresponding match fields can only be
    wildcarded for such packets, which the classifier enforces via the
    eth_type/ip_proto prerequisites.
    """

    in_port: int
    eth_src: int
    eth_dst: int
    eth_type: int
    vlan_vid: int
    ip_src: int
    ip_dst: int
    ip_proto: int
    ip_tos: int
    l4_src: int
    l4_dst: int


EMPTY_L3 = (0, 0, 0, 0, 0, 0)


def extract_flow_key(packet: Packet, in_port: int) -> FlowKey:
    """Build the :class:`FlowKey` for ``packet`` received on ``in_port``."""
    eth = packet.get(Ethernet)
    if eth is None:
        return FlowKey(in_port, 0, 0, 0, 0, *EMPTY_L3)

    vlan = packet.get(Vlan)
    vlan_vid = vlan.vid if vlan is not None else 0
    eth_type = vlan.eth_type if vlan is not None else eth.eth_type

    ip_src = ip_dst = ip_proto = ip_tos = 0
    l4_src = l4_dst = 0

    ipv4 = packet.get(IPv4)
    ipv6 = packet.get(IPv6)
    if ipv4 is not None and eth_type == ETH_TYPE_IPV4:
        ip_src, ip_dst = ipv4.src, ipv4.dst
        ip_proto, ip_tos = ipv4.proto, ipv4.tos
    elif ipv6 is not None:
        # Classify IPv6 on the low 32 bits: enough to discriminate flows
        # in the workloads we generate while keeping the key compact.
        ip_src = ipv6.src & 0xFFFFFFFF
        ip_dst = ipv6.dst & 0xFFFFFFFF
        ip_proto = ipv6.next_header
        ip_tos = ipv6.traffic_class

    if ip_proto in (IP_PROTO_TCP, IP_PROTO_UDP):
        l4 = packet.get(Tcp) if ip_proto == IP_PROTO_TCP else packet.get(Udp)
        if l4 is not None:
            l4_src, l4_dst = l4.src_port, l4.dst_port
    elif ip_proto == IP_PROTO_ICMP:
        icmp = packet.get(Icmp)
        if icmp is not None:
            l4_src, l4_dst = icmp.icmp_type, icmp.code

    return FlowKey(
        in_port=in_port,
        eth_src=eth.src.value,
        eth_dst=eth.dst.value,
        eth_type=eth_type,
        vlan_vid=vlan_vid,
        ip_src=ip_src,
        ip_dst=ip_dst,
        ip_proto=ip_proto,
        ip_tos=ip_tos,
        l4_src=l4_src,
        l4_dst=l4_dst,
    )


def key_with_port(key: FlowKey, in_port: int) -> FlowKey:
    """Re-key an already-extracted flow key at a different input port.

    The fast path uses this when a cached key crosses a patch port or a
    benchmark template mbuf is re-injected at another port: only the
    ``in_port`` field changes, so re-parsing the packet is unnecessary.
    """
    return key._replace(in_port=in_port)


def cached_flow_key(mbuf, in_port: int) -> FlowKey:
    """Return the flow key for ``mbuf`` at ``in_port``, caching on userdata.

    Benchmark workloads re-inject a handful of template packets millions of
    times; caching the extracted key on the mbuf keeps the functional
    semantics while avoiding redundant parsing.
    """
    cached: Optional[FlowKey] = mbuf.userdata
    if cached is None:
        cached = extract_flow_key(mbuf.packet, in_port)
        mbuf.userdata = cached
        return cached
    if cached.in_port != in_port:
        return cached._replace(in_port=in_port)
    return cached
