"""Convenience constructors for common test/workload packets."""

from typing import Optional

from repro.packet.checksum import pseudo_header_checksum
from repro.packet.headers import (
    ETH_TYPE_ARP,
    ETH_TYPE_IPV4,
    IP_PROTO_TCP,
    IP_PROTO_UDP,
    IPV4_MIN_HEADER_LEN,
    TCP_MIN_HEADER_LEN,
    UDP_HEADER_LEN,
    Arp,
    Ethernet,
    IPv4,
    MacAddress,
    Tcp,
    Udp,
    ipv4_to_int,
)
from repro.packet.packet import Packet

ETHERNET_OVERHEAD = 14
MIN_FRAME = 64  # classic minimum Ethernet frame (without FCS here)


def _resolve_mac(mac) -> MacAddress:
    if isinstance(mac, MacAddress):
        return mac
    if isinstance(mac, str):
        return MacAddress.from_string(mac)
    return MacAddress(int(mac))


def _resolve_ip(ip) -> int:
    if isinstance(ip, str):
        return ipv4_to_int(ip)
    return int(ip)


def pad_to(packet: Packet, frame_size: int) -> Packet:
    """Pad ``packet.payload`` so the serialized frame is ``frame_size``.

    Raises ValueError when the packet is already longer than the target.
    """
    current = packet.wire_length
    if current > frame_size:
        raise ValueError(
            "packet is %d bytes, cannot pad down to %d" % (current, frame_size)
        )
    packet.payload = packet.payload + b"\x00" * (frame_size - current)
    # Fix the IP/UDP length fields so the padded frame stays well-formed.
    ipv4 = packet.get(IPv4)
    if ipv4 is not None:
        ipv4.total_length = frame_size - ETHERNET_OVERHEAD
        udp = packet.get(Udp)
        if udp is not None:
            udp.length = ipv4.total_length - IPV4_MIN_HEADER_LEN
    return packet


def make_udp_packet(
    src_mac="02:00:00:00:00:01",
    dst_mac="02:00:00:00:00:02",
    src_ip="10.0.0.1",
    dst_ip="10.0.0.2",
    src_port: int = 1000,
    dst_port: int = 2000,
    payload: bytes = b"",
    frame_size: Optional[int] = None,
    fill_checksums: bool = True,
) -> Packet:
    """Build an Ethernet/IPv4/UDP packet, optionally padded to a size."""
    udp_length = UDP_HEADER_LEN + len(payload)
    ipv4 = IPv4(
        total_length=IPV4_MIN_HEADER_LEN + udp_length,
        proto=IP_PROTO_UDP,
        src=_resolve_ip(src_ip),
        dst=_resolve_ip(dst_ip),
    )
    udp = Udp(src_port=src_port, dst_port=dst_port, length=udp_length)
    packet = Packet(
        headers=[
            Ethernet(dst=_resolve_mac(dst_mac), src=_resolve_mac(src_mac),
                     eth_type=ETH_TYPE_IPV4),
            ipv4,
            udp,
        ],
        payload=payload,
    )
    if frame_size is not None:
        pad_to(packet, frame_size)
    if fill_checksums:
        udp.checksum = pseudo_header_checksum(
            ipv4.src, ipv4.dst, IP_PROTO_UDP, udp.pack()[:6] + b"\x00\x00"
            + packet.payload
        )
    return packet


def make_tcp_packet(
    src_mac="02:00:00:00:00:01",
    dst_mac="02:00:00:00:00:02",
    src_ip="10.0.0.1",
    dst_ip="10.0.0.2",
    src_port: int = 40000,
    dst_port: int = 80,
    seq: int = 0,
    flags: int = Tcp.ACK,
    payload: bytes = b"",
    frame_size: Optional[int] = None,
) -> Packet:
    """Build an Ethernet/IPv4/TCP packet (e.g. the web traffic class)."""
    ipv4 = IPv4(
        total_length=IPV4_MIN_HEADER_LEN + TCP_MIN_HEADER_LEN + len(payload),
        proto=IP_PROTO_TCP,
        src=_resolve_ip(src_ip),
        dst=_resolve_ip(dst_ip),
    )
    tcp = Tcp(src_port=src_port, dst_port=dst_port, seq=seq, flags=flags)
    packet = Packet(
        headers=[
            Ethernet(dst=_resolve_mac(dst_mac), src=_resolve_mac(src_mac),
                     eth_type=ETH_TYPE_IPV4),
            ipv4,
            tcp,
        ],
        payload=payload,
    )
    if frame_size is not None:
        pad_to(packet, frame_size)
    tcp.checksum = pseudo_header_checksum(
        ipv4.src, ipv4.dst, IP_PROTO_TCP,
        tcp.pack()[:16] + b"\x00\x00" + tcp.pack()[18:] + packet.payload,
    )
    return packet


def make_arp_request(
    sender_mac="02:00:00:00:00:01",
    sender_ip="10.0.0.1",
    target_ip="10.0.0.2",
) -> Packet:
    """Build a broadcast ARP who-has request."""
    sender = _resolve_mac(sender_mac)
    return Packet(
        headers=[
            Ethernet(
                dst=MacAddress(0xFFFFFFFFFFFF),
                src=sender,
                eth_type=ETH_TYPE_ARP,
            ),
            Arp(
                opcode=1,
                sender_mac=sender,
                sender_ip=_resolve_ip(sender_ip),
                target_mac=MacAddress(0),
                target_ip=_resolve_ip(target_ip),
            ),
        ]
    )
