"""The :class:`Packet` container: an ordered header stack plus payload."""

from typing import List, Optional, Type, TypeVar, Union

from repro.packet.headers import (
    ETH_TYPE_ARP,
    ETH_TYPE_IPV4,
    ETH_TYPE_IPV6,
    ETH_TYPE_VLAN,
    IP_PROTO_ICMP,
    IP_PROTO_TCP,
    IP_PROTO_UDP,
    Arp,
    Ethernet,
    HeaderError,
    Icmp,
    IPv4,
    IPv6,
    Tcp,
    Udp,
    Vlan,
)

Header = Union[Ethernet, Vlan, Arp, IPv4, IPv6, Tcp, Udp, Icmp]
HeaderT = TypeVar("HeaderT")

_ETH_TYPE_DISPATCH = {
    ETH_TYPE_IPV4: IPv4,
    ETH_TYPE_IPV6: IPv6,
    ETH_TYPE_ARP: Arp,
    ETH_TYPE_VLAN: Vlan,
}

_IP_PROTO_DISPATCH = {
    IP_PROTO_TCP: Tcp,
    IP_PROTO_UDP: Udp,
    IP_PROTO_ICMP: Icmp,
}


class Packet:
    """A parsed packet: a list of headers and an opaque payload.

    Packets are what flows through rings and ports in functional tests and
    examples.  (Throughput benchmarks use recycled mbufs carrying a single
    pre-built packet to keep the simulator fast; the classes are
    interchangeable at the port API.)
    """

    __slots__ = ("headers", "payload")

    def __init__(self, headers: Optional[List[Header]] = None,
                 payload: bytes = b"") -> None:
        self.headers: List[Header] = headers if headers is not None else []
        self.payload = payload

    def add(self, header: Header) -> "Packet":
        """Append ``header`` to the stack; returns self for chaining."""
        self.headers.append(header)
        return self

    def get(self, header_type: Type[HeaderT]) -> Optional[HeaderT]:
        """Return the first header of ``header_type``, or None."""
        for header in self.headers:
            if isinstance(header, header_type):
                return header
        return None

    def pack(self) -> bytes:
        """Serialize the full packet to wire bytes."""
        return b"".join(header.pack() for header in self.headers) + self.payload

    @classmethod
    def unpack(cls, data: bytes) -> "Packet":
        """Parse wire bytes into a header stack.

        Parsing starts at Ethernet and walks eth_type / ip proto chains;
        anything unrecognized (or past TCP/UDP/ICMP) lands in ``payload``.
        """
        headers: List[Header] = []
        ethernet, offset = Ethernet.unpack(data)
        headers.append(ethernet)
        eth_type = ethernet.eth_type
        # Unwrap (possibly stacked) VLAN tags.
        while eth_type == ETH_TYPE_VLAN:
            vlan, consumed = Vlan.unpack(data[offset:])
            headers.append(vlan)
            offset += consumed
            eth_type = vlan.eth_type

        next_cls = _ETH_TYPE_DISPATCH.get(eth_type)
        if next_cls in (IPv4, IPv6):
            ip_header, consumed = next_cls.unpack(data[offset:])
            headers.append(ip_header)
            offset += consumed
            proto = (
                ip_header.proto if isinstance(ip_header, IPv4)
                else ip_header.next_header
            )
            l4_cls = _IP_PROTO_DISPATCH.get(proto)
            if l4_cls is not None:
                try:
                    l4_header, consumed = l4_cls.unpack(data[offset:])
                except HeaderError:
                    pass  # leave the L4 bytes in the payload
                else:
                    headers.append(l4_header)
                    offset += consumed
        elif next_cls is Arp:
            arp, consumed = Arp.unpack(data[offset:])
            headers.append(arp)
            offset += consumed

        return cls(headers=headers, payload=data[offset:])

    @property
    def wire_length(self) -> int:
        """Total length in bytes when serialized."""
        return sum(len(header) for header in self.headers) + len(self.payload)

    def __repr__(self) -> str:
        names = "/".join(type(header).__name__ for header in self.headers)
        return "<Packet %s payload=%dB>" % (names, len(self.payload))
