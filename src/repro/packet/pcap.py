"""pcap file I/O and a transparent capture tap.

Debugging an NFV chain means looking at packets; this module writes and
reads the classic libpcap format (microsecond timestamps, LINKTYPE_
ETHERNET) so captures taken inside the simulation open in Wireshark/
tcpdump, and provides :class:`CaptureTap` — an ethdev wrapper that
records traffic crossing any guest port without the application (or the
bypass machinery underneath) noticing.
"""

import struct
from typing import BinaryIO, Iterable, List, Optional, Tuple

from repro.dpdk.ethdev import EthDev
from repro.packet.mbuf import Mbuf
from repro.packet.packet import Packet

PCAP_MAGIC = 0xA1B2C3D4
PCAP_VERSION = (2, 4)
LINKTYPE_ETHERNET = 1
_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")


class PcapError(ValueError):
    """Malformed pcap data."""


def write_pcap(stream: BinaryIO,
               records: Iterable[Tuple[float, bytes]],
               snaplen: int = 65535) -> int:
    """Write ``(timestamp_seconds, frame_bytes)`` records; returns count."""
    stream.write(_GLOBAL_HEADER.pack(
        PCAP_MAGIC, PCAP_VERSION[0], PCAP_VERSION[1], 0, 0, snaplen,
        LINKTYPE_ETHERNET,
    ))
    count = 0
    for timestamp, frame in records:
        seconds = int(timestamp)
        micros = int(round((timestamp - seconds) * 1e6))
        if micros >= 1_000_000:
            seconds += 1
            micros -= 1_000_000
        captured = frame[:snaplen]
        stream.write(_RECORD_HEADER.pack(seconds, micros, len(captured),
                                         len(frame)))
        stream.write(captured)
        count += 1
    return count


def read_pcap(stream: BinaryIO) -> List[Tuple[float, bytes]]:
    """Read every record of a classic pcap stream."""
    header = stream.read(_GLOBAL_HEADER.size)
    if len(header) < _GLOBAL_HEADER.size:
        raise PcapError("truncated pcap global header")
    magic = struct.unpack("<I", header[:4])[0]
    if magic == PCAP_MAGIC:
        endian = "<"
    elif magic == struct.unpack(">I", struct.pack("<I", PCAP_MAGIC))[0]:
        endian = ">"
    else:
        raise PcapError("bad pcap magic %#x" % magic)
    record_header = struct.Struct(endian + "IIII")
    records: List[Tuple[float, bytes]] = []
    while True:
        raw = stream.read(record_header.size)
        if not raw:
            return records
        if len(raw) < record_header.size:
            raise PcapError("truncated pcap record header")
        seconds, micros, captured_len, _orig_len = record_header.unpack(raw)
        frame = stream.read(captured_len)
        if len(frame) < captured_len:
            raise PcapError("truncated pcap record body")
        records.append((seconds + micros / 1e6, frame))


class CaptureTap(EthDev):
    """A transparent ethdev wrapper that records traffic.

    Drop-in between an application and its port: ``rx_burst``/``tx_burst``
    delegate to the inner device while serializing each packet into an
    in-memory capture.  Works identically whether the inner port is
    riding the normal channel or a bypass — a tap in the guest sees the
    traffic either way, which is itself a transparency demonstration.
    """

    def __init__(self, inner: EthDev, clock=None,
                 max_records: int = 65536) -> None:
        super().__init__(inner.port_id, "%s.tap" % inner.name)
        self.inner = inner
        self.clock = clock or (lambda: 0.0)
        self.max_records = max_records
        self.records: List[Tuple[float, bytes, str]] = []
        self.truncated = False

    def _record(self, mbuf: Mbuf, direction: str) -> None:
        if len(self.records) >= self.max_records:
            self.truncated = True
            return
        packet = mbuf.packet
        frame = packet.pack() if isinstance(packet, Packet) else bytes(
            packet or b""
        )
        self.records.append((self.clock(), frame, direction))

    def rx_burst(self, max_count: int) -> List[Mbuf]:
        mbufs = self.inner.rx_burst(max_count)
        for mbuf in mbufs:
            self._record(mbuf, "rx")
        return mbufs

    def tx_burst(self, mbufs: List[Mbuf]) -> int:
        sent = self.inner.tx_burst(mbufs)
        for mbuf in mbufs[:sent]:
            self._record(mbuf, "tx")
        return sent

    @property
    def tx_extra_cost(self) -> float:
        return self.inner.tx_extra_cost

    def dump(self, stream: BinaryIO,
             direction: Optional[str] = None) -> int:
        """Write the capture as pcap; optionally one direction only."""
        selected = (
            (ts, frame) for ts, frame, d in self.records
            if direction is None or d == direction
        )
        return write_pcap(stream, selected)
