"""Mbuf: the DPDK-style packet buffer descriptor.

An :class:`Mbuf` wraps a :class:`~repro.packet.packet.Packet` (or raw
bytes) together with the receive metadata that the data-plane components
care about: input port, wire length, timestamps and a reference count.
Mbufs are allocated from and recycled into a
:class:`~repro.mem.mempool.Mempool` exactly like ``rte_mbuf``.
"""

from typing import Any, Optional


class Mbuf:
    """A packet buffer descriptor.

    Attributes
    ----------
    packet:
        The payload object.  In functional paths this is a parsed
        :class:`Packet`; throughput benchmarks store a shared template to
        avoid per-packet allocation, mirroring how real mbufs all point at
        prototypical synthesized frames in pktgen-style tools.
    wire_length:
        Frame length in bytes as it would appear on the wire (used by the
        byte counters and the NIC serialization model).
    port:
        Receive port id, set by the PMD on rx.
    seq:
        Generator sequence number (latency probes match on it).
    ts_created / ts_injected:
        Simulation timestamps (seconds) stamped by the traffic generator;
        latency = drain time - ``ts_injected``.
    """

    __slots__ = (
        "packet",
        "wire_length",
        "port",
        "seq",
        "ts_created",
        "ts_injected",
        "refcnt",
        "pool",
        "userdata",
        "trace",
        "in_pool",
        "holder",
    )

    def __init__(self, pool: Optional[Any] = None) -> None:
        self.pool = pool
        # Ownership-ledger state, managed by the Mempool (never by
        # reset(): the pool flips in_pool on get/put and moves holder
        # on assign, and a stale value here is exactly the double-free
        # evidence the pool wants to see).
        self.in_pool = False
        self.holder: Optional[str] = None
        self.packet: Any = None
        self.wire_length = 0
        self.port = -1
        self.seq = -1
        self.ts_created = -1.0  # -1 = never stamped
        self.ts_injected = -1.0
        self.refcnt = 1
        self.userdata: Any = None
        # Sampled path-tracing span list (repro.obs.trace); None on the
        # untraced majority, so hot paths pay one attribute compare.
        self.trace: Any = None

    def reset(self) -> None:
        """Restore alloc-time state (called by the mempool on get)."""
        self.packet = None
        self.wire_length = 0
        self.port = -1
        self.seq = -1
        self.ts_created = -1.0
        self.ts_injected = -1.0
        self.refcnt = 1
        self.userdata = None
        self.trace = None

    def retain(self) -> "Mbuf":
        """Increment the reference count (multicast/clone paths)."""
        self.refcnt += 1
        return self

    def free(self) -> None:
        """Drop one reference; return to the pool when it hits zero."""
        if self.refcnt <= 0:
            raise RuntimeError("double free of mbuf")
        self.refcnt -= 1
        if self.refcnt == 0 and self.pool is not None:
            self.pool.put(self)

    def __repr__(self) -> str:
        return "<Mbuf port=%d len=%d seq=%d refcnt=%d>" % (
            self.port, self.wire_length, self.seq, self.refcnt
        )
