"""Packet model: protocol headers, checksums, mbufs and flow keys.

This package provides the data-plane packet representation used across the
library.  Headers serialize to real wire bytes (``struct``-based), so every
component that claims to parse or build packets is exercised against actual
binary encodings rather than ad-hoc dictionaries.
"""

from repro.packet.checksum import internet_checksum, pseudo_header_checksum
from repro.packet.headers import (
    ETH_TYPE_ARP,
    ETH_TYPE_IPV4,
    ETH_TYPE_IPV6,
    ETH_TYPE_VLAN,
    IP_PROTO_ICMP,
    IP_PROTO_TCP,
    IP_PROTO_UDP,
    Arp,
    Ethernet,
    Icmp,
    IPv4,
    IPv6,
    MacAddress,
    Tcp,
    Udp,
    Vlan,
)
from repro.packet.flowkey import FlowKey, extract_flow_key
from repro.packet.mbuf import Mbuf
from repro.packet.packet import Packet
from repro.packet.builder import (
    make_tcp_packet,
    make_udp_packet,
    make_arp_request,
    pad_to,
)

__all__ = [
    "Arp",
    "ETH_TYPE_ARP",
    "ETH_TYPE_IPV4",
    "ETH_TYPE_IPV6",
    "ETH_TYPE_VLAN",
    "Ethernet",
    "FlowKey",
    "IP_PROTO_ICMP",
    "IP_PROTO_TCP",
    "IP_PROTO_UDP",
    "IPv4",
    "IPv6",
    "Icmp",
    "MacAddress",
    "Mbuf",
    "Packet",
    "Tcp",
    "Udp",
    "Vlan",
    "extract_flow_key",
    "internet_checksum",
    "make_arp_request",
    "make_tcp_packet",
    "make_udp_packet",
    "pad_to",
    "pseudo_header_checksum",
]
