"""Internet checksum (RFC 1071) and the TCP/UDP pseudo-header variant."""

import struct


def internet_checksum(data: bytes, initial: int = 0) -> int:
    """Compute the 16-bit one's-complement internet checksum of ``data``.

    ``initial`` is a partial sum carried over from previously summed bytes
    (used for pseudo-header checksums).  Returns the final checksum value,
    ready to be stored in a header field.
    """
    total = initial
    length = len(data)
    # Sum 16-bit words; pad the trailing odd byte with a zero byte.
    if length % 2:
        data = data + b"\x00"
        length += 1
    for (word,) in struct.iter_unpack("!H", data):
        total += word
    # Fold carries back into the low 16 bits.
    while total > 0xFFFF:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def _ones_complement_sum(data: bytes) -> int:
    """Return the raw (unfolded-complemented) one's-complement sum."""
    total = 0
    if len(data) % 2:
        data = data + b"\x00"
    for (word,) in struct.iter_unpack("!H", data):
        total += word
    return total


def pseudo_header_checksum(
    src_ip: int, dst_ip: int, proto: int, payload: bytes
) -> int:
    """Checksum of an IPv4 pseudo-header followed by ``payload``.

    Used by TCP and UDP.  ``src_ip``/``dst_ip`` are 32-bit integers in host
    representation of the network-order value (as stored by :class:`IPv4`).
    """
    pseudo = struct.pack("!IIBBH", src_ip, dst_ip, 0, proto, len(payload))
    partial = _ones_complement_sum(pseudo)
    return internet_checksum(payload, initial=partial)


def verify_checksum(data: bytes) -> bool:
    """True when ``data`` (with its checksum field included) sums to zero."""
    return internet_checksum(data) == 0
