"""Protocol header classes with real binary encode/decode.

Every header knows how to ``pack()`` itself to wire bytes and how to
``unpack(data)`` itself from them (classmethod returning ``(header,
consumed_bytes)``).  Addresses are kept as small value types so they hash
and compare cheaply in flow tables.
"""

import struct
from dataclasses import dataclass, field

ETH_TYPE_IPV4 = 0x0800
ETH_TYPE_ARP = 0x0806
ETH_TYPE_VLAN = 0x8100
ETH_TYPE_IPV6 = 0x86DD

IP_PROTO_ICMP = 1
IP_PROTO_TCP = 6
IP_PROTO_UDP = 17

ETHERNET_HEADER_LEN = 14
VLAN_HEADER_LEN = 4
IPV4_MIN_HEADER_LEN = 20
IPV6_HEADER_LEN = 40
TCP_MIN_HEADER_LEN = 20
UDP_HEADER_LEN = 8
ICMP_HEADER_LEN = 8
ARP_IPV4_LEN = 28


class HeaderError(ValueError):
    """Raised when a header cannot be parsed or encoded."""


@dataclass(frozen=True, order=True)
class MacAddress:
    """A 48-bit Ethernet MAC address stored as an integer."""

    value: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.value < (1 << 48):
            raise HeaderError("MAC address out of range: %#x" % self.value)

    @classmethod
    def from_string(cls, text: str) -> "MacAddress":
        """Parse ``aa:bb:cc:dd:ee:ff``."""
        parts = text.split(":")
        if len(parts) != 6:
            raise HeaderError("malformed MAC address: %r" % text)
        value = 0
        for part in parts:
            if len(part) != 2:
                raise HeaderError("malformed MAC address: %r" % text)
            value = (value << 8) | int(part, 16)
        return cls(value)

    @classmethod
    def from_bytes(cls, data: bytes) -> "MacAddress":
        if len(data) != 6:
            raise HeaderError("MAC address needs 6 bytes, got %d" % len(data))
        return cls(int.from_bytes(data, "big"))

    def to_bytes(self) -> bytes:
        return self.value.to_bytes(6, "big")

    @property
    def is_broadcast(self) -> bool:
        return self.value == 0xFFFFFFFFFFFF

    @property
    def is_multicast(self) -> bool:
        return bool((self.value >> 40) & 0x01)

    def __str__(self) -> str:
        raw = self.to_bytes()
        return ":".join("%02x" % byte for byte in raw)

    def __int__(self) -> int:
        return self.value


def ipv4_to_int(text: str) -> int:
    """Parse dotted-quad ``a.b.c.d`` into a 32-bit integer."""
    parts = text.split(".")
    if len(parts) != 4:
        raise HeaderError("malformed IPv4 address: %r" % text)
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise HeaderError("malformed IPv4 address: %r" % text)
        value = (value << 8) | octet
    return value


def int_to_ipv4(value: int) -> str:
    """Format a 32-bit integer as dotted-quad."""
    if not 0 <= value < (1 << 32):
        raise HeaderError("IPv4 address out of range: %#x" % value)
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


@dataclass
class Ethernet:
    """Ethernet II header."""

    dst: MacAddress = field(default_factory=MacAddress)
    src: MacAddress = field(default_factory=MacAddress)
    eth_type: int = ETH_TYPE_IPV4

    def pack(self) -> bytes:
        return self.dst.to_bytes() + self.src.to_bytes() + struct.pack(
            "!H", self.eth_type
        )

    @classmethod
    def unpack(cls, data: bytes) -> "tuple[Ethernet, int]":
        if len(data) < ETHERNET_HEADER_LEN:
            raise HeaderError("truncated Ethernet header")
        dst = MacAddress.from_bytes(data[0:6])
        src = MacAddress.from_bytes(data[6:12])
        (eth_type,) = struct.unpack("!H", data[12:14])
        return cls(dst=dst, src=src, eth_type=eth_type), ETHERNET_HEADER_LEN

    def __len__(self) -> int:
        return ETHERNET_HEADER_LEN


@dataclass
class Vlan:
    """802.1Q VLAN tag (follows the Ethernet header)."""

    pcp: int = 0
    dei: int = 0
    vid: int = 0
    eth_type: int = ETH_TYPE_IPV4

    def pack(self) -> bytes:
        if not 0 <= self.vid < 4096:
            raise HeaderError("VLAN id out of range: %d" % self.vid)
        tci = (self.pcp & 0x7) << 13 | (self.dei & 0x1) << 12 | self.vid
        return struct.pack("!HH", tci, self.eth_type)

    @classmethod
    def unpack(cls, data: bytes) -> "tuple[Vlan, int]":
        if len(data) < VLAN_HEADER_LEN:
            raise HeaderError("truncated VLAN tag")
        tci, eth_type = struct.unpack("!HH", data[:4])
        return (
            cls(pcp=tci >> 13, dei=(tci >> 12) & 1, vid=tci & 0xFFF,
                eth_type=eth_type),
            VLAN_HEADER_LEN,
        )

    def __len__(self) -> int:
        return VLAN_HEADER_LEN


@dataclass
class Arp:
    """ARP for IPv4 over Ethernet."""

    opcode: int = 1  # 1 = request, 2 = reply
    sender_mac: MacAddress = field(default_factory=MacAddress)
    sender_ip: int = 0
    target_mac: MacAddress = field(default_factory=MacAddress)
    target_ip: int = 0

    def pack(self) -> bytes:
        return (
            struct.pack("!HHBBH", 1, ETH_TYPE_IPV4, 6, 4, self.opcode)
            + self.sender_mac.to_bytes()
            + struct.pack("!I", self.sender_ip)
            + self.target_mac.to_bytes()
            + struct.pack("!I", self.target_ip)
        )

    @classmethod
    def unpack(cls, data: bytes) -> "tuple[Arp, int]":
        if len(data) < ARP_IPV4_LEN:
            raise HeaderError("truncated ARP packet")
        htype, ptype, hlen, plen, opcode = struct.unpack("!HHBBH", data[:8])
        if (htype, ptype, hlen, plen) != (1, ETH_TYPE_IPV4, 6, 4):
            raise HeaderError("unsupported ARP variant")
        sender_mac = MacAddress.from_bytes(data[8:14])
        (sender_ip,) = struct.unpack("!I", data[14:18])
        target_mac = MacAddress.from_bytes(data[18:24])
        (target_ip,) = struct.unpack("!I", data[24:28])
        return (
            cls(opcode=opcode, sender_mac=sender_mac, sender_ip=sender_ip,
                target_mac=target_mac, target_ip=target_ip),
            ARP_IPV4_LEN,
        )

    def __len__(self) -> int:
        return ARP_IPV4_LEN


@dataclass
class IPv4:
    """IPv4 header (options unsupported; ihl fixed at 5)."""

    tos: int = 0
    total_length: int = IPV4_MIN_HEADER_LEN
    identification: int = 0
    flags: int = 0
    fragment_offset: int = 0
    ttl: int = 64
    proto: int = IP_PROTO_UDP
    checksum: int = 0
    src: int = 0
    dst: int = 0

    def pack(self, *, fill_checksum: bool = True) -> bytes:
        from repro.packet.checksum import internet_checksum

        version_ihl = (4 << 4) | 5
        flags_frag = (self.flags & 0x7) << 13 | (self.fragment_offset & 0x1FFF)
        header = struct.pack(
            "!BBHHHBBHII",
            version_ihl,
            self.tos,
            self.total_length,
            self.identification,
            flags_frag,
            self.ttl,
            self.proto,
            0 if fill_checksum else self.checksum,
            self.src,
            self.dst,
        )
        if not fill_checksum:
            return header
        checksum = internet_checksum(header)
        self.checksum = checksum
        return header[:10] + struct.pack("!H", checksum) + header[12:]

    @classmethod
    def unpack(cls, data: bytes) -> "tuple[IPv4, int]":
        if len(data) < IPV4_MIN_HEADER_LEN:
            raise HeaderError("truncated IPv4 header")
        (
            version_ihl,
            tos,
            total_length,
            identification,
            flags_frag,
            ttl,
            proto,
            checksum,
            src,
            dst,
        ) = struct.unpack("!BBHHHBBHII", data[:20])
        version = version_ihl >> 4
        ihl = version_ihl & 0xF
        if version != 4:
            raise HeaderError("not an IPv4 header (version=%d)" % version)
        if ihl < 5:
            raise HeaderError("bad IPv4 ihl: %d" % ihl)
        header_len = ihl * 4
        if len(data) < header_len:
            raise HeaderError("truncated IPv4 options")
        return (
            cls(
                tos=tos,
                total_length=total_length,
                identification=identification,
                flags=flags_frag >> 13,
                fragment_offset=flags_frag & 0x1FFF,
                ttl=ttl,
                proto=proto,
                checksum=checksum,
                src=src,
                dst=dst,
            ),
            header_len,
        )

    def __len__(self) -> int:
        return IPV4_MIN_HEADER_LEN


@dataclass
class IPv6:
    """IPv6 header (no extension-header parsing)."""

    traffic_class: int = 0
    flow_label: int = 0
    payload_length: int = 0
    next_header: int = IP_PROTO_UDP
    hop_limit: int = 64
    src: int = 0  # 128-bit integer
    dst: int = 0

    def pack(self) -> bytes:
        word0 = (6 << 28) | (self.traffic_class << 20) | self.flow_label
        return (
            struct.pack("!IHBB", word0, self.payload_length,
                        self.next_header, self.hop_limit)
            + self.src.to_bytes(16, "big")
            + self.dst.to_bytes(16, "big")
        )

    @classmethod
    def unpack(cls, data: bytes) -> "tuple[IPv6, int]":
        if len(data) < IPV6_HEADER_LEN:
            raise HeaderError("truncated IPv6 header")
        word0, payload_length, next_header, hop_limit = struct.unpack(
            "!IHBB", data[:8]
        )
        if word0 >> 28 != 6:
            raise HeaderError("not an IPv6 header")
        return (
            cls(
                traffic_class=(word0 >> 20) & 0xFF,
                flow_label=word0 & 0xFFFFF,
                payload_length=payload_length,
                next_header=next_header,
                hop_limit=hop_limit,
                src=int.from_bytes(data[8:24], "big"),
                dst=int.from_bytes(data[24:40], "big"),
            ),
            IPV6_HEADER_LEN,
        )

    def __len__(self) -> int:
        return IPV6_HEADER_LEN


@dataclass
class Tcp:
    """TCP header (options unsupported; data offset fixed at 5)."""

    src_port: int = 0
    dst_port: int = 0
    seq: int = 0
    ack: int = 0
    flags: int = 0
    window: int = 65535
    checksum: int = 0
    urgent: int = 0

    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10

    def pack(self) -> bytes:
        offset_flags = (5 << 12) | (self.flags & 0x1FF)
        return struct.pack(
            "!HHIIHHHH",
            self.src_port,
            self.dst_port,
            self.seq,
            self.ack,
            offset_flags,
            self.window,
            self.checksum,
            self.urgent,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "tuple[Tcp, int]":
        if len(data) < TCP_MIN_HEADER_LEN:
            raise HeaderError("truncated TCP header")
        (src_port, dst_port, seq, ack, offset_flags, window, checksum,
         urgent) = struct.unpack("!HHIIHHHH", data[:20])
        offset = (offset_flags >> 12) * 4
        if offset < TCP_MIN_HEADER_LEN or len(data) < offset:
            raise HeaderError("bad TCP data offset")
        return (
            cls(
                src_port=src_port,
                dst_port=dst_port,
                seq=seq,
                ack=ack,
                flags=offset_flags & 0x1FF,
                window=window,
                checksum=checksum,
                urgent=urgent,
            ),
            offset,
        )

    def __len__(self) -> int:
        return TCP_MIN_HEADER_LEN


@dataclass
class Udp:
    """UDP header."""

    src_port: int = 0
    dst_port: int = 0
    length: int = UDP_HEADER_LEN
    checksum: int = 0

    def pack(self) -> bytes:
        return struct.pack(
            "!HHHH", self.src_port, self.dst_port, self.length, self.checksum
        )

    @classmethod
    def unpack(cls, data: bytes) -> "tuple[Udp, int]":
        if len(data) < UDP_HEADER_LEN:
            raise HeaderError("truncated UDP header")
        src_port, dst_port, length, checksum = struct.unpack("!HHHH", data[:8])
        return (
            cls(src_port=src_port, dst_port=dst_port, length=length,
                checksum=checksum),
            UDP_HEADER_LEN,
        )

    def __len__(self) -> int:
        return UDP_HEADER_LEN


@dataclass
class Icmp:
    """ICMP echo-style header."""

    icmp_type: int = 8  # echo request
    code: int = 0
    checksum: int = 0
    identifier: int = 0
    sequence: int = 0

    def pack(self) -> bytes:
        return struct.pack(
            "!BBHHH", self.icmp_type, self.code, self.checksum,
            self.identifier, self.sequence
        )

    @classmethod
    def unpack(cls, data: bytes) -> "tuple[Icmp, int]":
        if len(data) < ICMP_HEADER_LEN:
            raise HeaderError("truncated ICMP header")
        icmp_type, code, checksum, identifier, sequence = struct.unpack(
            "!BBHHH", data[:8]
        )
        return (
            cls(icmp_type=icmp_type, code=code, checksum=checksum,
                identifier=identifier, sequence=sequence),
            ICMP_HEADER_LEN,
        )

    def __len__(self) -> int:
        return ICMP_HEADER_LEN
