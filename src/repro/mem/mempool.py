"""An ``rte_mempool``-style mbuf allocator with bulk get/put.

Traffic generators allocate mbufs here and sinks free them; because the
pool is fixed-size, a leak anywhere in the data path shows up as
allocation failure — the same backpressure behaviour a real DPDK
deployment has, and one of the invariants the property tests check
(every experiment must end with all mbufs back in the pool).
"""

from typing import List, Optional

from repro.packet.mbuf import Mbuf


class MempoolEmptyError(RuntimeError):
    """Raised when the pool cannot satisfy an allocation."""


class Mempool:
    """Fixed-size pool of recycled :class:`Mbuf` descriptors."""

    def __init__(self, name: str, size: int = 4096) -> None:
        if size <= 0:
            raise ValueError("mempool size must be positive")
        self.name = name
        self.size = size
        self._free: List[Mbuf] = [Mbuf(pool=self) for _ in range(size)]
        self.alloc_count = 0
        self.free_count_total = 0
        self.alloc_failures = 0

    @property
    def available(self) -> int:
        """Mbufs currently free in the pool."""
        return len(self._free)

    @property
    def in_use(self) -> int:
        return self.size - len(self._free)

    def get(self) -> Mbuf:
        """Allocate one mbuf; raises :class:`MempoolEmptyError` when dry."""
        if not self._free:
            self.alloc_failures += 1
            raise MempoolEmptyError("mempool %r exhausted" % self.name)
        mbuf = self._free.pop()
        mbuf.reset()
        self.alloc_count += 1
        return mbuf

    def get_bulk(self, count: int) -> List[Mbuf]:
        """Allocate exactly ``count`` mbufs or none."""
        if len(self._free) < count:
            self.alloc_failures += 1
            raise MempoolEmptyError(
                "mempool %r: need %d mbufs, have %d"
                % (self.name, count, len(self._free))
            )
        out = self._free[-count:]
        del self._free[-count:]
        for mbuf in out:
            mbuf.reset()
        self.alloc_count += count
        return out

    def try_get(self) -> Optional[Mbuf]:
        """Allocate one mbuf, or return None instead of raising."""
        if not self._free:
            self.alloc_failures += 1
            return None
        return self.get()

    def put(self, mbuf: Mbuf) -> None:
        """Return an mbuf to the pool (called by :meth:`Mbuf.free`)."""
        if mbuf.pool is not self:
            raise ValueError(
                "mbuf belongs to pool %r, not %r"
                % (getattr(mbuf.pool, "name", None), self.name)
            )
        if len(self._free) >= self.size:
            raise RuntimeError("mempool %r over-freed" % self.name)
        self._free.append(mbuf)
        self.free_count_total += 1

    def __repr__(self) -> str:
        return "<Mempool %r %d/%d free>" % (
            self.name, len(self._free), self.size
        )
