"""An ``rte_mempool``-style mbuf allocator with bulk get/put.

Traffic generators allocate mbufs here and sinks free them; because the
pool is fixed-size, a leak anywhere in the data path shows up as
allocation failure — the same backpressure behaviour a real DPDK
deployment has, and one of the invariants the property tests check
(every experiment must end with all mbufs back in the pool).

The pool also keeps an **ownership ledger**: each in-flight mbuf can be
tagged with its current *holder* — a ring (``"ring:<name>"``) or a VM
(``"vm:<name>"``) — updated as the buffer moves through the data path.
When a holder dies abruptly (a crashed VNF), :meth:`reclaim` sweeps its
bucket and returns the buffers, so a crash costs latency instead of
permanently shrinking forwarding capacity.  Per-mbuf ``in_pool`` state
doubles as an immediate double-free detector: the old aggregate
"over-freed" guard only fired once the pool was *full*, silently letting
a specific mbuf sit in the free list twice while others were in flight.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.packet.mbuf import Mbuf


class MempoolEmptyError(RuntimeError):
    """Raised when the pool cannot satisfy an allocation."""


class MempoolDoubleFreeError(RuntimeError):
    """Raised when an mbuf already in the free list is put() again."""


@dataclass
class ReclaimReport:
    """Outcome of one :meth:`Mempool.reclaim` sweep.

    ``leaked`` is the number of mbufs the dead holder was charged with
    at sweep start; every one of them is either returned to the pool
    (``reclaimed``), found to already be in the free list — ledger vs.
    in_pool inconsistency, i.e. a double free (``double_free_detected``)
    — or still referenced elsewhere and therefore unreclaimable
    (``unreclaimable``; counted into the pool's ``leaked_permanent``).
    """

    owner: str
    leaked: int = 0
    reclaimed: int = 0
    double_free_detected: int = 0
    unreclaimable: int = 0


class Mempool:
    """Fixed-size pool of recycled :class:`Mbuf` descriptors."""

    def __init__(self, name: str, size: int = 4096,
                 track_ownership: bool = True) -> None:
        if size <= 0:
            raise ValueError("mempool size must be positive")
        self.name = name
        self.size = size
        self.track_ownership = track_ownership
        self._free: List[Mbuf] = [Mbuf(pool=self) for _ in range(size)]
        for mbuf in self._free:
            mbuf.in_pool = True
        # holder token -> {id(mbuf): mbuf}.  Buckets are only populated
        # for tokenized paths (rings with a holder_token, guest PMDs);
        # untracked traffic costs nothing here.
        self._holders: Dict[str, Dict[int, Mbuf]] = {}
        self.alloc_count = 0
        self.free_count_total = 0
        self.alloc_failures = 0
        self.double_free_detected = 0
        self.reclaim_sweeps = 0
        self.reclaimed_total = 0
        self.leaked_found_total = 0
        self.leaked_permanent = 0

    @property
    def available(self) -> int:
        """Mbufs currently free in the pool."""
        return len(self._free)

    @property
    def in_use(self) -> int:
        return self.size - len(self._free)

    def get(self) -> Mbuf:
        """Allocate one mbuf; raises :class:`MempoolEmptyError` when dry."""
        if not self._free:
            self.alloc_failures += 1
            raise MempoolEmptyError("mempool %r exhausted" % self.name)
        mbuf = self._free.pop()
        mbuf.reset()
        mbuf.in_pool = False
        self.alloc_count += 1
        return mbuf

    def get_bulk(self, count: int) -> List[Mbuf]:
        """Allocate exactly ``count`` mbufs or none."""
        if len(self._free) < count:
            self.alloc_failures += 1
            raise MempoolEmptyError(
                "mempool %r: need %d mbufs, have %d"
                % (self.name, count, len(self._free))
            )
        out = self._free[-count:]
        del self._free[-count:]
        for mbuf in out:
            mbuf.reset()
            mbuf.in_pool = False
        self.alloc_count += count
        return out

    def try_get(self) -> Optional[Mbuf]:
        """Allocate one mbuf, or return None instead of raising."""
        if not self._free:
            self.alloc_failures += 1
            return None
        return self.get()

    def put(self, mbuf: Mbuf) -> None:
        """Return an mbuf to the pool (called by :meth:`Mbuf.free`)."""
        if mbuf.pool is not self:
            raise ValueError(
                "mbuf belongs to pool %r, not %r"
                % (getattr(mbuf.pool, "name", None), self.name)
            )
        if mbuf.in_pool:
            self.double_free_detected += 1
            raise MempoolDoubleFreeError(
                "mempool %r: mbuf freed twice (already in pool)"
                % self.name
            )
        if len(self._free) >= self.size:
            # Backstop: a foreign descriptor smuggled in (can't happen
            # through put()'s pool check, but keep the aggregate guard).
            raise RuntimeError("mempool %r over-freed" % self.name)
        if mbuf.holder is not None:
            self._drop_from_ledger(mbuf)
        mbuf.in_pool = True
        self._free.append(mbuf)
        self.free_count_total += 1

    # -- ownership ledger ---------------------------------------------------

    def assign(self, mbuf: Mbuf, holder: str) -> None:
        """Move ``mbuf``'s ledger entry to ``holder`` (O(1)).

        Called from ring enqueue and guest PMD rx paths; a buffer with
        no tokenized touchpoints simply never appears in the ledger.
        """
        if not self.track_ownership:
            return
        current = mbuf.holder
        if current == holder:
            return
        if current is not None:
            bucket = self._holders.get(current)
            if bucket is not None:
                bucket.pop(id(mbuf), None)
        self._holders.setdefault(holder, {})[id(mbuf)] = mbuf
        mbuf.holder = holder

    def _drop_from_ledger(self, mbuf: Mbuf) -> None:
        bucket = self._holders.get(mbuf.holder)
        if bucket is not None:
            bucket.pop(id(mbuf), None)
        mbuf.holder = None

    def holders(self) -> Dict[str, int]:
        """Non-empty ledger buckets: holder token -> mbuf count."""
        return {
            token: len(bucket)
            for token, bucket in self._holders.items() if bucket
        }

    def held_by(self, owner: str) -> int:
        """Number of mbufs the ledger charges to ``owner``."""
        bucket = self._holders.get(owner)
        return len(bucket) if bucket else 0

    def reclaim(self, owner: str) -> ReclaimReport:
        """Sweep a dead holder's bucket back into the pool.

        Invariant: ``leaked == reclaimed + double_free_detected +
        unreclaimable``.  Only call this once the holder is truly dead —
        a live holder's buffers would be recycled under it.
        """
        report = ReclaimReport(owner=owner)
        self.reclaim_sweeps += 1
        bucket = self._holders.pop(owner, None)
        if not bucket:
            return report
        report.leaked = len(bucket)
        self.leaked_found_total += report.leaked
        for mbuf in bucket.values():
            mbuf.holder = None
            if mbuf.in_pool:
                # Ledger said "held by owner" but the descriptor is in
                # the free list: it was freed twice somewhere.
                report.double_free_detected += 1
                self.double_free_detected += 1
                continue
            if mbuf.refcnt > 1:
                # Someone else still holds a reference; forcing it back
                # would hand out an aliased buffer.  Permanent loss.
                report.unreclaimable += 1
                self.leaked_permanent += 1
                continue
            mbuf.refcnt = 0
            mbuf.in_pool = True
            self._free.append(mbuf)
            report.reclaimed += 1
            self.reclaimed_total += 1
            self.free_count_total += 1
        return report

    def __repr__(self) -> str:
        return "<Mempool %r %d/%d free>" % (
            self.name, len(self._free), self.size
        )
