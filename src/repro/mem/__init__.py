"""Shared-memory substrate: memzones, rings and mempools.

These model the DPDK objects the prototype is built from:

* :class:`~repro.mem.memzone.MemzoneRegistry` — named shared-memory
  segments (DPDK memzones on hugepages; exposed to VMs as ivshmem BARs).
* :class:`~repro.mem.ring.Ring` — fixed-capacity FIFO with
  single/multi producer-consumer modes and bulk/burst enqueue/dequeue,
  mirroring ``rte_ring`` semantics.
* :class:`~repro.mem.mempool.Mempool` — mbuf allocator with per-consumer
  caching, mirroring ``rte_mempool``.
"""

from repro.mem.memzone import Memzone, MemzoneError, MemzoneRegistry
from repro.mem.mempool import (
    Mempool,
    MempoolDoubleFreeError,
    MempoolEmptyError,
    ReclaimReport,
)
from repro.mem.ring import Ring, RingFullError, RingEmptyError, RingMode

__all__ = [
    "Mempool",
    "MempoolDoubleFreeError",
    "MempoolEmptyError",
    "ReclaimReport",
    "Memzone",
    "MemzoneError",
    "MemzoneRegistry",
    "Ring",
    "RingEmptyError",
    "RingFullError",
    "RingMode",
]
