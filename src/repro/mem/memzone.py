"""Named shared-memory segments (DPDK memzones / ivshmem BARs).

In the real prototype, a dpdkr port's rings live in hugepage-backed
memzones, and a bypass channel is created by carving a new memzone and
exposing it to *both* VMs through ivshmem devices.  Here a
:class:`Memzone` is a named container for Python objects (rings,
mempools, stats blocks) plus an owner/permission model; a
:class:`MemzoneRegistry` plays the role of the host's hugepage area.

What matters architecturally — and what the tests pin down — is the
*visibility* model: a VM can only touch objects in zones that have been
mapped into it (boot-time dpdkr zones, or hot-plugged bypass zones), and
unmapping makes them unreachable again.
"""

from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults import FaultPlan


class MemzoneError(RuntimeError):
    """Raised on memzone naming/lookup/permission violations."""


class Memzone:
    """A named shared segment holding data-plane objects."""

    def __init__(self, name: str, size: int = 0,
                 owner: Optional[str] = None) -> None:
        self.name = name
        self.size = size
        self.owner = owner
        self._objects: Dict[str, Any] = {}
        self.mapped_by: List[str] = []  # VM names this zone is visible to

    def put(self, key: str, obj: Any) -> Any:
        """Store ``obj`` under ``key``; returns the object for chaining."""
        if key in self._objects:
            raise MemzoneError(
                "object %r already exists in memzone %r" % (key, self.name)
            )
        self._objects[key] = obj
        return obj

    def get(self, key: str) -> Any:
        try:
            return self._objects[key]
        except KeyError:
            raise MemzoneError(
                "no object %r in memzone %r" % (key, self.name)
            ) from None

    def __contains__(self, key: str) -> bool:
        return key in self._objects

    def keys(self) -> Iterator[str]:
        return iter(self._objects)

    def __repr__(self) -> str:
        return "<Memzone %r objects=%d mapped_by=%s>" % (
            self.name, len(self._objects), self.mapped_by
        )


class MemzoneRegistry:
    """The host-wide registry of shared segments.

    One registry per simulated host.  The compute agent maps/unmaps zones
    into VMs (the ivshmem hot-plug path); the vSwitch allocates them for
    ports and bypass channels.
    """

    def __init__(self, faults: Optional["FaultPlan"] = None) -> None:
        self._zones: Dict[str, Memzone] = {}
        self.faults = faults

    def reserve(self, name: str, size: int = 0,
                owner: Optional[str] = None) -> Memzone:
        """Allocate a new named zone; name collisions are errors."""
        if self.faults is not None:
            from repro.faults import MEMZONE_RESERVE, FaultMode

            action = self.faults.fire(MEMZONE_RESERVE)
            # Allocation has no latency model, so every non-clean mode
            # degrades to an allocation failure the caller must absorb.
            if action is not None and action.mode is not FaultMode.DELAY:
                raise MemzoneError(action.message)
        if name in self._zones:
            raise MemzoneError("memzone %r already reserved" % name)
        zone = Memzone(name, size=size, owner=owner)
        self._zones[name] = zone
        return zone

    def lookup(self, name: str) -> Memzone:
        try:
            return self._zones[name]
        except KeyError:
            raise MemzoneError("no memzone named %r" % name) from None

    def free(self, name: str) -> None:
        """Release a zone. Refuses while any VM still maps it."""
        zone = self.lookup(name)
        if zone.mapped_by:
            raise MemzoneError(
                "memzone %r still mapped by %s" % (name, zone.mapped_by)
            )
        del self._zones[name]

    def map_into(self, name: str, vm_name: str) -> Memzone:
        """Record that ``vm_name`` can now access zone ``name``."""
        zone = self.lookup(name)
        if vm_name in zone.mapped_by:
            raise MemzoneError(
                "memzone %r already mapped into VM %r" % (name, vm_name)
            )
        zone.mapped_by.append(vm_name)
        return zone

    def unmap_from(self, name: str, vm_name: str) -> None:
        zone = self.lookup(name)
        if vm_name not in zone.mapped_by:
            raise MemzoneError(
                "memzone %r not mapped into VM %r" % (name, vm_name)
            )
        zone.mapped_by.remove(vm_name)

    def zones_visible_to(self, vm_name: str) -> List[Memzone]:
        return [z for z in self._zones.values() if vm_name in z.mapped_by]

    def __contains__(self, name: str) -> bool:
        return name in self._zones

    def __len__(self) -> int:
        return len(self._zones)
