"""A ``rte_ring``-style fixed-capacity FIFO.

The DPDK ring is the transport under both the *normal* channel (VM ↔
vSwitch) and the *bypass* channel (VM ↔ VM) of a dpdkr port.  We keep the
semantics that the architecture depends on:

* fixed power-of-two capacity, usable slots = capacity - 1 (like DPDK);
* bulk enqueue/dequeue (all-or-nothing) and burst (as-many-as-fit);
* single- vs multi-producer/consumer modes — in this cooperative
  simulation they only toggle bookkeeping/assertion behaviour, but the
  mode is recorded because misconfiguring it is a real deployment bug the
  tests exercise;
* watermark signalling (enqueue reports when occupancy exceeds it).

The implementation is a preallocated slot array with head/tail indices —
deliberately not ``collections.deque`` — so occupancy arithmetic matches
the C layout and stays O(1).
"""

import enum
from typing import Any, List, Optional, Sequence

from repro.faults import RING_CORRUPT


class RingError(RuntimeError):
    """Base class for ring errors."""


class RingFullError(RingError):
    """Bulk enqueue failed: not enough free slots."""


class RingEmptyError(RingError):
    """Bulk dequeue failed: not enough queued objects."""


class RingIntegrityError(RingError):
    """:meth:`Ring.validate` found the ring in an impossible state."""


class RingMode(enum.Enum):
    """Producer/consumer concurrency contract."""

    SP_SC = "sp_sc"  # single producer, single consumer (dpdkr default)
    MP_MC = "mp_mc"
    SP_MC = "sp_mc"
    MP_SC = "mp_sc"


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


class Ring:
    """Fixed-capacity FIFO with DPDK-style bulk/burst operations."""

    def __init__(
        self,
        name: str,
        capacity: int = 1024,
        mode: RingMode = RingMode.SP_SC,
        watermark: Optional[int] = None,
    ) -> None:
        if not _is_power_of_two(capacity):
            raise ValueError(
                "ring capacity must be a power of two, got %d" % capacity
            )
        if watermark is not None and not 0 < watermark < capacity:
            raise ValueError("watermark must be in (0, capacity)")
        self.name = name
        self.capacity = capacity
        self.mode = mode
        self.watermark = watermark
        self._mask = capacity - 1
        self._slots: List[Any] = [None] * capacity
        self._head = 0  # next slot to write (producer index)
        self._tail = 0  # next slot to read (consumer index)
        # Generation tag: stamped by whoever provisions the ring (the
        # bypass manager uses the zone serial) and checked by the
        # watchdog, so a validator holding a stale handle can tell "this
        # memory was re-provisioned" apart from "this memory rotted".
        self.generation = 0
        # Lifetime statistics; the PMD exports these per channel.
        self.enqueued = 0
        self.dequeued = 0
        self.enqueue_failures = 0   # burst/bulk enqueues where nothing fit
        self.partial_enqueues = 0   # burst enqueues that fit only a prefix
        self.dequeue_failures = 0
        # Armed by the owner for ring.corrupt injection (None = clean).
        self.faults = None
        self.corruptions_injected = 0
        # Ownership-ledger token (``"ring:<name>"``): when set, every
        # successful enqueue charges the mbufs to this ring in their
        # pool's ledger, so a crashed consumer's backlog can be
        # reclaimed.  None (the default) keeps the hot path free of
        # ledger work for untracked rings.
        self.holder_token: Optional[str] = None

    # -- occupancy ---------------------------------------------------------

    def __len__(self) -> int:
        return (self._head - self._tail) & self._mask

    @property
    def free_count(self) -> int:
        """Free slots (capacity - 1 usable, like rte_ring)."""
        return self.capacity - 1 - len(self)

    @property
    def is_empty(self) -> bool:
        return self._head == self._tail

    @property
    def is_full(self) -> bool:
        return self.free_count == 0

    @property
    def above_watermark(self) -> bool:
        return self.watermark is not None and len(self) >= self.watermark

    # -- single-object convenience ------------------------------------------

    def enqueue(self, obj: Any) -> None:
        """Enqueue one object; raises :class:`RingFullError` when full."""
        if self.free_count < 1:
            self.enqueue_failures += 1
            raise RingFullError("ring %r full" % self.name)
        self._slots[self._head & self._mask] = obj
        self._head = (self._head + 1) & self._mask
        self.enqueued += 1
        if self.holder_token is not None:
            self._charge((obj,), 1)

    def _charge(self, objs: Sequence[Any], count: int) -> None:
        """Tag the first ``count`` of ``objs`` as held by this ring."""
        token = self.holder_token
        for index in range(count):
            obj = objs[index]
            pool = getattr(obj, "pool", None)
            if pool is not None:
                pool.assign(obj, token)

    def dequeue(self) -> Any:
        """Dequeue one object; raises :class:`RingEmptyError` when empty."""
        if self.is_empty:
            self.dequeue_failures += 1
            raise RingEmptyError("ring %r empty" % self.name)
        obj = self._slots[self._tail & self._mask]
        self._slots[self._tail & self._mask] = None
        self._tail = (self._tail + 1) & self._mask
        self.dequeued += 1
        return obj

    # -- bulk: all-or-nothing ------------------------------------------------

    def enqueue_bulk(self, objs: Sequence[Any]) -> None:
        """Enqueue all of ``objs`` or none (raises RingFullError)."""
        count = len(objs)
        if self.free_count < count:
            self.enqueue_failures += 1
            raise RingFullError(
                "ring %r: need %d slots, have %d"
                % (self.name, count, self.free_count)
            )
        head = self._head
        for obj in objs:
            self._slots[head & self._mask] = obj
            head = (head + 1) & self._mask
        self._head = head
        self.enqueued += count
        if self.holder_token is not None:
            self._charge(objs, count)

    def dequeue_bulk(self, count: int) -> List[Any]:
        """Dequeue exactly ``count`` objects or none (raises RingEmptyError)."""
        if len(self) < count:
            self.dequeue_failures += 1
            raise RingEmptyError(
                "ring %r: need %d objects, have %d"
                % (self.name, count, len(self))
            )
        return self._take(count)

    # -- burst: best effort ----------------------------------------------------

    def enqueue_burst(self, objs: Sequence[Any]) -> int:
        """Enqueue as many of ``objs`` as fit; returns the number enqueued.

        Failure accounting distinguishes total rejection
        (``enqueue_failures``: the consumer is not draining at all) from
        a partial fit (``partial_enqueues``: transient backpressure) —
        the watchdog treats only the former as a stall symptom.
        """
        space = self.free_count
        count = min(space, len(objs))
        if count == 0:
            if objs:
                self.enqueue_failures += 1
            return 0
        head = self._head
        for index in range(count):
            self._slots[head & self._mask] = objs[index]
            head = (head + 1) & self._mask
        self._head = head
        self.enqueued += count
        if self.holder_token is not None:
            self._charge(objs, count)
        if count < len(objs):
            self.partial_enqueues += 1
        if self.faults is not None and self.faults.has_specs(RING_CORRUPT):
            action = self.faults.fire(RING_CORRUPT)
            if action is not None:
                self._corrupt(action)
        return count

    def _corrupt(self, action) -> None:
        """Apply one injected corruption (see ``faults.RING_CORRUPT``)."""
        from repro.faults import FaultMode

        if action.mode is FaultMode.CRASH:
            self.generation += 1
        elif not self.is_empty:
            self._slots[self._tail & self._mask] = None
        else:
            return
        self.corruptions_injected += 1

    def dequeue_burst(self, max_count: int) -> List[Any]:
        """Dequeue up to ``max_count`` objects (possibly empty list)."""
        count = min(max_count, len(self))
        if count == 0:
            return []
        return self._take(count)

    def _take(self, count: int) -> List[Any]:
        tail = self._tail
        mask = self._mask
        slots = self._slots
        out = [None] * count
        for index in range(count):
            position = tail & mask
            out[index] = slots[position]
            slots[position] = None
            tail = (tail + 1) & mask
        self._tail = tail
        self.dequeued += count
        return out

    # -- maintenance -------------------------------------------------------------

    def drain(self) -> List[Any]:
        """Remove and return everything queued (used at bypass teardown)."""
        return self._take(len(self))

    def peek(self) -> Any:
        """Return the oldest object without removing it."""
        if self.is_empty:
            raise RingEmptyError("ring %r empty" % self.name)
        return self._slots[self._tail & self._mask]

    def validate(self, expected_generation: Optional[int] = None) -> None:
        """Check structural invariants; raise :class:`RingIntegrityError`.

        Verifies head/tail bounds, that occupancy agrees with the
        lifetime enqueue/dequeue counters, that every occupied slot
        holds a real object, and (when given) that the generation tag
        still matches what the validator was provisioned against.  Cost
        is O(occupancy); the watchdog runs it once per poll interval,
        not per packet.
        """
        if not 0 <= self._head < self.capacity:
            raise RingIntegrityError(
                "ring %r: head %d out of bounds" % (self.name, self._head)
            )
        if not 0 <= self._tail < self.capacity:
            raise RingIntegrityError(
                "ring %r: tail %d out of bounds" % (self.name, self._tail)
            )
        occupancy = len(self)
        flow = self.enqueued - self.dequeued
        if flow < 0 or flow > self.capacity - 1 or occupancy != flow:
            raise RingIntegrityError(
                "ring %r: occupancy %d disagrees with counters "
                "(enqueued %d - dequeued %d)"
                % (self.name, occupancy, self.enqueued, self.dequeued)
            )
        for offset in range(occupancy):
            if self._slots[(self._tail + offset) & self._mask] is None:
                raise RingIntegrityError(
                    "ring %r: occupied slot %d holds None"
                    % (self.name, (self._tail + offset) & self._mask)
                )
        if (expected_generation is not None
                and self.generation != expected_generation):
            raise RingIntegrityError(
                "ring %r: generation %d != expected %d"
                % (self.name, self.generation, expected_generation)
            )

    def __repr__(self) -> str:
        return "<Ring %r %d/%d %s>" % (
            self.name, len(self), self.capacity - 1, self.mode.value
        )
