"""The unified, versioned benchmark results schema.

Every benchmark artifact this repository produces — the four committed
``BENCH_*.json`` snapshots, any ``python -m repro.bench`` scenario
document, and every line of ``BENCH_TRENDS.jsonl`` — validates against
the structures defined here.  The schema is deliberately small:

* a **document** is one benchmark run: ``schema`` (family tag, e.g.
  ``repro-bench-fastpath/1``), ``schema_version`` (this module's
  :data:`SCHEMA_VERSION`), ``meta`` (who/when/where: generator, git
  sha, fault seed, quick flag), ``config`` (the knobs), ``checks``
  (named pass/fail invariants) and a family-specific payload;
* a **trend line** is one scenario's headline numbers for one run,
  appended to ``BENCH_TRENDS.jsonl`` — one line per PR per scenario —
  which ``scripts/bench_gate.py`` compares against history.

Bumping :data:`SCHEMA_VERSION` is a contract change: the gate refuses
to compare lines across versions, and the validator rejects documents
from the future.
"""

import json
import os
import subprocess
import time
from typing import Any, Dict, Iterable, List, Optional

SCHEMA_VERSION = 1

#: Trend-file name the matrix appends to and the gate reads.
TRENDS_BASENAME = "BENCH_TRENDS.jsonl"

_REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                 os.pardir)
)


def git_sha(default: str = "unknown") -> str:
    """The current commit, for stamping into run metadata.

    ``REPRO_GIT_SHA`` overrides (CI can pass the PR head sha without a
    checkout); otherwise ``git rev-parse`` from the source tree, then
    the working directory, then ``default``.
    """
    override = os.environ.get("REPRO_GIT_SHA")
    if override:
        return override
    for cwd in (_REPO_ROOT, os.getcwd()):
        try:
            proc = subprocess.run(
                ["git", "rev-parse", "HEAD"], capture_output=True,
                text=True, cwd=cwd, timeout=10,
            )
        except (OSError, subprocess.SubprocessError):
            continue
        if proc.returncode == 0 and proc.stdout.strip():
            return proc.stdout.strip()
    return default


def run_meta(generator: str, seed: Optional[int] = None,
             quick: bool = False) -> Dict[str, Any]:
    """The ``meta`` block every schema-v1 document carries."""
    return {
        "generator": generator,
        "git_sha": git_sha(),
        "seed": seed,
        "quick": bool(quick),
        "created_unix": round(time.time(), 3),
    }


# -- document validation ------------------------------------------------------


def _check_checks(checks: Any, problems: List[str]) -> None:
    if not isinstance(checks, list) or not checks:
        problems.append("checks must be a non-empty list")
        return
    for index, check in enumerate(checks):
        if not isinstance(check, dict):
            problems.append("checks[%d] not an object" % index)
            continue
        for key in ("name", "passed", "detail"):
            if key not in check:
                problems.append("checks[%d] missing %r" % (index, key))
        if "passed" in check and not isinstance(check["passed"], bool):
            problems.append("checks[%d].passed not a bool" % index)


def _check_meta(meta: Any, problems: List[str]) -> None:
    if not isinstance(meta, dict):
        problems.append("meta missing or not an object")
        return
    for key in ("generator", "git_sha", "seed", "quick"):
        if key not in meta:
            problems.append("meta missing %r" % key)
    if "quick" in meta and not isinstance(meta["quick"], bool):
        problems.append("meta.quick not a bool")
    if ("seed" in meta and meta["seed"] is not None
            and not isinstance(meta["seed"], int)):
        problems.append("meta.seed not an int or null")


def validate_document(doc: Any,
                      family: Optional[str] = None) -> List[str]:
    """Structural check of one benchmark document.

    Returns a list of problems (empty means valid).  ``family``
    additionally pins the expected ``schema`` tag, e.g. ``"fastpath"``
    checks for ``repro-bench-fastpath/<version>``.
    """
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    schema = doc.get("schema")
    if not isinstance(schema, str) or not schema.startswith("repro-bench-"):
        problems.append("schema tag missing or not repro-bench-*")
    elif family is not None:
        expected = "repro-bench-%s/%d" % (family, SCHEMA_VERSION)
        if schema != expected:
            problems.append("schema %r != %r" % (schema, expected))
    if doc.get("schema_version") != SCHEMA_VERSION:
        problems.append("schema_version %r != %d"
                        % (doc.get("schema_version"), SCHEMA_VERSION))
    _check_meta(doc.get("meta"), problems)
    if not isinstance(doc.get("config"), dict):
        problems.append("config missing or not an object")
    _check_checks(doc.get("checks"), problems)
    return problems


def checks_passed(doc: Dict[str, Any]) -> bool:
    return all(check.get("passed") for check in doc.get("checks", []))


# -- trend lines --------------------------------------------------------------


def make_trend_line(scenario: str, family: str,
                    metrics: Dict[str, float],
                    meta: Dict[str, Any],
                    passed: bool) -> Dict[str, Any]:
    """One ``BENCH_TRENDS.jsonl`` line: a scenario's headline numbers."""
    return {
        "schema_version": SCHEMA_VERSION,
        "scenario": scenario,
        "family": family,
        "git_sha": meta.get("git_sha", "unknown"),
        "seed": meta.get("seed"),
        "quick": bool(meta.get("quick", False)),
        "created_unix": meta.get("created_unix",
                                 round(time.time(), 3)),
        "metrics": {key: round(float(value), 6)
                    for key, value in sorted(metrics.items())},
        "checks_passed": bool(passed),
    }


def validate_trend_line(line: Any) -> List[str]:
    """Structural check of one parsed trend line."""
    problems: List[str] = []
    if not isinstance(line, dict):
        return ["trend line is not a JSON object"]
    if line.get("schema_version") != SCHEMA_VERSION:
        problems.append("schema_version %r != %d"
                        % (line.get("schema_version"), SCHEMA_VERSION))
    for key in ("scenario", "family", "git_sha"):
        if not isinstance(line.get(key), str) or not line.get(key):
            problems.append("%s missing or not a string" % key)
    if not isinstance(line.get("quick"), bool):
        problems.append("quick missing or not a bool")
    if not isinstance(line.get("checks_passed"), bool):
        problems.append("checks_passed missing or not a bool")
    metrics = line.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        problems.append("metrics missing or empty")
    else:
        for key, value in metrics.items():
            if not isinstance(value, (int, float)) or isinstance(
                    value, bool):
                problems.append("metrics[%r] not a number" % key)
    return problems


def append_trend_line(path: str, line: Dict[str, Any]) -> None:
    """Append one line; the trend file is only ever appended to."""
    problems = validate_trend_line(line)
    if problems:
        raise ValueError("refusing to append invalid trend line: %s"
                         % "; ".join(problems))
    with open(path, "a") as handle:
        handle.write(json.dumps(line, sort_keys=True) + "\n")


def read_trend_lines(path: str) -> List[Dict[str, Any]]:
    """Parse a trend file; raises on malformed JSON, not on schema."""
    lines: List[Dict[str, Any]] = []
    with open(path) as handle:
        for raw in handle:
            raw = raw.strip()
            if raw:
                lines.append(json.loads(raw))
    return lines


def validate_trend_file(path: str) -> List[str]:
    """Every line must validate; problems are prefixed with line numbers."""
    problems: List[str] = []
    try:
        with open(path) as handle:
            raws = handle.readlines()
    except OSError as exc:
        return ["cannot read %s: %s" % (path, exc)]
    seen_any = False
    for lineno, raw in enumerate(raws, 1):
        raw = raw.strip()
        if not raw:
            continue
        seen_any = True
        try:
            line = json.loads(raw)
        except ValueError as exc:
            problems.append("line %d: bad JSON (%s)" % (lineno, exc))
            continue
        for problem in validate_trend_line(line):
            problems.append("line %d: %s" % (lineno, problem))
    if not seen_any:
        problems.append("no trend lines found")
    return problems


def tail_by_scenario(lines: Iterable[Dict[str, Any]], scenario: str,
                     quick: Optional[bool] = None,
                     window: int = 5) -> List[Dict[str, Any]]:
    """The last ``window`` history lines for one scenario.

    ``quick`` filters to comparable runs: quick-mode numbers are only
    ever compared against quick-mode history (and full against full).
    """
    matching = [
        line for line in lines
        if line.get("scenario") == scenario
        and line.get("schema_version") == SCHEMA_VERSION
        and (quick is None or line.get("quick") == quick)
    ]
    return matching[-window:]
