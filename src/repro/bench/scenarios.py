"""The benchmark scenario matrix.

Every scenario maps ``(quick, seed, registry)`` to one schema-v1
document and one set of headline trend metrics.  Two kinds:

* **sweeps** (family ``matrix``) drive the RFC2544 harness over a fresh
  service chain per measurement, varying exactly one pressure axis —
  frame size, chain length, Zipf flow skew, classifier rule count,
  flowmod churn — the knobs "Performance Benchmarking of
  State-of-the-Art Software Switches for NFV" identifies as the ones
  that move software-switch numbers;
* **composites** reuse the four legacy benchmark families
  (:mod:`repro.bench.workloads`) as scenarios — miss storm, hot-port
  collision, rebalance under load, crash soak — so the whole historical
  surface rides the same matrix, schema and trend file.

``python -m repro.bench --matrix quick`` runs everything in smoke
sizing; ``--matrix full`` is the committed-artifact sizing.
"""

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.bench.harness import ChainLoadRunner, Rfc2544Harness
from repro.bench.schema import SCHEMA_VERSION, run_meta
from repro.obs.registry import MetricsRegistry
from repro.traffic.profiles import skewed_profile

GENERATOR = "repro.bench"

#: Matrix-wide search range: total offered pps across both directions.
SEARCH_MIN_PPS = 5e5
SEARCH_MAX_PPS = 4.0e7

#: Fixed offered load for single-point pressure sweeps — comfortably
#: inside the vanilla chain's capacity so any loss is caused by the
#: pressure axis, not by the load itself.
PRESSURE_PPS = 4.0e6

#: Ablation override for the megaflow (wildcard) cache tier, flipped by
#: ``python -m repro.bench --no-megaflow``.  The rule-count sweep is the
#: scenario the tier is built for, so it is the one that honors the
#: switch; the config block of its document records the setting.
MEGAFLOW_ENABLED = True


@dataclass(frozen=True)
class Scenario:
    """One entry in the matrix."""

    name: str
    family: str
    title: str
    run: Callable[[bool, Optional[int], MetricsRegistry], Dict[str, Any]]


def _matrix_doc(scenario: str, quick: bool, seed: Optional[int],
                config: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "schema": "repro-bench-matrix/%d" % SCHEMA_VERSION,
        "schema_version": SCHEMA_VERSION,
        "meta": run_meta("%s/%s" % (GENERATOR, scenario), seed=seed,
                         quick=quick),
        "config": config,
    }


def _attach(doc: Dict[str, Any], checks, trend: Dict[str, float]
            ) -> Dict[str, Any]:
    doc["checks"] = [
        {"name": name, "passed": bool(passed), "detail": detail}
        for name, passed, detail in checks
    ]
    doc["trend"] = {key: round(float(value), 6)
                    for key, value in sorted(trend.items())}
    return doc


def _latency_ordered(latency: Dict[str, float]) -> bool:
    """p50 <= p95 <= p99 <= p999 (vacuously true with no samples)."""
    values = [latency.get("%s_us" % name)
              for name in ("p50", "p95", "p99", "p999")]
    values = [value for value in values if value is not None]
    return all(a <= b for a, b in zip(values, values[1:]))


def _harness(runner, registry, scenario, quick):
    return Rfc2544Harness(
        runner,
        resolution=0.10 if quick else 0.05,
        max_iterations=8 if quick else 12,
        registry=registry,
        scenario=scenario,
    )


# -- sweeps -------------------------------------------------------------------


def _run_zero_loss_pktsize(quick, seed, registry):
    """Zero-loss throughput of the bypass chain vs frame size."""
    sizes = (64, 256) if quick else (64, 256, 1024)
    duration = 0.001 if quick else 0.002
    doc = _matrix_doc("zero_loss_pktsize", quick, seed, {
        "quick": quick, "frame_sizes": list(sizes),
        "duration_s": duration, "num_vms": 3, "bypass": True,
        "search_pps": [SEARCH_MIN_PPS, SEARCH_MAX_PPS],
    })
    sweep, checks, trend = [], [], {}
    for size in sizes:
        runner = ChainLoadRunner(num_vms=3, bypass=True,
                                 duration=duration, frame_size=size)
        harness = _harness(runner, registry,
                           "pktsize_%d" % size, quick)
        search = harness.zero_loss_search(SEARCH_MIN_PPS, SEARCH_MAX_PPS)
        sweep.append({"frame_size": size, "search": search.as_dict()})
        trend["zero_loss_mpps_%db" % size] = search.zero_loss_mpps
        checks.append((
            "zero_loss_found_%db" % size, search.zero_loss_pps > 0,
            "%.4f Mpps in %d trials" % (search.zero_loss_mpps,
                                        search.iterations)))
        checks.append((
            "latency_quantiles_ordered_%db" % size,
            all(_latency_ordered(point.latency_us)
                for point in search.points),
            "p50<=p95<=p99<=p999 at every trial"))
    doc["sweep"] = sweep
    return _attach(doc, checks, trend)


def _run_zero_loss_chain_length(quick, seed, registry):
    """Zero-loss throughput vs number of chained VMs (bypass on)."""
    lengths = (2, 3) if quick else (2, 3, 4)
    duration = 0.001 if quick else 0.002
    doc = _matrix_doc("zero_loss_chain_length", quick, seed, {
        "quick": quick, "chain_lengths": list(lengths),
        "duration_s": duration, "bypass": True,
        "search_pps": [SEARCH_MIN_PPS, SEARCH_MAX_PPS],
    })
    sweep, checks, trend = [], [], {}
    for length in lengths:
        runner = ChainLoadRunner(num_vms=length, bypass=True,
                                 duration=duration)
        harness = _harness(runner, registry,
                           "chain_%dvm" % length, quick)
        search = harness.zero_loss_search(SEARCH_MIN_PPS, SEARCH_MAX_PPS)
        sweep.append({"num_vms": length, "search": search.as_dict()})
        trend["zero_loss_mpps_%dvm" % length] = search.zero_loss_mpps
        checks.append((
            "zero_loss_found_%dvm" % length, search.zero_loss_pps > 0,
            "%.4f Mpps in %d trials" % (search.zero_loss_mpps,
                                        search.iterations)))
    doc["sweep"] = sweep
    return _attach(doc, checks, trend)


def _run_flow_scale_zipf(quick, seed, registry):
    """Loss and latency at fixed load vs Zipf-skewed flow count.

    More distinct flows means more EMC pressure; the skewed profile
    keeps a hot head (cache-resident) over a long tail, the realistic
    shape for cache-sensitivity measurements.
    """
    counts = (4, 64) if quick else (4, 64, 256)
    duration = 0.001 if quick else 0.002
    exponent = 1.2
    doc = _matrix_doc("flow_scale_zipf", quick, seed, {
        "quick": quick, "flow_counts": list(counts),
        "zipf_exponent": exponent, "offered_pps": PRESSURE_PPS,
        "duration_s": duration, "num_vms": 3, "bypass": False,
    })
    sweep, checks, trend = [], [], {}
    for count in counts:
        profile = skewed_profile(frame_size=64, flows=count,
                                 exponent=exponent)
        runner = ChainLoadRunner(num_vms=3, bypass=False,
                                 duration=duration, flows=count,
                                 profile=profile)
        harness = _harness(runner, registry,
                           "flows_%d" % count, quick)
        point = harness.measure(PRESSURE_PPS)
        sweep.append({"flows": count, "point": point.as_dict()})
        trend["loss_fraction_%df" % count] = point.loss_fraction
        p99 = point.latency_us.get("p99_us")
        if p99 is not None:
            trend["p99_us_%df" % count] = p99
        checks.append((
            "delivered_traffic_%df" % count, point.delivered > 0,
            "%d of %d frames delivered" % (point.delivered,
                                           point.sent)))
        checks.append((
            "latency_quantiles_ordered_%df" % count,
            _latency_ordered(point.latency_us),
            "p50<=p95<=p99<=p999"))
    doc["sweep"] = sweep
    return _attach(doc, checks, trend)


def _run_rule_scale(quick, seed, registry):
    """Loss and throughput at fixed load vs classifier rule count.

    Filler rules are masked ``eth_src`` matches across several mask
    widths, so each step multiplies classifier subtables — the
    megaflow-lookup pressure axis.
    """
    rule_counts = (0, 128) if quick else (0, 128, 512)
    duration = 0.001 if quick else 0.002
    doc = _matrix_doc("rule_scale", quick, seed, {
        "quick": quick, "rule_counts": list(rule_counts),
        "offered_pps": PRESSURE_PPS, "duration_s": duration,
        "num_vms": 3, "bypass": False,
        "megaflow_enabled": MEGAFLOW_ENABLED,
    })
    sweep, checks, trend = [], [], {}
    for rules in rule_counts:
        runner = ChainLoadRunner(num_vms=3, bypass=False,
                                 duration=duration, extra_rules=rules,
                                 megaflow_enabled=MEGAFLOW_ENABLED)
        harness = _harness(runner, registry,
                           "rules_%d" % rules, quick)
        point = harness.measure(PRESSURE_PPS)
        sweep.append({"extra_rules": rules, "point": point.as_dict()})
        trend["throughput_mpps_%dr" % rules] = point.throughput_mpps
        trend["loss_fraction_%dr" % rules] = point.loss_fraction
        checks.append((
            "delivered_traffic_%dr" % rules, point.delivered > 0,
            "%d of %d frames delivered" % (point.delivered,
                                           point.sent)))
    doc["sweep"] = sweep
    return _attach(doc, checks, trend)


def _run_flowmod_churn(quick, seed, registry):
    """Loss and tail latency at fixed load vs flowmod churn rate.

    Each churn cycle adds and deletes an unrelated rule, exercising
    EMC invalidation while traffic is in flight.
    """
    rates = (0.0, 2000.0) if quick else (0.0, 1000.0, 4000.0)
    duration = 0.002 if quick else 0.004
    doc = _matrix_doc("flowmod_churn", quick, seed, {
        "quick": quick, "churn_hz": list(rates),
        "offered_pps": PRESSURE_PPS, "duration_s": duration,
        "num_vms": 3, "bypass": False,
    })
    sweep, checks, trend = [], [], {}
    for churn_hz in rates:
        runner = ChainLoadRunner(num_vms=3, bypass=False,
                                 duration=duration, churn_hz=churn_hz)
        harness = _harness(runner, registry,
                           "churn_%d" % int(churn_hz), quick)
        point = harness.measure(PRESSURE_PPS)
        experiment = runner.last_experiment
        flowmods = experiment.flowmods_applied if experiment else 0
        sweep.append({"churn_hz": churn_hz, "flowmods": flowmods,
                      "point": point.as_dict()})
        key = "%dhz" % int(churn_hz)
        trend["loss_fraction_%s" % key] = point.loss_fraction
        p99 = point.latency_us.get("p99_us")
        if p99 is not None:
            trend["p99_us_%s" % key] = p99
        checks.append((
            "delivered_traffic_%s" % key, point.delivered > 0,
            "%d of %d frames delivered" % (point.delivered,
                                           point.sent)))
        checks.append((
            "churn_applied_%s" % key,
            (flowmods > 0) == (churn_hz > 0),
            "%d flowmods at %g Hz" % (flowmods, churn_hz)))
    doc["sweep"] = sweep
    return _attach(doc, checks, trend)


def _run_rebalance_under_load(quick, seed, registry):
    """Static hash vs auto load balancer at one hot-port collision load.

    A single-point cut of the full sched family: same adversarial
    ofport layout, same Zipf load split, measured live with the auto
    balancer on vs the static hash.
    """
    from repro.bench.workloads import sched

    duration = 0.01 if quick else 0.02
    warmup = 0.008
    total_pps = 2.0e7
    doc = _matrix_doc("rebalance_under_load", quick, seed, {
        "quick": quick, "offered_pps_total": total_pps,
        "duration_s": duration, "warmup_s": warmup,
        "n_pmd_cores": sched.N_CORES, "n_rx_ports": sched.N_PORTS,
    })
    variants = {
        name: sched.run_variant(name, total_pps, duration, warmup)
        for name in ("static", "auto_lb")
    }
    doc["workloads"] = variants
    static = variants["static"]["throughput_mpps"]
    auto_lb = variants["auto_lb"]["throughput_mpps"]
    checks = [
        ("auto_lb_beats_static_hash", auto_lb > static,
         "%.4f > %.4f Mpps" % (auto_lb, static)),
        ("auto_lb_applied_a_rebalance",
         variants["auto_lb"]["auto_lb_applied"] >= 1,
         "%d rebalance(s) applied"
         % variants["auto_lb"]["auto_lb_applied"]),
    ]
    trend = {
        "static_mpps": static,
        "auto_lb_mpps": auto_lb,
        "auto_lb_gain_mpps": auto_lb - static,
    }
    return _attach(doc, checks, trend)


# -- composites (the four legacy families) ------------------------------------


def _composite(family: str):
    def run(quick, seed, registry):
        from repro.bench import workloads

        module = workloads.get(family)
        doc = module.run_bench(quick, seed=seed)
        doc["trend"] = {key: round(float(value), 6) for key, value
                        in sorted(module.trend_metrics(doc).items())}
        return doc

    return run


# -- registry -----------------------------------------------------------------

SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario for scenario in (
        Scenario("zero_loss_pktsize", "matrix",
                 "RFC2544 zero-loss throughput vs frame size",
                 _run_zero_loss_pktsize),
        Scenario("zero_loss_chain_length", "matrix",
                 "RFC2544 zero-loss throughput vs chain length",
                 _run_zero_loss_chain_length),
        Scenario("flow_scale_zipf", "matrix",
                 "loss/latency vs Zipf-skewed flow count",
                 _run_flow_scale_zipf),
        Scenario("rule_scale", "matrix",
                 "loss/throughput vs classifier rule count",
                 _run_rule_scale),
        Scenario("flowmod_churn", "matrix",
                 "loss/tail latency vs flowmod churn rate",
                 _run_flowmod_churn),
        Scenario("rebalance_under_load", "matrix",
                 "auto load balancer vs static hash, hot-port collision",
                 _run_rebalance_under_load),
        Scenario("fastpath_baseline", "fastpath",
                 "vectorized fast path, EMC invalidation, bypass chains",
                 _composite("fastpath")),
        Scenario("hot_port_collision", "sched",
                 "PMD rxq scheduling: static vs cycles vs auto-lb",
                 _composite("sched")),
        Scenario("miss_storm", "overload",
                 "bounded upcalls under a miss storm; controller outage",
                 _composite("overload")),
        Scenario("crash_soak", "chaos",
                 "Poisson VM crashes with and without the repairer",
                 _composite("chaos")),
    )
}


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError("unknown scenario %r (know: %s)"
                       % (name, ", ".join(sorted(SCENARIOS)))) from None


def run_scenario(name: str, quick: bool = True,
                 seed: Optional[int] = None,
                 registry: Optional[MetricsRegistry] = None
                 ) -> Dict[str, Any]:
    """Run one scenario; returns its schema-v1 document (with a
    ``trend`` block of headline metrics)."""
    scenario = get_scenario(name)
    if registry is None:
        registry = MetricsRegistry()
    return scenario.run(quick, seed, registry)


def trend_metrics_of(doc: Dict[str, Any]) -> Dict[str, float]:
    """The headline metrics a scenario document carries."""
    trend = doc.get("trend")
    if not isinstance(trend, dict) or not trend:
        raise ValueError("scenario document carries no trend metrics")
    return trend


def scenario_names() -> List[str]:
    return list(SCENARIOS)
