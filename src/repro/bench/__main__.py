"""``python -m repro.bench``: run the benchmark scenario matrix."""

import sys

from repro.bench.cli import bench_main

if __name__ == "__main__":
    sys.exit(bench_main())
