"""Overload control benchmark family: miss storms and controller
outages (formerly ``scripts/bench_overload.py``).

Two scenarios, four runs, one document (family tag
``repro-bench-overload/1``):

* ``storm`` — one PMD core forwards a cache-hitting "good" flow while a
  second port offers a miss storm at twice the good load; ``inline``
  handles every miss on the fast path, ``bounded`` runs the bounded
  upcall queue plus the RX overload monitor.
* ``outage`` — a switch forwarding controller-installed flows loses its
  controller mid-run while new traffic appears; ``standalone`` falls
  back to local L2 learning, ``secure`` buffers packet-ins and freezes
  flow expiry so controller state survives.

The committed ``BENCH_overload.json`` is a full run.
"""

import sys

from repro.bench.workloads import (
    attach_checks,
    missing_keys,
    new_doc,
    resolve_seed,
)
from repro.bench.schema import validate_document
from repro.dpdk.dpdkr import DpdkrPmd
from repro.openflow.actions import OutputAction
from repro.openflow.controller import ControllerConnection, SimpleController
from repro.openflow.match import Match
from repro.openflow.table import FlowEntry
from repro.overload import FailModePolicy, UpcallPolicy
from repro.overload.failmode import FALLBACK_COOKIE
from repro.packet.builder import make_udp_packet
from repro.packet.flowkey import extract_flow_key
from repro.sim.engine import Environment
from repro.traffic.generator import SourceApp
from repro.traffic.profiles import Template, TrafficProfile, uniform_profile
from repro.traffic.sink import SinkApp
from repro.vswitch.vswitchd import VSwitchd

FAMILY = "overload"
SCHEMA = "repro-bench-overload/1"
GENERATOR = "scripts/bench_overload.py"
DEFAULT_OUT = "BENCH_overload.json"
DEFAULT_SEED = None

GOOD_PPS = 1.5e6
STORM_RATIO = 2.0  # storm offered at 2x the good load


def mac_profile(name, src_mac, dst_mac, flows=2):
    """A small UDP profile with explicit MACs (the fallback learns from
    source addresses, so each direction needs its own)."""
    templates = []
    for flow in range(flows):
        packet = make_udp_packet(
            src_port=1000 + flow, dst_port=2000, frame_size=64,
            src_mac=src_mac, dst_mac=dst_mac,
        )
        templates.append(Template(
            packet=packet, wire_length=packet.wire_length,
            flow_key=extract_flow_key(packet, in_port=0),
        ))
    return TrafficProfile(name=name, templates=tuple(templates))


# -- scenario 1: miss storm ---------------------------------------------------


def run_storm_variant(variant, duration, warmup):
    """One storm run; ``variant`` is ``inline`` or ``bounded``."""
    env = Environment()
    bounded = variant == "bounded"
    switch = VSwitchd(
        env=env, connection=ControllerConnection(), name="bench-overload",
        bounded_upcalls=bounded,
        upcall_policy=(UpcallPolicy(
            max_queue=512, control_reserve=32, port_quota=256,
            port_rate_pps=2000.0, port_burst=64.0, dispatch_batch=8,
        ) if bounded else None),
        overload=bounded,
    )
    good_rx = switch.add_dpdkr_port("good-rx", ofport=1)
    storm_rx = switch.add_dpdkr_port("storm-rx", ofport=2)
    good_tx = switch.add_dpdkr_port("good-tx", ofport=100)
    # The good flow hits the caches; the storm port has no flow at all,
    # so every storm packet is a table miss.
    switch.bridge.table.add(FlowEntry(
        Match(in_port=good_rx.ofport), [OutputAction(good_tx.ofport)],
        priority=10,
    ))
    profile = uniform_profile(64, flows=4)
    source_good = SourceApp("src-good", DpdkrPmd(1, good_rx.rings),
                            profile=profile, rate_pps=GOOD_PPS)
    source_storm = SourceApp("src-storm", DpdkrPmd(2, storm_rx.rings),
                             profile=profile,
                             rate_pps=GOOD_PPS * STORM_RATIO)
    sink = SinkApp("sink-good", DpdkrPmd(100, good_tx.rings),
                   record_latency=False)
    switch.start()
    for app in (source_good, source_storm, sink):
        app.start(env)
    env.run(until=warmup)
    switch.reset_pmd_accounting()
    received_mark = sink.received
    env.run(until=warmup + duration)
    delivered = sink.received - received_mark
    datapath = switch.datapath
    queue = switch.upcall_queue
    connection = switch.bridge.connection
    out = {
        "variant": variant,
        "good_offered_pps": GOOD_PPS,
        "storm_offered_pps": GOOD_PPS * STORM_RATIO,
        "goodput_mpps": round(delivered / duration / 1e6, 4),
        "delivered": delivered,
        "storm_rx_packets": storm_rx.rx_packets,
        "upcalls_no_match": datapath.upcalls_no_match,
        "rx_early_drops": dict(datapath.rx_early_drops),
        "packet_ins_sent": switch.bridge.packet_ins_sent,
        "controller_dropped_to_controller":
            connection.dropped_to_controller,
        "core_busy": [round(loop.utilization, 4)
                      for loop in switch._pmd_loops],
    }
    if queue is not None:
        out["queue"] = {
            "max_queue": queue.policy.max_queue,
            "depth": queue.depth,
            "high_watermark": queue.high_watermark,
            "admitted_total": queue.admitted_total,
            "dispatched": queue.dispatched,
            "shed_total": queue.shed_total,
            "shed": dict(queue.shed),
        }
    if switch.overload is not None:
        out["monitor"] = switch.overload.stats()
    switch.stop()
    for app in (source_good, source_storm, sink):
        app.stop()
    return out


# -- scenario 2: controller outage --------------------------------------------


def run_outage_variant(mode, settle, pre_run, outage_len):
    """One outage run; ``mode`` is ``standalone`` or ``secure``.

    Timeline: controller installs flows, pre-outage traffic warms the
    caches, the controller dies at ``t1`` while a brand-new traffic pair
    starts, the peer comes back at ``t2`` and the switch reconnects via
    backoff.  Flow state is snapshotted right before the outage and
    right after the reconnect.
    """
    env = Environment()
    connection = ControllerConnection()
    # The idle flow never matches traffic; it is timed to expire midway
    # through the outage unless secure mode freezes expiry.
    idle_timeout = (pre_run - settle) + outage_len / 2.0
    switch = VSwitchd(
        env=env, connection=connection, name="bench-outage",
        fail_mode=mode,
        upcall_policy=UpcallPolicy(max_queue=64, control_reserve=8,
                                   port_quota=16, dispatch_batch=8),
        failmode_policy=FailModePolicy(
            max_pending_packet_ins=128,
            backoff_base=0.002, backoff_max=0.02,
        ),
    )
    controller = SimpleController(connection)
    ports = {name: switch.add_dpdkr_port(name, ofport=ofport)
             for ofport, name in enumerate(("a", "b", "c", "d"), 1)}
    controller.install_flow(Match(in_port=ports["a"].ofport),
                            [OutputAction(ports["b"].ofport)])
    controller.install_flow(Match(in_port=ports["b"].ofport),
                            [OutputAction(ports["a"].ofport)])
    # Pre-outage pair on a<->b; the new pair on c<->d appears only once
    # the controller is gone, so every one of its packets is a miss.
    sources = {
        "a": SourceApp("src-a", DpdkrPmd(1, ports["a"].rings),
                       profile=mac_profile("a->b", "02:00:00:00:00:01",
                                           "02:00:00:00:00:02"),
                       rate_pps=2e5),
        "b": SourceApp("src-b", DpdkrPmd(2, ports["b"].rings),
                       profile=mac_profile("b->a", "02:00:00:00:00:02",
                                           "02:00:00:00:00:01"),
                       rate_pps=2e5),
        "c": SourceApp("src-c", DpdkrPmd(3, ports["c"].rings),
                       profile=mac_profile("c->d", "02:00:00:00:00:03",
                                           "02:00:00:00:00:04"),
                       rate_pps=2e5),
        "d": SourceApp("src-d", DpdkrPmd(4, ports["d"].rings),
                       profile=mac_profile("d->c", "02:00:00:00:00:04",
                                           "02:00:00:00:00:03"),
                       rate_pps=2e5),
    }
    sinks = {name: SinkApp("sink-%s" % name,
                           DpdkrPmd(10 + port.ofport, port.rings),
                           record_latency=False)
             for name, port in ports.items()}
    switch.start()
    for sink in sinks.values():
        sink.start(env)
    env.run(until=settle)  # control loop processes the flowmods
    # The idle flow is installed straight into the table: the OF1.3
    # wire codec carries idle_timeout as whole seconds, and this run
    # needs a sub-second one.
    idle_entry = FlowEntry(
        Match(in_port=77), [OutputAction(ports["b"].ofport)],
        priority=10, cookie=0x1D7E, idle_timeout=idle_timeout,
        install_time=env.now,
    )
    switch.bridge.table.add(idle_entry)
    sources["a"].start(env)
    sources["b"].start(env)
    env.run(until=pre_run)
    pre_flow_ids = {entry.flow_id
                    for entry in switch.bridge.table.entries()}
    idle_flow_id = idle_entry.flow_id
    # t1: the controller dies; the new pair starts in the same instant.
    connection.peer_available = False
    connection.disconnect()
    sources["c"].start(env)
    sources["d"].start(env)
    old_mark = sinks["a"].received + sinks["b"].received
    new_mark = sinks["c"].received + sinks["d"].received
    env.run(until=pre_run + outage_len)
    old_delivered = (sinks["a"].received + sinks["b"].received) - old_mark
    new_delivered = (sinks["c"].received + sinks["d"].received) - new_mark
    failmode = switch.failmode
    queue = switch.upcall_queue
    during = {
        "old_pair_delivered": old_delivered,
        "new_pair_delivered": new_delivered,
        "forwarded_mpps": round(
            (old_delivered + new_delivered) / outage_len / 1e6, 4),
        "new_pair_mpps": round(new_delivered / outage_len / 1e6, 4),
        "queue_high_watermark": (queue.high_watermark
                                 if queue is not None else 0),
        "pending_packet_ins": failmode.pending_packet_ins,
        "packet_ins_buffered": failmode.packet_ins_buffered,
        "packet_ins_shed": failmode.packet_ins_shed,
        "fallback_flows_installed": failmode.fallback.flows_installed,
        "emc_entries": len(switch.datapath.emc),
    }
    # t2: the peer comes back; stop the new pair and poll the control
    # loop until the backoff reconnect lands.
    sources["c"].stop()
    sources["d"].stop()
    connection.peer_available = True
    for _ in range(200):
        env.run(until=env.now + 0.002)
        if failmode.state == "connected":
            break
    post_entries = switch.bridge.table.entries()
    post_flow_ids = {entry.flow_id for entry in post_entries}
    recovery = {
        "reconnected": failmode.state == "connected",
        "reconnect_attempts": failmode.reconnect_attempts,
        "reconnect_failures": failmode.reconnect_failures,
        "fallback_flows_removed": failmode.fallback_flows_removed,
        "fallback_flows_left": sum(
            1 for entry in post_entries
            if entry.cookie == FALLBACK_COOKIE),
        "packet_ins_replayed": failmode.packet_ins_replayed,
        "timers_shifted": failmode.timers_shifted,
        "idle_flow_survived": idle_flow_id in post_flow_ids,
        "flow_state_preserved": pre_flow_ids <= post_flow_ids,
        "emc_entries": len(switch.datapath.emc),
    }
    out = {
        "mode": mode,
        "pre_outage_flows": len(pre_flow_ids),
        "post_recovery_flows": len(post_flow_ids),
        "during_outage": during,
        "recovery": recovery,
        "connection": {
            "max_pending": connection.max_pending,
            "pending_for_controller": connection.pending_for_controller,
            "pending_for_switch": connection.pending_for_switch,
            "dropped_to_controller": connection.dropped_to_controller,
            "dropped_disconnected": connection.dropped_disconnected,
        },
        "queue_max": queue.policy.max_queue if queue is not None else 0,
        "pending_packet_ins_max":
            failmode.policy.max_pending_packet_ins,
    }
    switch.stop()
    for app in list(sources.values()) + list(sinks.values()):
        app.stop()
    return out


# -- checks -------------------------------------------------------------------


def run_checks(doc):
    """The overload invariants; each returns (name, passed, detail)."""
    inline = doc["storm"]["inline"]
    bounded = doc["storm"]["bounded"]
    standalone = doc["outage"]["standalone"]
    secure = doc["outage"]["secure"]
    queue = bounded["queue"]
    storm_drops = sum(bounded["rx_early_drops"].values())
    conserved = (bounded["upcalls_no_match"]
                 == queue["dispatched"] + queue["depth"]
                 + queue["shed_total"])
    rx_conserved = (bounded["storm_rx_packets"]
                    == bounded["upcalls_no_match"] + storm_drops)
    bounded_queues = all(
        variant["during_outage"]["queue_high_watermark"]
        <= variant["queue_max"]
        and variant["during_outage"]["pending_packet_ins"]
        <= variant["pending_packet_ins_max"]
        and variant["connection"]["pending_for_controller"]
        <= variant["connection"]["max_pending"]
        for variant in (standalone, secure))
    return [
        ("storm_goodput_with_control_not_worse",
         bounded["goodput_mpps"] >= inline["goodput_mpps"],
         "%.4f >= %.4f Mpps at %.1fx storm load"
         % (bounded["goodput_mpps"], inline["goodput_mpps"],
            STORM_RATIO)),
        ("storm_degrades_uncontrolled_goodput",
         inline["goodput_mpps"] < GOOD_PPS / 1e6 * 0.5,
         "inline %.4f Mpps of %.1f offered"
         % (inline["goodput_mpps"], GOOD_PPS / 1e6)),
        ("storm_upcall_conservation", conserved and rx_conserved,
         "%d upcalls = %d dispatched + %d queued + %d shed; "
         "%d rx = upcalls + %d early drops"
         % (bounded["upcalls_no_match"], queue["dispatched"],
            queue["depth"], queue["shed_total"],
            bounded["storm_rx_packets"], storm_drops)),
        ("storm_queue_bounded",
         queue["high_watermark"] <= queue["max_queue"],
         "high watermark %d <= %d"
         % (queue["high_watermark"], queue["max_queue"])),
        ("storm_sheds_accounted",
         queue["shed_total"] > 0
         and sum(queue["shed"].values()) == queue["shed_total"],
         "%d shed: %s" % (queue["shed_total"], queue["shed"])),
        ("outage_standalone_keeps_forwarding",
         standalone["during_outage"]["forwarded_mpps"] > 0,
         "%.4f Mpps through the outage"
         % standalone["during_outage"]["forwarded_mpps"]),
        ("outage_standalone_learns_new_flows",
         standalone["during_outage"]["new_pair_delivered"] > 0
         and standalone["during_outage"]["fallback_flows_installed"] > 0,
         "%d new-pair packets, %d fallback flows"
         % (standalone["during_outage"]["new_pair_delivered"],
            standalone["during_outage"]["fallback_flows_installed"])),
        ("outage_secure_refuses_to_improvise",
         secure["during_outage"]["new_pair_delivered"] == 0
         and secure["during_outage"]["fallback_flows_installed"] == 0,
         "%d new-pair packets forwarded"
         % secure["during_outage"]["new_pair_delivered"]),
        ("outage_queues_bounded", bounded_queues,
         "upcall/packet-in/channel queues within caps in both modes"),
        ("outage_secure_preserves_flow_state",
         secure["recovery"]["flow_state_preserved"]
         and secure["recovery"]["reconnected"],
         "%d pre-outage flows all present after recovery"
         % secure["pre_outage_flows"]),
        ("outage_secure_freezes_expiry",
         secure["recovery"]["idle_flow_survived"]
         and not standalone["recovery"]["idle_flow_survived"],
         "idle flow survived secure, expired standalone"),
        ("outage_standalone_cleans_fallback_flows",
         standalone["recovery"]["fallback_flows_removed"] > 0
         and standalone["recovery"]["fallback_flows_left"] == 0,
         "%d removed, %d left"
         % (standalone["recovery"]["fallback_flows_removed"],
            standalone["recovery"]["fallback_flows_left"])),
        ("outage_secure_replays_bounded_buffer",
         secure["recovery"]["packet_ins_replayed"] > 0
         and secure["during_outage"]["packet_ins_shed"] > 0,
         "%d replayed, %d shed over the %d cap"
         % (secure["recovery"]["packet_ins_replayed"],
            secure["during_outage"]["packet_ins_shed"],
            secure["pending_packet_ins_max"])),
        ("outage_secure_emc_preserved",
         secure["recovery"]["emc_entries"]
         >= secure["during_outage"]["emc_entries"] > 0,
         "%d entries before recovery, %d after"
         % (secure["during_outage"]["emc_entries"],
            secure["recovery"]["emc_entries"])),
    ]


# -- schema -------------------------------------------------------------------

REQUIRED_STORM_KEYS = {
    "variant", "good_offered_pps", "storm_offered_pps", "goodput_mpps",
    "delivered", "storm_rx_packets", "upcalls_no_match",
    "rx_early_drops", "packet_ins_sent", "core_busy",
}

REQUIRED_OUTAGE_KEYS = {
    "mode", "pre_outage_flows", "post_recovery_flows", "during_outage",
    "recovery", "connection", "queue_max", "pending_packet_ins_max",
}


def validate(doc):
    """Structural schema check; returns a list of problems (empty = ok)."""
    problems = validate_document(doc, family=FAMILY)
    storm = doc.get("storm", {})
    for name in ("inline", "bounded"):
        variant = storm.get(name)
        if variant is None:
            problems.append("missing storm variant %s" % name)
            continue
        missing = missing_keys(variant, REQUIRED_STORM_KEYS)
        if missing:
            problems.append("storm %s missing %s" % (name, missing))
        if name == "bounded" and "queue" not in variant:
            problems.append("storm bounded missing queue")
    outage = doc.get("outage", {})
    for name in ("standalone", "secure"):
        variant = outage.get(name)
        if variant is None:
            problems.append("missing outage variant %s" % name)
            continue
        missing = missing_keys(variant, REQUIRED_OUTAGE_KEYS)
        if missing:
            problems.append("outage %s missing %s" % (name, missing))
    return problems


# -- trends -------------------------------------------------------------------


def trend_metrics(doc):
    storm = doc["storm"]
    outage = doc["outage"]
    return {
        "bounded_goodput_mpps": storm["bounded"]["goodput_mpps"],
        "inline_goodput_mpps": storm["inline"]["goodput_mpps"],
        "standalone_outage_mpps":
            outage["standalone"]["during_outage"]["forwarded_mpps"],
        "secure_flows_preserved": float(
            outage["secure"]["recovery"]["flow_state_preserved"]),
    }


# -- driver -------------------------------------------------------------------


def run_bench(quick, seed=None):
    storm_duration = 0.01 if quick else 0.03
    storm_warmup = 0.004
    settle = 0.004
    pre_run = 0.012 if quick else 0.02
    outage_len = 0.02 if quick else 0.03
    doc = new_doc(FAMILY, GENERATOR, quick, resolve_seed(seed), {
        "quick": quick,
        "good_offered_pps": GOOD_PPS,
        "storm_ratio": STORM_RATIO,
        "storm_duration_s": storm_duration,
        "storm_warmup_s": storm_warmup,
        "outage_pre_run_s": pre_run,
        "outage_duration_s": outage_len,
    })
    doc["storm"] = {}
    doc["outage"] = {}
    for step, variant in enumerate(("inline", "bounded"), 1):
        print("[%d/4] storm %s..." % (step, variant), file=sys.stderr)
        doc["storm"][variant] = run_storm_variant(
            variant, storm_duration, storm_warmup)
    for step, mode in enumerate(("standalone", "secure"), 3):
        print("[%d/4] outage %s..." % (step, mode), file=sys.stderr)
        doc["outage"][mode] = run_outage_variant(
            mode, settle, pre_run, outage_len)
    return attach_checks(doc, run_checks(doc))
