"""PMD scheduler benchmark family: static hash vs measured-load
rebalancing (formerly ``scripts/bench_rebalance.py``).

One vSwitch, four PMD cores, eight receive ports carrying a
Zipf-skewed load whose two hottest ports collide on the same core
under the static ``ofport % n_cores`` hash.  Three variants: ``static``
(the baseline hash), ``cycles`` (one manual measured-load rebalance
after warmup) and ``auto_lb`` (the auto load balancer detects the
overload live).  Family tag ``repro-bench-sched/1``; the committed
``BENCH_sched.json`` is a full run.
"""

import sys

from repro.bench.workloads import (
    attach_checks,
    missing_keys,
    new_doc,
    resolve_seed,
)
from repro.bench.schema import validate_document
from repro.dpdk.dpdkr import DpdkrPmd
from repro.openflow.actions import OutputAction
from repro.openflow.match import Match
from repro.openflow.table import FlowEntry
from repro.sched.autolb import AutoLbPolicy
from repro.sim.engine import Environment
from repro.traffic.generator import SourceApp
from repro.traffic.profiles import hot_port_rates, uniform_profile
from repro.traffic.sink import SinkApp
from repro.vswitch.vswitchd import VSwitchd

FAMILY = "sched"
SCHEMA = "repro-bench-sched/1"
GENERATOR = "scripts/bench_rebalance.py"
DEFAULT_OUT = "BENCH_sched.json"
DEFAULT_SEED = None

N_CORES = 4
N_PORTS = 8
# Receive ofports chosen adversarially: the two hottest ports (rates[0]
# and rates[1] below land on ofports 1 and 5) are congruent mod 4, so
# the static hash stacks them on the same PMD core.
RX_OFPORTS = (1, 5, 2, 3, 4, 6, 7, 8)
ZIPF_EXPONENT = 1.0


def build_switch(env, auto_lb_interval=None):
    switch = VSwitchd(
        env=env, n_pmd_cores=N_CORES, name="bench-sched",
        auto_lb=auto_lb_interval is not None,
        auto_lb_policy=(
            AutoLbPolicy(rebalance_interval=auto_lb_interval)
            if auto_lb_interval is not None else AutoLbPolicy()
        ),
    )
    rx_ports, tx_ports = [], []
    for index, ofport in enumerate(RX_OFPORTS):
        rx_ports.append(switch.add_dpdkr_port(
            "rx%d" % index, ofport=ofport))
    for index in range(N_PORTS):
        tx_ports.append(switch.add_dpdkr_port(
            "out%d" % index, ofport=100 + index))
    for rx, tx in zip(rx_ports, tx_ports):
        switch.bridge.table.add(FlowEntry(
            Match(in_port=rx.ofport), [OutputAction(tx.ofport)],
            priority=10,
        ))
    return switch, rx_ports, tx_ports


def run_variant(variant, total_pps, duration, warmup):
    """One full run; returns the measured numbers for one variant."""
    env = Environment()
    auto_lb_interval = warmup / 4 if variant == "auto_lb" else None
    switch, rx_ports, tx_ports = build_switch(env, auto_lb_interval)
    profile = uniform_profile(64, flows=4)
    rates = hot_port_rates(total_pps, N_PORTS, ZIPF_EXPONENT)
    sources, sinks = [], []
    for index, (rx, rate) in enumerate(zip(rx_ports, rates)):
        pmd = DpdkrPmd(index, rx.rings)
        sources.append(SourceApp(
            "src%d" % index, pmd, profile=profile, rate_pps=rate,
        ))
    for index, tx in enumerate(tx_ports):
        pmd = DpdkrPmd(100 + index, tx.rings)
        sinks.append(SinkApp("sink%d" % index, pmd,
                             record_latency=False))
    switch.start()
    for app in sources + sinks:
        app.start(env)
    if variant == "auto_lb":
        # Ports were placed by the static hash (the adversarial start);
        # from here on the balancer re-plans with measured cycles.
        switch.set_rxq_assign("cycles")
    env.run(until=warmup)
    if variant == "cycles":
        switch.set_rxq_assign("cycles")
        switch.rebalance()
    switch.reset_pmd_accounting()
    received_mark = [sink.received for sink in sinks]
    env.run(until=warmup + duration)
    delivered = sum(sink.received - mark
                    for sink, mark in zip(sinks, received_mark))
    scheduler = switch.scheduler
    core_busy = [round(loop.utilization, 4)
                 for loop in switch._pmd_loops]
    out = {
        "variant": variant,
        "offered_pps": round(total_pps, 1),
        "delivered": delivered,
        "throughput_mpps": round(delivered / duration / 1e6, 4),
        "core_busy": core_busy,
        "rebalances": scheduler.rebalances,
        "port_moves": scheduler.port_moves,
        "assignment": {
            str(core): [port.name for port in ports]
            for core, ports in enumerate(scheduler.core_ports)
        },
    }
    if switch.auto_lb is not None:
        out["auto_lb_checks"] = switch.auto_lb.checks_run
        out["auto_lb_applied"] = switch.auto_lb.rebalances_applied
    switch.stop()
    for app in sources + sinks:
        app.stop()
    return out


# -- checks -------------------------------------------------------------------


def run_checks(doc):
    """The scheduler invariants; each returns (name, passed, detail)."""
    workloads = doc["workloads"]
    static = workloads["static"]["throughput_mpps"]
    cycles = workloads["cycles"]["throughput_mpps"]
    auto_lb = workloads["auto_lb"]["throughput_mpps"]
    return [
        ("cycles_beats_static_hash", cycles > static,
         "%.4f > %.4f Mpps" % (cycles, static)),
        ("auto_lb_beats_static_hash", auto_lb > static,
         "%.4f > %.4f Mpps" % (auto_lb, static)),
        ("cycles_rebalance_moved_ports",
         workloads["cycles"]["port_moves"] > 0,
         "%d port move(s)" % workloads["cycles"]["port_moves"]),
        ("auto_lb_applied_a_rebalance",
         workloads["auto_lb"]["auto_lb_applied"] >= 1,
         "%d rebalance(s) applied"
         % workloads["auto_lb"]["auto_lb_applied"]),
        ("static_left_alone",
         workloads["static"]["port_moves"] == 0,
         "%d port move(s)" % workloads["static"]["port_moves"]),
    ]


# -- schema -------------------------------------------------------------------

REQUIRED_VARIANT_KEYS = {
    "variant", "offered_pps", "delivered", "throughput_mpps",
    "core_busy", "rebalances", "port_moves", "assignment",
}


def validate(doc):
    """Structural schema check; returns a list of problems (empty = ok)."""
    problems = validate_document(doc, family=FAMILY)
    workloads = doc.get("workloads", {})
    for name in ("static", "cycles", "auto_lb"):
        variant = workloads.get(name)
        if variant is None:
            problems.append("missing workload %s" % name)
            continue
        missing = missing_keys(variant, REQUIRED_VARIANT_KEYS)
        if missing:
            problems.append("%s missing %s" % (name, missing))
        if name == "auto_lb" and "auto_lb_applied" not in variant:
            problems.append("auto_lb missing auto_lb_applied")
    return problems


# -- trends -------------------------------------------------------------------


def trend_metrics(doc):
    workloads = doc["workloads"]
    return {
        "static_mpps": workloads["static"]["throughput_mpps"],
        "cycles_mpps": workloads["cycles"]["throughput_mpps"],
        "auto_lb_mpps": workloads["auto_lb"]["throughput_mpps"],
        # Informational rebalance count; named without the "cycles"
        # unit token so the gate treats it as neutral, not a cost.
        "rxq_port_moves": workloads["cycles"]["port_moves"],
    }


# -- driver -------------------------------------------------------------------


def run_bench(quick, seed=None):
    duration = 0.01 if quick else 0.04
    warmup = 0.008 if quick else 0.016
    # Tuned so the two colliding hot ports saturate one core under the
    # static hash while the spread layout keeps every core below
    # capacity: the delta between variants is pure scheduling.
    total_pps = 2.0e7
    doc = new_doc(FAMILY, GENERATOR, quick, resolve_seed(seed), {
        "quick": quick,
        "n_pmd_cores": N_CORES,
        "n_rx_ports": N_PORTS,
        "rx_ofports": list(RX_OFPORTS),
        "zipf_exponent": ZIPF_EXPONENT,
        "offered_pps_total": total_pps,
        "duration_s": duration,
        "warmup_s": warmup,
    })
    doc["workloads"] = {}
    for step, variant in enumerate(("static", "cycles", "auto_lb"), 1):
        print("[%d/3] %s..." % (step, variant), file=sys.stderr)
        doc["workloads"][variant] = run_variant(
            variant, total_pps, duration, warmup)
    return attach_checks(doc, run_checks(doc))
