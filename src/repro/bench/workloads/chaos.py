"""Chaos soak benchmark family: Poisson VM crashes against a 5-NF
chain, with and without the chain repairer (formerly
``scripts/bench_chaos.py``).

One service chain — source NF, three forwarder NFs, sink NF — carries
steady traffic while the middle NFs (nf2..nf4) are killed abruptly at
Poisson-distributed instants (seeded, deterministic).  Two scenarios:

* ``repaired`` — the :class:`ChainRepairer` supervises the chain: every
  crash is detected, the VM re-created on the same ports, the app
  rebuilt, the steering flows replayed (which re-establishes the
  bypasses).  The check: after >= 20 crash/repair cycles the chain's
  goodput in a quiet window recovers to within 5% of its pre-crash
  level, the mbuf pool was never exhausted, and every buffer is back in
  the pool at quiesce — a crash costs latency, not capacity.
* ``unrepaired`` — same chaos, no supervisor.  The chain collapses
  (goodput -> 0) and the dead NFs strand the source pool's mbufs in
  their port rings; the ownership ledger then finds and reclaims every
  one of them, proving the leak is observable and recoverable rather
  than silent.

Family tag ``repro-bench-chaos/1``; the committed ``BENCH_chaos.json``
is a full run.
"""

import random
import sys

from repro.apps import ForwarderApp
from repro.bench.workloads import (
    attach_checks,
    missing_keys,
    new_doc,
    resolve_seed,
)
from repro.bench.schema import validate_document
from repro.core.bypass import RetryPolicy
from repro.orchestration import (
    ChainRepairer,
    NfvNode,
    Orchestrator,
    RepairPolicy,
    ServiceGraph,
)
from repro.sim.engine import Environment
from repro.traffic import SinkApp, SourceApp

FAMILY = "chaos"
SCHEMA = "repro-bench-chaos/1"
GENERATOR = "scripts/bench_chaos.py"
DEFAULT_OUT = "BENCH_chaos.json"
DEFAULT_SEED = 42

RATE_PPS = 5e4
POOL_SIZE = 2048
MEAN_INTERARRIVAL = 0.03   # seconds between crashes (Poisson)
MIDDLE_NFS = ("nf2", "nf3", "nf4")

REPAIR_POLICY = RepairPolicy(poll_interval=0.002, max_restarts=1000,
                             base_backoff=0.002, max_backoff=0.01)

# Aggressive control-plane timescales so 20+ crash/repair cycles fit in
# a few seconds of simulated time: minimal retry/quarantine backoff and
# near-disabled flap damping (the chaos schedule *is* a flap storm;
# damping it would only slow the measurement down).  The request
# timeout must stay above the ~100 ms cost of a clean establishment
# (RPC + hot-plug + two serial RTTs) or every attempt times out by
# construction and the serialized worker livelocks on retries.
BENCH_RETRY = RetryPolicy(
    request_timeout=0.2, teardown_timeout=0.2,
    base_backoff=0.01, max_backoff=0.04,
    quarantine_backoff=0.05, quarantine_backoff_factor=1.0,
    max_quarantine_backoff=0.05,
    flap_window=0.1, flap_threshold=50, flap_hold=0.02,
)


def build_chain():
    """nf1 (source) -> nf2 -> nf3 -> nf4 -> nf5 (sink)."""
    graph = ServiceGraph("chaos-chain")
    graph.add_vnf("nf1", ["p0"], app_factory=lambda pmds: SourceApp(
        "nf1.app", pmds["p0"], pool_size=POOL_SIZE, rate_pps=RATE_PPS))
    for index in (2, 3, 4):
        graph.add_vnf(
            "nf%d" % index, ["p0", "p1"],
            app_factory=lambda pmds, i=index: ForwarderApp(
                "nf%d.app" % i, pmds["p0"], pmds["p1"]),
        )
    graph.add_vnf("nf5", ["p0"], app_factory=lambda pmds: SinkApp(
        "nf5.app", pmds["p0"], record_latency=False))
    graph.connect("nf1.p0", "nf2.p0")
    graph.connect("nf2.p1", "nf3.p0")
    graph.connect("nf3.p1", "nf4.p0")
    graph.connect("nf4.p1", "nf5.p0")
    return graph


def run_scenario(mode, quick, seed):
    """One soak run; ``mode`` is ``repaired`` or ``unrepaired``."""
    repaired = mode == "repaired"
    warmup = 0.15
    window = 0.05
    crash_target = 5 if quick else 22
    chaos_cap = crash_target * MEAN_INTERARRIVAL * 4
    # The manager's worker is serialized and every torn-down bypass
    # costs it one establishment (~0.1 s clean, up to one request
    # timeout if chaos interrupted it), so the control-plane backlog
    # after the storm drains at a rate bounded by the worker, not the
    # repairer.  Recovery is therefore measured, not assumed: the run
    # advances until the bypasses are back (or the cap expires) and
    # reports how long that took.
    recovery_cap = 2.0 + crash_target * 0.5
    drain = 0.3

    env = Environment()
    node = NfvNode(env=env, retry_policy=BENCH_RETRY)
    orchestrator = Orchestrator(node)
    deployment = orchestrator.deploy(build_chain())
    deployment.start_apps(env)
    source = deployment.apps["nf1"]
    sink = deployment.apps["nf5"]
    pool = source.pool
    node.track_mempool(pool)
    repairer = None
    if repaired:
        repairer = ChainRepairer(
            orchestrator, deployment, REPAIR_POLICY).start(env)

    rng = random.Random(seed)
    min_available = [pool.size]

    def advance(duration):
        """Run the clock forward, sampling pool occupancy as we go."""
        end = env.now + duration
        while env.now < end:
            env.run(until=min(end, env.now + 0.005))
            min_available[0] = min(min_available[0], pool.available)

    advance(warmup)
    pre_mark = sink.received
    advance(window)
    pre_goodput = (sink.received - pre_mark) / window

    crashes = 0
    chaos_deadline = env.now + chaos_cap
    while crashes < crash_target and env.now < chaos_deadline:
        advance(rng.expovariate(1.0 / MEAN_INTERARRIVAL))
        alive = [name for name in MIDDLE_NFS
                 if name in node.hypervisor.vms]
        if not alive:
            if not repaired:
                break  # every middle NF is dead; nothing left to kill
            continue   # all victims mid-repair; keep the schedule going
        node.hypervisor.crash_vm(rng.choice(alive))
        crashes += 1
        min_available[0] = min(min_available[0], pool.available)

    chaos_end = env.now
    bypass_restore_seconds = None
    expected_bypasses = len(deployment.installed_rules)
    while env.now < chaos_end + (recovery_cap if repaired else 1.0):
        advance(0.05)
        if repaired and node.active_bypasses == expected_bypasses:
            bypass_restore_seconds = env.now - chaos_end
            break
    post_mark = sink.received
    advance(window)
    post_goodput = (sink.received - post_mark) / window
    active_bypasses = node.active_bypasses

    # Quiesce: stop the source, let the chain drain, stop everything,
    # then sweep whatever the ledger still charges to anyone.  A healthy
    # repaired run has nothing left to sweep; the unrepaired run's dead
    # NFs are holding the source pool hostage until this reclaim.
    source.stop()
    advance(drain)
    if repairer is not None:
        repairer.stop()
    deployment.stop_apps()
    swept = {}
    for holder in sorted(pool.holders()):
        report = pool.reclaim(holder)
        swept[holder] = report.reclaimed
    res = node.manager.resilience
    out = {
        "mode": mode,
        "crashes": crashes,
        "pre_goodput_pps": round(pre_goodput, 1),
        "post_goodput_pps": round(post_goodput, 1),
        "recovery_ratio": round(post_goodput / pre_goodput, 4)
        if pre_goodput else 0.0,
        "generated": source.generated,
        "delivered": sink.received,
        "active_bypasses_final": active_bypasses,
        "bypass_restore_seconds": round(bypass_restore_seconds, 3)
        if bypass_restore_seconds is not None else None,
        "pool": {
            "size": pool.size,
            "available_min_sampled": min_available[0],
            "alloc_failures": pool.alloc_failures,
            "alloc_count": pool.alloc_count,
            "free_count_total": pool.free_count_total,
            "in_use_final": pool.in_use,
            "leaked_found_total": pool.leaked_found_total,
            "leaked_permanent": pool.leaked_permanent,
            "double_free_detected": pool.double_free_detected,
            "reclaimed_total": pool.reclaimed_total,
        },
        "quiesce_sweep": swept,
        "resilience": {
            "peer_crashes": res.peer_crashes,
            "mbufs_reclaimed": res.mbufs_reclaimed,
            "crashed_peer_readmissions": res.crashed_peer_readmissions,
            "packets_salvaged": res.packets_salvaged,
            "packets_lost_to_failures":
                node.manager.packets_lost_to_failures,
        },
    }
    if repairer is not None:
        out["repair"] = {
            "crashes_detected": repairer.crashes_detected,
            "repairs_started": repairer.repairs_started,
            "repairs_succeeded": repairer.repairs_succeeded,
            "repairs_failed": repairer.repairs_failed,
            "demotions": repairer.demotions,
            "flows_replayed": repairer.flows_replayed,
            "packets_flushed": repairer.packets_flushed,
        }
    return out


# -- checks -------------------------------------------------------------------


def run_checks(doc):
    """The soak invariants; each returns (name, passed, detail)."""
    quick = bool(doc.get("config", {}).get("quick"))
    rep = doc["scenarios"]["repaired"]
    unrep = doc["scenarios"]["unrepaired"]
    min_cycles = 5 if quick else 20
    checks = [
        ("repaired-recovery-within-5pct",
         rep["recovery_ratio"] >= 0.95,
         "post/pre goodput %.3f (pre %.0f pps, post %.0f pps)"
         % (rep["recovery_ratio"], rep["pre_goodput_pps"],
            rep["post_goodput_pps"])),
        ("unrepaired-chain-collapses",
         unrep["recovery_ratio"] < 0.2,
         "post/pre goodput %.3f" % unrep["recovery_ratio"]),
        ("enough-crash-repair-cycles",
         rep["crashes"] >= min_cycles
         and rep["repair"]["repairs_succeeded"] == rep["crashes"],
         "%d crashes, %d repaired (need >= %d)"
         % (rep["crashes"], rep["repair"]["repairs_succeeded"],
            min_cycles)),
        ("no-pool-exhaustion-while-repaired",
         rep["pool"]["available_min_sampled"] > 0
         and rep["pool"]["alloc_failures"] == 0,
         "min available %d of %d"
         % (rep["pool"]["available_min_sampled"], rep["pool"]["size"])),
        ("zero-leak-repaired",
         rep["pool"]["in_use_final"] == 0
         and rep["pool"]["leaked_permanent"] == 0
         and not rep["quiesce_sweep"],
         "in_use %d, permanent %d, swept %d"
         % (rep["pool"]["in_use_final"],
            rep["pool"]["leaked_permanent"],
            sum(rep["quiesce_sweep"].values()))),
        ("ledger-reclaims-unrepaired-leak",
         unrep["pool"]["in_use_final"] == 0
         and unrep["pool"]["leaked_permanent"] == 0
         and unrep["pool"]["leaked_found_total"] > 0,
         "found %d stranded, swept back %d, in_use %d"
         % (unrep["pool"]["leaked_found_total"],
            unrep["pool"]["reclaimed_total"],
            unrep["pool"]["in_use_final"])),
        ("bypasses-restored",
         rep["active_bypasses_final"] == 4
         and rep["bypass_restore_seconds"] is not None,
         "%d of 4 active, restored in %s s"
         % (rep["active_bypasses_final"],
            rep["bypass_restore_seconds"])),
    ]
    for scenario in (rep, unrep):
        checks.append((
            "pool-conservation-%s" % scenario["mode"],
            scenario["pool"]["alloc_count"]
            == scenario["pool"]["free_count_total"]
            and scenario["pool"]["double_free_detected"] == 0,
            "allocs %d, frees %d, double frees %d"
            % (scenario["pool"]["alloc_count"],
               scenario["pool"]["free_count_total"],
               scenario["pool"]["double_free_detected"]),
        ))
    return checks


# -- schema -------------------------------------------------------------------

REQUIRED_SCENARIO_KEYS = {
    "mode", "crashes", "pre_goodput_pps", "post_goodput_pps",
    "recovery_ratio", "generated", "delivered",
    "active_bypasses_final", "bypass_restore_seconds", "pool",
    "quiesce_sweep", "resilience",
}

REQUIRED_POOL_KEYS = {
    "size", "available_min_sampled", "alloc_failures", "alloc_count",
    "free_count_total", "in_use_final", "leaked_found_total",
    "leaked_permanent", "double_free_detected", "reclaimed_total",
}


def validate(doc):
    """Structural schema check; returns a list of problems (empty = ok)."""
    problems = validate_document(doc, family=FAMILY)
    scenarios = doc.get("scenarios", {})
    for name in ("repaired", "unrepaired"):
        scenario = scenarios.get(name)
        if scenario is None:
            problems.append("missing scenario %s" % name)
            continue
        missing = missing_keys(scenario, REQUIRED_SCENARIO_KEYS)
        if missing:
            problems.append("scenario %s missing %s" % (name, missing))
            continue
        missing = missing_keys(scenario["pool"], REQUIRED_POOL_KEYS)
        if missing:
            problems.append("scenario %s pool missing %s"
                            % (name, missing))
        if name == "repaired" and "repair" not in scenario:
            problems.append("scenario repaired missing repair counters")
    return problems


# -- trends -------------------------------------------------------------------


def trend_metrics(doc):
    rep = doc["scenarios"]["repaired"]
    unrep = doc["scenarios"]["unrepaired"]
    metrics = {
        "repaired_recovery_ratio": rep["recovery_ratio"],
        # The no-repairer control: a *drop* here widens the repairer's
        # benefit, so it must not gate higher-is-better — name it
        # without the "ratio" token to keep it informational.
        "unrepaired_recovery_control": unrep["recovery_ratio"],
        "crashes": rep["crashes"],
    }
    # A never-restored run omits the metric rather than emitting a
    # sentinel: the gate notes missing metrics, while a -1.0 would
    # read as an "improvement" and poison the baseline median.  The
    # restore-happened failure itself is caught by run_checks.
    restore = rep["bypass_restore_seconds"]
    if restore is not None:
        metrics["bypass_restore_seconds"] = restore
    return metrics


# -- driver -------------------------------------------------------------------


def run_bench(quick, seed=None):
    seed = resolve_seed(seed, default=DEFAULT_SEED)
    doc = new_doc(FAMILY, GENERATOR, quick, seed, {
        "quick": quick,
        "seed": seed,
        "rate_pps": RATE_PPS,
        "pool_size": POOL_SIZE,
        "mean_crash_interarrival_s": MEAN_INTERARRIVAL,
        "crash_targets": list(MIDDLE_NFS),
    })
    doc["scenarios"] = {}
    for step, mode in enumerate(("repaired", "unrepaired"), 1):
        print("[%d/2] chaos soak, %s..." % (step, mode), file=sys.stderr)
        doc["scenarios"][mode] = run_scenario(mode, quick, seed)
    return attach_checks(doc, run_checks(doc))
