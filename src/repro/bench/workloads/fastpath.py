"""Fast-path benchmark family: vectorized vs scalar, precise vs
generation-wipe EMC invalidation (formerly ``scripts/bench_baseline.py``).

Runs a small, deterministic set of workloads and produces one schema-v1
document (family tag ``repro-bench-fastpath/1``) recording throughput,
PMD cycles/packet, cache hit rates and flow-batch fill — the numbers
``docs/PERFORMANCE.md`` explains how to read.  The committed
``BENCH_fastpath.json`` at the repo root is the output of a full
(non-quick) run.
"""

import sys

from repro.bench.workloads import (
    attach_checks,
    missing_keys,
    new_doc,
    resolve_seed,
)
from repro.bench.schema import validate_document
from repro.experiments import ChainExperiment
from repro.obs.cycles import seconds_to_cycles
from repro.openflow.actions import OutputAction
from repro.openflow.match import Match
from repro.openflow.table import FlowEntry
from repro.packet.builder import make_udp_packet
from repro.packet.mbuf import Mbuf
from repro.vswitch.vswitchd import VSwitchd

FAMILY = "fastpath"
SCHEMA = "repro-bench-fastpath/1"
GENERATOR = "scripts/bench_baseline.py"
DEFAULT_OUT = "BENCH_fastpath.json"
DEFAULT_SEED = None

LOOKUP_STAGES = ("emc_lookup", "smc_lookup", "megaflow_lookup",
                 "classifier_lookup", "miss_upcall")


# -- measurement helpers ------------------------------------------------------


def pmd_cycles_per_packet(experiment):
    """Busy PMD cycles per switch traversal over the measurement window.

    Busy time comes from the poll loops (the accounting authority; reset
    at warmup end), the packet denominator from the per-core stage
    tables (also reset at warmup end): every packet the switch handles
    passes exactly one lookup stage per traversal.
    """
    report = experiment.node.switch.pmd_cycle_report()
    busy = sum(loop.busy_time for loop in report.loops)
    packets = 0
    for _loop, stages in report.loop_rows():
        if stages is None:
            continue
        for stage in LOOKUP_STAGES:
            packets += stages.packets.get(stage, 0)
    if not packets:
        return 0.0
    return seconds_to_cycles(busy) / packets


def hit_rate(hits, misses):
    total = hits + misses
    return hits / total if total else 0.0


def chain_fastpath(vectorized, duration, flows=64, burst_size=32):
    """One vanilla (all hops through OVS) fig3a-style memory chain."""
    experiment = ChainExperiment(
        num_vms=3, bypass=False, memory_only=True, duration=duration,
        flows=flows, burst_size=burst_size, vectorized=vectorized,
    )
    result = experiment.run()
    datapath = experiment.node.switch.datapath
    return {
        "vectorized": vectorized,
        "flows": flows,
        "burst_size": burst_size,
        "throughput_mpps": round(result.throughput_mpps, 4),
        "cycles_per_packet": round(pmd_cycles_per_packet(experiment), 2),
        "emc_hit_rate": round(datapath.emc.hit_rate, 4),
        "smc_hit_rate": round(datapath.smc.hit_rate, 4),
        "avg_batch_fill": round(datapath.avg_batch_fill, 3),
        "batch_fill_histogram": {
            str(fill): count
            for fill, count in sorted(datapath.batch_fill_counts.items())
        },
        "packets_processed": datapath.packets_processed,
    }


def emc_invalidation_workload(mode, bursts, flows=32, burst_size=32,
                              churn_every=4):
    """Rolling-flowmod workload: steady traffic over ``flows`` UDP flows
    while unrelated rules are added and deleted every ``churn_every``
    bursts.  Precise invalidation keeps the traffic's EMC entries alive
    across the churn; generation wipe loses the whole cache each time.
    """
    switch = VSwitchd(name="bench-emc-%s" % mode)
    switch.datapath.emc_invalidation = mode
    rx = switch.add_dpdkr_port("rx")
    tx = switch.add_dpdkr_port("tx")
    switch.bridge.table.add(FlowEntry(
        Match(in_port=rx.ofport), [OutputAction(tx.ofport)], priority=10,
    ))
    churn_match = Match(in_port=tx.ofport)  # never hit by the traffic
    packets = [make_udp_packet(src_port=5000 + index)
               for index in range(flows)]
    sent = 0
    for burst in range(bursts):
        if burst and burst % churn_every == 0:
            entry = FlowEntry(churn_match, [], priority=5)
            switch.bridge.table.add(entry)
            switch.bridge.table.delete(churn_match, strict=True, priority=5)
        for _ in range(burst_size):
            mbuf = Mbuf()
            mbuf.packet = packets[sent % flows]
            mbuf.wire_length = mbuf.packet.wire_length
            rx.rings.to_switch.enqueue(mbuf)
            sent += 1
        switch.step_dataplane()
        tx.rings.to_guest.dequeue_burst(burst_size)
    emc = switch.datapath.emc
    return {
        "invalidation": mode,
        "flows": flows,
        "bursts": bursts,
        "flowmods": 2 * ((bursts - 1) // churn_every),
        "emc_hit_rate": round(emc.hit_rate, 4),
        "emc_hits": emc.hits,
        "emc_misses": emc.misses,
        "precise_evictions": emc.precise_evictions,
    }


def megaflow_rule_scale_workload(enabled, bursts, extra_rules=64,
                                 burst_size=32, warmup_bursts=4):
    """Rule-heavy tables under EMC-unfriendly flow churn: every packet
    is a brand-new UDP flow (fresh ``l4_src``), so the exact-match tiers
    never amortize anything, while ``extra_rules`` masked filler rules
    outrank the forwarding rule and force every dpcls lookup through
    their subtables first.  With the megaflow cache on, the first
    resolution unwildcards only ``eth_src`` + ``in_port`` — one cached
    aggregate entry then serves every subsequent flow.

    The SMC is disabled here deliberately: the simulated SMC stores no
    key-hash tag, so an ever-new-flow workload would spuriously
    validate colliding hints through the match-all forwarding subtable
    (real OVS tags SMC slots and ships with the SMC off by default).
    Cycles/packet comes from the summed synchronous dataplane cost over
    the post-warmup window.
    """
    switch = VSwitchd(name="bench-mf-%s" % ("on" if enabled else "off"))
    datapath = switch.datapath
    datapath.megaflow_enabled = enabled
    datapath.smc_enabled = False
    rx = switch.add_dpdkr_port("rx")
    tx = switch.add_dpdkr_port("tx")
    table = switch.bridge.table
    # Filler rules over four eth_src mask widths (four subtables), at a
    # priority above the forwarding rule so the ranked probe order
    # visits them all first.  The 0x0A top byte guarantees the traffic
    # (src MAC 02:...) never matches one.
    full = (1 << 48) - 1
    for index in range(extra_rules):
        shift = (0, 8, 16, 24)[index % 4]
        mask = (full << shift) & full
        value = (0x0A_00_00_00_00_00 | index << shift) & mask
        table.add(FlowEntry(
            Match(eth_src=(value, mask)), [], priority=20,
        ))
    table.add(FlowEntry(
        Match(in_port=rx.ofport), [OutputAction(tx.ofport)], priority=10,
    ))
    sent = 0
    measured_cost = 0.0
    baseline = None
    for burst in range(bursts):
        if burst == warmup_bursts:
            baseline = {
                "megaflow_hits": datapath.megaflow_hits,
                "dpcls_lookups": datapath.classifier.lookups,
                "cache_hits": datapath.megaflow.hits,
                "cache_misses": datapath.megaflow.misses,
            }
        for _ in range(burst_size):
            mbuf = Mbuf()
            mbuf.packet = make_udp_packet(src_port=1000 + sent)
            mbuf.wire_length = mbuf.packet.wire_length
            rx.rings.to_switch.enqueue(mbuf)
            sent += 1
        cost = switch.step_dataplane()
        if baseline is not None:
            measured_cost += cost
        tx.rings.to_guest.dequeue_burst(burst_size)
    packets = (bursts - warmup_bursts) * burst_size
    megaflow_hits = datapath.megaflow_hits - baseline["megaflow_hits"]
    dpcls_lookups = (datapath.classifier.lookups
                     - baseline["dpcls_lookups"])
    cache_hits = datapath.megaflow.hits - baseline["cache_hits"]
    cache_misses = datapath.megaflow.misses - baseline["cache_misses"]
    return {
        "megaflow": enabled,
        "extra_rules": extra_rules,
        "bursts": bursts,
        "packets": packets,
        "cycles_per_packet": round(
            seconds_to_cycles(measured_cost) / packets, 2),
        "megaflow_hit_rate": round(hit_rate(cache_hits, cache_misses), 4),
        "megaflow_hits": megaflow_hits,
        "dpcls_lookups": dpcls_lookups,
        "megaflow_entries": len(datapath.megaflow),
        "megaflow_masks": datapath.megaflow.mask_count,
    }


def chain_pair(duration, memory_only, measure):
    out = {}
    for bypass in (False, True):
        result = ChainExperiment(
            num_vms=3 if memory_only else 2, bypass=bypass,
            memory_only=memory_only, duration=duration,
        ).run()
        out["bypass" if bypass else "vanilla"] = measure(result)
    return out


# -- checks -------------------------------------------------------------------


def run_checks(doc):
    """The baseline invariants; each returns (name, passed, detail)."""
    fast = doc["workloads"]["fig3a_fastpath"]
    vec, scalar = fast["vectorized"], fast["scalar"]
    inval = doc["workloads"]["emc_invalidation"]
    fig3b = doc["workloads"]["fig3b_nic_chain"]
    latency = doc["workloads"]["latency_chain"]
    mega = doc["workloads"]["megaflow_rule_scale"]
    checks = [
        ("vectorized_cycles_per_packet_lower",
         vec["cycles_per_packet"] < scalar["cycles_per_packet"],
         "%.2f < %.2f" % (vec["cycles_per_packet"],
                          scalar["cycles_per_packet"])),
        ("vectorized_throughput_not_worse",
         vec["throughput_mpps"] >= scalar["throughput_mpps"],
         "%.4f >= %.4f" % (vec["throughput_mpps"],
                           scalar["throughput_mpps"])),
        ("precise_invalidation_higher_hit_rate",
         inval["precise"]["emc_hit_rate"]
         > inval["generation"]["emc_hit_rate"],
         "%.4f > %.4f" % (inval["precise"]["emc_hit_rate"],
                          inval["generation"]["emc_hit_rate"])),
        ("bypass_beats_vanilla_nic_chain",
         fig3b["bypass"]["throughput_mpps"]
         > fig3b["vanilla"]["throughput_mpps"],
         "%.4f > %.4f" % (fig3b["bypass"]["throughput_mpps"],
                          fig3b["vanilla"]["throughput_mpps"])),
        ("bypass_cuts_latency",
         latency["bypass"]["mean_latency_us"]
         < latency["vanilla"]["mean_latency_us"],
         "%.2f < %.2f" % (latency["bypass"]["mean_latency_us"],
                          latency["vanilla"]["mean_latency_us"])),
        ("megaflow_cycles_per_packet_lower",
         mega["enabled"]["cycles_per_packet"]
         < mega["disabled"]["cycles_per_packet"],
         "%.2f < %.2f (%.1f%% saved)"
         % (mega["enabled"]["cycles_per_packet"],
            mega["disabled"]["cycles_per_packet"],
            100 * (1 - mega["enabled"]["cycles_per_packet"]
                   / max(mega["disabled"]["cycles_per_packet"], 1e-9)))),
        ("megaflow_hits_exceed_dpcls_lookups",
         mega["enabled"]["megaflow_hits"]
         > mega["enabled"]["dpcls_lookups"],
         "%d > %d after warmup"
         % (mega["enabled"]["megaflow_hits"],
            mega["enabled"]["dpcls_lookups"])),
        ("megaflow_covers_aggregate",
         mega["enabled"]["megaflow_hit_rate"] > 0.9
         and mega["enabled"]["megaflow_entries"] <= 4,
         "hit rate %.4f with %d entries"
         % (mega["enabled"]["megaflow_hit_rate"],
            mega["enabled"]["megaflow_entries"])),
    ]
    return checks


# -- schema -------------------------------------------------------------------

REQUIRED_FASTPATH_KEYS = {
    "vectorized", "flows", "burst_size", "throughput_mpps",
    "cycles_per_packet", "emc_hit_rate", "smc_hit_rate",
    "avg_batch_fill", "batch_fill_histogram", "packets_processed",
}
REQUIRED_INVALIDATION_KEYS = {
    "invalidation", "flows", "bursts", "flowmods", "emc_hit_rate",
    "emc_hits", "emc_misses", "precise_evictions",
}
REQUIRED_MEGAFLOW_KEYS = {
    "megaflow", "extra_rules", "bursts", "packets", "cycles_per_packet",
    "megaflow_hit_rate", "megaflow_hits", "dpcls_lookups",
    "megaflow_entries", "megaflow_masks",
}


def validate(doc):
    """Structural schema check; returns a list of problems (empty = ok)."""
    problems = validate_document(doc, family=FAMILY)
    workloads = doc.get("workloads", {})
    for name in ("fig3a_fastpath", "emc_invalidation", "fig3b_nic_chain",
                 "latency_chain", "megaflow_rule_scale"):
        if name not in workloads:
            problems.append("missing workload %s" % name)
    fast = workloads.get("fig3a_fastpath", {})
    for variant in ("vectorized", "scalar"):
        missing = missing_keys(fast.get(variant), REQUIRED_FASTPATH_KEYS)
        if missing:
            problems.append("fig3a_fastpath.%s missing %s"
                            % (variant, missing))
    inval = workloads.get("emc_invalidation", {})
    for variant in ("precise", "generation"):
        missing = missing_keys(inval.get(variant),
                               REQUIRED_INVALIDATION_KEYS)
        if missing:
            problems.append("emc_invalidation.%s missing %s"
                            % (variant, missing))
    for name in ("fig3b_nic_chain", "latency_chain"):
        for variant in ("vanilla", "bypass"):
            if variant not in workloads.get(name, {}):
                problems.append("%s missing %s" % (name, variant))
    mega = workloads.get("megaflow_rule_scale", {})
    for variant in ("enabled", "disabled"):
        missing = missing_keys(mega.get(variant), REQUIRED_MEGAFLOW_KEYS)
        if missing:
            problems.append("megaflow_rule_scale.%s missing %s"
                            % (variant, missing))
    return problems


# -- trends -------------------------------------------------------------------


def trend_metrics(doc):
    """Headline numbers for one ``BENCH_TRENDS.jsonl`` line."""
    fast = doc["workloads"]["fig3a_fastpath"]
    inval = doc["workloads"]["emc_invalidation"]
    fig3b = doc["workloads"]["fig3b_nic_chain"]
    latency = doc["workloads"]["latency_chain"]
    mega = doc["workloads"]["megaflow_rule_scale"]
    return {
        "vec_cycles_per_packet": fast["vectorized"]["cycles_per_packet"],
        "vec_throughput_mpps": fast["vectorized"]["throughput_mpps"],
        "precise_emc_hit_rate": inval["precise"]["emc_hit_rate"],
        "bypass_nic_mpps": fig3b["bypass"]["throughput_mpps"],
        "bypass_latency_us": latency["bypass"]["mean_latency_us"],
        "megaflow_hit_rate": mega["enabled"]["megaflow_hit_rate"],
        "rule_scale_cycles_per_packet":
            mega["enabled"]["cycles_per_packet"],
    }


# -- driver -------------------------------------------------------------------


def run_bench(quick, seed=None):
    chain_duration = 0.001 if quick else 0.003
    churn_bursts = 64 if quick else 256
    rule_scale_bursts = 64 if quick else 512
    doc = new_doc(FAMILY, GENERATOR, quick, resolve_seed(seed), {
        "quick": quick,
        "chain_duration_s": chain_duration,
        "churn_bursts": churn_bursts,
        "rule_scale_bursts": rule_scale_bursts,
    })
    doc["workloads"] = {}
    workloads = doc["workloads"]

    print("[1/5] fig3a memory chain, vectorized vs scalar "
          "(3 VMs, 64 flows, burst 32)...", file=sys.stderr)
    workloads["fig3a_fastpath"] = {
        "vectorized": chain_fastpath(True, chain_duration),
        "scalar": chain_fastpath(False, chain_duration),
    }

    print("[2/5] EMC invalidation under rolling flowmods...",
          file=sys.stderr)
    workloads["emc_invalidation"] = {
        "precise": emc_invalidation_workload("precise", churn_bursts),
        "generation": emc_invalidation_workload("generation", churn_bursts),
    }

    print("[3/5] fig3b NIC chain, bypass vs vanilla...", file=sys.stderr)
    workloads["fig3b_nic_chain"] = chain_pair(
        chain_duration, memory_only=False,
        measure=lambda result: {
            "throughput_mpps": round(result.throughput_mpps, 4),
        },
    )

    print("[4/5] chain latency, bypass vs vanilla...", file=sys.stderr)
    workloads["latency_chain"] = chain_pair(
        chain_duration, memory_only=True,
        measure=lambda result: {
            "mean_latency_us": round(result.mean_latency * 1e6, 3),
        },
    )

    print("[5/5] megaflow rule scale, enabled vs disabled "
          "(64 filler rules, all-new flows)...", file=sys.stderr)
    workloads["megaflow_rule_scale"] = {
        "enabled": megaflow_rule_scale_workload(True, rule_scale_bursts),
        "disabled": megaflow_rule_scale_workload(False, rule_scale_bursts),
    }

    return attach_checks(doc, run_checks(doc))
