"""Fast-path benchmark family: vectorized vs scalar, precise vs
generation-wipe EMC invalidation (formerly ``scripts/bench_baseline.py``).

Runs a small, deterministic set of workloads and produces one schema-v1
document (family tag ``repro-bench-fastpath/1``) recording throughput,
PMD cycles/packet, cache hit rates and flow-batch fill — the numbers
``docs/PERFORMANCE.md`` explains how to read.  The committed
``BENCH_fastpath.json`` at the repo root is the output of a full
(non-quick) run.
"""

import sys

from repro.bench.workloads import (
    attach_checks,
    missing_keys,
    new_doc,
    resolve_seed,
)
from repro.bench.schema import validate_document
from repro.experiments import ChainExperiment
from repro.obs.cycles import seconds_to_cycles
from repro.openflow.actions import OutputAction
from repro.openflow.match import Match
from repro.openflow.table import FlowEntry
from repro.packet.builder import make_udp_packet
from repro.packet.mbuf import Mbuf
from repro.vswitch.vswitchd import VSwitchd

FAMILY = "fastpath"
SCHEMA = "repro-bench-fastpath/1"
GENERATOR = "scripts/bench_baseline.py"
DEFAULT_OUT = "BENCH_fastpath.json"
DEFAULT_SEED = None

LOOKUP_STAGES = ("emc_lookup", "smc_lookup", "classifier_lookup",
                 "miss_upcall")


# -- measurement helpers ------------------------------------------------------


def pmd_cycles_per_packet(experiment):
    """Busy PMD cycles per switch traversal over the measurement window.

    Busy time comes from the poll loops (the accounting authority; reset
    at warmup end), the packet denominator from the per-core stage
    tables (also reset at warmup end): every packet the switch handles
    passes exactly one lookup stage per traversal.
    """
    report = experiment.node.switch.pmd_cycle_report()
    busy = sum(loop.busy_time for loop in report.loops)
    packets = 0
    for _loop, stages in report.loop_rows():
        if stages is None:
            continue
        for stage in LOOKUP_STAGES:
            packets += stages.packets.get(stage, 0)
    if not packets:
        return 0.0
    return seconds_to_cycles(busy) / packets


def hit_rate(hits, misses):
    total = hits + misses
    return hits / total if total else 0.0


def chain_fastpath(vectorized, duration, flows=64, burst_size=32):
    """One vanilla (all hops through OVS) fig3a-style memory chain."""
    experiment = ChainExperiment(
        num_vms=3, bypass=False, memory_only=True, duration=duration,
        flows=flows, burst_size=burst_size, vectorized=vectorized,
    )
    result = experiment.run()
    datapath = experiment.node.switch.datapath
    return {
        "vectorized": vectorized,
        "flows": flows,
        "burst_size": burst_size,
        "throughput_mpps": round(result.throughput_mpps, 4),
        "cycles_per_packet": round(pmd_cycles_per_packet(experiment), 2),
        "emc_hit_rate": round(datapath.emc.hit_rate, 4),
        "smc_hit_rate": round(datapath.smc.hit_rate, 4),
        "avg_batch_fill": round(datapath.avg_batch_fill, 3),
        "batch_fill_histogram": {
            str(fill): count
            for fill, count in sorted(datapath.batch_fill_counts.items())
        },
        "packets_processed": datapath.packets_processed,
    }


def emc_invalidation_workload(mode, bursts, flows=32, burst_size=32,
                              churn_every=4):
    """Rolling-flowmod workload: steady traffic over ``flows`` UDP flows
    while unrelated rules are added and deleted every ``churn_every``
    bursts.  Precise invalidation keeps the traffic's EMC entries alive
    across the churn; generation wipe loses the whole cache each time.
    """
    switch = VSwitchd(name="bench-emc-%s" % mode)
    switch.datapath.emc_invalidation = mode
    rx = switch.add_dpdkr_port("rx")
    tx = switch.add_dpdkr_port("tx")
    switch.bridge.table.add(FlowEntry(
        Match(in_port=rx.ofport), [OutputAction(tx.ofport)], priority=10,
    ))
    churn_match = Match(in_port=tx.ofport)  # never hit by the traffic
    packets = [make_udp_packet(src_port=5000 + index)
               for index in range(flows)]
    sent = 0
    for burst in range(bursts):
        if burst and burst % churn_every == 0:
            entry = FlowEntry(churn_match, [], priority=5)
            switch.bridge.table.add(entry)
            switch.bridge.table.delete(churn_match, strict=True, priority=5)
        for _ in range(burst_size):
            mbuf = Mbuf()
            mbuf.packet = packets[sent % flows]
            mbuf.wire_length = mbuf.packet.wire_length
            rx.rings.to_switch.enqueue(mbuf)
            sent += 1
        switch.step_dataplane()
        tx.rings.to_guest.dequeue_burst(burst_size)
    emc = switch.datapath.emc
    return {
        "invalidation": mode,
        "flows": flows,
        "bursts": bursts,
        "flowmods": 2 * ((bursts - 1) // churn_every),
        "emc_hit_rate": round(emc.hit_rate, 4),
        "emc_hits": emc.hits,
        "emc_misses": emc.misses,
        "precise_evictions": emc.precise_evictions,
    }


def chain_pair(duration, memory_only, measure):
    out = {}
    for bypass in (False, True):
        result = ChainExperiment(
            num_vms=3 if memory_only else 2, bypass=bypass,
            memory_only=memory_only, duration=duration,
        ).run()
        out["bypass" if bypass else "vanilla"] = measure(result)
    return out


# -- checks -------------------------------------------------------------------


def run_checks(doc):
    """The baseline invariants; each returns (name, passed, detail)."""
    fast = doc["workloads"]["fig3a_fastpath"]
    vec, scalar = fast["vectorized"], fast["scalar"]
    inval = doc["workloads"]["emc_invalidation"]
    fig3b = doc["workloads"]["fig3b_nic_chain"]
    latency = doc["workloads"]["latency_chain"]
    checks = [
        ("vectorized_cycles_per_packet_lower",
         vec["cycles_per_packet"] < scalar["cycles_per_packet"],
         "%.2f < %.2f" % (vec["cycles_per_packet"],
                          scalar["cycles_per_packet"])),
        ("vectorized_throughput_not_worse",
         vec["throughput_mpps"] >= scalar["throughput_mpps"],
         "%.4f >= %.4f" % (vec["throughput_mpps"],
                           scalar["throughput_mpps"])),
        ("precise_invalidation_higher_hit_rate",
         inval["precise"]["emc_hit_rate"]
         > inval["generation"]["emc_hit_rate"],
         "%.4f > %.4f" % (inval["precise"]["emc_hit_rate"],
                          inval["generation"]["emc_hit_rate"])),
        ("bypass_beats_vanilla_nic_chain",
         fig3b["bypass"]["throughput_mpps"]
         > fig3b["vanilla"]["throughput_mpps"],
         "%.4f > %.4f" % (fig3b["bypass"]["throughput_mpps"],
                          fig3b["vanilla"]["throughput_mpps"])),
        ("bypass_cuts_latency",
         latency["bypass"]["mean_latency_us"]
         < latency["vanilla"]["mean_latency_us"],
         "%.2f < %.2f" % (latency["bypass"]["mean_latency_us"],
                          latency["vanilla"]["mean_latency_us"])),
    ]
    return checks


# -- schema -------------------------------------------------------------------

REQUIRED_FASTPATH_KEYS = {
    "vectorized", "flows", "burst_size", "throughput_mpps",
    "cycles_per_packet", "emc_hit_rate", "smc_hit_rate",
    "avg_batch_fill", "batch_fill_histogram", "packets_processed",
}
REQUIRED_INVALIDATION_KEYS = {
    "invalidation", "flows", "bursts", "flowmods", "emc_hit_rate",
    "emc_hits", "emc_misses", "precise_evictions",
}


def validate(doc):
    """Structural schema check; returns a list of problems (empty = ok)."""
    problems = validate_document(doc, family=FAMILY)
    workloads = doc.get("workloads", {})
    for name in ("fig3a_fastpath", "emc_invalidation", "fig3b_nic_chain",
                 "latency_chain"):
        if name not in workloads:
            problems.append("missing workload %s" % name)
    fast = workloads.get("fig3a_fastpath", {})
    for variant in ("vectorized", "scalar"):
        missing = missing_keys(fast.get(variant), REQUIRED_FASTPATH_KEYS)
        if missing:
            problems.append("fig3a_fastpath.%s missing %s"
                            % (variant, missing))
    inval = workloads.get("emc_invalidation", {})
    for variant in ("precise", "generation"):
        missing = missing_keys(inval.get(variant),
                               REQUIRED_INVALIDATION_KEYS)
        if missing:
            problems.append("emc_invalidation.%s missing %s"
                            % (variant, missing))
    for name in ("fig3b_nic_chain", "latency_chain"):
        for variant in ("vanilla", "bypass"):
            if variant not in workloads.get(name, {}):
                problems.append("%s missing %s" % (name, variant))
    return problems


# -- trends -------------------------------------------------------------------


def trend_metrics(doc):
    """Headline numbers for one ``BENCH_TRENDS.jsonl`` line."""
    fast = doc["workloads"]["fig3a_fastpath"]
    inval = doc["workloads"]["emc_invalidation"]
    fig3b = doc["workloads"]["fig3b_nic_chain"]
    latency = doc["workloads"]["latency_chain"]
    return {
        "vec_cycles_per_packet": fast["vectorized"]["cycles_per_packet"],
        "vec_throughput_mpps": fast["vectorized"]["throughput_mpps"],
        "precise_emc_hit_rate": inval["precise"]["emc_hit_rate"],
        "bypass_nic_mpps": fig3b["bypass"]["throughput_mpps"],
        "bypass_latency_us": latency["bypass"]["mean_latency_us"],
    }


# -- driver -------------------------------------------------------------------


def run_bench(quick, seed=None):
    chain_duration = 0.001 if quick else 0.003
    churn_bursts = 64 if quick else 256
    doc = new_doc(FAMILY, GENERATOR, quick, resolve_seed(seed), {
        "quick": quick,
        "chain_duration_s": chain_duration,
        "churn_bursts": churn_bursts,
    })
    doc["workloads"] = {}
    workloads = doc["workloads"]

    print("[1/4] fig3a memory chain, vectorized vs scalar "
          "(3 VMs, 64 flows, burst 32)...", file=sys.stderr)
    workloads["fig3a_fastpath"] = {
        "vectorized": chain_fastpath(True, chain_duration),
        "scalar": chain_fastpath(False, chain_duration),
    }

    print("[2/4] EMC invalidation under rolling flowmods...",
          file=sys.stderr)
    workloads["emc_invalidation"] = {
        "precise": emc_invalidation_workload("precise", churn_bursts),
        "generation": emc_invalidation_workload("generation", churn_bursts),
    }

    print("[3/4] fig3b NIC chain, bypass vs vanilla...", file=sys.stderr)
    workloads["fig3b_nic_chain"] = chain_pair(
        chain_duration, memory_only=False,
        measure=lambda result: {
            "throughput_mpps": round(result.throughput_mpps, 4),
        },
    )

    print("[4/4] chain latency, bypass vs vanilla...", file=sys.stderr)
    workloads["latency_chain"] = chain_pair(
        chain_duration, memory_only=True,
        measure=lambda result: {
            "mean_latency_us": round(result.mean_latency * 1e6, 3),
        },
    )

    return attach_checks(doc, run_checks(doc))
