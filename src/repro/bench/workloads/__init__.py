"""Benchmark workload modules.

Each module owns one benchmark family — the measurement code that used
to live in ``scripts/bench_*.py`` — behind a uniform interface the
shared driver (:mod:`repro.bench.cli`) and the scenario matrix
(:mod:`repro.bench.scenarios`) consume:

``FAMILY``/``SCHEMA``/``GENERATOR``/``DEFAULT_OUT``
    identity: family tag, schema string, producing script, output path;
``run_bench(quick, seed=None) -> doc``
    run the measurements and return a schema-v1 document;
``run_checks(doc)``
    the family's pass/fail invariants;
``validate(doc)``
    base schema validation plus the family payload shape;
``trend_metrics(doc) -> {name: number}``
    the headline numbers one ``BENCH_TRENDS.jsonl`` line carries.
"""

import importlib
import os
from typing import Any, Dict, List, Optional

from repro.bench.schema import SCHEMA_VERSION, run_meta

FAMILIES = ("fastpath", "sched", "overload", "chaos")


def get(family: str):
    """The workload module for one family."""
    if family not in FAMILIES:
        raise KeyError("unknown benchmark family %r (know: %s)"
                       % (family, ", ".join(FAMILIES)))
    return importlib.import_module("repro.bench.workloads.%s" % family)


def by_schema_tag(tag: Any):
    """Resolve ``repro-bench-<family>/<v>`` to its workload module, or
    ``None`` for an unknown/foreign tag."""
    if not isinstance(tag, str) or "/" not in tag:
        return None
    family = tag.split("/", 1)[0]
    if not family.startswith("repro-bench-"):
        return None
    family = family[len("repro-bench-"):]
    return get(family) if family in FAMILIES else None


def resolve_seed(seed: Optional[int],
                 default: Optional[int] = None) -> Optional[int]:
    """The fault seed to stamp: explicit wins, then the CI sweep's
    ``REPRO_FAULT_SEED``, then the family default."""
    if seed is not None:
        return seed
    env = os.environ.get("REPRO_FAULT_SEED")
    if env:
        try:
            return int(env)
        except ValueError:
            pass
    return default


def new_doc(family: str, generator: str, quick: bool,
            seed: Optional[int],
            config: Dict[str, Any]) -> Dict[str, Any]:
    """The schema-v1 skeleton every workload document starts from."""
    return {
        "schema": "repro-bench-%s/%d" % (family, SCHEMA_VERSION),
        "schema_version": SCHEMA_VERSION,
        "meta": run_meta(generator, seed=seed, quick=quick),
        "config": config,
    }


def attach_checks(doc: Dict[str, Any], checks) -> Dict[str, Any]:
    doc["checks"] = [
        {"name": name, "passed": passed, "detail": detail}
        for name, passed, detail in checks
    ]
    return doc


def missing_keys(mapping: Any, required) -> List[str]:
    if not isinstance(mapping, dict):
        return sorted(required)
    return sorted(set(required) - set(mapping))
