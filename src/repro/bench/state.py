"""Benchmark run state for the management plane.

:class:`BenchState` is the live record the appctl surface serves:
``bench/last`` prints the most recent scenario results this process
produced (headline metrics plus check outcomes), ``bench/trends``
prints the tail of the on-disk trend file.  The matrix driver
(:mod:`repro.bench.cli`) records into one; an embedding process can
hand its own to :class:`~repro.vswitch.appctl.AppCtl`.
"""

import os
from typing import Any, Dict, List, Optional

from repro.bench.schema import (
    TRENDS_BASENAME,
    checks_passed,
    read_trend_lines,
    tail_by_scenario,
)


class BenchState:
    """What the benchmark subsystem last did, queryable via appctl."""

    def __init__(self, trends_path: Optional[str] = None) -> None:
        self.trends_path = trends_path
        #: scenario name -> its most recent document, insertion-ordered.
        self.last_runs: Dict[str, Dict[str, Any]] = {}

    # -- recording ------------------------------------------------------------

    def record(self, scenario: str, doc: Dict[str, Any]) -> None:
        """Remember one finished scenario run (latest wins)."""
        self.last_runs.pop(scenario, None)
        self.last_runs[scenario] = doc

    # -- appctl text surfaces -------------------------------------------------

    def last_report(self) -> str:
        """``bench/last``: every scenario recorded this process, newest
        last, with its headline metrics and failed checks."""
        if not self.last_runs:
            return "no benchmark runs recorded"
        lines: List[str] = []
        for scenario, doc in self.last_runs.items():
            meta = doc.get("meta", {})
            status = "PASS" if checks_passed(doc) else "FAIL"
            lines.append("%-24s %s  (%s, sha %.12s)" % (
                scenario, status,
                "quick" if meta.get("quick") else "full",
                meta.get("git_sha", "unknown"),
            ))
            for key, value in sorted(doc.get("trend", {}).items()):
                lines.append("  %-30s %g" % (key, value))
            for check in doc.get("checks", []):
                if not check.get("passed"):
                    lines.append("  FAILED %s: %s" % (
                        check.get("name"), check.get("detail")))
        return "\n".join(lines)

    def trends_report(self, scenario: Optional[str] = None,
                      window: int = 5) -> str:
        """``bench/trends``: the tail of the trend file, per scenario."""
        path = self.trends_path or TRENDS_BASENAME
        if not os.path.exists(path):
            return "no trend file at %s" % path
        try:
            all_lines = read_trend_lines(path)
        except ValueError as exc:
            return "trend file %s unreadable: %s" % (path, exc)
        scenarios = ([scenario] if scenario
                     else sorted({line.get("scenario")
                                  for line in all_lines
                                  if line.get("scenario")}))
        out: List[str] = []
        for name in scenarios:
            tail = tail_by_scenario(all_lines, name, window=window)
            if not tail:
                out.append("%s: no history" % name)
                continue
            out.append("%s (%d of %d run(s)):"
                       % (name, len(tail),
                          sum(1 for line in all_lines
                              if line.get("scenario") == name)))
            for line in tail:
                out.append("  sha %.12s %s %s  %s" % (
                    line.get("git_sha", "unknown"),
                    "quick" if line.get("quick") else "full",
                    "pass" if line.get("checks_passed") else "FAIL",
                    " ".join("%s=%g" % (key, value) for key, value
                             in sorted(line.get("metrics", {}).items())),
                ))
        return "\n".join(out) if out else "no trend lines"
