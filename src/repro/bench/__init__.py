"""``repro.bench``: the standard benchmark subsystem.

One RFC2544-style harness (:mod:`repro.bench.harness`), a scenario
matrix over it (:mod:`repro.bench.scenarios`), a single versioned
results schema every benchmark document carries
(:mod:`repro.bench.schema`), and the per-PR trend file the regression
gate checks (``BENCH_TRENDS.jsonl``; ``scripts/bench_gate.py``).

Run the whole matrix::

    python -m repro.bench --matrix quick

The four ``scripts/bench_*.py`` entry points are thin wrappers over the
workload modules in :mod:`repro.bench.workloads`.
"""

from repro.bench.harness import (
    ChainLoadRunner,
    OfferedPoint,
    Rfc2544Harness,
    SearchResult,
)
from repro.bench.schema import (
    SCHEMA_VERSION,
    make_trend_line,
    run_meta,
    validate_document,
    validate_trend_line,
)
from repro.bench.scenarios import SCENARIOS, get_scenario, run_scenario
from repro.bench.state import BenchState

__all__ = [
    "BenchState",
    "ChainLoadRunner",
    "OfferedPoint",
    "Rfc2544Harness",
    "SCENARIOS",
    "SCHEMA_VERSION",
    "SearchResult",
    "get_scenario",
    "make_trend_line",
    "run_meta",
    "run_scenario",
    "validate_document",
    "validate_trend_line",
]
