"""RFC2544-style measurement harness.

The methodology of "Performance Benchmarking of State-of-the-Art
Software Switches for NFV": for one device-under-test configuration,

* **throughput at zero loss** — binary-search the highest offered load
  the DUT forwards without dropping a single frame (RFC 2544 §26.1,
  with a configurable loss tolerance for the lossy variants);
* **latency percentiles** — p50/p95/p99/p99.9 from the latency
  reservoirs (:class:`~repro.metrics.latency.LatencyRecorder`), never
  just a mean;
* **offered-vs-loss curves** — the loss fraction at each point of an
  offered-load sweep, the shape Fig. 3 summarises.

The harness is generic over a *runner*: any callable mapping an
offered load (pps) to an :class:`OfferedPoint`.  The production runner
is :class:`ChainLoadRunner`, which builds a fresh, deterministic
:class:`~repro.experiments.chain.ChainExperiment` per measurement and
uses its drain-mode conservation totals (every offered frame is either
delivered or genuinely lost — no in-flight ambiguity).  Tests inject
synthetic runners.

Every measurement also lands in a ``repro_bench_*`` metric family on
the harness's registry, so benchmark progress scrapes exactly like any
other part of the observability plane.
"""

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.metrics.latency import LatencyRecorder
from repro.obs.registry import MetricsRegistry

#: The quantiles every latency summary reports.
LATENCY_QUANTILES = (
    ("p50", 0.50),
    ("p95", 0.95),
    ("p99", 0.99),
    ("p999", 0.999),
)


def latency_summary_us(recorders: Sequence[Optional[LatencyRecorder]]
                       ) -> Dict[str, float]:
    """Merge recorders and report microsecond latency percentiles."""
    merged = LatencyRecorder()
    for recorder in recorders:
        if recorder is not None:
            merged.merge(recorder)
    if not merged.count:
        return {"count": 0}
    fractions = [fraction for _name, fraction in LATENCY_QUANTILES]
    quantiles = merged.percentiles(fractions)
    out = {
        "count": merged.count,
        "mean_us": round(merged.mean * 1e6, 3),
        "min_us": round(merged.min_value * 1e6, 3),
        "max_us": round(merged.max_value * 1e6, 3),
    }
    for (name, _fraction), value in zip(LATENCY_QUANTILES, quantiles):
        out["%s_us" % name] = round(value * 1e6, 3)
    return out


@dataclass(frozen=True)
class OfferedPoint:
    """One measurement: what happened at one offered load."""

    offered_pps: float
    duration: float                  # measurement window, simulated s
    sent: int                        # offered frames (incl. TX rejects)
    delivered: int
    throughput_mpps: float           # window throughput, both directions
    latency_us: Dict[str, float] = field(default_factory=dict)

    @property
    def lost(self) -> int:
        return max(0, self.sent - self.delivered)

    @property
    def loss_fraction(self) -> float:
        return self.lost / self.sent if self.sent else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "offered_pps": round(self.offered_pps, 1),
            "duration_s": self.duration,
            "sent": self.sent,
            "delivered": self.delivered,
            "lost": self.lost,
            "loss_fraction": round(self.loss_fraction, 6),
            "throughput_mpps": round(self.throughput_mpps, 4),
            "latency_us": self.latency_us,
        }


@dataclass
class SearchResult:
    """Outcome of one zero-loss binary search."""

    zero_loss_pps: float             # highest passing offered load
    converged: bool                  # bracket narrowed below resolution
    iterations: int
    lo_pps: float                    # last passing load (== zero_loss)
    hi_pps: float                    # lowest failing load seen
    points: List[OfferedPoint] = field(default_factory=list)

    @property
    def zero_loss_mpps(self) -> float:
        return self.zero_loss_pps / 1e6

    def as_dict(self) -> Dict[str, object]:
        return {
            "zero_loss_pps": round(self.zero_loss_pps, 1),
            "zero_loss_mpps": round(self.zero_loss_mpps, 4),
            "converged": self.converged,
            "iterations": self.iterations,
            "lo_pps": round(self.lo_pps, 1),
            "hi_pps": round(self.hi_pps, 1),
            "points": [point.as_dict() for point in self.points],
        }


class Rfc2544Harness:
    """Drives a runner through searches and sweeps, recording metrics.

    ``loss_tolerance`` is the acceptable loss fraction for a "passing"
    trial (0.0 = strict RFC 2544 zero loss); ``resolution`` is the
    relative bracket width at which the search stops.
    """

    def __init__(
        self,
        runner: Callable[[float], OfferedPoint],
        loss_tolerance: float = 0.0,
        resolution: float = 0.05,
        max_iterations: int = 12,
        registry: Optional[MetricsRegistry] = None,
        scenario: str = "adhoc",
    ) -> None:
        if not 0.0 <= loss_tolerance < 1.0:
            raise ValueError("loss_tolerance must be in [0, 1)")
        if not 0.0 < resolution < 1.0:
            raise ValueError("resolution must be in (0, 1)")
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        self.runner = runner
        self.loss_tolerance = loss_tolerance
        self.resolution = resolution
        self.max_iterations = max_iterations
        self.scenario = scenario
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self.measurements = 0
        reg = self.registry
        self._m_measurements = reg.counter(
            "repro_bench_measurements_total",
            "Offered-load trials run by the RFC2544 harness",
            labels=("scenario",),
        )
        self._m_offered = reg.gauge(
            "repro_bench_offered_pps",
            "Offered load of the most recent trial",
            labels=("scenario",),
        )
        self._m_delivered = reg.gauge(
            "repro_bench_delivered_pps",
            "Delivery rate of the most recent trial",
            labels=("scenario",),
        )
        self._m_loss = reg.gauge(
            "repro_bench_loss_fraction",
            "Loss fraction of the most recent trial",
            labels=("scenario",),
        )
        self._m_latency = reg.gauge(
            "repro_bench_latency_us",
            "Latency quantiles of the most recent trial",
            labels=("scenario", "quantile"),
        )
        self._m_zero_loss = reg.gauge(
            "repro_bench_zero_loss_pps",
            "Result of the most recent zero-loss search",
            labels=("scenario",),
        )
        self._m_iterations = reg.gauge(
            "repro_bench_search_iterations",
            "Trials the most recent zero-loss search needed",
            labels=("scenario",),
        )

    # -- single trial ---------------------------------------------------------

    def measure(self, offered_pps: float) -> OfferedPoint:
        if offered_pps <= 0:
            raise ValueError("offered_pps must be positive")
        point = self.runner(offered_pps)
        self.measurements += 1
        scenario = self.scenario
        self._m_measurements.labels(scenario).inc()
        self._m_offered.labels(scenario).set(point.offered_pps)
        self._m_delivered.labels(scenario).set(
            point.throughput_mpps * 1e6)
        self._m_loss.labels(scenario).set(point.loss_fraction)
        for name, _fraction in LATENCY_QUANTILES:
            value = point.latency_us.get("%s_us" % name)
            if value is not None:
                self._m_latency.labels(scenario, name).set(value)
        return point

    def passes(self, point: OfferedPoint) -> bool:
        return point.loss_fraction <= self.loss_tolerance

    # -- RFC 2544 §26.1 -------------------------------------------------------

    def zero_loss_search(self, min_pps: float,
                         max_pps: float) -> SearchResult:
        """Binary-search the highest offered load with acceptable loss.

        The bracket invariant: ``lo`` always passed, ``hi`` always
        failed.  If even ``max_pps`` passes, the DUT's capacity exceeds
        the search range and ``max_pps`` is returned (converged); if
        even ``min_pps`` fails, the result is 0 (not converged).
        """
        if not 0 < min_pps < max_pps:
            raise ValueError("need 0 < min_pps < max_pps")
        points: List[OfferedPoint] = []

        def trial(pps: float) -> OfferedPoint:
            point = self.measure(pps)
            points.append(point)
            return point

        top = trial(max_pps)
        if self.passes(top):
            result = SearchResult(
                zero_loss_pps=max_pps, converged=True,
                iterations=len(points), lo_pps=max_pps,
                hi_pps=max_pps, points=points,
            )
            return self._finish_search(result)
        bottom = trial(min_pps)
        if not self.passes(bottom):
            result = SearchResult(
                zero_loss_pps=0.0, converged=False,
                iterations=len(points), lo_pps=0.0, hi_pps=min_pps,
                points=points,
            )
            return self._finish_search(result)
        lo, hi = min_pps, max_pps
        while (hi - lo) > self.resolution * hi \
                and len(points) < self.max_iterations:
            mid = (lo + hi) / 2.0
            if self.passes(trial(mid)):
                lo = mid
            else:
                hi = mid
        result = SearchResult(
            zero_loss_pps=lo,
            converged=(hi - lo) <= self.resolution * hi,
            iterations=len(points), lo_pps=lo, hi_pps=hi,
            points=points,
        )
        return self._finish_search(result)

    def _finish_search(self, result: SearchResult) -> SearchResult:
        self._m_zero_loss.labels(self.scenario).set(result.zero_loss_pps)
        self._m_iterations.labels(self.scenario).set(result.iterations)
        return result

    # -- offered-vs-loss curve ------------------------------------------------

    def loss_curve(self, offered_loads: Sequence[float]
                   ) -> List[OfferedPoint]:
        """Measure each offered load, ascending, for a loss curve."""
        return [self.measure(pps) for pps in sorted(offered_loads)]


class ChainLoadRunner:
    """Maps offered load to an :class:`OfferedPoint` via a fresh
    memory-only :class:`~repro.experiments.chain.ChainExperiment`.

    The offered load is split evenly over the chain's two directions;
    loss comes from the experiment's drained conservation totals, so a
    frame counts as lost only when it truly never reached a sink.
    """

    def __init__(
        self,
        num_vms: int = 3,
        bypass: bool = True,
        duration: float = 0.002,
        drain: Optional[float] = None,
        frame_size: int = 64,
        flows: int = 4,
        profile=None,
        extra_rules: int = 0,
        churn_hz: float = 0.0,
        n_ovs_cores: int = 2,
        burst_size: int = 32,
        **experiment_kwargs,
    ) -> None:
        self.num_vms = num_vms
        self.bypass = bypass
        self.duration = duration
        self.drain = drain if drain is not None else max(
            duration, 0.001)
        self.frame_size = frame_size
        self.flows = flows
        self.profile = profile
        self.extra_rules = extra_rules
        self.churn_hz = churn_hz
        self.n_ovs_cores = n_ovs_cores
        self.burst_size = burst_size
        self.experiment_kwargs = experiment_kwargs
        self.last_experiment = None

    def __call__(self, offered_pps: float) -> OfferedPoint:
        from repro.experiments.chain import ChainExperiment

        experiment = ChainExperiment(
            num_vms=self.num_vms,
            bypass=self.bypass,
            memory_only=True,
            frame_size=self.frame_size,
            duration=self.duration,
            flows=self.flows,
            source_rate_pps=offered_pps / 2.0,
            burst_size=self.burst_size,
            n_ovs_cores=self.n_ovs_cores,
            profile=self.profile,
            extra_rules=self.extra_rules,
            churn_hz=self.churn_hz,
            **self.experiment_kwargs,
        )
        result = experiment.run(drain=self.drain)
        self.last_experiment = experiment
        return OfferedPoint(
            offered_pps=offered_pps,
            duration=result.duration,
            sent=result.offered_total,
            delivered=result.delivered_total,
            throughput_mpps=result.throughput_mpps,
            latency_us=latency_summary_us(
                [result.latency_forward, result.latency_reverse]
            ),
        )
