"""Command-line drivers for the benchmark subsystem.

Two entry points share this module:

* :func:`script_main` backs the four thin ``scripts/bench_*.py``
  wrappers, keeping their historical interface
  (``--out/--quick/--seed/--check/--validate``) while all measurement
  code lives in :mod:`repro.bench.workloads`;
* :func:`bench_main` is ``python -m repro.bench``: run the scenario
  matrix (or a subset), write one schema-v1 JSON document per scenario,
  append one trend line per scenario to ``BENCH_TRENDS.jsonl``, and
  optionally dump the harness's ``repro_bench_*`` metrics in Prometheus
  text format.
"""

import argparse
import json
import os
import sys
from typing import Optional

from repro.bench.schema import (
    TRENDS_BASENAME,
    append_trend_line,
    checks_passed,
    make_trend_line,
    validate_document,
    validate_trend_file,
)


def _write_doc(path: str, doc) -> None:
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _print_checks(doc) -> None:
    for check in doc["checks"]:
        status = "PASS" if check["passed"] else "FAIL"
        print("  %-40s %s  (%s)" % (check["name"], status,
                                    check["detail"]))


# -- legacy script driver -----------------------------------------------------


def script_main(family: str, argv=None) -> int:
    """The shared main() of one ``scripts/bench_<family>.py`` wrapper."""
    from repro.bench import workloads

    module = workloads.get(family)
    parser = argparse.ArgumentParser(
        description=(module.__doc__ or "").strip().splitlines()[0])
    parser.add_argument("--out", default=module.DEFAULT_OUT,
                        help="output JSON path (default: %(default)s)")
    parser.add_argument("--quick", action="store_true",
                        help="reduced sizing (CI smoke)")
    parser.add_argument("--seed", type=int, default=None,
                        help="fault/chaos seed override (default: "
                             "REPRO_FAULT_SEED, then %s)"
                        % module.DEFAULT_SEED)
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero if an invariant fails")
    parser.add_argument("--validate", metavar="PATH",
                        help="schema-check an existing document and exit")
    args = parser.parse_args(argv)

    if args.validate:
        with open(args.validate) as handle:
            doc = json.load(handle)
        problems = module.validate(doc)
        for problem in problems:
            print("INVALID: %s" % problem, file=sys.stderr)
        print("%s: %s" % (args.validate,
                          "invalid" if problems
                          else "valid (%s)" % module.SCHEMA))
        return 1 if problems else 0

    doc = module.run_bench(args.quick, seed=args.seed)
    problems = module.validate(doc)
    if problems:  # the generator must always satisfy its own schema
        for problem in problems:
            print("INTERNAL SCHEMA ERROR: %s" % problem, file=sys.stderr)
        return 2
    _write_doc(args.out, doc)
    print("wrote %s" % args.out)
    _print_checks(doc)
    if args.check and not checks_passed(doc):
        return 1
    return 0


# -- scenario matrix driver ---------------------------------------------------


def bench_main(argv=None) -> int:
    from repro.bench import scenarios as scenarios_mod
    from repro.bench.scenarios import SCENARIOS, run_scenario
    from repro.bench.state import BenchState
    from repro.obs.export import prometheus_text
    from repro.obs.registry import MetricsRegistry

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="run the benchmark scenario matrix")
    parser.add_argument("--matrix", choices=("quick", "full"),
                        help="run every scenario in this sizing")
    parser.add_argument("--scenarios", action="append", default=[],
                        metavar="NAME[,NAME...]",
                        help="run only these scenarios (repeatable)")
    parser.add_argument("--quick", action="store_true",
                        help="with --scenarios: smoke sizing")
    parser.add_argument("--list", action="store_true",
                        help="list scenarios and exit")
    parser.add_argument("--seed", type=int, default=None,
                        help="fault/chaos seed override")
    parser.add_argument("--out-dir", default=".",
                        help="directory for per-scenario JSON documents "
                             "(default: %(default)s)")
    parser.add_argument("--trends", default=None, metavar="PATH",
                        help="trend file to append to (default: "
                             "<out-dir>/%s)" % TRENDS_BASENAME)
    parser.add_argument("--no-trends", action="store_true",
                        help="do not append trend lines")
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="also write the harness registry in "
                             "Prometheus text format")
    parser.add_argument("--megaflow", dest="megaflow",
                        action="store_true", default=True,
                        help="keep the megaflow cache tier on (default)")
    parser.add_argument("--no-megaflow", dest="megaflow",
                        action="store_false",
                        help="ablate the megaflow cache tier in the "
                             "scenarios that honor it (rule_scale)")
    args = parser.parse_args(argv)

    if args.list:
        for scenario in SCENARIOS.values():
            print("%-24s [%s] %s" % (scenario.name, scenario.family,
                                     scenario.title))
        return 0

    names = []
    for chunk in args.scenarios:
        names.extend(name.strip() for name in chunk.split(",")
                     if name.strip())
    if args.matrix and names:
        parser.error("--matrix and --scenarios are mutually exclusive")
    if not args.matrix and not names:
        parser.error("pick --matrix quick|full, --scenarios ..., "
                     "or --list")
    if args.matrix:
        names = list(SCENARIOS)
        quick = args.matrix == "quick"
    else:
        quick = args.quick
    unknown = [name for name in names if name not in SCENARIOS]
    if unknown:
        parser.error("unknown scenario(s): %s (see --list)"
                     % ", ".join(unknown))

    scenarios_mod.MEGAFLOW_ENABLED = args.megaflow
    os.makedirs(args.out_dir, exist_ok=True)
    trends_path = args.trends or os.path.join(args.out_dir,
                                              TRENDS_BASENAME)
    registry = MetricsRegistry()
    state = BenchState(trends_path=trends_path)
    failures = 0
    for index, name in enumerate(names, 1):
        scenario = SCENARIOS[name]
        print("=== [%d/%d] %s (%s) ===" % (index, len(names), name,
                                           "quick" if quick else "full"),
              file=sys.stderr)
        doc = run_scenario(name, quick=quick, seed=args.seed,
                           registry=registry)
        problems = validate_document(doc)
        if problems:
            for problem in problems:
                print("INTERNAL SCHEMA ERROR [%s]: %s"
                      % (name, problem), file=sys.stderr)
            return 2
        out_path = os.path.join(args.out_dir,
                                "BENCH_scenario_%s.json" % name)
        _write_doc(out_path, doc)
        state.record(name, doc)
        passed = checks_passed(doc)
        if not passed:
            failures += 1
        print("wrote %s" % out_path)
        _print_checks(doc)
        if not args.no_trends:
            append_trend_line(trends_path, make_trend_line(
                name, scenario.family, doc.get("trend", {}),
                doc["meta"], passed,
            ))
    if not args.no_trends:
        problems = validate_trend_file(trends_path)
        if problems:
            for problem in problems:
                print("TREND FILE ERROR: %s" % problem, file=sys.stderr)
            return 2
        print("appended %d trend line(s) to %s" % (len(names),
                                                   trends_path))
    if args.metrics_out:
        with open(args.metrics_out, "w") as handle:
            handle.write(prometheus_text(registry))
        print("wrote %s" % args.metrics_out)
    print(state.last_report())
    return 1 if failures else 0
