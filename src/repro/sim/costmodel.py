"""Calibrated per-operation costs (the testbed stand-in).

All values are in seconds unless suffixed otherwise.  They are chosen to
sit in the ranges published for OVS-DPDK on Ivy Bridge-era Xeons (the
paper used an E5-2690 v2 @ 3 GHz with Intel 82599ES 10 G NICs) and are
the *only* knobs the performance experiments depend on; see DESIGN.md §6
for the rationale behind each number.
"""

from dataclasses import dataclass, replace

NS = 1e-9
US = 1e-6
MS = 1e-3


@dataclass(frozen=True)
class CostModel:
    """Per-operation costs consumed by poll loops and control flows."""

    # --- vSwitch datapath, per packet -----------------------------------
    # Datapath lookup + action execution on the OVS PMD core.  Lookup
    # costs are charged once per *flow batch* on the vectorized path
    # (every packet of the batch shares the resolution) and once per
    # packet on the scalar path.
    ovs_emc_hit: float = 70 * NS
    ovs_smc_hit: float = 110 * NS     # signature hit + subtable verify
    ovs_megaflow_hit: float = 160 * NS  # masked probe, no revalidation
    ovs_classifier_hit: float = 250 * NS
    ovs_miss_upcall: float = 50 * US
    # Action execution.  Applying the actions to a packet (header
    # writes, moving the mbuf to its output batch) is inherently
    # per-packet on both paths; what vectorization amortizes is the
    # action-*list* construction: the scalar path rebuilds and
    # dispatches it per packet, the batched path builds it once per
    # flow batch.
    ovs_action_per_packet: float = 45 * NS   # both paths, per packet
    ovs_scalar_dispatch: float = 50 * NS     # scalar path, per packet
    ovs_batch_action: float = 40 * NS        # batched path, per batch
    # Bounded upcall path: the fast-path side of a miss is an enqueue
    # (or an accounted shed) instead of the full 50 us slow path, which
    # is charged per dispatched upcall at the end of the iteration.
    upcall_enqueue: float = 300 * NS
    upcall_shed: float = 120 * NS

    # --- rings / memory, per packet ---------------------------------------
    ring_op: float = 18 * NS          # enqueue or dequeue, burst-amortized
    vm_forward: float = 45 * NS       # guest app: rx + touch + tx
    bypass_stats_update: float = 4 * NS  # shared-memory counter bump

    # --- per poll-iteration fixed overhead --------------------------------
    burst_overhead: float = 120 * NS
    idle_poll: float = 250 * NS       # cost of polling an empty ring

    # --- NIC / PCIe ----------------------------------------------------------
    nic_pmd_rx: float = 30 * NS       # host per-packet cost to rx from NIC
    nic_pmd_tx: float = 30 * NS

    # --- control plane ------------------------------------------------------
    flowmod_processing: float = 120 * US
    detector_analysis: float = 40 * US
    agent_rpc: float = 8 * MS         # OVS -> compute agent request
    ivshmem_hotplug: float = 55 * MS  # QEMU device_add + guest PCI scan
    virtio_serial_rtt: float = 18 * MS  # PMD reconfiguration round trip
    qemu_monitor_cmd: float = 2 * MS
    stats_shared_read: float = 5 * US

    def scaled(self, factor: float) -> "CostModel":
        """A model with every data-path cost multiplied by ``factor``.

        Used by sensitivity ablations to check that who-wins conclusions
        do not hinge on the absolute calibration.
        """
        return replace(
            self,
            ovs_emc_hit=self.ovs_emc_hit * factor,
            ovs_smc_hit=self.ovs_smc_hit * factor,
            ovs_megaflow_hit=self.ovs_megaflow_hit * factor,
            ovs_classifier_hit=self.ovs_classifier_hit * factor,
            ovs_action_per_packet=self.ovs_action_per_packet * factor,
            ovs_scalar_dispatch=self.ovs_scalar_dispatch * factor,
            ovs_batch_action=self.ovs_batch_action * factor,
            upcall_enqueue=self.upcall_enqueue * factor,
            upcall_shed=self.upcall_shed * factor,
            ring_op=self.ring_op * factor,
            vm_forward=self.vm_forward * factor,
            bypass_stats_update=self.bypass_stats_update * factor,
            burst_overhead=self.burst_overhead * factor,
            idle_poll=self.idle_poll * factor,
            nic_pmd_rx=self.nic_pmd_rx * factor,
            nic_pmd_tx=self.nic_pmd_tx * factor,
        )


DEFAULT_COST_MODEL = CostModel()
