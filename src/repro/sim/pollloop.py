"""PollLoop: the shape of every busy-polling core in the system.

OVS PMD threads and in-guest DPDK application loops are all instances of
the same pattern: run one *iteration* of functional work, learn how much
simulated time that work cost, sleep for that cost, repeat.  An iteration
that did nothing sleeps for the idle-poll cost instead, so an idle core
consumes time without consuming packets — which is also what keeps the
event queue finite.
"""

from typing import Callable, Optional

from repro.sim.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.sim.engine import Environment, Interrupt, Process


class PollLoop:
    """Drives ``iteration()`` forever on its own simulated core.

    ``iteration`` returns the simulated cost (seconds) of the work it just
    performed, or 0.0 when there was nothing to do.  The loop accounts
    busy/idle time so experiments can report core utilization.

    With ``period`` set the loop is a fixed-interval housekeeping timer
    instead of a busy-poller: iterations fire every ``period`` seconds
    (stretched, never compressed, by a busy iteration's cost) and idle
    iterations neither back off nor spin faster.  The bypass watchdog is
    the canonical user — a real deployment would run it off the manager
    thread's timerfd, not a polling core.
    """

    def __init__(
        self,
        env: Environment,
        name: str,
        iteration: Callable[[], float],
        costs: CostModel = DEFAULT_COST_MODEL,
        idle_backoff_max: float = 5e-6,
        period: Optional[float] = None,
    ) -> None:
        self.env = env
        self.name = name
        self.iteration = iteration
        self.costs = costs
        # Simulation shortcut: a real PMD spins at ~idle_poll cost per
        # empty iteration, but simulating every empty spin as an event
        # would dominate the run.  Consecutive empty iterations double
        # the sleep up to idle_backoff_max (still charged as idle time);
        # the first busy iteration resets it.  The only observable effect
        # is a bounded extra wakeup delay (< idle_backoff_max) after an
        # idle period.
        self.idle_backoff_max = idle_backoff_max
        if period is not None and period <= 0:
            raise ValueError("period must be positive, got %r" % period)
        self.period = period
        self.busy_time = 0.0
        self.idle_time = 0.0
        self.iterations = 0
        # Window marks for sample_activity() (load-balancer sampling).
        self._busy_mark = 0.0
        self._idle_mark = 0.0
        self._stopped = False
        self.process: Optional[Process] = None

    def start(self) -> "PollLoop":
        if self.process is not None:
            raise RuntimeError("poll loop %r already started" % self.name)
        self.process = self.env.process(self._run(), name=self.name)
        return self

    def stop(self) -> None:
        """Stop the loop at its next scheduling point."""
        self._stopped = True
        if self.process is not None and self.process.is_alive:
            self.process.interrupt("stop")

    def reset_accounting(self) -> None:
        """Zero busy/idle counters (e.g. at a measurement window start)."""
        self.busy_time = 0.0
        self.idle_time = 0.0
        self._busy_mark = 0.0
        self._idle_mark = 0.0

    def sample_activity(self) -> "tuple[float, float]":
        """``(busy, idle)`` deltas since the previous sample.

        A cheap windowed view for periodic consumers (the PMD auto-load
        balancer checks per-core busy fractions each interval) that
        leaves the cumulative counters untouched.
        """
        busy = self.busy_time - self._busy_mark
        idle = self.idle_time - self._idle_mark
        self._busy_mark = self.busy_time
        self._idle_mark = self.idle_time
        return busy, idle

    @property
    def utilization(self) -> float:
        """Fraction of elapsed loop time spent doing useful work."""
        total = self.busy_time + self.idle_time
        if total == 0:
            return 0.0
        return self.busy_time / total

    def _run(self):
        env = self.env
        idle_cost = self.costs.idle_poll
        idle_delay = idle_cost
        period = self.period
        try:
            while not self._stopped:
                cost = self.iteration()
                self.iterations += 1
                if period is not None:
                    if cost > 0.0:
                        self.busy_time += cost
                    self.idle_time += max(period - cost, 0.0)
                    yield env.timeout(max(cost, period))
                elif cost > 0.0:
                    self.busy_time += cost
                    idle_delay = idle_cost
                    yield env.timeout(cost)
                else:
                    self.idle_time += idle_delay
                    yield env.timeout(idle_delay)
                    idle_delay = min(idle_delay * 2, self.idle_backoff_max)
        except Interrupt:
            return

    def __repr__(self) -> str:
        return "<PollLoop %s iters=%d util=%.2f>" % (
            self.name, self.iterations, self.utilization
        )
