"""Discrete-event simulation substrate.

The paper's testbed (Xeon cores, 10 G NICs, PCIe) is replaced by a
discrete-event simulation: every polling thread (OVS PMD core, in-guest
PMD loop, NIC wire) is a :class:`~repro.sim.engine.Process` that performs
functional work on the real data structures (rings, flow tables) and then
advances simulated time by the calibrated cost of that work
(:mod:`repro.sim.costmodel`).  Throughput and latency fall out of packet
counts over simulated time, so structural bottlenecks — a single OVS PMD
core shared by every chain hop, the 64-byte line rate of a 10 G port —
reproduce the paper's performance shapes without native-speed packet I/O.
"""

from repro.sim.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.sim.engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from repro.sim.nic import Nic, NIC_10G_LINE_RATE_BPS, line_rate_pps
from repro.sim.pollloop import PollLoop

__all__ = [
    "AllOf",
    "AnyOf",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "Environment",
    "Event",
    "Interrupt",
    "NIC_10G_LINE_RATE_BPS",
    "Nic",
    "PollLoop",
    "Process",
    "SimulationError",
    "Timeout",
    "line_rate_pps",
]
