"""A compact discrete-event engine (generator-based, simpy-flavoured).

Processes are Python generators that ``yield`` events; the environment
resumes them when those events fire.  Only the features the library needs
are implemented — timeouts, one-shot events, process join, AllOf/AnyOf
composition and interrupts — but those are implemented completely and are
covered by their own unit/property tests.
"""

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional


class SimulationError(RuntimeError):
    """Raised for engine misuse (double trigger, yield of non-event...)."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot event that callbacks / processes can wait on."""

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered",
                 "_scheduled", "_processed")

    PENDING = object()

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: List[Callable[["Event"], None]] = []
        self._value: Any = Event.PENDING
        self._ok = True
        self._triggered = False
        self._scheduled = False
        self._processed = False

    @property
    def triggered(self) -> bool:
        """True once the event has a value (fired or failed)."""
        return self._triggered

    @property
    def ok(self) -> bool:
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is Event.PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Fire the event with ``value`` at the current simulation time."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Fire the event with an exception; waiters will see it raised."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() needs an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds in the future."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float,
                 value: Any = None) -> None:
        if delay < 0:
            raise SimulationError("negative timeout delay: %r" % delay)
        super().__init__(env)
        self.delay = delay
        self._triggered = True
        self._ok = True
        self._value = value
        env._schedule(self, delay=delay)


class Process(Event):
    """A running generator; itself an event that fires on termination."""

    __slots__ = ("generator", "name", "_target", "is_alive")

    def __init__(self, env: "Environment",
                 generator: Generator[Event, Any, Any],
                 name: Optional[str] = None) -> None:
        super().__init__(env)
        if not hasattr(generator, "send"):
            raise SimulationError("process body must be a generator")
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        self.is_alive = True
        # Bootstrap: resume the process at the current time.
        initial = Event(env)
        initial.callbacks.append(self._resume)
        initial.succeed()

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError(
                "cannot interrupt dead process %r" % self.name
            )
        if self._target is not None:
            # Stop waiting on the old target.
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
            self._target = None
        wakeup = Event(self.env)
        wakeup.callbacks.append(
            lambda _ev: self._resume_with_interrupt(cause)
        )
        wakeup.succeed()

    def _resume_with_interrupt(self, cause: Any) -> None:
        if not self.is_alive:
            return
        try:
            target = self.generator.throw(Interrupt(cause))
        except StopIteration as stop:
            self._terminate(True, stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - process crashed
            self._terminate(False, exc)
            return
        self._wait_on(target)

    def _resume(self, event: Event) -> None:
        if not self.is_alive:
            return
        self._target = None
        try:
            if event._ok:
                target = self.generator.send(event._value)
            else:
                target = self.generator.throw(event._value)
        except StopIteration as stop:
            self._terminate(True, stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - process crashed
            self._terminate(False, exc)
            return
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if not isinstance(target, Event):
            self._terminate(
                False,
                SimulationError(
                    "process %r yielded %r (not an Event)"
                    % (self.name, target)
                ),
            )
            return
        self._target = target
        if target._processed:
            # Already fired and delivered: resume via a fresh zero-delay
            # event so ordering stays deterministic.
            immediate = Event(self.env)
            immediate.callbacks.append(lambda _ev: self._resume(target))
            immediate.succeed()
        else:
            target.callbacks.append(self._resume)

    def _terminate(self, ok: bool, value: Any) -> None:
        self.is_alive = False
        if ok:
            self.succeed(value)
        else:
            if not self.callbacks:
                # Nobody is waiting on this process: surface the crash.
                self.env._crashed.append((self, value))
            self.fail(value)


class Condition(Event):
    """Base for AllOf/AnyOf composition."""

    __slots__ = ("events", "_count")

    def __init__(self, env: "Environment",
                 events: Iterable[Event]) -> None:
        super().__init__(env)
        self.events = list(events)
        self._count = 0
        if not self.events:
            self.succeed([])
            return
        for event in self.events:
            # Key on *delivery*, not trigger state: a Timeout is
            # "triggered" from construction but fires in the future; its
            # callback will run when the clock reaches it.  Only events
            # whose callbacks have already run must be consumed now.
            if event._processed:
                self._on_fire(event)
            else:
                event.callbacks.append(self._on_fire)

    def _on_fire(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(Condition):
    """Fires when every component event has fired; value = list of values."""

    __slots__ = ()

    def _on_fire(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._count += 1
        if self._count == len(self.events):
            self.succeed([ev._value for ev in self.events])


class AnyOf(Condition):
    """Fires when the first component event fires; value = that value."""

    __slots__ = ()

    def _on_fire(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self.succeed(event._value)


class Environment:
    """The simulation clock and event queue."""

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: List = []
        self._eid = 0
        self._crashed: List = []

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- factories ---------------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value=value)

    def process(self, generator: Generator, name: Optional[str] = None
                ) -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        event._scheduled = True
        self._eid += 1
        heapq.heappush(self._queue, (self._now + delay, self._eid, event))

    def step(self) -> None:
        """Process the next scheduled event."""
        if not self._queue:
            raise SimulationError("no more events")
        when, _eid, event = heapq.heappop(self._queue)
        self._now = when
        event._processed = True
        callbacks, event.callbacks = event.callbacks, []
        for callback in callbacks:
            callback(event)
        if self._crashed:
            process, exc = self._crashed.pop()
            raise SimulationError(
                "process %r crashed: %r" % (process.name, exc)
            ) from exc

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or simulated time reaches ``until``.

        Returns the simulation time at exit.  With ``until`` set, the
        clock is advanced exactly to ``until`` even if the next event lies
        beyond it (the event stays queued).
        """
        if until is not None and until < self._now:
            raise SimulationError(
                "cannot run backwards: now=%g until=%g" % (self._now, until)
            )
        while self._queue:
            when = self._queue[0][0]
            if until is not None and when > until:
                self._now = until
                return self._now
            self.step()
        if until is not None:
            self._now = until
        return self._now
