"""10 G NIC model: line-rate serialization, wire loopback and drop stats.

A :class:`Nic` owns an RX ring (frames arriving from the wire, to be
polled by the host PMD) and a TX ring (frames queued by the host, drained
onto the wire at line rate).  The *wire process* is the serialization
bottleneck: each frame occupies the wire for ``(frame + 20 B preamble/IFG)
× 8 / rate`` seconds, which caps 64-byte traffic at the classic
14.88 Mpps per direction of a 10 GbE port — the ceiling visible in the
paper's Figure 3(b).
"""

from typing import Callable, Optional

from repro.mem.ring import Ring, RingMode
from repro.sim.engine import Environment

NIC_10G_LINE_RATE_BPS = 10_000_000_000
WIRE_OVERHEAD_BYTES = 20  # preamble (8) + inter-frame gap (12)


def line_rate_pps(frame_size: int,
                  rate_bps: int = NIC_10G_LINE_RATE_BPS) -> float:
    """Maximum packets/second of a port at ``rate_bps`` for ``frame_size``.

    ``frame_size`` follows the RFC 2544 benchmarking convention: it
    includes the FCS (so the classic 64-byte figure on 10 GbE is
    14.88 Mpps); only preamble and inter-frame gap are added here.
    """
    wire_bits = (frame_size + WIRE_OVERHEAD_BYTES) * 8
    return rate_bps / wire_bits


def connect_nics(first: "Nic", second: "Nic") -> None:
    """Wire two NICs back to back (a cable between two hosts).

    Frames leaving either NIC at line rate arrive on the other's RX
    ring.  Overrides any previously-installed ``on_wire_tx`` sink.
    """
    first.on_wire_tx = second.wire_receive
    second.on_wire_tx = first.wire_receive


class Nic:
    """One physical port: RX/TX rings plus a line-rate wire drain."""

    def __init__(
        self,
        env: Environment,
        name: str,
        rate_bps: int = NIC_10G_LINE_RATE_BPS,
        ring_size: int = 4096,
        on_wire_tx: Optional[Callable] = None,
    ) -> None:
        self.env = env
        self.name = name
        self.rate_bps = rate_bps
        self.rx_ring = Ring("%s.rx" % name, ring_size, RingMode.SP_SC)
        self.tx_ring = Ring("%s.tx" % name, ring_size, RingMode.SP_SC)
        # Called for each frame leaving on the wire; a test harness uses it
        # to loop traffic back or count drained packets.
        self.on_wire_tx = on_wire_tx
        self.rx_packets = 0
        self.rx_bytes = 0
        self.rx_dropped = 0
        self.tx_packets = 0
        self.tx_bytes = 0
        self._wire = env.process(self._wire_drain(), name="%s.wire" % name)

    # -- wire side -------------------------------------------------------

    def wire_receive(self, mbuf) -> bool:
        """A frame arrives from the wire; False when the RX ring overflowed.

        Callers model line-rate pacing themselves (the traffic generator
        injects at most :func:`line_rate_pps` for its frame size); the NIC
        only accounts for RX-ring overflow, which is exactly where a real
        82599 drops when the host cannot keep up.
        """
        try:
            self.rx_ring.enqueue(mbuf)
        except Exception:
            self.rx_dropped += 1
            mbuf.free()
            return False
        self.rx_packets += 1
        self.rx_bytes += mbuf.wire_length
        return True

    def _serialization_delay(self, wire_length: int) -> float:
        return (wire_length + WIRE_OVERHEAD_BYTES) * 8 / self.rate_bps

    def _wire_drain(self):
        """Drain the TX ring at line rate, one frame at a time.

        An empty TX ring is polled with exponential backoff (capped at
        5 us) so an idle NIC does not flood the event queue; the backoff
        resets whenever a frame is transmitted.
        """
        env = self.env
        min_interval = self._serialization_delay(64)
        poll_interval = min_interval
        while True:
            if self.tx_ring.is_empty:
                yield env.timeout(poll_interval)
                poll_interval = min(poll_interval * 2, 5e-6)
                continue
            poll_interval = min_interval
            mbuf = self.tx_ring.dequeue()
            yield env.timeout(self._serialization_delay(mbuf.wire_length))
            self.tx_packets += 1
            self.tx_bytes += mbuf.wire_length
            if self.on_wire_tx is not None:
                self.on_wire_tx(mbuf)
            else:
                mbuf.free()

    # -- host side -----------------------------------------------------------

    def host_rx_burst(self, max_count: int):
        """Host PMD pulls received frames (functional part; cost is the
        caller's via the cost model)."""
        return self.rx_ring.dequeue_burst(max_count)

    def host_tx_burst(self, mbufs) -> int:
        """Host PMD queues frames for transmission; returns count accepted."""
        return self.tx_ring.enqueue_burst(mbufs)

    def __repr__(self) -> str:
        return "<Nic %s rx=%d tx=%d drop=%d>" % (
            self.name, self.rx_packets, self.tx_packets, self.rx_dropped
        )
