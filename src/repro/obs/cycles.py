"""Per-PMD poll-loop cycle accounting (OVS ``pmd-stats-show``).

Software-switch benchmarking practice (Zhang et al., "Performance
Benchmarking of State-of-the-Art Software Switches for NFV") is clear
that end-to-end Mpps alone cannot explain *why* a datapath is fast or
slow — you need busy vs idle cycles and a per-stage cost breakdown on
every polling core.  The simulation already knows exact per-stage costs
(they are what the :class:`~repro.sim.costmodel.CostModel` charges), so
this module only has to *attribute* them instead of sampling TSCs.

Seconds are converted at the calibrated testbed frequency (the paper's
E5-2690 v2 runs at 3 GHz) so the numbers read like real ``pmd-stats-show``
output, and everything is driven by the simulated clock — reruns are
bit-identical.
"""

from typing import Dict, Iterable, List, Optional, Tuple

# The paper's testbed CPU: Xeon E5-2690 v2 @ 3.0 GHz.
CYCLES_PER_SECOND = 3.0e9

# Canonical stage names, in display order.  "rx_normal" vs "rx_bypass"
# is the split that matters to this paper: cycles spent serving the
# shared-switch channel vs the private highway.
STAGES = (
    "rx_normal",
    "rx_bypass",
    "emc_lookup",
    "smc_lookup",
    "megaflow_lookup",
    "classifier_lookup",
    "miss_upcall",
    "actions",
    "tx",
    "housekeeping",
)


def seconds_to_cycles(seconds: float) -> int:
    return int(round(seconds * CYCLES_PER_SECOND))


class StageAccounting:
    """Per-stage (seconds, packets) attribution for one polling core.

    The hot path calls :meth:`add` with the simulated cost it just
    charged; everything else (cycles, percentages, per-packet averages)
    is derived at render time.  Unknown stage names are accepted — the
    canonical set in :data:`STAGES` just controls display order.
    """

    __slots__ = ("seconds", "packets")

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}
        self.packets: Dict[str, int] = {}

    def add(self, stage: str, seconds: float, packets: int = 0) -> None:
        if seconds:
            self.seconds[stage] = self.seconds.get(stage, 0.0) + seconds
        if packets:
            self.packets[stage] = self.packets.get(stage, 0) + packets

    def reset(self) -> None:
        self.seconds.clear()
        self.packets.clear()

    def subtract(self, other: "StageAccounting") -> None:
        """Remove another table's attribution from this one, clamped at
        zero.  The vSwitch scheduler uses this to keep per-core tables
        honest when a port moves cores or leaves: the departing port's
        own table is subtracted from the core it accumulated on, so the
        core table always decomposes the work done for ports it still
        owns (plus core-local stages like tx/flush)."""
        for stage, seconds in other.seconds.items():
            remaining = self.seconds.get(stage, 0.0) - seconds
            if remaining > 1e-18:
                self.seconds[stage] = remaining
            else:
                self.seconds.pop(stage, None)
        for stage, packets in other.packets.items():
            remaining = self.packets.get(stage, 0) - packets
            if remaining > 0:
                self.packets[stage] = remaining
            else:
                self.packets.pop(stage, None)

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def stages_in_order(self) -> List[str]:
        known = [s for s in STAGES if s in self.seconds or s in self.packets]
        extra = sorted((set(self.seconds) | set(self.packets))
                       - set(STAGES))
        return known + [s for s in extra if s not in known]

    def rows(self) -> List[Tuple[str, int, int]]:
        """``(stage, cycles, packets)`` rows in display order."""
        return [
            (stage, seconds_to_cycles(self.seconds.get(stage, 0.0)),
             self.packets.get(stage, 0))
            for stage in self.stages_in_order()
        ]

    def __repr__(self) -> str:
        return "<StageAccounting stages=%d total=%.3gs>" % (
            len(self.seconds), self.total_seconds
        )


class StageTee:
    """Fans one ``add()`` stream out to several stage tables.

    The datapath only ever calls ``stages.add(...)``; handing it a tee
    lets one port poll be attributed simultaneously to the core's
    aggregate table (``pmd/stats-show``) and the port's own table (the
    scheduler's reattribution unit) without the hot path knowing.
    """

    __slots__ = ("targets",)

    def __init__(self, *targets) -> None:
        self.targets = [target for target in targets if target is not None]

    def add(self, stage: str, seconds: float, packets: int = 0) -> None:
        for target in self.targets:
            target.add(stage, seconds, packets)

    def __repr__(self) -> str:
        return "<StageTee targets=%d>" % len(self.targets)


class PmdCycleReport:
    """The ``pmd/stats-show`` view over a set of poll loops.

    Each registered entry pairs a :class:`~repro.sim.pollloop.PollLoop`
    (busy/idle authority) with an optional :class:`StageAccounting`
    (where the busy time went).  Totals always reconcile: busy cycles
    are converted from the loop's own ``busy_time``, never re-derived
    from the stage table.
    """

    def __init__(self) -> None:
        self._entries: List[Tuple[object, Optional[StageAccounting]]] = []

    def track(self, loop, stages: Optional[StageAccounting] = None) -> None:
        self._entries.append((loop, stages))

    @property
    def loops(self) -> List[object]:
        return [loop for loop, _stages in self._entries]

    def loop_rows(self) -> Iterable[Tuple[object, Optional[StageAccounting]]]:
        return list(self._entries)

    def render(self) -> str:
        lines: List[str] = []
        for loop, stages in self._entries:
            busy_cycles = seconds_to_cycles(loop.busy_time)
            idle_cycles = seconds_to_cycles(loop.idle_time)
            total = busy_cycles + idle_cycles
            busy_pct = 100.0 * busy_cycles / total if total else 0.0
            lines.append("pmd thread %s:" % loop.name)
            lines.append("  iterations: %d" % loop.iterations)
            lines.append("  busy cycles: %d (%.1f%%)"
                         % (busy_cycles, busy_pct))
            lines.append("  idle cycles: %d (%.1f%%)"
                         % (idle_cycles, 100.0 - busy_pct if total else 0.0))
            if stages is None:
                continue
            packets = stages.packets.get("rx_normal", 0) + \
                stages.packets.get("rx_bypass", 0)
            if packets:
                lines.append("  avg cycles per packet: %.1f (%d pkts)"
                             % (busy_cycles / packets, packets))
            for stage, cycles, stage_packets in stages.rows():
                suffix = (" (%d pkts, %.1f c/p)"
                          % (stage_packets, cycles / stage_packets)
                          if stage_packets else "")
                lines.append("    %-18s %12d cycles%s"
                             % (stage.replace("_", " "), cycles, suffix))
        if not lines:
            return "no pmd threads tracked"
        return "\n".join(lines)

    def reconciles(self, tolerance: float = 1e-9) -> bool:
        """True when every stage table stays within its loop's busy time
        (stage costs are a decomposition, never an independent tally)."""
        for loop, stages in self._entries:
            if stages is None:
                continue
            if stages.total_seconds > loop.busy_time + tolerance:
                return False
        return True

    def __repr__(self) -> str:
        return "<PmdCycleReport loops=%d>" % len(self._entries)
