"""Exporters: Prometheus text format, JSONL snapshots, periodic capture.

The registry's :meth:`~repro.obs.registry.MetricsRegistry.collect` is
the only input; exporters are pure functions over the sample list so
they can run at any point of a simulation (or after it) without
perturbing the run.
"""

import json
from typing import Any, Dict, List, Optional

from repro.obs.registry import MetricsRegistry, Sample


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _format_labels(labels: Dict[str, str],
                   extra: Optional[Dict[str, str]] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        '%s="%s"' % (key, _escape_label_value(str(value)))
        for key, value in sorted(merged.items())
    )
    return "{%s}" % inner


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer():
        return "%d" % int(value)
    return repr(float(value))


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render every sample in the Prometheus exposition text format.

    HELP/TYPE headers are emitted once per metric name; histograms
    expand into ``_bucket`` / ``_sum`` / ``_count`` series.
    """
    lines: List[str] = []
    seen_headers = set()
    for sample in registry.collect():
        if sample.name not in seen_headers:
            seen_headers.add(sample.name)
            if sample.help:
                lines.append("# HELP %s %s"
                             % (sample.name,
                                sample.help.replace("\n", " ")))
            lines.append("# TYPE %s %s" % (sample.name, sample.kind))
        if sample.kind == "histogram":
            for bound, cumulative in sample.buckets or ():
                lines.append("%s_bucket%s %d" % (
                    sample.name,
                    _format_labels(sample.labels,
                                   {"le": _format_value(bound)}),
                    cumulative,
                ))
            lines.append("%s_sum%s %s" % (
                sample.name, _format_labels(sample.labels),
                _format_value(sample.value),
            ))
            lines.append("%s_count%s %d" % (
                sample.name, _format_labels(sample.labels),
                sample.count or 0,
            ))
        else:
            lines.append("%s%s %s" % (
                sample.name, _format_labels(sample.labels),
                _format_value(sample.value),
            ))
    return "\n".join(lines) + "\n"


def validate_prometheus_text(text: str) -> int:
    """Cheap line-format check; returns the number of sample lines.

    Raises :class:`ValueError` on the first malformed line.  This is the
    validator the CI smoke job runs — it checks the *grammar* (name,
    optional label block, numeric value) without needing a Prometheus
    install in the container.
    """
    count = 0
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line or line.startswith("#"):
            continue
        body = line
        if "{" in body:
            name, rest = body.split("{", 1)
            if "}" not in rest:
                raise ValueError("line %d: unterminated labels" % lineno)
            labels, value_part = rest.rsplit("}", 1)
            for pair in _split_label_pairs(labels):
                if "=" not in pair:
                    raise ValueError("line %d: bad label %r"
                                     % (lineno, pair))
                key, val = pair.split("=", 1)
                if not key.strip() or not (val.startswith('"')
                                           and val.endswith('"')):
                    raise ValueError("line %d: bad label %r"
                                     % (lineno, pair))
        else:
            parts = body.split()
            if len(parts) != 2:
                raise ValueError("line %d: expected 'name value'" % lineno)
            name, value_part = parts
        name = name.strip()
        if not name or not all(c.isalnum() or c in "_:" for c in name):
            raise ValueError("line %d: bad metric name %r"
                             % (lineno, name))
        value_part = value_part.strip()
        if value_part not in ("+Inf", "-Inf", "NaN"):
            float(value_part)  # raises ValueError when malformed
        count += 1
    if count == 0:
        raise ValueError("no sample lines found")
    return count


def _split_label_pairs(labels: str) -> List[str]:
    """Split ``a="x",b="y,z"`` on commas outside quoted values."""
    pairs: List[str] = []
    current: List[str] = []
    in_quotes = False
    previous = ""
    for char in labels:
        if char == '"' and previous != "\\":
            in_quotes = not in_quotes
        if char == "," and not in_quotes:
            pairs.append("".join(current))
            current = []
        else:
            current.append(char)
        previous = char
    if current:
        pairs.append("".join(current))
    return [p for p in pairs if p.strip()]


def snapshot_dict(registry: MetricsRegistry, now: float) -> Dict[str, Any]:
    """One point-in-time snapshot as a JSON-serializable dict."""
    metrics: List[Dict[str, Any]] = []
    for sample in registry.collect():
        entry: Dict[str, Any] = {
            "name": sample.name,
            "labels": sample.labels,
            "value": sample.value,
            "kind": sample.kind,
        }
        if sample.kind == "histogram":
            entry["count"] = sample.count
            entry["buckets"] = [
                ["+Inf" if bound == float("inf") else bound, cumulative]
                for bound, cumulative in (sample.buckets or ())
            ]
        metrics.append(entry)
    return {"time": now, "metrics": metrics}


def jsonl_snapshots(snapshots: List[Dict[str, Any]]) -> str:
    """Serialize snapshots as JSON Lines (one snapshot per line)."""
    return "\n".join(json.dumps(snap, sort_keys=True)
                     for snap in snapshots) + ("\n" if snapshots else "")


def parse_jsonl_snapshots(text: str) -> List[Dict[str, Any]]:
    """Round-trip check: parse what :func:`jsonl_snapshots` wrote."""
    out = []
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        snap = json.loads(line)
        if "time" not in snap or "metrics" not in snap:
            raise ValueError("line %d: not a snapshot object" % lineno)
        out.append(snap)
    return out


class Snapshotter:
    """Periodic metrics capture with the housekeeping poll-loop contract.

    ``iteration()`` appends one snapshot and returns its (tiny) cost, so
    it can ride a fixed-``period`` :class:`~repro.sim.pollloop.PollLoop`
    exactly like the bypass watchdog does.  Snapshots accumulate in
    memory (bounded) and serialize to JSONL at the end of the run —
    file I/O never happens inside the simulated hot loop.
    """

    #: simulated cost of reading every shared-memory block once
    SNAPSHOT_COST = 5e-6

    def __init__(self, registry: MetricsRegistry, clock,
                 max_snapshots: int = 4096) -> None:
        self.registry = registry
        self.clock = clock
        self.max_snapshots = max_snapshots
        self.snapshots: List[Dict[str, Any]] = []
        self.dropped = 0

    def iteration(self) -> float:
        if len(self.snapshots) >= self.max_snapshots:
            self.dropped += 1
            return self.SNAPSHOT_COST
        self.snapshots.append(snapshot_dict(self.registry, self.clock()))
        return self.SNAPSHOT_COST

    def to_jsonl(self) -> str:
        return jsonl_snapshots(self.snapshots)

    def __repr__(self) -> str:
        return "<Snapshotter snapshots=%d dropped=%d>" % (
            len(self.snapshots), self.dropped
        )
