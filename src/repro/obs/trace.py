"""Sampled per-packet path tracing.

The paper's claim is *transparency*: the controller keeps seeing one
logical port while packets secretly take the bypass.  A counter can say
"N packets went via the bypass"; only a per-packet trace can *prove*
that a specific packet entered at the source, never touched the
classifier, crossed the bypass ring, and surfaced at the peer PMD.

Design constraints, in order:

* **near-zero overhead when off** — hot paths guard on
  ``mbuf.trace is not None`` (one attribute read on a slotted object);
  nothing else happens for the untraced 63-in-64 (or 64-in-64 when the
  tracer is disabled);
* **bounded memory** — completed traces live in a ring of
  ``max_traces``; an abandoned trace dies with its mbuf (``reset()``
  clears the slot when the mempool recycles it);
* **deterministic** — sampling is a modulo counter, not a coin flip, so
  the same run always traces the same packets.
"""

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

# Canonical hop names, for reference and docs (callers may add more):
#   ingress      packet stamped at the traffic source
#   guest-tx     a guest PMD transmitted it (attr channel=normal|bypass)
#   bypass-ring  it was pushed into a VM-to-VM bypass ring
#   switch-rx    the vSwitch fast path polled it off a port
#   emc          EMC hit resolved its flow
#   classifier   tuple-space lookup resolved its flow
#   upcall       table miss: it left the fast path
#   switch-tx    the vSwitch pushed it out a port
#   guest-rx     a guest PMD received it (attr channel=normal|bypass)
#   sink         it drained at a measurement endpoint


class Span:
    """One hop of one traced packet."""

    __slots__ = ("time", "hop", "attrs")

    def __init__(self, time: float, hop: str,
                 attrs: Optional[Dict[str, Any]] = None) -> None:
        self.time = time
        self.hop = hop
        self.attrs = attrs or {}

    def as_dict(self) -> Dict[str, Any]:
        out = {"t": self.time, "hop": self.hop}
        out.update(self.attrs)
        return out

    def __repr__(self) -> str:
        return "<Span %s @%.3gus %r>" % (self.hop, self.time * 1e6,
                                         self.attrs)


class Trace:
    """The span list of one sampled packet."""

    __slots__ = ("trace_id", "seq", "start", "spans", "_tracer")

    def __init__(self, tracer: "PathTracer", trace_id: int, seq: int,
                 start: float) -> None:
        self._tracer = tracer
        self.trace_id = trace_id
        self.seq = seq
        self.start = start
        self.spans: List[Span] = []

    def add(self, time: float, hop: str, **attrs) -> None:
        if len(self.spans) < self._tracer.max_spans:
            self.spans.append(Span(time, hop, attrs or None))

    def finish(self, time: float, **attrs) -> None:
        """Record the terminal hop and hand the trace to the tracer."""
        self.add(time, "sink", **attrs)
        self._tracer._completed(self)

    def hops(self) -> List[str]:
        return [span.hop for span in self.spans]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "seq": self.seq,
            "start": self.start,
            "spans": [span.as_dict() for span in self.spans],
        }

    def __repr__(self) -> str:
        return "<Trace %d %s>" % (self.trace_id, "->".join(self.hops()))


class PathTracer:
    """Stamps 1-in-N packets at ingress; collects their finished traces.

    ``sample_interval=None`` disables sampling entirely: ``ingress()``
    costs one integer compare and hot paths never see a non-None
    ``mbuf.trace``.
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        sample_interval: Optional[int] = 64,
        max_traces: int = 1024,
        max_spans: int = 64,
    ) -> None:
        if sample_interval is not None and sample_interval < 1:
            raise ValueError("sample_interval must be >= 1 or None")
        if max_traces < 1:
            raise ValueError("max_traces must be positive")
        self.clock = clock or (lambda: 0.0)
        self.sample_interval = sample_interval
        self.max_traces = max_traces
        self.max_spans = max_spans
        self.packets_seen = 0
        self.traces_started = 0
        self.traces_finished = 0
        self._next_id = 0
        self._ingress_countdown = 1  # trace the first packet: tests like it
        self.finished: Deque[Trace] = deque(maxlen=max_traces)

    @property
    def enabled(self) -> bool:
        return self.sample_interval is not None

    def ingress(self, mbuf, **attrs) -> Optional[Trace]:
        """Maybe stamp ``mbuf`` with a new trace (the 1-in-N gate)."""
        if self.sample_interval is None:
            return None
        self.packets_seen += 1
        self._ingress_countdown -= 1
        if self._ingress_countdown > 0:
            return None
        self._ingress_countdown = self.sample_interval
        now = self.clock()
        self._next_id += 1
        trace = Trace(self, self._next_id, mbuf.seq, now)
        trace.add(now, "ingress", **attrs)
        mbuf.trace = trace
        self.traces_started += 1
        return trace

    def _completed(self, trace: Trace) -> None:
        self.traces_finished += 1
        self.finished.append(trace)

    # -- analysis -----------------------------------------------------------

    def traces_via(self, hop: str) -> List[Trace]:
        return [t for t in self.finished if hop in t.hops()]

    def render(self, limit: int = 20) -> str:
        """``trace/dump``: the most recent traces, one per line block."""
        if not self.finished:
            return ("no finished traces (seen=%d started=%d)"
                    % (self.packets_seen, self.traces_started))
        recent = list(self.finished)[-limit:]
        lines = ["%d finished trace(s), showing %d "
                 "(sample interval %s, %d packets seen)"
                 % (len(self.finished), len(recent),
                    self.sample_interval, self.packets_seen)]
        for trace in recent:
            lines.append("trace %d seq=%d start=%.6fs"
                         % (trace.trace_id, trace.seq, trace.start))
            for span in trace.spans:
                attrs = " ".join("%s=%s" % (k, v)
                                 for k, v in span.attrs.items())
                lines.append("  +%9.3fus %-12s %s"
                             % ((span.time - trace.start) * 1e6,
                                span.hop, attrs))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return "<PathTracer 1-in-%s finished=%d>" % (
            self.sample_interval, len(self.finished)
        )


def span_hop(mbuf, clock_now: float, hop: str, **attrs) -> None:
    """Append a hop to a traced mbuf; no-op (one compare) otherwise.

    Split out so instrumented hot paths read as one call; callers that
    already know ``mbuf.trace is not None`` can call ``trace.add``
    directly.
    """
    trace = mbuf.trace
    if trace is not None:
        trace.add(clock_now, hop, **attrs)
