"""The unified observability plane: one object per host (or per run).

:class:`Observability` bundles the metrics registry, the coverage
counters, the sampled path tracer, the per-PMD cycle report and the
periodic snapshotter, and knows how to subscribe every existing
subsystem — without changing how those subsystems count.  All
registrations are *lazy collectors*: the wrapped object keeps mutating
its plain attributes and is read only when something scrapes.
"""

from dataclasses import fields as dataclass_fields
from typing import Any, Callable, Iterable, List, Optional, Tuple

from repro.obs.cycles import (
    CYCLES_PER_SECOND,
    PmdCycleReport,
    StageAccounting,
    seconds_to_cycles,
)
from repro.obs.export import Snapshotter, prometheus_text
from repro.obs.registry import MetricsRegistry, Sample
from repro.obs.trace import PathTracer


class Observability:
    """Registry + tracer + cycle report + snapshotter for one host."""

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        trace_sample_interval: Optional[int] = None,
        max_traces: int = 1024,
    ) -> None:
        self.clock = clock or (lambda: 0.0)
        self.registry = MetricsRegistry()
        self.tracer = PathTracer(
            clock=self.clock,
            sample_interval=trace_sample_interval,
            max_traces=max_traces,
        )
        self.snapshotter = Snapshotter(self.registry, self.clock)
        self._snapshot_loop = None
        # Poll loops registered directly (guest apps, sources, sinks)
        # and vswitchds whose PMD loops are discovered at scrape time
        # (they only exist after start()).
        self._loops: List[Tuple[Any, Optional[StageAccounting]]] = []
        self._switches: List[Any] = []
        # Guest PMDs keyed by (vm, port): a repaired VM re-registers the
        # same key and the existing collector reads the replacement —
        # no duplicate sample families, no stale-PMD exports.
        self._guest_pmds: dict = {}
        self.registry.register_object(
            "repro_trace", self.tracer,
            ("packets_seen", "traces_started", "traces_finished"),
            help="path tracer sampling progress",
        )

    # -- tracing toggle ------------------------------------------------------

    def enable_tracing(self, sample_interval: int = 64) -> PathTracer:
        self.tracer.sample_interval = sample_interval
        return self.tracer

    def disable_tracing(self) -> None:
        self.tracer.sample_interval = None

    # -- subsystem registration ----------------------------------------------

    def register_vswitchd(self, switch) -> None:
        """Track a vSwitchd: datapath counters, EMC, per-PMD cycles."""
        self._switches.append(switch)
        name = switch.name
        datapath = switch.datapath
        self.registry.register_object(
            "repro_datapath", datapath,
            ("packets_processed", "emc_hits", "smc_hits",
             "megaflow_hits",
             "classifier_hits", "pipeline_drops", "action_drops",
             "unknown_port_drops", "packets_mirrored", "flow_batches",
             "packets_batched"),
            labels={"switch": name},
            help="vSwitch fast-path lookup and forwarding counters",
        )

        def collect_upcalls() -> Iterable[Sample]:
            # miss_upcalls lived in the register_object tuple above
            # until the reason split; exported per-reason now.
            for reason, value in (("no_match", datapath.upcalls_no_match),
                                  ("action", datapath.upcalls_action)):
                yield Sample(
                    "repro_datapath_miss_upcalls_total",
                    {"switch": name, "reason": reason},
                    float(value), "counter",
                    "upcalls raised by the fast path, by reason",
                )

        self.registry.register_collector(collect_upcalls)
        self.registry.register_object(
            "repro_emc", datapath.emc,
            ("hits", "misses", "stale_hits", "insertions",
             "insertions_skipped", "evictions", "stale_evictions",
             "precise_evictions"),
            labels={"switch": name},
            help="exact-match cache statistics",
        )
        self.registry.register_object(
            "repro_smc", datapath.smc,
            ("hits", "misses", "insertions", "replacements"),
            labels={"switch": name},
            help="signature-match cache statistics",
        )
        self.registry.register_object(
            "repro_megaflow", datapath.megaflow,
            ("hits", "misses", "insertions", "refreshes", "evictions",
             "stale_evictions", "invalidations", "stale_lookups"),
            labels={"switch": name},
            help="megaflow (wildcard) cache statistics",
        )
        # Precise-invalidation coverage events flow through the shared
        # coverage counters (control path only: flowmod frequency).
        datapath.coverage = self.registry.coverage

        def collect_batch_fill() -> Iterable[Sample]:
            for fill, count in sorted(datapath.batch_fill_counts.items()):
                yield Sample(
                    "repro_datapath_batch_fill_total",
                    {"switch": name, "fill": str(fill)},
                    float(count), "counter",
                    "flow batches by packets-per-batch (vectorized path)",
                )

        self.registry.register_collector(collect_batch_fill)

        def collect_loops() -> Iterable[Sample]:
            for loop, stages in self._switch_loop_pairs(switch):
                yield from _loop_samples(loop, stages)

        self.registry.register_collector(collect_loops)

        scheduler = getattr(switch, "scheduler", None)
        if scheduler is not None:
            self._register_sched(switch, scheduler, name)
        self._register_overload(switch, name)

    def _register_overload(self, switch, name: str) -> None:
        """Overload-control, policer and controller-channel metrics."""
        labels = {"switch": name}
        datapath = switch.datapath
        coverage = self.registry.coverage
        queue = getattr(switch, "upcall_queue", None)
        failmode = getattr(switch, "failmode", None)
        monitor = getattr(switch, "overload", None)
        for hooked in (queue, failmode, monitor):
            if hooked is not None:
                hooked.coverage = coverage

        def collect_policers() -> Iterable[Sample]:
            # Policers are created/removed at runtime; discovered lazily.
            for ofport in sorted(datapath.policers):
                policer = datapath.policers[ofport]
                port_labels = dict(labels)
                port_labels["ofport"] = str(ofport)
                yield Sample("repro_policer_admitted_total", port_labels,
                             float(policer.admitted), "counter",
                             "packets admitted by the ingress policer")
                yield Sample("repro_policer_dropped_total", port_labels,
                             float(policer.dropped), "counter",
                             "packets dropped by the ingress policer")
                yield Sample("repro_policer_rate_pps", port_labels,
                             float(policer.rate_pps), "gauge",
                             "configured policing rate")
                yield Sample("repro_policer_tokens", port_labels,
                             float(policer.bucket.tokens), "gauge",
                             "tokens currently in the policing bucket")

        self.registry.register_collector(collect_policers)

        def collect_overload() -> Iterable[Sample]:
            if queue is not None:
                yield Sample("repro_overload_upcall_depth", dict(labels),
                             float(queue.depth), "gauge",
                             "upcalls currently queued")
                yield Sample("repro_overload_upcall_high_watermark",
                             dict(labels),
                             float(queue.high_watermark), "gauge",
                             "deepest the upcall queue has been")
                yield Sample("repro_overload_upcall_dispatched_total",
                             dict(labels),
                             float(queue.dispatched), "counter",
                             "upcalls served by the slow path")
                for klass, value in (
                        ("miss", queue.admitted_miss),
                        ("control", queue.admitted_control)):
                    class_labels = dict(labels)
                    class_labels["class"] = klass
                    yield Sample(
                        "repro_overload_upcall_admitted_total",
                        class_labels, float(value), "counter",
                        "upcalls admitted into the bounded queue",
                    )
                for why, value in sorted(queue.shed.items()):
                    shed_labels = dict(labels)
                    shed_labels["reason"] = why
                    yield Sample(
                        "repro_overload_upcall_shed_total", shed_labels,
                        float(value), "counter",
                        "upcalls shed at admission, by reason",
                    )
            for ofport, level in sorted(datapath.rx_shed.items()):
                port_labels = dict(labels)
                port_labels["ofport"] = str(ofport)
                yield Sample("repro_overload_rx_shed_level", port_labels,
                             level, "gauge",
                             "active RX shed fraction for one port")
            for ofport, drops in sorted(datapath.rx_early_drops.items()):
                port_labels = dict(labels)
                port_labels["ofport"] = str(ofport)
                yield Sample("repro_overload_rx_early_drops_total",
                             port_labels, float(drops), "counter",
                             "packets shed at RX before classification")
            if failmode is not None:
                mode_labels = dict(labels)
                mode_labels["mode"] = failmode.mode.value
                yield Sample("repro_overload_failmode_connected",
                             mode_labels,
                             1.0 if failmode.state == "connected" else 0.0,
                             "gauge", "controller connectivity as seen "
                             "by the fail-mode manager")
                for counter in ("outages", "reconnect_attempts",
                                "reconnect_failures", "reconnects",
                                "packet_ins_buffered",
                                "packet_ins_replayed", "packet_ins_shed",
                                "fallback_flows_removed",
                                "frozen_expiry_skips"):
                    yield Sample(
                        "repro_overload_failmode_%s_total" % counter,
                        dict(labels),
                        float(getattr(failmode, counter)), "counter",
                        "fail-mode manager lifecycle counters",
                    )
                yield Sample("repro_overload_failmode_pending_packet_ins",
                             dict(labels),
                             float(failmode.pending_packet_ins), "gauge",
                             "packet-ins buffered for replay (secure)")
                fallback = failmode.fallback
                for counter in ("packets_forwarded", "floods",
                                "flows_installed"):
                    yield Sample(
                        "repro_overload_fallback_%s_total" % counter,
                        dict(labels),
                        float(getattr(fallback, counter)), "counter",
                        "standalone learning-fallback activity",
                    )
            if monitor is not None:
                for counter in ("checks_run", "overloaded_checks",
                                "shed_increases", "shed_decreases",
                                "deferred_to_rebalance"):
                    yield Sample(
                        "repro_overload_monitor_%s_total" % counter,
                        dict(labels),
                        float(getattr(monitor, counter)), "counter",
                        "overload monitor decisions",
                    )
            connection = getattr(switch.bridge, "connection", None)
            if connection is not None:
                yield Sample("repro_controller_pending_for_switch",
                             dict(labels),
                             float(connection.pending_for_switch),
                             "gauge", "messages queued toward the switch")
                yield Sample("repro_controller_pending_for_controller",
                             dict(labels),
                             float(connection.pending_for_controller),
                             "gauge",
                             "messages queued toward the controller")
                yield Sample("repro_controller_connected", dict(labels),
                             1.0 if connection.connected else 0.0,
                             "gauge", "OpenFlow channel is up")
                for counter in ("dropped_to_switch",
                                "dropped_to_controller",
                                "dropped_disconnected",
                                "faults_dropped"):
                    yield Sample(
                        "repro_controller_%s_total" % counter,
                        dict(labels),
                        float(getattr(connection, counter)), "counter",
                        "OpenFlow channel drops (bounded queues, "
                        "outages, injected faults)",
                    )

        self.registry.register_collector(collect_overload)

    def _register_sched(self, switch, scheduler, name: str) -> None:
        """rxq scheduler + auto-LB metrics and coverage for one switch."""
        labels = {"switch": name}
        coverage = self.registry.coverage
        scheduler.on_apply.append(
            lambda plan: coverage("sched_rebalance_applied"))
        scheduler.on_move.append(
            lambda port, src, dst: coverage("sched_port_moved"))

        def collect_sched() -> Iterable[Sample]:
            tracker = scheduler.tracker
            yield Sample("repro_sched_rebalances_total", dict(labels),
                         float(scheduler.rebalances), "counter",
                         "rebalance plans applied")
            yield Sample("repro_sched_port_moves_total", dict(labels),
                         float(scheduler.port_moves), "counter",
                         "individual port moves applied")
            yield Sample("repro_sched_intervals_total", dict(labels),
                         float(tracker.intervals), "counter",
                         "load-tracker measurement intervals closed")
            for core, load in enumerate(
                    tracker.core_loads(scheduler.n_cores)):
                core_labels = dict(labels)
                core_labels["core"] = str(core)
                yield Sample(
                    "repro_sched_core_load_cycles", core_labels,
                    float(seconds_to_cycles(load)), "gauge",
                    "EWMA per-interval cycles attributed to one core",
                )
                yield Sample(
                    "repro_sched_core_ports", core_labels,
                    float(len(scheduler.core_ports[core])), "gauge",
                    "ports currently assigned to one core",
                )
            for (ofport, core), load in tracker.pairs():
                pair_labels = dict(labels)
                pair_labels["ofport"] = str(ofport)
                pair_labels["core"] = str(core)
                yield Sample(
                    "repro_sched_port_load_cycles", pair_labels,
                    float(seconds_to_cycles(load)), "gauge",
                    "EWMA per-interval cycles for one (port, core) pair",
                )
            auto_lb = getattr(switch, "auto_lb", None)
            if auto_lb is None:
                return
            yield Sample("repro_sched_autolb_checks_total", dict(labels),
                         float(auto_lb.checks_run), "counter",
                         "auto-LB check passes")
            yield Sample("repro_sched_autolb_applied_total",
                         dict(labels),
                         float(auto_lb.rebalances_applied), "counter",
                         "auto-LB rebalances applied")
            for reason in ("warmup", "no_overload", "no_moves",
                           "small_improvement"):
                skip_labels = dict(labels)
                skip_labels["reason"] = reason
                yield Sample(
                    "repro_sched_autolb_skipped_total", skip_labels,
                    float(getattr(auto_lb, "skipped_" + reason)),
                    "counter", "auto-LB checks skipped by reason",
                )
            yield Sample(
                "repro_sched_autolb_overload_overrides_total",
                dict(labels), float(auto_lb.overload_overrides),
                "counter",
                "no-overload skips overridden by active RX shedding",
            )
            plan = scheduler.last_plan
            if plan is not None:
                yield Sample(
                    "repro_sched_last_improvement", dict(labels),
                    plan.improvement, "gauge",
                    "variance improvement of the last applied plan",
                )

        self.registry.register_collector(collect_sched)

    def register_poll_loop(self, loop,
                           stages: Optional[StageAccounting] = None) -> None:
        """Track one non-switch poll loop (guest app, source, sink)."""
        self._loops.append((loop, stages))
        self.registry.register_collector(
            lambda: _loop_samples(loop, stages)
        )

    def register_ring(self, ring, role: str) -> None:
        """Export a ring's lifetime stats (enqueue/partial/integrity)."""
        self.registry.register_object(
            "repro_ring", ring,
            ("enqueued", "dequeued", "enqueue_failures",
             "partial_enqueues", "dequeue_failures",
             "corruptions_injected"),
            labels={"ring": ring.name, "role": role},
            help="rte_ring lifetime statistics",
        )

    def register_dpdkr_port(self, rings) -> None:
        """Both rings of one dpdkr port (the normal channel)."""
        self.register_ring(rings.to_switch, role="normal_tx")
        self.register_ring(rings.to_guest, role="normal_rx")

    def register_guest_pmd(self, pmd, vm_name: str, port_name: str) -> None:
        """Per-channel RX/TX split of one dual-channel guest PMD.

        Keyed on (vm, port): registering again — the chain repairer
        re-creating a crashed VM on the same ports — swaps the tracked
        PMD under the existing collector instead of stacking duplicates.
        """
        key = (vm_name, port_name)
        first = key not in self._guest_pmds
        self._guest_pmds[key] = pmd
        if not first:
            return
        labels = {"vm": vm_name, "port": port_name}
        attributes = (
            "tx_via_bypass", "tx_via_normal", "rx_via_bypass",
            "rx_via_normal", "tx_stall_rejects", "rx_integrity_drops",
            "bypass_congestion_events",
        )

        def collect() -> Iterable[Sample]:
            current = self._guest_pmds[key]
            for attr in attributes:
                yield Sample("repro_pmd_channel_%s" % attr, dict(labels),
                             float(getattr(current, attr)), "counter",
                             "guest PMD per-channel packet counters")

        self.registry.register_collector(collect)

    def register_mempool(self, pool) -> None:
        """Track a Mempool: occupancy, lifecycle counters, and the
        ownership ledger's per-holder in-flight gauge."""
        labels = {"pool": pool.name}

        def collect() -> Iterable[Sample]:
            yield Sample("repro_mempool_size", dict(labels),
                         float(pool.size), "gauge", "pool capacity")
            yield Sample("repro_mempool_available", dict(labels),
                         float(pool.available), "gauge",
                         "mbufs currently free")
            yield Sample("repro_mempool_in_use", dict(labels),
                         float(pool.in_use), "gauge",
                         "mbufs currently allocated")
            for counter in ("alloc_count", "free_count_total",
                            "alloc_failures", "double_free_detected",
                            "reclaim_sweeps", "reclaimed_total",
                            "leaked_found_total", "leaked_permanent"):
                yield Sample("repro_mempool_%s_total" % counter,
                             dict(labels),
                             float(getattr(pool, counter)), "counter",
                             "mempool lifecycle counters")
            for holder, count in sorted(pool.holders().items()):
                holder_labels = dict(labels)
                holder_labels["holder"] = holder
                yield Sample("repro_mempool_held", holder_labels,
                             float(count), "gauge",
                             "mbufs charged to one ledger holder")

        self.registry.register_collector(collect)

    def register_repairer(self, repairer) -> None:
        """Track a ChainRepairer: lifecycle counters, per-NF state, and
        coverage events for every transition."""

        def collect() -> Iterable[Sample]:
            for counter in ("crashes_detected", "repairs_started",
                            "repairs_succeeded", "repairs_failed",
                            "demotions", "flows_replayed",
                            "packets_flushed"):
                yield Sample("repro_lifecycle_%s_total" % counter, {},
                             float(getattr(repairer, counter)), "counter",
                             "chain repairer lifecycle counters")
            for record in repairer.records.values():
                labels = {"nf": record.name, "state": record.state}
                yield Sample("repro_lifecycle_nf_state", labels, 1.0,
                             "gauge", "current per-NF repair state")
                yield Sample("repro_lifecycle_nf_restarts_total",
                             {"nf": record.name},
                             float(record.restarts), "counter",
                             "restart attempts consumed per NF")

        self.registry.register_collector(collect)
        coverage = self.registry.coverage
        repairer.on_event.append(
            lambda event, nf: coverage(
                "lifecycle_%s" % event.replace("-", "_")))

    def register_resilience(self, counters) -> None:
        """Every ResilienceCounters field, one labeled sample each."""

        def collect() -> Iterable[Sample]:
            for field in dataclass_fields(counters):
                yield Sample(
                    "repro_resilience_total",
                    {"counter": field.name},
                    float(getattr(counters, field.name)),
                    "counter",
                    "bypass control-plane self-healing counters",
                )

        self.registry.register_collector(collect)

    def register_manager(self, manager) -> None:
        """Track a BypassManager: resilience, watchdog, channel stats
        blocks (discovered lazily — links come and go), and coverage
        counters for every lifecycle transition."""
        self.register_resilience(manager.resilience)

        def collect() -> Iterable[Sample]:
            yield Sample("repro_watchdog_checks_total", {},
                         float(manager.watchdog.checks_run), "counter",
                         "watchdog check passes")
            yield Sample("repro_bypass_active_links", {},
                         float(len(manager.active_links)), "gauge",
                         "bypass links currently tracked")
            yield Sample("repro_bypass_quarantined_links", {},
                         float(len(manager.quarantined_links)), "gauge",
                         "links in quarantine")
            yield Sample("repro_bypass_packets_lost_total", {},
                         float(manager.packets_lost_to_failures),
                         "counter", "packets lost to failures")
            for stats in manager.stats_blocks:
                labels = {"channel": stats.name}
                for attr in ("tx_packets", "tx_bytes", "rx_dequeued",
                             "rx_integrity_errors"):
                    yield Sample("repro_bypass_%s_total" % attr, labels,
                                 float(getattr(stats, attr)), "counter",
                                 "bypass channel shared-memory counters")
                yield Sample("repro_bypass_rx_epoch", labels,
                             float(stats.rx_epoch), "gauge",
                             "consumer heartbeat epoch")

        self.registry.register_collector(collect)
        coverage = self.registry.coverage
        manager.on_link_active.append(
            lambda bl: coverage("bypass_link_active"))
        manager.on_link_removed.append(
            lambda bl: coverage("bypass_link_removed"))
        manager.on_link_degraded.append(
            lambda bl, verdict: coverage(
                "bypass_degraded_%s" % verdict.value))
        manager.on_link_readmitted.append(
            lambda bl: coverage("bypass_link_readmitted"))
        manager.on_readmission_deferred.append(
            lambda key: coverage("bypass_readmission_deferred"))

    # -- per-PMD cycle accounting ----------------------------------------------

    def _switch_loop_pairs(self, switch):
        stages = getattr(switch, "_core_stages", [])
        loops = getattr(switch, "_pmd_loops", [])
        for index, loop in enumerate(loops):
            yield loop, (stages[index] if index < len(stages) else None)

    def pmd_cycle_report(self) -> PmdCycleReport:
        """Fresh ``pmd/stats-show`` view over every tracked loop."""
        report = PmdCycleReport()
        for switch in self._switches:
            for loop, stages in self._switch_loop_pairs(switch):
                report.track(loop, stages)
        for loop, stages in self._loops:
            report.track(loop, stages)
        return report

    # -- snapshotting -------------------------------------------------------------

    def start_snapshotting(self, env, period: float = 0.001):
        """Run the snapshotter on a housekeeping PollLoop (like the
        bypass watchdog); returns the loop."""
        from repro.sim.pollloop import PollLoop

        if self._snapshot_loop is not None:
            raise RuntimeError("snapshotter already running")
        self._snapshot_loop = PollLoop(
            env, "obs.snapshot", self.snapshotter.iteration, period=period,
        ).start()
        return self._snapshot_loop

    def stop_snapshotting(self) -> None:
        if self._snapshot_loop is not None:
            self._snapshot_loop.stop()
            self._snapshot_loop = None

    def snapshot_now(self) -> None:
        """Take one snapshot immediately (run end, appctl)."""
        self.snapshotter.iteration()

    # -- reporting -----------------------------------------------------------------

    def report(self, trace_limit: int = 10) -> str:
        """The full end-of-run observability report (CLI ``--obs-report``)."""
        sections = [
            ("pmd/stats-show", self.pmd_cycle_report().render()),
            ("coverage/show", self.registry.coverage_report()),
            ("trace/dump", self.tracer.render(limit=trace_limit)),
            ("metrics/dump", prometheus_text(self.registry).rstrip("\n")),
        ]
        blocks = []
        for title, body in sections:
            rule = "=" * len(title)
            blocks.append("%s\n%s\n%s\n%s" % (rule, title, rule, body))
        return "\n\n".join(blocks)

    def __repr__(self) -> str:
        return "<Observability switches=%d loops=%d tracing=%s>" % (
            len(self._switches), len(self._loops),
            self.tracer.sample_interval,
        )


def _loop_samples(loop, stages: Optional[StageAccounting]
                  ) -> Iterable[Sample]:
    labels = {"loop": loop.name}
    yield Sample("repro_pollloop_busy_seconds", dict(labels),
                 loop.busy_time, "counter",
                 "simulated seconds the loop did useful work")
    yield Sample("repro_pollloop_idle_seconds", dict(labels),
                 loop.idle_time, "counter",
                 "simulated seconds the loop polled empty")
    yield Sample("repro_pollloop_iterations_total", dict(labels),
                 float(loop.iterations), "counter", "loop iterations")
    yield Sample("repro_pollloop_busy_cycles", dict(labels),
                 float(seconds_to_cycles(loop.busy_time)), "counter",
                 "busy cycles at %.1f GHz" % (CYCLES_PER_SECOND / 1e9))
    yield Sample("repro_pollloop_idle_cycles", dict(labels),
                 float(seconds_to_cycles(loop.idle_time)), "counter",
                 "idle cycles at %.1f GHz" % (CYCLES_PER_SECOND / 1e9))
    yield Sample("repro_pollloop_utilization", dict(labels),
                 loop.utilization, "gauge",
                 "busy fraction of elapsed loop time")
    if stages is not None:
        for stage, cycles, packets in stages.rows():
            stage_labels = dict(labels)
            stage_labels["stage"] = stage
            yield Sample("repro_pmd_stage_cycles", stage_labels,
                         float(cycles), "counter",
                         "cycles attributed to one datapath stage")
            if packets:
                yield Sample("repro_pmd_stage_packets_total",
                             stage_labels, float(packets), "counter",
                             "packets attributed to one datapath stage")
