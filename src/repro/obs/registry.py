"""The central metrics registry: one place every subsystem reports into.

Modeled on the Prometheus client data model (labeled counter / gauge /
histogram families) plus OVS's *coverage counters* (``coverage/show``) —
cheap named event tallies that answer "did this code path ever run, and
how often lately".

Two registration styles coexist deliberately:

* **direct instruments** — hot paths that want to own their counter call
  ``family.labels(...).inc()``;
* **collector callbacks** — the migration path for the repo's scattered
  ad-hoc counters (EMC hits, ring failure counts,
  :class:`~repro.metrics.resilience.ResilienceCounters`, ...).  A
  collector reads the *existing* attributes lazily at scrape time, so the
  original call sites keep mutating their plain ints and pay nothing for
  being observable.
"""

import bisect
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

LabelValues = Tuple[str, ...]


@dataclass(frozen=True)
class Sample:
    """One exported time-series point.

    ``kind`` is the Prometheus metric type (``counter`` / ``gauge`` /
    ``histogram``); histogram samples carry their bucket table in
    ``buckets`` as ``(upper_bound, cumulative_count)`` pairs plus
    ``value`` = sum and ``count`` = population.
    """

    name: str
    labels: Dict[str, str]
    value: float
    kind: str = "gauge"
    help: str = ""
    buckets: Optional[Tuple[Tuple[float, int], ...]] = None
    count: Optional[int] = None


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up (got %r)" % amount)
        self.value += amount


class Gauge:
    """A value that can go either way, or be computed at scrape time."""

    __slots__ = ("value", "_fn")

    def __init__(self) -> None:
        self.value = 0.0
        self._fn: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        self._fn = None
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def set_function(self, fn: Callable[[], float]) -> None:
        """Compute the gauge lazily at every scrape (migration hook)."""
        self._fn = fn

    def read(self) -> float:
        return float(self._fn()) if self._fn is not None else self.value


DEFAULT_BUCKETS = (
    1e-7, 2.5e-7, 5e-7, 1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, float("inf"),
)


class Histogram:
    """Fixed-bucket histogram (cumulative, Prometheus-style)."""

    __slots__ = ("bounds", "bucket_counts", "total", "count")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = sorted(float(b) for b in buckets)
        if not bounds or bounds[-1] != float("inf"):
            bounds.append(float("inf"))
        self.bounds = bounds
        self.bucket_counts = [0] * len(bounds)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    def cumulative(self) -> Tuple[Tuple[float, int], ...]:
        running = 0
        out = []
        for bound, bucket in zip(self.bounds, self.bucket_counts):
            running += bucket
            out.append((bound, running))
        return tuple(out)


class MetricFamily:
    """A named metric plus all its labeled children."""

    def __init__(self, name: str, kind: str, help: str,
                 label_names: Tuple[str, ...],
                 make_child: Callable[[], Any]) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = label_names
        self._make_child = make_child
        self._children: Dict[LabelValues, Any] = {}

    def labels(self, *values, **kv) -> Any:
        """The child instrument for one label combination.

        Accepts either positional values (in declaration order) or
        keywords; an unlabeled family takes no arguments.
        """
        if kv:
            if values:
                raise ValueError("pass labels positionally or by name, "
                                 "not both")
            try:
                values = tuple(str(kv.pop(n)) for n in self.label_names)
            except KeyError as exc:
                raise ValueError("missing label %s for metric %r"
                                 % (exc, self.name)) from None
            if kv:
                raise ValueError("unknown labels %s for metric %r"
                                 % (sorted(kv), self.name))
        else:
            values = tuple(str(v) for v in values)
        if len(values) != len(self.label_names):
            raise ValueError(
                "metric %r takes labels %s, got %d value(s)"
                % (self.name, list(self.label_names), len(values))
            )
        child = self._children.get(values)
        if child is None:
            child = self._children[values] = self._make_child()
        return child

    def collect(self) -> Iterable[Sample]:
        for values, child in sorted(self._children.items()):
            labels = dict(zip(self.label_names, values))
            if self.kind == "histogram":
                yield Sample(self.name, labels, child.total, self.kind,
                             self.help, buckets=child.cumulative(),
                             count=child.count)
            elif self.kind == "gauge":
                yield Sample(self.name, labels, child.read(), self.kind,
                             self.help)
            else:
                yield Sample(self.name, labels, child.value, self.kind,
                             self.help)


_VALID_FIRST = set("abcdefghijklmnopqrstuvwxyz"
                   "ABCDEFGHIJKLMNOPQRSTUVWXYZ_:")


class MetricsRegistry:
    """Owns every metric family; the scrape surface for the exporters."""

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}
        self._collectors: List[Callable[[], Iterable[Sample]]] = []
        self._coverage: Dict[str, int] = {}

    # -- family constructors -------------------------------------------------

    def _family(self, name: str, kind: str, help: str,
                labels: Sequence[str], make_child) -> MetricFamily:
        if not name or name[0] not in _VALID_FIRST:
            raise ValueError("invalid metric name %r" % name)
        existing = self._families.get(name)
        if existing is not None:
            if (existing.kind != kind
                    or existing.label_names != tuple(labels)):
                raise ValueError(
                    "metric %r already registered as %s%s"
                    % (name, existing.kind, list(existing.label_names))
                )
            return existing
        family = MetricFamily(name, kind, help, tuple(labels), make_child)
        self._families[name] = family
        return family

    def counter(self, name: str, help: str = "",
                labels: Sequence[str] = ()) -> MetricFamily:
        return self._family(name, "counter", help, labels, Counter)

    def gauge(self, name: str, help: str = "",
              labels: Sequence[str] = ()) -> MetricFamily:
        return self._family(name, "gauge", help, labels, Gauge)

    def histogram(self, name: str, help: str = "",
                  labels: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS
                  ) -> MetricFamily:
        return self._family(name, "histogram", help, labels,
                            lambda: Histogram(buckets))

    # -- collector callbacks (the ad-hoc-counter migration path) ---------------

    def register_collector(
        self, collector: Callable[[], Iterable[Sample]]
    ) -> None:
        """Add a scrape-time callback yielding :class:`Sample` objects.

        The callback runs on every :meth:`collect`; it should read live
        attributes of the object it wraps, so the wrapped hot path never
        learns it is being watched.
        """
        self._collectors.append(collector)

    def register_object(self, prefix: str, obj: Any,
                        attributes: Sequence[str],
                        labels: Optional[Dict[str, Any]] = None,
                        kind: str = "counter",
                        help: str = "") -> None:
        """Export ``obj.<attr>`` as ``<prefix>_<attr>`` lazily.

        The common migration one-liner: every named attribute becomes a
        sample read at scrape time.
        """
        label_dict = {k: str(v) for k, v in (labels or {}).items()}

        def collect() -> Iterable[Sample]:
            for attr in attributes:
                yield Sample("%s_%s" % (prefix, attr), dict(label_dict),
                             float(getattr(obj, attr)), kind, help)

        self.register_collector(collect)

    # -- coverage counters (OVS coverage/show) ---------------------------------

    def coverage(self, name: str, amount: int = 1) -> None:
        """Bump the named coverage counter (create on first use)."""
        self._coverage[name] = self._coverage.get(name, 0) + amount

    def coverage_counters(self) -> Dict[str, int]:
        return dict(self._coverage)

    def coverage_report(self) -> str:
        """``coverage/show``-style listing, hit counters first."""
        hit = sorted((n, c) for n, c in self._coverage.items() if c)
        zeros = sorted(n for n, c in self._coverage.items() if not c)
        lines = ["%-32s %12d" % (name, count) for name, count in hit]
        if zeros:
            lines.append("%d events never hit" % len(zeros))
            lines.extend("  %s" % name for name in zeros)
        if not lines:
            lines = ["no coverage events recorded"]
        return "\n".join(lines)

    # -- scraping ----------------------------------------------------------------

    def collect(self) -> List[Sample]:
        """Every current sample: families first, then collectors, then
        coverage counters (as ``coverage_total{event=...}``)."""
        samples: List[Sample] = []
        for name in sorted(self._families):
            samples.extend(self._families[name].collect())
        for collector in self._collectors:
            samples.extend(collector())
        for name in sorted(self._coverage):
            samples.append(Sample(
                "coverage_total", {"event": name},
                float(self._coverage[name]), "counter",
                "coverage counter occurrences",
            ))
        return samples

    def sample_value(self, name: str,
                     labels: Optional[Dict[str, str]] = None) -> float:
        """Test helper: the value of one sample (raises if absent)."""
        wanted = {k: str(v) for k, v in (labels or {}).items()}
        for sample in self.collect():
            if sample.name == name and sample.labels == wanted:
                return sample.value
        raise KeyError("no sample %r with labels %r" % (name, wanted))

    def __repr__(self) -> str:
        return "<MetricsRegistry families=%d collectors=%d coverage=%d>" % (
            len(self._families), len(self._collectors), len(self._coverage)
        )
