"""repro.obs — the unified observability plane.

Metrics registry + coverage counters (:mod:`repro.obs.registry`),
per-PMD cycle accounting (:mod:`repro.obs.cycles`), sampled per-packet
path tracing (:mod:`repro.obs.trace`), Prometheus / JSONL exporters and
the periodic snapshotter (:mod:`repro.obs.export`), all bundled per host
by :class:`~repro.obs.plane.Observability`.
"""

from repro.obs.cycles import (
    CYCLES_PER_SECOND,
    PmdCycleReport,
    StageAccounting,
    seconds_to_cycles,
)
from repro.obs.export import (
    Snapshotter,
    jsonl_snapshots,
    parse_jsonl_snapshots,
    prometheus_text,
    snapshot_dict,
    validate_prometheus_text,
)
from repro.obs.plane import Observability
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Sample,
)
from repro.obs.trace import PathTracer, Span, Trace, span_hop

__all__ = [
    "CYCLES_PER_SECOND",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "PathTracer",
    "PmdCycleReport",
    "Sample",
    "Snapshotter",
    "Span",
    "StageAccounting",
    "Trace",
    "jsonl_snapshots",
    "parse_jsonl_snapshots",
    "prometheus_text",
    "seconds_to_cycles",
    "snapshot_dict",
    "span_hop",
    "validate_prometheus_text",
]
