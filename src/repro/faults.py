"""Deterministic, seedable control-plane fault injection.

Real NFV control planes lose RPCs, time out on hypervisor monitor
commands and drop virtio-serial messages; the bypass establishment
sequence must degrade to the switch path instead of wedging.  A
:class:`FaultPlan` is the single source of injected misbehaviour: named
*injection points* scattered through the control plane call
:meth:`FaultPlan.fire` on every occurrence, and the plan — driven by a
seeded PRNG or exact nth-occurrence triggers — decides whether that
occurrence is dropped, delayed, errored or escalated to a crash.

Because the simulation engine is deterministic and the plan's PRNG is
seeded, a given (seed, plan, workload) triple always injects the same
faults at the same points: every failure a test observes is replayable.

Injection points wired through the library:

========================  ====================================================
point                     where it fires
========================  ====================================================
``agent.rpc.send``        OVS -> compute-agent request transmission
``agent.rpc.reply``       compute-agent -> OVS completion reply
``qemu.plug``             QEMU monitor ``device_add`` (ivshmem hot-plug)
``qemu.unplug``           QEMU monitor ``device_del``
``serial.to_guest``       virtio-serial host -> guest message delivery
``serial.to_host``        virtio-serial guest -> host message delivery
``memzone.reserve``       bypass memzone allocation
``pmd.rx_poll``           guest PMD receive poll (consumer freeze/stall)
``ring.corrupt``          shared-ring slot/generation corruption on enqueue
``controller.conn``       OpenFlow channel send (either direction)
``controller.reconnect``  fail-mode manager reconnect attempt
``vm.crash``              hypervisor chaos tick: kill one running VM
``vm.crash_during_setup`` compute agent: the receiver VM dies mid-setup
========================  ====================================================

Mode semantics at a point:

* ``DROP`` — the operation/message silently vanishes; the waiting side
  only recovers through its own timeout.  (Synchronous, env-less
  components cannot "hang", so they surface DROP as an error instead.)
* ``DELAY`` — the operation completes after ``delay`` extra seconds.
* ``ERROR`` — the operation fails immediately with an explicit error.
* ``CRASH`` — where a VM is in scope (the QEMU points) the target VM is
  destroyed mid-operation; elsewhere CRASH degrades to DROP/ERROR.

The two runtime data-path points reinterpret the modes locally:
``pmd.rx_poll`` maps DROP/DELAY to skipping one poll / freezing the
consumer for ``delay`` seconds and ERROR/CRASH to a permanent wedge;
``ring.corrupt`` smashes the oldest occupied slot to ``None`` (CRASH
instead bumps the ring's generation tag).  Both are documented with
their consumers in :mod:`repro.core.pmd` and :mod:`repro.mem.ring`.

The two VM-lifecycle points ignore the mode entirely — any triggered
occurrence kills a VM via :meth:`Hypervisor.crash_vm` (abrupt process
death, not graceful teardown).  ``vm.crash`` is polled by the
hypervisor's chaos tick and picks victims round-robin (or the VM named
by the spec's ``message``); ``vm.crash_during_setup`` fires inside the
compute agent's establishment sequence, after the bypass zones are
plugged but before the receiver's PMD is configured — the worst-case
crash window for channel state.
"""

import enum
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

AGENT_RPC_SEND = "agent.rpc.send"
AGENT_RPC_REPLY = "agent.rpc.reply"
QEMU_PLUG = "qemu.plug"
QEMU_UNPLUG = "qemu.unplug"
SERIAL_TO_GUEST = "serial.to_guest"
SERIAL_TO_HOST = "serial.to_host"
MEMZONE_RESERVE = "memzone.reserve"
PMD_RX_POLL = "pmd.rx_poll"
RING_CORRUPT = "ring.corrupt"
CONTROLLER_CONN = "controller.conn"
CONTROLLER_RECONNECT = "controller.reconnect"
VM_CRASH = "vm.crash"
VM_CRASH_DURING_SETUP = "vm.crash_during_setup"

KNOWN_POINTS = (
    AGENT_RPC_SEND,
    AGENT_RPC_REPLY,
    QEMU_PLUG,
    QEMU_UNPLUG,
    SERIAL_TO_GUEST,
    SERIAL_TO_HOST,
    MEMZONE_RESERVE,
    PMD_RX_POLL,
    RING_CORRUPT,
    CONTROLLER_CONN,
    CONTROLLER_RECONNECT,
    VM_CRASH,
    VM_CRASH_DURING_SETUP,
)


class FaultMode(enum.Enum):
    """What happens to an operation selected for injection."""

    DROP = "drop"
    DELAY = "delay"
    ERROR = "error"
    CRASH = "crash"


class InjectedFaultError(RuntimeError):
    """The error surfaced by an ERROR/CRASH-mode injection."""


@dataclass
class FaultSpec:
    """One rule: when ``point`` fires, maybe inject ``mode``.

    Either probabilistic (``probability`` per occurrence, drawn from the
    plan's seeded PRNG) or exact (``occurrences`` — 1-based occurrence
    indices of the point that always trigger; probability is ignored).
    ``max_triggers`` bounds how often the spec fires in total.
    """

    point: str
    mode: FaultMode
    probability: float = 1.0
    occurrences: Tuple[int, ...] = ()
    max_triggers: Optional[int] = None
    delay: float = 0.05
    message: str = ""
    triggered: int = 0

    def __post_init__(self) -> None:
        if isinstance(self.mode, str):
            self.mode = FaultMode(self.mode)
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                "probability must be in [0, 1], got %r" % self.probability
            )
        self.occurrences = tuple(self.occurrences)
        if any(n < 1 for n in self.occurrences):
            raise ValueError("occurrence indices are 1-based")

    @property
    def exhausted(self) -> bool:
        if self.max_triggers is not None:
            return self.triggered >= self.max_triggers
        if self.occurrences:
            return self.triggered >= len(self.occurrences)
        return False


@dataclass(frozen=True)
class FaultAction:
    """One injected fault, as recorded in :attr:`FaultPlan.injected`."""

    point: str
    mode: FaultMode
    occurrence: int
    delay: float
    message: str


class FaultPlan:
    """A seeded set of fault specs plus the occurrence bookkeeping.

    One plan instance is shared by every component of a node; occurrence
    counts are therefore global per point (the third ``qemu.plug`` on the
    host is occurrence 3 regardless of which VM it targets).
    """

    def __init__(self, seed: int = 0,
                 specs: Sequence[FaultSpec] = ()) -> None:
        self.seed = seed
        self._rng = random.Random(seed)
        self._specs: Dict[str, List[FaultSpec]] = {}
        self.occurrences: Dict[str, int] = {}
        self.injected: List[FaultAction] = []
        for spec in specs:
            self.add(spec)

    def add(self, spec: FaultSpec) -> FaultSpec:
        self._specs.setdefault(spec.point, []).append(spec)
        return spec

    def inject(self, point: str, mode, **kwargs) -> FaultSpec:
        """Shorthand: build and register a :class:`FaultSpec`."""
        return self.add(FaultSpec(point=point, mode=mode, **kwargs))

    @property
    def specs(self) -> List[FaultSpec]:
        return [spec for specs in self._specs.values() for spec in specs]

    def has_specs(self, point: str) -> bool:
        """True if any spec is registered at ``point``.

        Data-path injection points sit on per-packet hot loops; callers
        gate :meth:`fire` on this so an armed-but-irrelevant plan costs
        one dict probe instead of polluting occurrence counts.
        """
        return bool(self._specs.get(point))

    # -- the hot call ------------------------------------------------------

    def fire(self, point: str) -> Optional[FaultAction]:
        """Record one occurrence of ``point``; return the fault to
        inject, or None for a clean pass-through.

        At most one spec triggers per occurrence (first registered
        wins), so composed plans stay easy to reason about.
        """
        occurrence = self.occurrences.get(point, 0) + 1
        self.occurrences[point] = occurrence
        for spec in self._specs.get(point, ()):
            if spec.exhausted:
                continue
            if spec.occurrences:
                hit = occurrence in spec.occurrences
            else:
                hit = self._rng.random() < spec.probability
            if not hit:
                continue
            spec.triggered += 1
            action = FaultAction(
                point=point,
                mode=spec.mode,
                occurrence=occurrence,
                delay=spec.delay,
                message=spec.message
                or "injected %s at %s (occurrence %d)"
                % (spec.mode.value, point, occurrence),
            )
            self.injected.append(action)
            return action
        return None

    # -- reporting ---------------------------------------------------------

    @property
    def total_injected(self) -> int:
        return len(self.injected)

    def injected_at(self, point: str) -> List[FaultAction]:
        return [a for a in self.injected if a.point == point]

    def summary_rows(self) -> List[List]:
        """``[point, occurrences, injected]`` rows for report tables."""
        points = sorted(
            set(self.occurrences) | set(self._specs)
        )
        return [
            [point, self.occurrences.get(point, 0),
             len(self.injected_at(point))]
            for point in points
        ]

    def __repr__(self) -> str:
        return "<FaultPlan seed=%d specs=%d injected=%d>" % (
            self.seed, len(self.specs), len(self.injected)
        )
