"""Event timeline: structured tracing of control-plane transitions.

Experiments and operators want a narrative — "rule installed, link
detected, channel active 101 ms later, revoked, drained, removed".  An
:class:`EventTimeline` collects ``(time, name, attributes)`` records,
can be wired to the detector/manager callbacks in one call, and renders
as aligned text.
"""

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


@dataclass
class TimelineEvent:
    time: float
    name: str
    attributes: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        details = " ".join(
            "%s=%s" % (key, value)
            for key, value in self.attributes.items()
        )
        return "%10.3f ms  %-22s %s" % (self.time * 1e3, self.name,
                                        details)


class EventTimeline:
    """A bounded event trace with a clock and text rendering.

    The buffer is a ring keeping the MOST RECENT ``max_events`` records:
    a long-running experiment that overflows loses its oldest history,
    not the transitions that just happened (which are invariably the
    ones being debugged).  ``dropped`` counts the discarded prefix and
    :meth:`render` announces it.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 max_events: int = 100000) -> None:
        if max_events < 1:
            raise ValueError("max_events must be positive")
        self.clock = clock or (lambda: 0.0)
        self.max_events = max_events
        self.events: "deque[TimelineEvent]" = deque(maxlen=max_events)
        self.dropped = 0

    def record(self, name: str, **attributes) -> None:
        if len(self.events) == self.max_events:
            self.dropped += 1  # deque evicts the oldest on append
        self.events.append(
            TimelineEvent(self.clock(), name, attributes)
        )

    def filter(self, name: str) -> List[TimelineEvent]:
        return [event for event in self.events if event.name == name]

    def spans(self, start_name: str, end_name: str,
              key: str) -> List[float]:
        """Durations between paired start/end events matched on a key
        attribute (e.g. link establishment times)."""
        open_starts: Dict[Any, float] = {}
        durations: List[float] = []
        for event in self.events:
            tag = event.attributes.get(key)
            if event.name == start_name:
                open_starts[tag] = event.time
            elif event.name == end_name and tag in open_starts:
                durations.append(event.time - open_starts.pop(tag))
        return durations

    def render(self) -> str:
        lines = []
        if self.dropped:
            lines.append("... %d earlier events dropped" % self.dropped)
        lines.extend(event.render() for event in self.events)
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.events)


def attach_sched_tracing(timeline: EventTimeline, scheduler) -> None:
    """Subscribe a timeline to a PmdScheduler's rebalance activity.

    Records one ``sched-rebalance`` event per applied plan (with the
    variance-improvement estimate) and one ``sched-port-moved`` per
    individual move, so an experiment's narrative shows exactly when
    the layout changed during live traffic.
    """
    scheduler.on_move.append(
        lambda port, src_core, dst_core: timeline.record(
            "sched-port-moved", port=port.name, src=src_core,
            dst=dst_core,
        )
    )
    scheduler.on_apply.append(
        lambda plan: timeline.record(
            "sched-rebalance", moves=len(plan.moves),
            improvement="%.2f" % plan.improvement,
        )
    )


def attach_overload_tracing(timeline: EventTimeline, switch) -> None:
    """Subscribe a timeline to a VSwitchd's overload-control events.

    Covers all three layers: upcall sheds from the bounded queue,
    controller outage/recovery transitions from the fail-mode manager,
    and RX shed level changes from the overload monitor.  Each source is
    optional — only what the switch actually has gets wired.
    """
    def listener(event, attrs):
        timeline.record(event, **attrs)

    for source in (getattr(switch, "upcall_queue", None),
                   getattr(switch, "failmode", None),
                   getattr(switch, "overload", None)):
        if source is not None:
            source.on_event.append(listener)


def attach_highway_tracing(timeline: EventTimeline, detector,
                           manager) -> None:
    """Subscribe a timeline to the detector and bypass manager."""
    detector.on_created.append(
        lambda link: timeline.record(
            "p2p-detected", src=link.src_ofport, dst=link.dst_ofport,
            flow=link.flow_id,
        )
    )
    detector.on_removed.append(
        lambda link: timeline.record(
            "p2p-revoked", src=link.src_ofport, dst=link.dst_ofport,
        )
    )
    manager.on_link_active.append(
        lambda bl: timeline.record(
            "bypass-active", src=bl.link.src_ofport,
            dst=bl.link.dst_ofport, zone=bl.zone_name,
        )
    )
    manager.on_link_removed.append(
        lambda bl: timeline.record(
            "bypass-removed", src=bl.link.src_ofport,
            dst=bl.link.dst_ofport,
            # stats is None when provisioning itself failed (injected
            # memzone faults): the link carried nothing.
            carried=bl.stats.tx_packets if bl.stats is not None else 0,
        )
    )
    manager.on_link_degraded.append(
        lambda bl, verdict: timeline.record(
            "bypass-degraded", src=bl.link.src_ofport,
            dst=bl.link.dst_ofport, verdict=verdict.value,
        )
    )
    manager.on_readmission_deferred.append(
        lambda src_ofport: timeline.record(
            "bypass-readmission-deferred", src=src_ofport,
        )
    )
    manager.on_link_readmitted.append(
        lambda bl: timeline.record(
            "bypass-readmitted", src=bl.link.src_ofport,
            dst=bl.link.dst_ofport,
        )
    )


def attach_lifecycle_tracing(timeline: EventTimeline, repairer=None,
                             hypervisor=None) -> None:
    """Subscribe a timeline to the crash/repair lifecycle.

    Records one ``vm-crashed`` event per abrupt VM death (from the
    hypervisor) and one event per chain-repairer transition (nf-down,
    nf-repair-started, nf-repaired, nf-repair-failed, nf-demoted,
    nf-removed).  Either source is optional.
    """
    if hypervisor is not None:
        hypervisor.on_crash.append(
            lambda name: timeline.record("vm-crashed", vm=name)
        )
    if repairer is not None:
        repairer.on_event.append(
            lambda event, nf: timeline.record(event, nf=nf)
        )
