"""Event timeline: structured tracing of control-plane transitions.

Experiments and operators want a narrative — "rule installed, link
detected, channel active 101 ms later, revoked, drained, removed".  An
:class:`EventTimeline` collects ``(time, name, attributes)`` records,
can be wired to the detector/manager callbacks in one call, and renders
as aligned text.
"""

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


@dataclass
class TimelineEvent:
    time: float
    name: str
    attributes: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        details = " ".join(
            "%s=%s" % (key, value)
            for key, value in self.attributes.items()
        )
        return "%10.3f ms  %-22s %s" % (self.time * 1e3, self.name,
                                        details)


class EventTimeline:
    """An append-only trace with a clock and text rendering."""

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 max_events: int = 100000) -> None:
        self.clock = clock or (lambda: 0.0)
        self.max_events = max_events
        self.events: List[TimelineEvent] = []
        self.dropped = 0

    def record(self, name: str, **attributes) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(
            TimelineEvent(self.clock(), name, attributes)
        )

    def filter(self, name: str) -> List[TimelineEvent]:
        return [event for event in self.events if event.name == name]

    def spans(self, start_name: str, end_name: str,
              key: str) -> List[float]:
        """Durations between paired start/end events matched on a key
        attribute (e.g. link establishment times)."""
        open_starts: Dict[Any, float] = {}
        durations: List[float] = []
        for event in self.events:
            tag = event.attributes.get(key)
            if event.name == start_name:
                open_starts[tag] = event.time
            elif event.name == end_name and tag in open_starts:
                durations.append(event.time - open_starts.pop(tag))
        return durations

    def render(self) -> str:
        return "\n".join(event.render() for event in self.events)

    def __len__(self) -> int:
        return len(self.events)


def attach_highway_tracing(timeline: EventTimeline, detector,
                           manager) -> None:
    """Subscribe a timeline to the detector and bypass manager."""
    detector.on_created.append(
        lambda link: timeline.record(
            "p2p-detected", src=link.src_ofport, dst=link.dst_ofport,
            flow=link.flow_id,
        )
    )
    detector.on_removed.append(
        lambda link: timeline.record(
            "p2p-revoked", src=link.src_ofport, dst=link.dst_ofport,
        )
    )
    manager.on_link_active.append(
        lambda bl: timeline.record(
            "bypass-active", src=bl.link.src_ofport,
            dst=bl.link.dst_ofport, zone=bl.zone_name,
        )
    )
    manager.on_link_removed.append(
        lambda bl: timeline.record(
            "bypass-removed", src=bl.link.src_ofport,
            dst=bl.link.dst_ofport,
            # stats is None when provisioning itself failed (injected
            # memzone faults): the link carried nothing.
            carried=bl.stats.tx_packets if bl.stats is not None else 0,
        )
    )
