"""Latency sampling with a bounded reservoir.

Sinks stamp per-packet latency (drain time minus injection time); keeping
every sample of a multi-million-packet run would dominate memory, so the
recorder keeps a uniform reservoir (Vitter's algorithm R) plus exact
min/max/mean over the full population.
"""

import random
from typing import List, Optional, Sequence


class LatencyRecorder:
    """Streaming latency statistics with reservoir sampling."""

    def __init__(self, reservoir_size: int = 4096,
                 seed: Optional[int] = 0xC0FFEE) -> None:
        if reservoir_size <= 0:
            raise ValueError("reservoir size must be positive")
        self.reservoir_size = reservoir_size
        self._rng = random.Random(seed)
        self._reservoir: List[float] = []
        self._sorted: Optional[List[float]] = None
        self.count = 0
        self.total = 0.0
        # Internal extrema; the public min_value/max_value properties
        # report 0.0 on an empty recorder instead of the inf sentinel.
        self._min = float("inf")
        self._max = 0.0

    @property
    def min_value(self) -> float:
        return self._min if self.count else 0.0

    @property
    def max_value(self) -> float:
        return self._max if self.count else 0.0

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if len(self._reservoir) < self.reservoir_size:
            self._reservoir.append(value)
            self._sorted = None
            return
        slot = self._rng.randrange(self.count)
        if slot < self.reservoir_size:
            self._reservoir[slot] = value
            self._sorted = None

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def _ordered(self) -> List[float]:
        """The reservoir, sorted once and cached until the next record."""
        if self._sorted is None:
            self._sorted = sorted(self._reservoir)
        return self._sorted

    def percentile(self, fraction: float) -> float:
        """Approximate percentile from the reservoir (0 <= fraction <= 1).

        Linear interpolation between the two neighbouring ranks (the
        "type 7" estimator) instead of nearest-rank: a smooth,
        deterministic function of the samples, so p99.9 of a small
        reservoir no longer snaps to whichever extreme sample happens
        to hold the last slot.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        if not self._reservoir:
            return 0.0
        ordered = self._ordered()
        if len(ordered) == 1:
            return ordered[0]
        rank = fraction * (len(ordered) - 1)
        lower = int(rank)
        upper = min(lower + 1, len(ordered) - 1)
        weight = rank - lower
        return ordered[lower] + (ordered[upper] - ordered[lower]) * weight

    def percentiles(self, fractions: Sequence[float]) -> List[float]:
        """Batch accessor: one sort, many quantiles."""
        return [self.percentile(fraction) for fraction in fractions]

    @property
    def p50(self) -> float:
        return self.percentile(0.50)

    @property
    def p95(self) -> float:
        return self.percentile(0.95)

    @property
    def p99(self) -> float:
        return self.percentile(0.99)

    @property
    def p999(self) -> float:
        return self.percentile(0.999)

    def merge(self, other: "LatencyRecorder") -> None:
        """Fold another recorder's population into this one.

        Merging an empty recorder is a strict no-op — it must not
        disturb the extrema (an empty source has no minimum to
        contribute, only its init sentinel).
        """
        if other.count == 0:
            return
        for value in other._reservoir:
            self.record(value)
        # Adjust population stats beyond the sampled values.
        extra = other.count - len(other._reservoir)
        if extra > 0:
            self.count += extra
            self.total += other.mean * extra
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    def summary(self) -> str:
        """One-line human summary; ``-`` marks an empty recorder."""
        if not self.count:
            return "latency: - (no samples)"
        return ("latency: n=%d mean=%.2fus min=%.2fus p50=%.2fus "
                "p99=%.2fus max=%.2fus"
                % (self.count, self.mean * 1e6, self.min_value * 1e6,
                   self.p50 * 1e6, self.p99 * 1e6, self.max_value * 1e6))

    def __repr__(self) -> str:
        if not self.count:
            return "<LatencyRecorder empty>"
        return "<LatencyRecorder n=%d mean=%.3gus p99=%.3gus>" % (
            self.count, self.mean * 1e6, self.p99 * 1e6
        )
