"""Latency sampling with a bounded reservoir.

Sinks stamp per-packet latency (drain time minus injection time); keeping
every sample of a multi-million-packet run would dominate memory, so the
recorder keeps a uniform reservoir (Vitter's algorithm R) plus exact
min/max/mean over the full population.
"""

import random
from typing import List, Optional


class LatencyRecorder:
    """Streaming latency statistics with reservoir sampling."""

    def __init__(self, reservoir_size: int = 4096,
                 seed: Optional[int] = 0xC0FFEE) -> None:
        if reservoir_size <= 0:
            raise ValueError("reservoir size must be positive")
        self.reservoir_size = reservoir_size
        self._rng = random.Random(seed)
        self._reservoir: List[float] = []
        self.count = 0
        self.total = 0.0
        self.min_value = float("inf")
        self.max_value = 0.0

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value
        if len(self._reservoir) < self.reservoir_size:
            self._reservoir.append(value)
            return
        slot = self._rng.randrange(self.count)
        if slot < self.reservoir_size:
            self._reservoir[slot] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, fraction: float) -> float:
        """Approximate percentile from the reservoir (0 <= fraction <= 1)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        if not self._reservoir:
            return 0.0
        ordered = sorted(self._reservoir)
        index = min(int(fraction * len(ordered)), len(ordered) - 1)
        return ordered[index]

    @property
    def p50(self) -> float:
        return self.percentile(0.50)

    @property
    def p99(self) -> float:
        return self.percentile(0.99)

    def merge(self, other: "LatencyRecorder") -> None:
        """Fold another recorder's population into this one."""
        for value in other._reservoir:
            self.record(value)
        # Adjust population stats beyond the sampled values.
        extra = other.count - len(other._reservoir)
        if extra > 0:
            self.count += extra
            self.total += other.mean * extra
        self.min_value = min(self.min_value, other.min_value)
        self.max_value = max(self.max_value, other.max_value)

    def __repr__(self) -> str:
        if not self.count:
            return "<LatencyRecorder empty>"
        return "<LatencyRecorder n=%d mean=%.3gus p99=%.3gus>" % (
            self.count, self.mean * 1e6, self.p99 * 1e6
        )
