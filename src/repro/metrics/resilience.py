"""Control-plane resilience counters (retries, quarantines, damping).

The self-healing :class:`~repro.core.bypass.BypassManager` reports every
recovery action through one :class:`ResilienceCounters` block; the
``appctl bypass/faults`` command and the fault-injection benchmarks read
it.  Counters only ever increase, so deterministic tests can assert
exact values under a seeded :class:`~repro.faults.FaultPlan`.
"""

from dataclasses import dataclass, fields
from typing import List


@dataclass
class ResilienceCounters:
    """Monotonic counters for the bypass control plane's self-healing."""

    establish_attempts: int = 0    # agent setup requests issued
    timeouts: int = 0              # attempts abandoned by the step timeout
    rpc_errors: int = 0            # attempts that returned an explicit error
    provision_failures: int = 0    # memzone/ring provisioning failures
    rollbacks: int = 0             # partial-state rollbacks executed
    retries: int = 0               # re-attempts scheduled with backoff
    quarantines: int = 0           # links that exhausted the retry budget
    quarantine_reattempts: int = 0  # establishments retried out of quarantine
    flaps_damped: int = 0          # detector churn events absorbed
    links_recovered: int = 0       # links that went ACTIVE after >= 1 retry
    links_abandoned: int = 0       # recovery stopped (revoked / endpoint died)
    teardown_failures: int = 0     # teardowns that needed the janitor path
    # Runtime health (the watchdog's ledger; see PROTOCOL.md
    # "Runtime failure model").
    stalled_consumers: int = 0     # occupancy > 0, dequeue cursor frozen
    wedged_guests: int = 0         # heartbeat frozen, normal channel backing up
    dead_peer_fallbacks: int = 0   # endpoint dead per agent, link still ACTIVE
    ring_integrity_failures: int = 0  # Ring.validate() caught corruption
    links_degraded: int = 0        # live fallbacks executed (any reason)
    packets_salvaged: int = 0      # ring leftovers re-homed during fallback
    degraded_readmissions: int = 0  # DEGRADED links re-admitted to bypass
    readmissions_deferred: int = 0  # re-admission held: peer still silent
    # Crash lifecycle (abrupt VM death; see PROTOCOL.md "Crash failure
    # model").
    peer_crashes: int = 0          # VM crashes that touched bypass state
    mbufs_reclaimed: int = 0       # mbufs swept off dead holders' ledgers
    crashed_peer_readmissions: int = 0  # re-admitted after a peer crash

    def rows(self) -> List[List]:
        """``[counter, value]`` rows for :func:`~repro.metrics.format_table`."""
        return [[f.name.replace("_", " "), getattr(self, f.name)]
                for f in fields(self)]

    @property
    def total_faults_survived(self) -> int:
        """Attempt-level failures the control plane absorbed."""
        return (self.timeouts + self.rpc_errors + self.provision_failures
                + self.teardown_failures)

    def __repr__(self) -> str:
        return "<ResilienceCounters attempts=%d retries=%d quarantines=%d>" % (
            self.establish_attempts, self.retries, self.quarantines
        )
