"""Throughput accounting."""

from typing import List, Tuple


def to_mpps(packets: int, seconds: float) -> float:
    """Packets over a window, expressed in million packets per second."""
    if seconds <= 0:
        return 0.0
    return packets / seconds / 1e6


def mpps(value: float) -> str:
    """Human formatting for an Mpps figure."""
    return "%.3f Mpps" % value


class RateMeter:
    """Windowed rate: sample (time, cumulative count) pairs."""

    def __init__(self, name: str = "rate") -> None:
        self.name = name
        self._samples: List[Tuple[float, int]] = []

    def sample(self, now: float, cumulative_count: int) -> None:
        self._samples.append((now, cumulative_count))

    @property
    def samples(self) -> List[Tuple[float, int]]:
        return list(self._samples)

    def rate_between(self, start_index: int, end_index: int) -> float:
        """Packets/second between two samples.

        Indices follow Python sequence semantics: negative values count
        from the newest sample (``-1`` is the latest), so
        ``rate_between(0, -1)`` is the whole-run rate.  Out-of-range
        indices raise :class:`IndexError` with the meter's name and
        sample count rather than a bare list error.
        """
        total = len(self._samples)
        for index in (start_index, end_index):
            if not -total <= index < total:
                raise IndexError(
                    "%s: sample index %d out of range (%d samples)"
                    % (self.name, index, total)
                )
        t0, c0 = self._samples[start_index]
        t1, c1 = self._samples[end_index]
        if t1 <= t0:
            return 0.0
        return (c1 - c0) / (t1 - t0)

    @property
    def overall_rate(self) -> float:
        if len(self._samples) < 2:
            return 0.0
        return self.rate_between(0, len(self._samples) - 1)

    def interval_rates(self) -> List[float]:
        return [
            self.rate_between(index, index + 1)
            for index in range(len(self._samples) - 1)
        ]

    def steady_state_rate(self, skip_head: int = 1,
                          skip_tail: int = 0) -> float:
        """The rate with warmup and drain windows excluded.

        ``skip_head`` samples are dropped from the front (ramp-up) and
        ``skip_tail`` from the back (drain); the rate is computed
        between the first and last survivors.  Falls back to
        :attr:`overall_rate` when fewer than two samples would remain.
        """
        if skip_head < 0 or skip_tail < 0:
            raise ValueError("skip counts must be non-negative")
        remaining = len(self._samples) - skip_head - skip_tail
        if remaining < 2:
            return self.overall_rate
        return self.rate_between(skip_head,
                                 len(self._samples) - 1 - skip_tail)
