"""Throughput accounting."""

from typing import List, Tuple


def to_mpps(packets: int, seconds: float) -> float:
    """Packets over a window, expressed in million packets per second."""
    if seconds <= 0:
        return 0.0
    return packets / seconds / 1e6


def mpps(value: float) -> str:
    """Human formatting for an Mpps figure."""
    return "%.3f Mpps" % value


class RateMeter:
    """Windowed rate: sample (time, cumulative count) pairs."""

    def __init__(self, name: str = "rate") -> None:
        self.name = name
        self._samples: List[Tuple[float, int]] = []

    def sample(self, now: float, cumulative_count: int) -> None:
        self._samples.append((now, cumulative_count))

    @property
    def samples(self) -> List[Tuple[float, int]]:
        return list(self._samples)

    def rate_between(self, start_index: int, end_index: int) -> float:
        """Packets/second between two samples."""
        t0, c0 = self._samples[start_index]
        t1, c1 = self._samples[end_index]
        if t1 <= t0:
            return 0.0
        return (c1 - c0) / (t1 - t0)

    @property
    def overall_rate(self) -> float:
        if len(self._samples) < 2:
            return 0.0
        return self.rate_between(0, len(self._samples) - 1)

    def interval_rates(self) -> List[float]:
        return [
            self.rate_between(index, index + 1)
            for index in range(len(self._samples) - 1)
        ]
