"""Measurement utilities: latency reservoirs, rate meters, report tables."""

from repro.metrics.latency import LatencyRecorder
from repro.metrics.rates import RateMeter, mpps, to_mpps
from repro.metrics.report import format_table, format_series
from repro.metrics.resilience import ResilienceCounters
from repro.metrics.timeline import (
    EventTimeline,
    TimelineEvent,
    attach_highway_tracing,
    attach_lifecycle_tracing,
    attach_overload_tracing,
)

__all__ = [
    "EventTimeline",
    "LatencyRecorder",
    "RateMeter",
    "ResilienceCounters",
    "TimelineEvent",
    "attach_highway_tracing",
    "attach_lifecycle_tracing",
    "attach_overload_tracing",
    "format_series",
    "format_table",
    "mpps",
    "to_mpps",
]
