"""Plain-text result tables (what the benchmark harness prints)."""

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned ASCII table."""
    materialized: List[List[str]] = [
        [_fmt(cell) for cell in row] for row in rows
    ]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(header.ljust(widths[i])
                  for i, header in enumerate(headers)),
        "  ".join("-" * width for width in widths),
    ]
    for row in materialized:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[object],
                  ys: Sequence[object]) -> str:
    """Render one figure series as ``name: (x, y) ...`` pairs."""
    points = ", ".join(
        "(%s, %s)" % (_fmt(x), _fmt(y)) for x, y in zip(xs, ys)
    )
    return "%s: %s" % (name, points)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return "%.4g" % value
    return str(value)
