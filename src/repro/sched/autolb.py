"""The PMD auto-load-balancer (OVS ``pmd-auto-lb``).

A housekeeping :class:`~repro.sim.pollloop.PollLoop` (like the bypass
watchdog) that every ``rebalance_interval``:

1. closes the load tracker's measurement interval;
2. checks whether any core is overloaded (busy fraction at or above
   ``load_threshold`` — from the PMD loops' own busy/idle accounting
   when the switch is running, from the tracker otherwise);
3. dry-runs a reassignment and applies it only if the estimated
   per-core load variance improves by at least
   ``improvement_threshold``.

Thresholds mirror real OVS's ``pmd-auto-lb-load-threshold`` /
``pmd-auto-lb-improvement-threshold`` semantics, scaled to simulated
time.  Every skip is counted, so ``sched/show`` can answer "why did it
not rebalance?".
"""

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.sched.scheduler import PmdScheduler, RebalancePlan
from repro.sim.pollloop import PollLoop


@dataclass(frozen=True)
class AutoLbPolicy:
    """Auto-LB knobs (``pmd-auto-lb-*`` analog)."""

    # Simulated seconds between checks; also the tracker interval.
    rebalance_interval: float = 0.002
    # A core at/above this busy fraction counts as overloaded.
    load_threshold: float = 0.85
    # Required fractional variance improvement before applying.
    improvement_threshold: float = 0.25
    # Skip the first N intervals so EWMAs see real traffic first.
    warmup_intervals: int = 1

    def __post_init__(self) -> None:
        if self.rebalance_interval <= 0:
            raise ValueError("rebalance_interval must be positive")
        if not 0.0 <= self.load_threshold <= 1.0:
            raise ValueError("load_threshold must be in [0, 1]")
        if not 0.0 <= self.improvement_threshold <= 1.0:
            raise ValueError("improvement_threshold must be in [0, 1]")


DEFAULT_AUTO_LB_POLICY = AutoLbPolicy()


class AutoLoadBalancer:
    """Periodic measured-load rebalancing for one vSwitchd."""

    def __init__(
        self,
        switch,
        policy: AutoLbPolicy = DEFAULT_AUTO_LB_POLICY,
    ) -> None:
        self.switch = switch
        self.scheduler: PmdScheduler = switch.scheduler
        self.policy = policy
        self.loop: Optional[PollLoop] = None
        self.checks_run = 0
        self.rebalances_applied = 0
        self.skipped_warmup = 0
        self.skipped_no_overload = 0
        self.skipped_no_moves = 0
        self.skipped_small_improvement = 0
        # Set by VSwitchd when an OverloadMonitor runs alongside: active
        # RX shedding masks the busy signal (dropped packets cost no
        # cycles), so the no-overload skip must not trust it.
        self.overload_monitor = None
        self.overload_overrides = 0
        self.last_busy_fractions: List[float] = []
        # Fired with the applied plan (after scheduler.on_apply hooks).
        self.on_rebalance: List[Callable[[RebalancePlan], None]] = []

    # -- the periodic check ---------------------------------------------------

    def _busy_fractions(self) -> List[float]:
        """Per-core busy fractions over the last interval.

        The running PMD loops are the authority (their busy/idle split
        includes flush and idle-poll time); without started loops —
        synchronous tests — fall back to the tracker's attributed
        seconds over the interval length.
        """
        sampled = self.switch.sample_core_busy()
        if sampled:
            return sampled
        interval = self.policy.rebalance_interval
        return [
            self.scheduler.tracker.last_core_seconds.get(core, 0.0)
            / interval
            for core in range(self.scheduler.n_cores)
        ]

    def iteration(self) -> float:
        """One check pass; the housekeeping loop's body."""
        tracker = self.scheduler.tracker
        tracker.roll()
        self.checks_run += 1
        if tracker.intervals <= self.policy.warmup_intervals:
            self.skipped_warmup += 1
            return 0.0
        busy = self._busy_fractions()
        self.last_busy_fractions = busy
        if not any(b >= self.policy.load_threshold for b in busy):
            if (self.overload_monitor is not None
                    and self.overload_monitor.shedding_active):
                self.overload_overrides += 1
            else:
                self.skipped_no_overload += 1
                return 0.0
        plan = self.scheduler.plan_rebalance()
        if not plan.moves:
            self.skipped_no_moves += 1
            return 0.0
        if plan.improvement < self.policy.improvement_threshold:
            self.skipped_small_improvement += 1
            return 0.0
        self.scheduler.apply_plan(plan)
        self.rebalances_applied += 1
        for hook in self.on_rebalance:
            hook(plan)
        return 0.0

    # -- lifecycle -----------------------------------------------------------------

    def start(self, env) -> PollLoop:
        if self.loop is not None:
            raise RuntimeError("auto-lb already running")
        self.loop = PollLoop(
            env, "%s.autolb" % self.switch.name, self.iteration,
            period=self.policy.rebalance_interval,
        ).start()
        return self.loop

    def stop(self) -> None:
        if self.loop is not None:
            self.loop.stop()
            self.loop = None

    def __repr__(self) -> str:
        return ("<AutoLoadBalancer checks=%d rebalances=%d interval=%g>"
                % (self.checks_run, self.rebalances_applied,
                   self.policy.rebalance_interval))
