"""Assignment policies: the ``pmd-rxq-assign`` analog.

Three policies, mirroring OVS ``dpif-netdev``:

* ``roundrobin`` — the static hash this repo always had
  (``ofport % n_cores``), kept as the baseline the benchmarks beat;
* ``cycles`` — sorted-greedy over *measured* load: heaviest port to the
  least-loaded core (OVS ``pmd-rxq-assign=cycles``);
* ``group`` — the same sorted-greedy, but honouring per-port pinning
  and core isolation (the ``pmd-rxq-affinity`` analog): a pinned port
  always lands on its core, and an isolated core receives only ports
  pinned to it.

Every policy returns an exact partition: each port appears on exactly
one core (the property test pins this).  Ties are broken by ofport so
reassignment is deterministic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.vswitch.ports import OvsPort


class AssignmentPolicy:
    """One placement strategy; stateless, reads loads via the scheduler."""

    name = "abstract"

    def place(self, port: OvsPort, scheduler) -> int:
        """Core for a newly added port (no rebalance of the others)."""
        raise NotImplementedError

    def assign(self, ports: List[OvsPort], scheduler) -> Dict[int, int]:
        """Full reassignment: ``{ofport: core}`` over every port."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return "<%s>" % type(self).__name__


class RoundRobinPolicy(AssignmentPolicy):
    """Static ``ofport % n_cores`` hash — placement never reacts to
    load, which is exactly the failure mode the scheduler fixes."""

    name = "roundrobin"

    def place(self, port: OvsPort, scheduler) -> int:
        return port.ofport % scheduler.n_cores

    def assign(self, ports: List[OvsPort], scheduler) -> Dict[int, int]:
        return {port.ofport: port.ofport % scheduler.n_cores
                for port in ports}


class CyclesPolicy(AssignmentPolicy):
    """Sorted-greedy over measured cycles: heaviest port first, each to
    the currently least-loaded core.  Ports without measured history
    count as zero-load and fall to the emptiest core (ties by port
    count, then core index)."""

    name = "cycles"

    def place(self, port: OvsPort, scheduler) -> int:
        return _least_loaded_core(scheduler, range(scheduler.n_cores))

    def assign(self, ports: List[OvsPort], scheduler) -> Dict[int, int]:
        return _greedy_assign(ports, scheduler,
                              usable=list(range(scheduler.n_cores)),
                              pinned={})


class GroupPolicy(AssignmentPolicy):
    """Sorted-greedy like ``cycles``, plus affinity: pinned ports stick
    to their core and isolated cores serve only ports pinned to them.
    If isolation leaves no usable core for unpinned ports, isolation is
    ignored for them (matching OVS's fallback rather than stranding
    traffic)."""

    name = "group"

    def place(self, port: OvsPort, scheduler) -> int:
        pinned = scheduler.pinned_core(port.ofport)
        if pinned is not None:
            return pinned
        return _least_loaded_core(scheduler, _usable_cores(scheduler))

    def assign(self, ports: List[OvsPort], scheduler) -> Dict[int, int]:
        pinned = {
            port.ofport: scheduler.pinned_core(port.ofport)
            for port in ports
            if scheduler.pinned_core(port.ofport) is not None
        }
        return _greedy_assign(ports, scheduler,
                              usable=_usable_cores(scheduler),
                              pinned=pinned)


def _usable_cores(scheduler) -> List[int]:
    usable = [core for core in range(scheduler.n_cores)
              if core not in scheduler.isolated_cores]
    return usable or list(range(scheduler.n_cores))


def _least_loaded_core(scheduler, cores) -> int:
    tracker = scheduler.tracker
    return min(cores, key=lambda core: (tracker.core_load(core),
                                        len(scheduler.core_ports[core]),
                                        core))


def _greedy_assign(ports: List[OvsPort], scheduler, usable: List[int],
                   pinned: Dict[int, int]) -> Dict[int, int]:
    """Heaviest-first greedy onto the least-charged usable core.

    ``charged`` starts from zero and accumulates the loads this very
    assignment places, so the result depends only on the measured port
    loads — not on the incumbent layout (OVS recomputes from scratch
    the same way).  Pinned ports are charged to their cores first.
    """
    tracker = scheduler.tracker
    charged = {core: 0.0 for core in range(scheduler.n_cores)}
    assignment: Dict[int, int] = {}
    for ofport, core in pinned.items():
        assignment[ofport] = core
        charged[core] += tracker.port_load(ofport)
    free = [port for port in ports if port.ofport not in pinned]
    free.sort(key=lambda port: (-tracker.port_load(port.ofport),
                                port.ofport))
    for port in free:
        core = min(usable, key=lambda c: (charged[c], c))
        assignment[port.ofport] = core
        charged[core] += tracker.port_load(port.ofport)
    return assignment


POLICIES = {
    RoundRobinPolicy.name: RoundRobinPolicy,
    CyclesPolicy.name: CyclesPolicy,
    GroupPolicy.name: GroupPolicy,
}


def make_policy(name: str) -> AssignmentPolicy:
    try:
        return POLICIES[name]()
    except KeyError:
        raise ValueError(
            "unknown rxq assignment policy %r (known: %s)"
            % (name, ", ".join(sorted(POLICIES)))
        ) from None
