"""PMD scheduling: measured rxq load, assignment policies, auto-LB.

The paper's testbed pinned every port to one PMD core; our reproduction
until now froze ports onto cores with a static ``ofport % n`` hash.
This package is the OVS ``dpif-netdev`` answer to that problem:

* :mod:`repro.sched.load` — per-(port, core) processing-cycle EWMAs
  sampled from the datapath's own cost attribution;
* :mod:`repro.sched.policy` — the assignment policies
  (``roundrobin`` / ``cycles`` / ``group``, the ``pmd-rxq-assign``
  analog, with ``pmd-rxq-affinity``-style pinning and isolation);
* :mod:`repro.sched.scheduler` — :class:`PmdScheduler`, the owner of
  the core → ports map, dry-run rebalance planning and safe handover;
* :mod:`repro.sched.autolb` — the PMD auto-load-balancer riding a
  housekeeping :class:`~repro.sim.pollloop.PollLoop`.
"""

from repro.sched.autolb import (
    AutoLbPolicy,
    AutoLoadBalancer,
    DEFAULT_AUTO_LB_POLICY,
)
from repro.sched.load import RxqLoadTracker
from repro.sched.policy import (
    AssignmentPolicy,
    CyclesPolicy,
    GroupPolicy,
    POLICIES,
    RoundRobinPolicy,
    make_policy,
)
from repro.sched.scheduler import PmdScheduler, PortMove, RebalancePlan

__all__ = [
    "AssignmentPolicy",
    "AutoLbPolicy",
    "AutoLoadBalancer",
    "CyclesPolicy",
    "DEFAULT_AUTO_LB_POLICY",
    "GroupPolicy",
    "POLICIES",
    "PmdScheduler",
    "PortMove",
    "RebalancePlan",
    "RoundRobinPolicy",
    "RxqLoadTracker",
    "make_policy",
]
