"""Measured rxq load: per-(port, core) processing-cycle EWMAs.

OVS's rxq scheduler does not guess what a queue costs — it samples the
processing cycles each rxq consumed over the last measurement intervals
and smooths them.  The simulation is in a better position still: the
datapath *attributes* the exact simulated cost of every port poll, so
the tracker only has to bucket those costs per (port, core) pair and
fold closed intervals into an EWMA.

The pair granularity matters: after a rebalance the same port has
history on two cores, and the scheduler must see what each core
actually paid (a port that was cheap on a core with a warm EMC may not
be cheap elsewhere).  Loads decay when a pair stops producing samples,
so stale history cannot pin a decision forever.
"""

from typing import Dict, Iterable, List, Tuple


class RxqLoadTracker:
    """Per-(port, core) EWMA of processing seconds per interval.

    The hot path calls :meth:`record` with the cost the datapath just
    charged for one port poll; a housekeeping tick (the auto-LB loop, a
    manual rebalance) calls :meth:`roll` to close the open interval.
    Between rolls nothing is smoothed — :meth:`record` is two dict
    operations.
    """

    # Pairs whose EWMA decays below this are dropped (dead history).
    _EPSILON = 1e-15

    def __init__(self, alpha: float = 0.4) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1], got %r" % alpha)
        self.alpha = alpha
        # Open-interval accumulators, keyed by (ofport, core).
        self._current_seconds: Dict[Tuple[int, int], float] = {}
        self._current_packets: Dict[Tuple[int, int], int] = {}
        # Smoothed seconds-per-interval per pair (closed intervals only).
        self._ewma: Dict[Tuple[int, int], float] = {}
        # Raw per-core seconds of the last *closed* interval (the
        # auto-LB's overload signal when poll loops are not running).
        self.last_core_seconds: Dict[int, float] = {}
        self.intervals = 0
        self.samples = 0

    # -- hot path -------------------------------------------------------------

    def record(self, ofport: int, core: int, seconds: float,
               packets: int = 0) -> None:
        """Attribute one port poll's cost to the (port, core) pair."""
        key = (ofport, core)
        self._current_seconds[key] = \
            self._current_seconds.get(key, 0.0) + seconds
        if packets:
            self._current_packets[key] = \
                self._current_packets.get(key, 0) + packets
        self.samples += 1

    # -- interval management ---------------------------------------------------

    def roll(self) -> None:
        """Close the open interval: fold it into the EWMAs and decay
        every pair that produced no samples."""
        alpha = self.alpha
        core_seconds: Dict[int, float] = {}
        for (ofport, core), seconds in self._current_seconds.items():
            core_seconds[core] = core_seconds.get(core, 0.0) + seconds
        for key in set(self._ewma) | set(self._current_seconds):
            sample = self._current_seconds.get(key, 0.0)
            smoothed = (alpha * sample
                        + (1.0 - alpha) * self._ewma.get(key, 0.0))
            if smoothed < self._EPSILON and not sample:
                self._ewma.pop(key, None)
            else:
                self._ewma[key] = smoothed
        self._current_seconds.clear()
        self._current_packets.clear()
        self.last_core_seconds = core_seconds
        self.intervals += 1

    # -- queries -------------------------------------------------------------

    def pair_load(self, ofport: int, core: int) -> float:
        """Smoothed seconds/interval this core pays for this port."""
        return self._ewma.get((ofport, core), 0.0)

    def port_load(self, ofport: int) -> float:
        """The port's total smoothed load across every core it touched."""
        return sum(load for (port, _core), load in self._ewma.items()
                   if port == ofport)

    def core_load(self, core: int) -> float:
        """Total smoothed load currently attributed to one core."""
        return sum(load for (_port, load_core), load in self._ewma.items()
                   if load_core == core)

    def core_loads(self, n_cores: int) -> List[float]:
        loads = [0.0] * n_cores
        for (_port, core), load in self._ewma.items():
            if 0 <= core < n_cores:
                loads[core] += load
        return loads

    def pairs(self) -> Iterable[Tuple[Tuple[int, int], float]]:
        """``((ofport, core), seconds-per-interval)`` rows, sorted."""
        return sorted(self._ewma.items())

    # -- membership maintenance ---------------------------------------------------

    def forget(self, ofport: int) -> None:
        """Drop every trace of a deleted port."""
        for store in (self._ewma, self._current_seconds,
                      self._current_packets):
            for key in [key for key in store if key[0] == ofport]:
                del store[key]

    def reset_pair(self, ofport: int, core: int) -> None:
        """Drop one (port, core) pair's history (the port moved away:
        the old core no longer pays for it, so the scheduler must not
        keep charging it there)."""
        key = (ofport, core)
        self._ewma.pop(key, None)
        self._current_seconds.pop(key, None)
        self._current_packets.pop(key, None)

    def __repr__(self) -> str:
        return "<RxqLoadTracker pairs=%d intervals=%d>" % (
            len(self._ewma), self.intervals
        )
