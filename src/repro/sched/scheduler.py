"""PmdScheduler: the owner of the core -> ports map.

:class:`~repro.vswitch.vswitchd.VSwitchd` used to compute
``ofport % n_pmd_cores`` inline at port-add time and never revisit it.
The scheduler replaces that hash: it owns the per-core port lists the
PMD poll loops iterate, places new ports by policy, and can re-plan the
whole layout from measured loads — first as a dry run (variance before
vs after), then applied move by move with safe handover.

Handover discipline: a move is applied *between* PMD iterations (the
discrete-event engine runs each iteration atomically, and the auto-LB
runs on its own housekeeping loop), so a port's in-flight burst always
finishes on the old core before the new core's next poll sees the port.
The shared dpdkr ring is the only queue involved and it is FIFO, so a
rebalance loses nothing and reorders nothing — the same ordered-
handover discipline the bypass subsystem enforces, with the test suite
asserting the zero-loss/zero-reorder property end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set

from repro.sched.load import RxqLoadTracker
from repro.sched.policy import AssignmentPolicy, make_policy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.vswitch.ports import OvsPort


@dataclass(frozen=True)
class PortMove:
    """One port changing cores in a rebalance plan."""

    ofport: int
    port_name: str
    src_core: int
    dst_core: int


@dataclass
class RebalancePlan:
    """A dry-run reassignment and its estimated effect."""

    assignment: Dict[int, int]          # ofport -> core (complete)
    moves: List[PortMove] = field(default_factory=list)
    variance_before: float = 0.0
    variance_after: float = 0.0

    @property
    def improvement(self) -> float:
        """Fractional variance reduction (0..1); 0 when already flat."""
        if self.variance_before <= 0.0:
            return 0.0
        return ((self.variance_before - self.variance_after)
                / self.variance_before)

    def __repr__(self) -> str:
        return "<RebalancePlan moves=%d var %.3g -> %.3g>" % (
            len(self.moves), self.variance_before, self.variance_after
        )


def load_variance(loads: List[float]) -> float:
    """Population variance of per-core loads (the auto-LB's balance
    metric, matching OVS's cycles-variance check)."""
    if not loads:
        return 0.0
    mean = sum(loads) / len(loads)
    return sum((load - mean) ** 2 for load in loads) / len(loads)


class PmdScheduler:
    """Places ports on PMD cores and re-plans from measured load.

    ``core_ports`` is the authoritative map: a list of lists whose
    *objects* never change identity — the PMD poll loops close over
    them, so every mutation (add / remove / move) is immediately
    visible to the running cores without restarting anything.
    """

    def __init__(
        self,
        n_cores: int,
        policy: str = "roundrobin",
        tracker: Optional[RxqLoadTracker] = None,
    ) -> None:
        if n_cores < 1:
            raise ValueError("need at least one PMD core")
        self.n_cores = n_cores
        self.core_ports: List[List[OvsPort]] = [[] for _ in range(n_cores)]
        self.tracker = tracker if tracker is not None else RxqLoadTracker()
        self.policy: AssignmentPolicy = make_policy(policy)
        self._pins: Dict[int, int] = {}       # ofport -> core
        self.isolated_cores: Set[int] = set()
        # Fired as (port, src_core, dst_core) for every applied move,
        # before the port joins the new core's list -- the vswitchd
        # hooks stage-accounting reattribution here.
        self.on_move: List[Callable[[OvsPort, int, int], None]] = []
        # Fired with the applied RebalancePlan (manual or auto).
        self.on_apply: List[Callable[[RebalancePlan], None]] = []
        self.rebalances = 0
        self.port_moves = 0
        self.last_plan: Optional[RebalancePlan] = None

    # -- affinity configuration (pmd-rxq-affinity) ---------------------------------

    def pin(self, ofport: int, core: int) -> None:
        """Pin a port to a core (honoured by the ``group`` policy)."""
        if not 0 <= core < self.n_cores:
            raise ValueError("core %d out of range" % core)
        self._pins[ofport] = core

    def unpin(self, ofport: int) -> None:
        self._pins.pop(ofport, None)

    def pinned_core(self, ofport: int) -> Optional[int]:
        return self._pins.get(ofport)

    def isolate(self, core: int, isolated: bool = True) -> None:
        """Reserve a core for its pinned ports only (``group`` policy)."""
        if not 0 <= core < self.n_cores:
            raise ValueError("core %d out of range" % core)
        if isolated:
            self.isolated_cores.add(core)
        else:
            self.isolated_cores.discard(core)

    def set_policy(self, name: str) -> None:
        self.policy = make_policy(name)

    # -- membership ---------------------------------------------------------------

    def add_port(self, port: OvsPort) -> int:
        """Place a new port; returns the core index chosen."""
        core = self.policy.place(port, self)
        self.core_ports[core].append(port)
        return core

    def remove_port(self, port: OvsPort) -> Optional[int]:
        """Forget a port everywhere; returns the core it was on."""
        removed_core = None
        for core, ports in enumerate(self.core_ports):
            if port in ports:
                ports.remove(port)
                removed_core = core
        self.tracker.forget(port.ofport)
        self._pins.pop(port.ofport, None)
        return removed_core

    def core_of(self, ofport: int) -> Optional[int]:
        for core, ports in enumerate(self.core_ports):
            for port in ports:
                if port.ofport == ofport:
                    return core
        return None

    def ports(self) -> List[OvsPort]:
        return [port for ports in self.core_ports for port in ports]

    # -- planning -----------------------------------------------------------------

    def _estimated_core_loads(self, assignment: Dict[int, int]
                              ) -> List[float]:
        loads = [0.0] * self.n_cores
        for ofport, core in assignment.items():
            loads[core] += self.tracker.port_load(ofport)
        return loads

    def current_assignment(self) -> Dict[int, int]:
        return {
            port.ofport: core
            for core, ports in enumerate(self.core_ports)
            for port in ports
        }

    def plan_rebalance(self) -> RebalancePlan:
        """Dry run: what would the policy do with today's loads?

        Variance before/after is computed from the *same* measured
        port loads on both layouts, so the improvement number compares
        apples to apples.
        """
        ports = self.ports()
        current = self.current_assignment()
        proposed = self.policy.assign(ports, self)
        by_ofport = {port.ofport: port for port in ports}
        moves = [
            PortMove(ofport, by_ofport[ofport].name,
                     current[ofport], proposed[ofport])
            for ofport in sorted(current)
            if proposed.get(ofport, current[ofport]) != current[ofport]
        ]
        return RebalancePlan(
            assignment=proposed,
            moves=moves,
            variance_before=load_variance(
                self._estimated_core_loads(current)),
            variance_after=load_variance(
                self._estimated_core_loads(proposed)),
        )

    # -- application -------------------------------------------------------------

    def apply_plan(self, plan: RebalancePlan) -> int:
        """Move every port the plan relocates; returns the move count.

        Each move is atomic with respect to PMD iterations (see the
        module docstring): remove from the old core's list, notify the
        reattribution hooks, append to the new core's list, and drop
        the (port, old core) load history.
        """
        by_ofport = {port.ofport: port for port in self.ports()}
        applied = 0
        for move in plan.moves:
            port = by_ofport.get(move.ofport)
            if port is None or port not in self.core_ports[move.src_core]:
                continue  # port left or already moved since the dry run
            self.core_ports[move.src_core].remove(port)
            for hook in self.on_move:
                hook(port, move.src_core, move.dst_core)
            self.core_ports[move.dst_core].append(port)
            self.tracker.reset_pair(move.ofport, move.src_core)
            applied += 1
        self.port_moves += applied
        self.rebalances += 1
        self.last_plan = plan
        for hook in self.on_apply:
            hook(plan)
        return applied

    def rebalance(self) -> RebalancePlan:
        """Plan and apply unconditionally (the manual ``sched/rebalance``
        path; the auto-LB applies its own thresholds first)."""
        plan = self.plan_rebalance()
        self.apply_plan(plan)
        return plan

    def __repr__(self) -> str:
        return "<PmdScheduler policy=%s cores=%d ports=%d>" % (
            self.policy.name, self.n_cores, len(self.ports())
        )
