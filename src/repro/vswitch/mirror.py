"""Port mirroring (SPAN): clone selected traffic to an observer port.

Standard OVS feature (``ovs-vsctl -- --id=@m create mirror ...``): every
packet received from a ``select_src`` port and/or sent to a
``select_dst`` port is also delivered to the mirror's ``output`` port.

Mirroring interacts with the transparent highway in an important way:
the vSwitch can only mirror what it forwards, so a bypassed link would
silently blind any mirror watching its ports.  The detector therefore
treats mirrored ports as ineligible for p-2-p acceleration, and adding
a mirror over an active bypass revokes it — correctness (the operator
asked to see the traffic) beats acceleration.
"""

from dataclasses import dataclass, field
from typing import FrozenSet, Set


@dataclass(frozen=True)
class Mirror:
    """One mirror definition."""

    name: str
    output: int                      # ofport receiving the clones
    select_src: FrozenSet[int] = frozenset()  # mirror packets from these
    select_dst: FrozenSet[int] = frozenset()  # mirror packets to these

    def __post_init__(self) -> None:
        if not self.select_src and not self.select_dst:
            raise ValueError("mirror %r selects nothing" % self.name)
        if self.output in self.select_src | self.select_dst:
            raise ValueError(
                "mirror %r outputs to a selected port" % self.name
            )

    @property
    def selected_ports(self) -> Set[int]:
        return set(self.select_src) | set(self.select_dst)
