"""The OVS-DPDK fast path: per-PMD-core packet processing.

One :class:`Datapath` instance is the forwarding engine of a bridge; its
:meth:`process_ports` is the body of a PMD core's poll iteration.  For
every received packet it runs EMC -> classifier -> (miss upcall), executes
the matched actions, batches outputs per destination port, and returns the
simulated CPU cost of the iteration — the quantity that makes the vSwitch
a *shared* bottleneck for every chain hop in the paper's Figure 3.
"""

from typing import Callable, Dict, List, Optional

from repro.openflow.actions import (
    OutputAction,
    PORT_CONTROLLER,
    SetFieldAction,
)
from repro.openflow.table import FlowEntry, FlowTable
from repro.packet.flowkey import cached_flow_key
from repro.packet.headers import MacAddress
from repro.packet.mbuf import Mbuf
from repro.sim.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.vswitch.classifier import TupleSpaceClassifier
from repro.vswitch.emc import ExactMatchCache
from repro.vswitch.ports import OvsPort, PortKind

# Called with (mbuf, in_port, reason) on table miss / controller action.
UpcallHandler = Callable[[Mbuf, int, str], None]


class Datapath:
    """Forwarding engine: lookup structures + action execution."""

    def __init__(
        self,
        table: FlowTable,
        costs: CostModel = DEFAULT_COST_MODEL,
        clock: Optional[Callable[[], float]] = None,
        upcall_handler: Optional[UpcallHandler] = None,
        emc_enabled: bool = True,
        burst_size: int = 32,
    ) -> None:
        self.table = table
        self.costs = costs
        self.clock = clock or (lambda: 0.0)
        self.upcall_handler = upcall_handler
        self.burst_size = burst_size
        self.emc_enabled = emc_enabled
        self.emc = ExactMatchCache()
        self.classifier = TupleSpaceClassifier(table)
        table.add_listener(self._on_table_change)
        # Multi-table pipeline (OF1.3 goto_table): table 0 is the entry
        # point; later tables are attached on demand by the bridge.
        self.tables: Dict[int, FlowTable] = {0: table}
        self.classifiers: Dict[int, TupleSpaceClassifier] = {
            0: self.classifier
        }
        self.pipeline_drops = 0
        self.ports: Dict[int, OvsPort] = {}
        self.mirrors: List = []  # repro.vswitch.mirror.Mirror
        self.policers: Dict[int, object] = {}  # ofport -> IngressPolicer
        # Cumulative fast-path statistics.
        self.emc_hits = 0
        self.classifier_hits = 0
        self.miss_upcalls = 0
        self.packets_processed = 0
        self.packets_mirrored = 0

    def _on_table_change(self, kind: str, entry: FlowEntry) -> None:
        self.emc.invalidate_all()

    def attach_table(self, table_id: int, table: FlowTable) -> None:
        """Register a later pipeline table (goto_table target)."""
        if table_id in self.tables:
            raise ValueError("table %d already attached" % table_id)
        self.tables[table_id] = table
        self.classifiers[table_id] = TupleSpaceClassifier(table)
        table.add_listener(self._on_table_change)

    # -- port management ----------------------------------------------------

    def add_port(self, port: OvsPort) -> None:
        if port.ofport in self.ports:
            raise ValueError("ofport %d already in use" % port.ofport)
        self.ports[port.ofport] = port

    def remove_port(self, ofport: int) -> OvsPort:
        try:
            return self.ports.pop(ofport)
        except KeyError:
            raise ValueError("no port %d" % ofport) from None

    def port(self, ofport: int) -> OvsPort:
        return self.ports[ofport]

    # -- lookup ------------------------------------------------------------------

    def classify(self, mbuf: Mbuf, in_port: int,
                 stages=None) -> "tuple[Optional[tuple], float]":
        """Resolve one packet through the pipeline.

        Returns ``(traversal, cpu cost)`` where traversal is the tuple
        of flow entries matched in pipeline order, or None on a table-0
        miss (upcall).  A miss in a later table, a goto to a missing
        table or a non-increasing goto all terminate the pipeline as an
        OF1.3 drop (the traversal so far is returned; its combined
        actions produce no output).

        ``stages`` (a :class:`repro.obs.cycles.StageAccounting`) splits
        the lookup cost between the emc_lookup / classifier_lookup /
        miss_upcall stages for ``pmd/stats-show``.
        """
        from repro.openflow.actions import goto_table_of

        key = cached_flow_key(mbuf, in_port)
        if self.emc_enabled:
            traversal = self.emc.lookup(key)
            if traversal is not None:
                self.emc_hits += 1
                if stages is not None:
                    stages.add("emc_lookup", self.costs.ovs_emc_hit,
                               packets=1)
                if mbuf.trace is not None:
                    mbuf.trace.add(self.clock(), "emc", result="hit")
                return traversal, self.costs.ovs_emc_hit
        entries = []
        table_id = 0
        cost = 0.0
        while True:
            entry = self.classifiers[table_id].lookup(key)
            cost += self.costs.ovs_classifier_hit
            if entry is None:
                if table_id == 0:
                    self.miss_upcalls += 1
                    if stages is not None:
                        stages.add("miss_upcall",
                                   self.costs.ovs_miss_upcall, packets=1)
                    if mbuf.trace is not None:
                        mbuf.trace.add(self.clock(), "upcall",
                                       reason="no_match")
                    return None, self.costs.ovs_miss_upcall
                self.pipeline_drops += 1
                break
            entries.append(entry)
            goto = goto_table_of(entry.actions)
            if goto is None:
                break
            if (goto.table_id <= table_id
                    or goto.table_id not in self.classifiers):
                self.pipeline_drops += 1
                break
            table_id = goto.table_id
        self.classifier_hits += 1
        if stages is not None:
            stages.add("classifier_lookup", cost, packets=1)
        if mbuf.trace is not None:
            mbuf.trace.add(self.clock(), "classifier",
                           tables=table_id + 1)
        traversal = tuple(entries)
        if self.emc_enabled:
            self.emc.insert(key, traversal)
        return traversal, cost

    # -- action execution -----------------------------------------------------------

    @staticmethod
    def _apply_set_field(mbuf: Mbuf, field: str, value: int) -> None:
        """Rewrite a header field on the packet carried by ``mbuf``.

        Assumes per-mbuf packet objects (functional paths); benchmark
        workloads that share a template never install set-field rules.
        """
        from repro.packet.headers import Ethernet, IPv4, Tcp, Udp, Vlan

        packet = mbuf.packet
        if field in ("eth_src", "eth_dst"):
            eth = packet.get(Ethernet)
            if eth is not None:
                setattr(eth, field[4:], MacAddress(value))
        elif field in ("ip_src", "ip_dst", "ip_tos"):
            ipv4 = packet.get(IPv4)
            if ipv4 is not None:
                setattr(ipv4, field[3:] if field != "ip_tos" else "tos",
                        value)
        elif field in ("l4_src", "l4_dst"):
            l4 = packet.get(Tcp) or packet.get(Udp)
            if l4 is not None:
                setattr(l4, "src_port" if field == "l4_src" else "dst_port",
                        value)
        elif field == "vlan_vid":
            vlan = packet.get(Vlan)
            if vlan is not None:
                vlan.vid = value
        mbuf.userdata = None  # cached flow key is stale now

    def execute_actions(
        self,
        entry_actions,
        mbuf: Mbuf,
        in_port: int,
        output_batches: Dict[int, List[Mbuf]],
    ) -> None:
        """Run an action list; packets to forward land in output_batches.

        The mbuf reference is consumed: it is either batched for output,
        handed to the upcall handler, or freed (drop / unknown port).
        """
        consumed = False
        for action in entry_actions:
            if isinstance(action, SetFieldAction):
                self._apply_set_field(mbuf, action.field, action.value)
            elif isinstance(action, OutputAction):
                if action.port == PORT_CONTROLLER:
                    if self.upcall_handler is not None:
                        self.upcall_handler(mbuf, in_port, "action")
                    consumed = True
                elif action.port in self.ports:
                    # Multiple outputs clone by reference counting.
                    target = mbuf if not consumed else mbuf.retain()
                    output_batches.setdefault(action.port, []).append(target)
                    consumed = True
                else:
                    pass  # output to unknown port: ignore (counted as drop)
        if not consumed:
            mbuf.free()  # empty action list = OpenFlow drop

    # -- the poll iteration body --------------------------------------------------------

    def process_port(self, port: OvsPort,
                     output_batches: Dict[int, List[Mbuf]],
                     stages=None) -> "tuple[float, int]":
        """Poll one port; returns (cpu cost, packets processed)."""
        if not port.up:
            return 0.0, 0  # administratively down: leave the ring alone
        mbufs = port.receive_burst(self.burst_size)
        if not mbufs:
            return 0.0, 0
        policer = self.policers.get(port.ofport)
        if policer is not None:
            mbufs = policer.filter_burst(mbufs)
            if not mbufs:
                if stages is not None:
                    stages.add("housekeeping", self.costs.burst_overhead)
                return self.costs.burst_overhead, 0
        costs = self.costs
        rx_cost = (costs.nic_pmd_rx if port.kind == PortKind.PHY
                   else costs.ring_op)
        total_cost = costs.burst_overhead + rx_cost * len(mbufs)
        now = self.clock()
        if stages is not None:
            stages.add("housekeeping", costs.burst_overhead)
            stages.add("rx_normal", rx_cost * len(mbufs),
                       packets=len(mbufs))
        for mbuf in mbufs:
            if mbuf.trace is not None:
                mbuf.trace.add(now, "switch-rx", port=port.name)
        # Ingress mirroring: clone before the actions can consume the
        # packet.
        for mirror in self.mirrors:
            if port.ofport in mirror.select_src:
                for mbuf in mbufs:
                    output_batches.setdefault(mirror.output, []).append(
                        mbuf.retain()
                    )
                self.packets_mirrored += len(mbufs)
                total_cost += costs.ring_op * len(mbufs)
                if stages is not None:
                    stages.add("actions", costs.ring_op * len(mbufs))
        from repro.openflow.actions import GotoTableAction

        for mbuf in mbufs:
            traversal, lookup_cost = self.classify(mbuf, port.ofport,
                                                   stages=stages)
            total_cost += lookup_cost
            if traversal is None:
                if self.upcall_handler is not None:
                    self.upcall_handler(mbuf, port.ofport, "no_match")
                else:
                    mbuf.free()
                continue
            combined = []
            for entry in traversal:
                entry.account(1, mbuf.wire_length, now)
                combined.extend(
                    action for action in entry.actions
                    if not isinstance(action, GotoTableAction)
                )
            self.execute_actions(combined, mbuf, port.ofport,
                                 output_batches)
        self.packets_processed += len(mbufs)
        return total_cost, len(mbufs)

    def flush_outputs(self, output_batches: Dict[int, List[Mbuf]],
                      stages=None) -> float:
        """Send batched outputs; returns the cpu cost of the TX work."""
        costs = self.costs
        total_cost = 0.0
        # Egress mirroring: one level only (clones are never re-mirrored).
        if self.mirrors:
            extra: Dict[int, List[Mbuf]] = {}
            for mirror in self.mirrors:
                for ofport in mirror.select_dst:
                    mbufs = output_batches.get(ofport)
                    if not mbufs:
                        continue
                    extra.setdefault(mirror.output, []).extend(
                        mbuf.retain() for mbuf in mbufs
                    )
                    self.packets_mirrored += len(mbufs)
                    total_cost += costs.ring_op * len(mbufs)
                    if stages is not None:
                        stages.add("actions", costs.ring_op * len(mbufs))
            for ofport, mbufs in extra.items():
                output_batches.setdefault(ofport, []).extend(mbufs)
        for ofport, mbufs in output_batches.items():
            port = self.ports.get(ofport)
            if port is None:
                for mbuf in mbufs:
                    mbuf.free()
                continue
            if not port.up:
                for mbuf in mbufs:
                    port.tx_dropped += 1
                    mbuf.free()
                continue
            tx_cost = (costs.nic_pmd_tx if port.kind == PortKind.PHY
                       else costs.ring_op)
            total_cost += tx_cost * len(mbufs)
            if stages is not None:
                stages.add("tx", tx_cost * len(mbufs),
                           packets=len(mbufs))
            now = self.clock()
            for mbuf in mbufs:
                if mbuf.trace is not None:
                    mbuf.trace.add(now, "switch-tx", port=port.name)
            port.send_burst(mbufs)
        output_batches.clear()
        return total_cost

    def process_ports(self, ports: List[OvsPort],
                      stages=None) -> float:
        """One full PMD iteration over ``ports``; returns total cpu cost."""
        output_batches: Dict[int, List[Mbuf]] = {}
        total_cost = 0.0
        for port in ports:
            cost, _count = self.process_port(port, output_batches,
                                             stages=stages)
            total_cost += cost
        total_cost += self.flush_outputs(output_batches, stages=stages)
        return total_cost

    # -- direct injection (packet-out, test harnesses) ---------------------------------

    def inject(self, mbuf: Mbuf, actions) -> None:
        """Execute ``actions`` on a packet outside the polling fast path
        (the bridge uses this for controller packet-out messages)."""
        output_batches: Dict[int, List[Mbuf]] = {}
        self.execute_actions(actions, mbuf, in_port=PORT_CONTROLLER,
                             output_batches=output_batches)
        self.flush_outputs(output_batches)
