"""The OVS-DPDK fast path: per-PMD-core packet processing.

One :class:`Datapath` instance is the forwarding engine of a bridge; its
:meth:`process_ports` is the body of a PMD core's poll iteration.

The default fast path is **vectorized**, modelled on OVS's ``dp_netdev``
flow batches: flow keys are computed for the whole received burst up
front, packets are grouped per distinct key, one lookup resolves every
packet of a batch, and the combined action list is built once per batch.
Lookup itself is four-tiered, exactly like OVS-DPDK:

1. **EMC** — exact flow key -> full pipeline traversal, precise
   per-flowmod invalidation (:mod:`repro.vswitch.emc`);
2. **SMC** — key hash -> subtable hint, validated by the classifier
   before being believed (:mod:`repro.vswitch.smc`);
3. **megaflow** — minimally-masked flow key -> full pipeline traversal,
   the wildcard cache populated by lookup-driven unwildcarding
   (:mod:`repro.vswitch.megaflow`), priority-safe by construction;
4. **dpcls** — ranked tuple-space search with goto_table pipeline
   walking (:mod:`repro.vswitch.classifier`).

``vectorized = False`` selects the legacy scalar path (per-packet
EMC -> classifier resolution and per-packet action dispatch); it is kept
as the baseline the benchmarks and the equivalence property test compare
against.  Both paths return the simulated CPU cost of the iteration —
the quantity that makes the vSwitch a *shared* bottleneck for every
chain hop in the paper's Figure 3.
"""

from typing import Callable, Dict, List, Optional, Tuple

from repro.openflow.actions import (
    GotoTableAction,
    OutputAction,
    PORT_CONTROLLER,
    SetFieldAction,
    goto_table_of,
)
from repro.openflow.table import FlowEntry, FlowTable
from repro.packet.flowkey import FlowKey, cached_flow_key
from repro.packet.headers import Ethernet, IPv4, MacAddress, Tcp, Udp, Vlan
from repro.packet.mbuf import Mbuf
from repro.sim.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.vswitch.classifier import TupleSpaceClassifier, signature_of
from repro.vswitch.emc import ExactMatchCache, Traversal
from repro.vswitch.megaflow import FlowWildcards, MegaflowCache
from repro.vswitch.ports import OvsPort, PortKind
from repro.vswitch.smc import SignatureMatchCache

# Called with (mbuf, in_port, reason) on table miss / controller action.
UpcallHandler = Callable[[Mbuf, int, str], None]


class Datapath:
    """Forwarding engine: lookup structures + action execution."""

    def __init__(
        self,
        table: FlowTable,
        costs: CostModel = DEFAULT_COST_MODEL,
        clock: Optional[Callable[[], float]] = None,
        upcall_handler: Optional[UpcallHandler] = None,
        emc_enabled: bool = True,
        burst_size: int = 32,
        vectorized: bool = True,
        smc_enabled: bool = True,
        megaflow_enabled: bool = True,
    ) -> None:
        self.table = table
        self.costs = costs
        self.clock = clock or (lambda: 0.0)
        self.upcall_handler = upcall_handler
        self.burst_size = burst_size
        self.emc_enabled = emc_enabled
        self.smc_enabled = smc_enabled
        self.megaflow_enabled = megaflow_enabled
        self.vectorized = vectorized
        # "precise" tombstones only the EMC keys a flowmod affects;
        # "generation" restores the old whole-cache wipe (kept as the
        # baseline the invalidation benchmark compares against).
        self.emc_invalidation = "precise"
        self.emc = ExactMatchCache()
        self.smc = SignatureMatchCache()
        self.megaflow = MegaflowCache()
        self.classifier = TupleSpaceClassifier(table)
        table.add_listener(self._on_table_change)
        # Multi-table pipeline (OF1.3 goto_table): table 0 is the entry
        # point; later tables are attached on demand by the bridge.
        self.tables: Dict[int, FlowTable] = {0: table}
        self.classifiers: Dict[int, TupleSpaceClassifier] = {
            0: self.classifier
        }
        self.pipeline_drops = 0
        self.ports: Dict[int, OvsPort] = {}
        self.mirrors: List = []  # repro.vswitch.mirror.Mirror
        self.policers: Dict[int, object] = {}  # ofport -> IngressPolicer
        # Bounded upcall path (repro.overload.upcall.BoundedUpcallQueue).
        # None = legacy inline upcalls: the handler runs synchronously at
        # the miss, with the full slow-path cost charged there.  With a
        # queue installed, misses are admitted (or shed, accounted) and
        # dispatched at the end of the poll iteration.
        self.upcall_queue = None
        # Per-port RX shed levels (fraction of each burst dropped before
        # classification), maintained by the overload monitor.
        self.rx_shed: Dict[int, float] = {}
        self.rx_early_drops: Dict[int, int] = {}
        self._shed_debt: Dict[int, float] = {}
        # Cumulative fast-path statistics (all count packets, so the
        # scalar and vectorized paths stay comparable; smc_hits and
        # megaflow_hits are the subsets of classifier_hits resolved
        # through a validated hint / a cached wildcard entry).
        self.emc_hits = 0
        self.smc_hits = 0
        self.megaflow_hits = 0
        self.classifier_hits = 0
        self.upcalls_no_match = 0
        self.upcalls_action = 0
        self.action_drops = 0
        self.unknown_port_drops = 0
        self.packets_processed = 0
        self.packets_mirrored = 0
        # Flow-batch statistics (vectorized path only).
        self.flow_batches = 0
        self.packets_batched = 0
        self.batch_fill_counts: Dict[int, int] = {}
        # Optional control-path coverage hook (wired by Observability):
        # called as coverage(event_name, amount).
        self.coverage: Optional[Callable[..., None]] = None

    def _on_table_change(self, kind: str, entry: FlowEntry) -> None:
        if self.emc_invalidation != "precise":
            self.emc.invalidate_all()
            self.megaflow.flush()
            return
        if kind == "added":
            # A new rule may outrank cached resolutions for any key it
            # covers (keys are stable across the pipeline: goto+set-field
            # combinations are not produced by this control plane).
            evicted = self.emc.invalidate_matching(entry.match)
            # Any megaflow region overlapping the new rule could now
            # resolve differently somewhere inside the overlap.
            mf_evicted = self.megaflow.invalidate_matching(entry.match)
        else:
            # Removed or modified: every traversal containing the entry
            # is stale (its actions or pipeline structure changed).
            evicted = self.emc.invalidate_entry(entry)
            mf_evicted = self.megaflow.invalidate_entry(entry)
        if evicted and self.coverage is not None:
            self.coverage("emc_precise_eviction", evicted)
        if mf_evicted and self.coverage is not None:
            self.coverage("megaflow_precise_eviction", mf_evicted)

    def attach_table(self, table_id: int, table: FlowTable) -> None:
        """Register a later pipeline table (goto_table target)."""
        if table_id in self.tables:
            raise ValueError("table %d already attached" % table_id)
        self.tables[table_id] = table
        self.classifiers[table_id] = TupleSpaceClassifier(table)
        table.add_listener(self._on_table_change)

    # -- port management ----------------------------------------------------

    def add_port(self, port: OvsPort) -> None:
        if port.ofport in self.ports:
            raise ValueError("ofport %d already in use" % port.ofport)
        self.ports[port.ofport] = port

    def remove_port(self, ofport: int) -> OvsPort:
        try:
            return self.ports.pop(ofport)
        except KeyError:
            raise ValueError("no port %d" % ofport) from None

    def port(self, ofport: int) -> OvsPort:
        return self.ports[ofport]

    # -- batch statistics -----------------------------------------------------

    @property
    def avg_batch_fill(self) -> float:
        """Mean packets per flow batch (1.0 = no batching benefit)."""
        if not self.flow_batches:
            return 0.0
        return self.packets_batched / self.flow_batches

    @property
    def miss_upcalls(self) -> int:
        """Total upcalls, both reasons (kept for compatibility; the
        metrics plane exports the per-reason split)."""
        return self.upcalls_no_match + self.upcalls_action

    # -- the upcall path ------------------------------------------------------

    def _punt(self, mbuf: Mbuf, in_port: int, reason: str,
              stages=None) -> float:
        """Hand one packet to the slow path; returns the fast-path cost.

        Legacy mode (no queue): the handler runs inline — its cost was
        already charged at the lookup miss, so this contributes nothing.
        Queue mode: the packet is admitted (enqueue cost) or shed
        (accounted drop, shed cost); the slow-path cost proper is
        charged at dispatch.
        """
        if self.upcall_queue is None:
            if self.upcall_handler is not None:
                self.upcall_handler(mbuf, in_port, reason)
            else:
                mbuf.free()
            return 0.0
        if self.upcall_queue.admit(mbuf, in_port, reason):
            cost = self.costs.upcall_enqueue
        else:
            cost = self.costs.upcall_shed
        if stages is not None:
            stages.add("miss_upcall", cost, packets=1)
        return cost

    def _dispatch_upcalls(self, stages=None) -> float:
        """Drain the bounded queue (end of the poll iteration), charging
        the slow-path cost per upcall actually served."""
        queue = self.upcall_queue
        handler = self.upcall_handler
        if handler is None:
            def handler(mbuf, in_port, reason):
                mbuf.free()
        dispatched = queue.dispatch(handler)
        if not dispatched:
            return 0.0
        cost = self.costs.ovs_miss_upcall * dispatched
        if stages is not None:
            stages.add("miss_upcall", cost, packets=dispatched)
        return cost

    # -- lookup ------------------------------------------------------------------

    def _walk_pipeline(
        self, key: FlowKey, fill: int
    ) -> Tuple[Optional[Traversal], float, str]:
        """Resolve ``key`` through SMC + megaflow + the classifier.

        Returns ``(traversal, lookup cost, tier)`` where tier is "smc",
        "megaflow" or "dpcls" and traversal is None on a table-0 miss.
        ``fill`` is only used to bulk-count pipeline drops (one per
        packet served).

        Tier order at table 0: a validated SMC hint wins first; with no
        hint the megaflow cache is probed (a hit returns the cached
        full-pipeline traversal — priority-safe by mask construction,
        no revalidation); a megaflow miss walks the classifier with a
        :class:`FlowWildcards` accumulator so the resolution seeds a
        new minimally-masked megaflow entry covering the whole
        aggregate, later pipeline tables included.
        """
        costs = self.costs
        entries: List[FlowEntry] = []
        table_id = 0
        cost = 0.0
        tier = "dpcls"
        wc: Optional[FlowWildcards] = None
        while True:
            if table_id == 0 and self.smc_enabled:
                signature = self.smc.probe(key)
            else:
                signature = None
            if table_id == 0 and signature is not None:
                entry, confirmed = self.classifier.lookup_hinted(
                    key, signature)
                validated = entry is not None and confirmed
                self.smc.account(validated)
                if validated:
                    tier = "smc"
                    cost += costs.ovs_smc_hit
                else:
                    cost += costs.ovs_classifier_hit
                    if entry is not None:
                        self.smc.insert(key, signature_of(entry))
            elif table_id == 0:
                if self.smc_enabled:
                    self.smc.account(False)
                if self.megaflow_enabled:
                    cached = self.megaflow.lookup(key)
                    if cached is not None:
                        return cached, cost + costs.ovs_megaflow_hit, \
                            "megaflow"
                    wc = FlowWildcards()
                entry = self.classifier.lookup(key, wc=wc)
                cost += costs.ovs_classifier_hit
                if self.smc_enabled and entry is not None:
                    self.smc.insert(key, signature_of(entry))
            else:
                entry = self.classifiers[table_id].lookup(key, wc=wc)
                cost += costs.ovs_classifier_hit
            if entry is None:
                if table_id == 0:
                    return None, cost, tier
                self.pipeline_drops += fill
                break
            entries.append(entry)
            goto = goto_table_of(entry.actions)
            if goto is None:
                break
            if (goto.table_id <= table_id
                    or goto.table_id not in self.classifiers):
                self.pipeline_drops += fill
                break
            table_id = goto.table_id
        traversal = tuple(entries)
        if wc is not None and entries:
            self.megaflow.insert(key, wc, traversal)
        return traversal, cost, tier

    def classify(self, mbuf: Mbuf, in_port: int,
                 stages=None) -> "tuple[Optional[tuple], float]":
        """Resolve one packet through the pipeline (the scalar path).

        Returns ``(traversal, cpu cost)`` where traversal is the tuple
        of flow entries matched in pipeline order, or None on a table-0
        miss (upcall).  A miss in a later table, a goto to a missing
        table or a non-increasing goto all terminate the pipeline as an
        OF1.3 drop (the traversal so far is returned; its combined
        actions produce no output).

        ``stages`` (a :class:`repro.obs.cycles.StageAccounting`) splits
        the lookup cost between the emc_lookup / classifier_lookup /
        miss_upcall stages for ``pmd/stats-show``.  The scalar resolver
        never consults the SMC — that tier belongs to the vectorized
        path; this one is the pre-batching baseline.
        """
        key = cached_flow_key(mbuf, in_port)
        if self.emc_enabled:
            traversal = self.emc.lookup(key)
            if traversal is not None:
                self.emc_hits += 1
                if stages is not None:
                    stages.add("emc_lookup", self.costs.ovs_emc_hit,
                               packets=1)
                if mbuf.trace is not None:
                    mbuf.trace.add(self.clock(), "emc", result="hit")
                return traversal, self.costs.ovs_emc_hit
        entries = []
        table_id = 0
        cost = 0.0
        while True:
            entry = self.classifiers[table_id].lookup(key)
            cost += self.costs.ovs_classifier_hit
            if entry is None:
                if table_id == 0:
                    self.upcalls_no_match += 1
                    if mbuf.trace is not None:
                        mbuf.trace.add(self.clock(), "upcall",
                                       reason="no_match")
                    if self.upcall_queue is not None:
                        # Bounded path: only the failed walk is charged
                        # here; enqueue/dispatch costs land in _punt.
                        if stages is not None:
                            stages.add("miss_upcall", cost, packets=1)
                        return None, cost
                    if stages is not None:
                        stages.add("miss_upcall",
                                   self.costs.ovs_miss_upcall, packets=1)
                    return None, self.costs.ovs_miss_upcall
                self.pipeline_drops += 1
                break
            entries.append(entry)
            goto = goto_table_of(entry.actions)
            if goto is None:
                break
            if (goto.table_id <= table_id
                    or goto.table_id not in self.classifiers):
                self.pipeline_drops += 1
                break
            table_id = goto.table_id
        self.classifier_hits += 1
        if stages is not None:
            stages.add("classifier_lookup", cost, packets=1)
        if mbuf.trace is not None:
            mbuf.trace.add(self.clock(), "classifier",
                           tables=table_id + 1)
        traversal = tuple(entries)
        if self.emc_enabled:
            self.emc.insert(key, traversal)
        return traversal, cost

    def _resolve_batch(self, key: FlowKey, batch: List[Mbuf],
                       stages=None) -> "tuple[Optional[tuple], float]":
        """Resolve one flow batch; one lookup serves every packet.

        Same contract as :meth:`classify`, but counters and stage
        attribution are bulk-incremented by the batch fill, and the
        lookup walks all four tiers (EMC -> SMC -> megaflow -> dpcls).
        """
        fill = len(batch)
        costs = self.costs
        if self.emc_enabled:
            traversal = self.emc.lookup(key)
            if traversal is not None:
                self.emc_hits += fill
                if stages is not None:
                    stages.add("emc_lookup", costs.ovs_emc_hit,
                               packets=fill)
                self._trace_batch(batch, "emc", result="hit")
                return traversal, costs.ovs_emc_hit
        traversal, cost, tier = self._walk_pipeline(key, fill)
        if traversal is None:
            self.upcalls_no_match += fill
            self._trace_batch(batch, "upcall", reason="no_match")
            if self.upcall_queue is not None:
                # Bounded path: charge the failed walk; the enqueue and
                # dispatch costs are itemized by _punt and dispatch.
                if stages is not None:
                    stages.add("miss_upcall", cost, packets=fill)
                return None, cost
            upcall_cost = costs.ovs_miss_upcall * fill
            if stages is not None:
                stages.add("miss_upcall", upcall_cost, packets=fill)
            # Like the scalar path, the upcall dominates: the failed
            # lookup's cost is folded into it rather than itemized.
            return None, upcall_cost
        self.classifier_hits += fill
        if tier == "smc":
            self.smc_hits += fill
        elif tier == "megaflow":
            self.megaflow_hits += fill
        if stages is not None:
            stage = {"smc": "smc_lookup",
                     "megaflow": "megaflow_lookup"}.get(
                         tier, "classifier_lookup")
            stages.add(stage, cost, packets=fill)
        self._trace_batch(batch, "classifier",
                          tables=len(traversal), tier=tier)
        if self.emc_enabled:
            self.emc.insert(key, traversal)
        return traversal, cost

    def _trace_batch(self, batch: List[Mbuf], hop: str, **attrs) -> None:
        for mbuf in batch:
            if mbuf.trace is not None:
                mbuf.trace.add(self.clock(), hop, **attrs)

    # -- action execution -----------------------------------------------------------

    @staticmethod
    def _apply_set_field(mbuf: Mbuf, field: str, value: int) -> None:
        """Rewrite a header field on the packet carried by ``mbuf``.

        Assumes per-mbuf packet objects (functional paths); benchmark
        workloads that share a template never install set-field rules.
        """
        packet = mbuf.packet
        if field in ("eth_src", "eth_dst"):
            eth = packet.get(Ethernet)
            if eth is not None:
                setattr(eth, field[4:], MacAddress(value))
        elif field in ("ip_src", "ip_dst", "ip_tos"):
            ipv4 = packet.get(IPv4)
            if ipv4 is not None:
                setattr(ipv4, field[3:] if field != "ip_tos" else "tos",
                        value)
        elif field in ("l4_src", "l4_dst"):
            l4 = packet.get(Tcp) or packet.get(Udp)
            if l4 is not None:
                setattr(l4, "src_port" if field == "l4_src" else "dst_port",
                        value)
        elif field == "vlan_vid":
            vlan = packet.get(Vlan)
            if vlan is not None:
                vlan.vid = value
        mbuf.userdata = None  # cached flow key is stale now

    def execute_actions(
        self,
        entry_actions,
        mbuf: Mbuf,
        in_port: int,
        output_batches: Dict[int, List[Mbuf]],
    ) -> None:
        """Run an action list; packets to forward land in output_batches.

        The mbuf reference is consumed: it is either batched for output,
        handed to the upcall handler, or freed (drop / unknown port).
        """
        consumed = False
        for action in entry_actions:
            if isinstance(action, SetFieldAction):
                self._apply_set_field(mbuf, action.field, action.value)
            elif isinstance(action, OutputAction):
                if action.port == PORT_CONTROLLER:
                    self.upcalls_action += 1
                    if self.upcall_queue is not None:
                        self._punt(mbuf, in_port, "action")
                    elif self.upcall_handler is not None:
                        self.upcall_handler(mbuf, in_port, "action")
                    consumed = True
                elif action.port in self.ports:
                    # Multiple outputs clone by reference counting.
                    target = mbuf if not consumed else mbuf.retain()
                    output_batches.setdefault(action.port, []).append(target)
                    consumed = True
                else:
                    # Output to an unknown port: ignored, but accounted
                    # so conservation checks can balance the books.
                    self.unknown_port_drops += 1
        if not consumed:
            self.action_drops += 1
            mbuf.free()  # empty action list = OpenFlow drop

    # -- the poll iteration body --------------------------------------------------------

    def process_port(self, port: OvsPort,
                     output_batches: Dict[int, List[Mbuf]],
                     stages=None) -> "tuple[float, int]":
        """Poll one port; returns (cpu cost, packets processed)."""
        if not port.up:
            return 0.0, 0  # administratively down: leave the ring alone
        mbufs = port.receive_burst(self.burst_size)
        if not mbufs:
            return 0.0, 0
        policer = self.policers.get(port.ofport)
        if policer is not None:
            mbufs = policer.filter_burst(mbufs)
            if not mbufs:
                if stages is not None:
                    stages.add("housekeeping", self.costs.burst_overhead)
                return self.costs.burst_overhead, 0
        costs = self.costs
        shed_cost = 0.0
        shed_level = self.rx_shed.get(port.ofport)
        if shed_level:
            # Overload early drop: shed the tail of the burst before it
            # costs a single classifier cycle.  Fractional levels carry
            # debt across bursts so the realized drop rate converges on
            # the configured level deterministically.
            debt = self._shed_debt.get(port.ofport, 0.0)
            debt += len(mbufs) * shed_level
            drop_count = min(int(debt), len(mbufs))
            self._shed_debt[port.ofport] = debt - drop_count
            if drop_count:
                keep = len(mbufs) - drop_count
                now = self.clock()
                for mbuf in mbufs[keep:]:
                    if mbuf.trace is not None:
                        mbuf.trace.add(now, "rx-shed", port=port.name)
                    mbuf.free()
                mbufs = mbufs[:keep]
                self.rx_early_drops[port.ofport] = (
                    self.rx_early_drops.get(port.ofport, 0) + drop_count)
                if self.coverage is not None:
                    self.coverage("rx_early_drop", drop_count)
                shed_cost = costs.upcall_shed * drop_count
                if stages is not None:
                    stages.add("rx_shed", shed_cost, packets=drop_count)
                if not mbufs:
                    if stages is not None:
                        stages.add("housekeeping", costs.burst_overhead)
                    return costs.burst_overhead + shed_cost, 0
        rx_cost = (costs.nic_pmd_rx if port.kind == PortKind.PHY
                   else costs.ring_op)
        total_cost = shed_cost + costs.burst_overhead + rx_cost * len(mbufs)
        now = self.clock()
        if stages is not None:
            stages.add("housekeeping", costs.burst_overhead)
            stages.add("rx_normal", rx_cost * len(mbufs),
                       packets=len(mbufs))
        for mbuf in mbufs:
            if mbuf.trace is not None:
                mbuf.trace.add(now, "switch-rx", port=port.name)
        # Ingress mirroring: clone before the actions can consume the
        # packet.
        for mirror in self.mirrors:
            if port.ofport in mirror.select_src:
                for mbuf in mbufs:
                    output_batches.setdefault(mirror.output, []).append(
                        mbuf.retain()
                    )
                self.packets_mirrored += len(mbufs)
                total_cost += costs.ring_op * len(mbufs)
                if stages is not None:
                    stages.add("actions", costs.ring_op * len(mbufs))
        if self.vectorized:
            total_cost += self._process_batched(
                mbufs, port.ofport, now, output_batches, stages)
        else:
            total_cost += self._process_scalar(
                mbufs, port.ofport, now, output_batches, stages)
        self.packets_processed += len(mbufs)
        return total_cost, len(mbufs)

    def _process_scalar(self, mbufs: List[Mbuf], in_port: int, now: float,
                        output_batches: Dict[int, List[Mbuf]],
                        stages=None) -> float:
        """Legacy per-packet resolution + per-packet action dispatch."""
        costs = self.costs
        action_cost = costs.ovs_action_per_packet + costs.ovs_scalar_dispatch
        total_cost = 0.0
        for mbuf in mbufs:
            traversal, lookup_cost = self.classify(mbuf, in_port,
                                                   stages=stages)
            total_cost += lookup_cost
            if traversal is None:
                total_cost += self._punt(mbuf, in_port, "no_match",
                                         stages=stages)
                continue
            combined = []
            for entry in traversal:
                entry.account(1, mbuf.wire_length, now)
                combined.extend(
                    action for action in entry.actions
                    if not isinstance(action, GotoTableAction)
                )
            total_cost += action_cost
            if stages is not None:
                stages.add("actions", action_cost, packets=1)
            self.execute_actions(combined, mbuf, in_port, output_batches)
        return total_cost

    def _process_batched(self, mbufs: List[Mbuf], in_port: int, now: float,
                         output_batches: Dict[int, List[Mbuf]],
                         stages=None) -> float:
        """dp_netdev-style flow batches: group the burst by flow key,
        resolve each distinct key once, apply actions batch-at-a-time.

        Packets of the same flow keep their relative order (each batch
        preserves burst order); packets of different flows may be
        reordered against each other, exactly like real OVS output
        batching.
        """
        batches: Dict[FlowKey, List[Mbuf]] = {}
        for mbuf in mbufs:
            key = cached_flow_key(mbuf, in_port)
            batch = batches.get(key)
            if batch is None:
                batches[key] = [mbuf]
            else:
                batch.append(mbuf)
        costs = self.costs
        total_cost = 0.0
        for key, batch in batches.items():
            fill = len(batch)
            self.flow_batches += 1
            self.packets_batched += fill
            self.batch_fill_counts[fill] = \
                self.batch_fill_counts.get(fill, 0) + 1
            traversal, lookup_cost = self._resolve_batch(key, batch,
                                                         stages=stages)
            total_cost += lookup_cost
            if traversal is None:
                for mbuf in batch:
                    total_cost += self._punt(mbuf, in_port, "no_match",
                                             stages=stages)
                continue
            byte_total = sum(mbuf.wire_length for mbuf in batch)
            combined = [
                action
                for entry in traversal
                for action in entry.actions
                if not isinstance(action, GotoTableAction)
            ]
            for entry in traversal:
                entry.account(fill, byte_total, now)
            action_cost = (costs.ovs_batch_action
                           + costs.ovs_action_per_packet * fill)
            total_cost += action_cost
            if stages is not None:
                stages.add("actions", action_cost, packets=fill)
            for mbuf in batch:
                self.execute_actions(combined, mbuf, in_port,
                                     output_batches)
        return total_cost

    def flush_outputs(self, output_batches: Dict[int, List[Mbuf]],
                      stages=None) -> float:
        """Send batched outputs; returns the cpu cost of the TX work."""
        costs = self.costs
        total_cost = 0.0
        # Egress mirroring: one level only (clones are never re-mirrored).
        if self.mirrors:
            extra: Dict[int, List[Mbuf]] = {}
            for mirror in self.mirrors:
                for ofport in mirror.select_dst:
                    mbufs = output_batches.get(ofport)
                    if not mbufs:
                        continue
                    extra.setdefault(mirror.output, []).extend(
                        mbuf.retain() for mbuf in mbufs
                    )
                    self.packets_mirrored += len(mbufs)
                    total_cost += costs.ring_op * len(mbufs)
                    if stages is not None:
                        stages.add("actions", costs.ring_op * len(mbufs))
            for ofport, mbufs in extra.items():
                output_batches.setdefault(ofport, []).extend(mbufs)
        for ofport, mbufs in output_batches.items():
            port = self.ports.get(ofport)
            if port is None:
                for mbuf in mbufs:
                    mbuf.free()
                continue
            if not port.up:
                for mbuf in mbufs:
                    port.tx_dropped += 1
                    mbuf.free()
                continue
            tx_cost = (costs.nic_pmd_tx if port.kind == PortKind.PHY
                       else costs.ring_op)
            total_cost += tx_cost * len(mbufs)
            if stages is not None:
                stages.add("tx", tx_cost * len(mbufs),
                           packets=len(mbufs))
            now = self.clock()
            for mbuf in mbufs:
                if mbuf.trace is not None:
                    mbuf.trace.add(now, "switch-tx", port=port.name)
            port.send_burst(mbufs)
        output_batches.clear()
        return total_cost

    def process_ports(self, ports: List[OvsPort],
                      stages=None, stages_for=None,
                      on_port_cost=None) -> float:
        """One full PMD iteration over ``ports``; returns total cpu cost.

        ``stages_for(port)`` (optional) selects the stage table a given
        port's work is attributed to — the vswitchd passes a tee over
        the core table and the port's own table so the scheduler can
        reattribute when ports move.  ``on_port_cost(port, cost,
        packets)`` (optional) is called after each non-idle port poll;
        the rxq load tracker samples per-(port, core) cycles there.
        The final output flush is charged to ``stages`` only: tx work
        is batched across ports and not attributable to one of them.
        """
        output_batches: Dict[int, List[Mbuf]] = {}
        total_cost = 0.0
        for port in ports:
            port_stages = stages if stages_for is None else stages_for(port)
            cost, count = self.process_port(port, output_batches,
                                            stages=port_stages)
            if on_port_cost is not None and (cost or count):
                on_port_cost(port, cost, count)
            total_cost += cost
        total_cost += self.flush_outputs(output_batches, stages=stages)
        if self.upcall_queue is not None:
            total_cost += self._dispatch_upcalls(stages=stages)
        return total_cost

    # -- direct injection (packet-out, test harnesses) ---------------------------------

    def inject(self, mbuf: Mbuf, actions) -> None:
        """Execute ``actions`` on a packet outside the polling fast path
        (the bridge uses this for controller packet-out messages)."""
        output_batches: Dict[int, List[Mbuf]] = {}
        self.execute_actions(actions, mbuf, in_port=PORT_CONTROLLER,
                             output_batches=output_batches)
        self.flush_outputs(output_batches)
