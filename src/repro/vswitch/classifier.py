"""Tuple-space search classifier (OVS's ``dpcls``).

Rules are grouped into *subtables* by their mask signature (the set of
``(field, mask)`` pairs they constrain).  A lookup masks the packet's
flow key once per subtable and does a hash probe, so cost scales with the
number of distinct masks rather than the number of rules — the same
algorithm OVS-DPDK uses after an EMC miss.

Two of OVS's lookup optimizations are modelled:

* **Subtable ranking.**  Subtables are visited in descending
  ``max_priority`` order (hit count breaking ties), so once a match is
  found every remaining subtable that could only yield a *lower*
  priority is skipped in one ``break`` — OVS's sorted subtable vector.
* **Hinted lookup** (:meth:`lookup_hinted`).  The signature-match cache
  (:mod:`repro.vswitch.smc`) remembers which subtable matched a key
  hash last time; the hinted subtable is probed first and the result is
  verified against every subtable that could outrank it, so a stale
  hint can never return the wrong rule.

The classifier is maintained incrementally from
:class:`~repro.openflow.table.FlowTable` change events and must always
agree with the table's linear priority lookup; a property test
(`tests/test_property_classifier.py`) drives both with random rule sets
and random packets to pin that equivalence down.
"""

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.openflow.table import FlowEntry, FlowTable
from repro.packet.flowkey import FlowKey

MaskSignature = FrozenSet[Tuple[str, int]]
MaskedValues = Tuple[Tuple[str, int], ...]

#: OVS's staged-lookup groups: metadata, L2, L3, L4.  A subtable's
#: fields are ordered by stage so a probe can prove a miss on an early
#: prefix and unwildcard only the fields of the stages it examined —
#: the heart of minimal-mask megaflow generation.
_FIELD_STAGE = {
    "in_port": 0,
    "eth_src": 1, "eth_dst": 1, "eth_type": 1, "vlan_vid": 1,
    "ip_src": 2, "ip_dst": 2, "ip_proto": 2, "ip_tos": 2,
    "l4_src": 3, "l4_dst": 3,
}


def _stage_of(field: Tuple[str, int]) -> int:
    return _FIELD_STAGE.get(field[0], len(_FIELD_STAGE))


class _Subtable:
    """All rules sharing one mask signature."""

    __slots__ = ("signature", "fields", "buckets", "max_priority", "hits",
                 "_stage_ends", "_stage_prefixes")

    def __init__(self, signature: MaskSignature) -> None:
        self.signature = signature
        # Canonical field order: by stage, then name — masked-value
        # tuples are per-subtable canonical and stage prefixes are
        # contiguous slices.
        self.fields: List[Tuple[str, int]] = sorted(
            signature, key=lambda field: (_stage_of(field), field[0])
        )
        self.buckets: Dict[MaskedValues, List[FlowEntry]] = {}
        self.max_priority = 0
        self.hits = 0  # lookups that found a candidate here (rank input)
        # Non-final stage boundaries (prefix lengths) and, per boundary,
        # a refcounted set of the masked prefixes present among the
        # rules — "is any rule compatible so far?" in one dict probe.
        ends: List[int] = []
        for index in range(1, len(self.fields)):
            if _stage_of(self.fields[index]) \
                    != _stage_of(self.fields[index - 1]):
                ends.append(index)
        self._stage_ends: Tuple[int, ...] = tuple(ends)
        self._stage_prefixes: List[Dict[MaskedValues, int]] = [
            {} for _ in ends
        ]

    def mask_key(self, key: FlowKey) -> MaskedValues:
        return tuple(
            (name, getattr(key, name) & mask) for name, mask in self.fields
        )

    def masked_key_staged(self, key: FlowKey, wc) -> Optional[MaskedValues]:
        """Masked values of ``key``, or None when a stage prefix proves
        no rule here can match.

        ``wc`` (a :class:`~repro.vswitch.megaflow.FlowWildcards`)
        accumulates the mask of every field actually examined: all
        stages through the one that proved the miss, or every field on
        a full probe.  Nothing past the miss stage is unwildcarded —
        that is what keeps megaflow masks minimal.
        """
        fields = self.fields
        values: List[Tuple[str, int]] = []
        consumed = 0
        for end, prefixes in zip(self._stage_ends, self._stage_prefixes):
            for name, mask in fields[consumed:end]:
                wc.add(name, mask)
                values.append((name, getattr(key, name) & mask))
            consumed = end
            if tuple(values) not in prefixes:
                return None
        for name, mask in fields[consumed:]:
            wc.add(name, mask)
            values.append((name, getattr(key, name) & mask))
        return tuple(values)

    def index_stages(self, values: MaskedValues) -> None:
        for end, prefixes in zip(self._stage_ends, self._stage_prefixes):
            prefix = values[:end]
            prefixes[prefix] = prefixes.get(prefix, 0) + 1

    def unindex_stages(self, values: MaskedValues) -> None:
        for end, prefixes in zip(self._stage_ends, self._stage_prefixes):
            prefix = values[:end]
            count = prefixes.get(prefix, 0) - 1
            if count <= 0:
                prefixes.pop(prefix, None)
            else:
                prefixes[prefix] = count

    def mask_entry(self, entry: FlowEntry) -> MaskedValues:
        return tuple(
            (name, entry.match.get(name)[0]) for name, _mask in self.fields
        )

    def recompute_max_priority(self) -> None:
        self.max_priority = max(
            (entry.priority for bucket in self.buckets.values()
             for entry in bucket),
            default=0,
        )

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self.buckets.values())


def signature_of(entry: FlowEntry) -> MaskSignature:
    """The mask signature of a rule — the subtable it lives in."""
    return frozenset(
        (name, mask) for name, (_value, mask) in entry.match.fields.items()
    )


# Backward-compatible private alias (pre-SMC name).
_signature_of = signature_of


class TupleSpaceClassifier:
    """The dpcls: subtable-per-mask lookup structure."""

    #: Lookups between ranking-hit decays.  Without decay the ``hits``
    #: rank input grows without bound and the probe order stays frozen
    #: by historical traffic; halving on an interval keeps the ranking
    #: adaptive while preserving the current relative order.
    RANK_DECAY_INTERVAL = 4096

    def __init__(self, table: Optional[FlowTable] = None) -> None:
        self._subtables: Dict[MaskSignature, _Subtable] = {}
        # Subtables in probe order; rebuilt lazily when the set of
        # subtables (or a max_priority) changes.
        self._ranked: List[_Subtable] = []
        self._rank_dirty = False
        self.lookups = 0
        self.subtables_probed = 0
        self.rank_decays = 0
        if table is not None:
            self.bind(table)

    def bind(self, table: FlowTable) -> None:
        """Populate from ``table`` and track its future changes."""
        for entry in table.entries():
            self.add_entry(entry)
        table.add_listener(self._on_table_change)

    def _on_table_change(self, kind: str, entry: FlowEntry) -> None:
        if kind == "added":
            self.add_entry(entry)
        elif kind == "removed":
            self.remove_entry(entry)
        # "modified" only rewrites actions; the index is match-keyed.

    # -- maintenance -------------------------------------------------------

    def add_entry(self, entry: FlowEntry) -> None:
        signature = signature_of(entry)
        subtable = self._subtables.get(signature)
        if subtable is None:
            subtable = _Subtable(signature)
            self._subtables[signature] = subtable
            self._rank_dirty = True
        values = subtable.mask_entry(entry)
        subtable.buckets.setdefault(values, []).append(entry)
        subtable.index_stages(values)
        if entry.priority > subtable.max_priority:
            subtable.max_priority = entry.priority
            self._rank_dirty = True

    def remove_entry(self, entry: FlowEntry) -> None:
        signature = signature_of(entry)
        subtable = self._subtables.get(signature)
        if subtable is None:
            return
        values = subtable.mask_entry(entry)
        bucket = subtable.buckets.get(values)
        if bucket is None or entry not in bucket:
            return
        bucket.remove(entry)
        subtable.unindex_stages(values)
        if not bucket:
            del subtable.buckets[values]
        if not subtable.buckets:
            del self._subtables[signature]
            self._rank_dirty = True
        elif entry.priority >= subtable.max_priority:
            subtable.recompute_max_priority()
            self._rank_dirty = True

    def _ranked_subtables(self) -> List[_Subtable]:
        if self._rank_dirty:
            self._ranked = sorted(
                self._subtables.values(),
                key=lambda s: (-s.max_priority, -s.hits),
            )
            self._rank_dirty = False
        return self._ranked

    # -- lookup ------------------------------------------------------------------

    @staticmethod
    def _better(entry: FlowEntry, best: Optional[FlowEntry]) -> bool:
        """OpenFlow winner order: priority, then FIFO (lower flow_id)."""
        return best is None or entry.priority > best.priority or (
            entry.priority == best.priority and entry.flow_id < best.flow_id
        )

    def _account_lookup(self) -> None:
        self.lookups += 1
        if self.lookups % self.RANK_DECAY_INTERVAL == 0:
            self.decay_hits()

    def decay_hits(self) -> None:
        """Halve every subtable's ranking-hit counter (rank adapts to
        recent traffic instead of being frozen by history)."""
        for subtable in self._subtables.values():
            subtable.hits >>= 1
        self._rank_dirty = True
        self.rank_decays += 1

    def _probe(self, subtable: _Subtable, key: FlowKey,
               best: Optional[FlowEntry],
               wc=None) -> Optional[FlowEntry]:
        self.subtables_probed += 1
        if wc is None:
            masked = subtable.mask_key(key)
        else:
            # Staged probe: unwildcards exactly the fields examined;
            # None means a stage prefix proved the miss early.
            masked = subtable.masked_key_staged(key, wc)
            if masked is None:
                return best
        bucket = subtable.buckets.get(masked)
        if not bucket:
            return best
        subtable.hits += 1
        for entry in bucket:
            if self._better(entry, best):
                best = entry
        return best

    def lookup(self, key: FlowKey, wc=None) -> Optional[FlowEntry]:
        """Highest-priority matching entry (FIFO tie-break), or None.

        Matches :meth:`FlowTable.lookup` exactly, including the
        insertion-order tie-break encoded in ``FlowEntry.flow_id``.
        Subtables are visited best-first, so the scan stops as soon as
        no remaining subtable can outrank the current winner (ties are
        still probed: FIFO order must be honoured across subtables).

        When ``wc`` (a :class:`~repro.vswitch.megaflow.FlowWildcards`)
        is given, every probe unwildcards the bits it examined.  The
        early-exit break and the probe order examine *no* packet bits
        (they depend only on priorities and ranking state), so the
        accumulated mask covers the whole decision: any key equal under
        the mask reproduces this traversal exactly.
        """
        self._account_lookup()
        best: Optional[FlowEntry] = None
        for subtable in self._ranked_subtables():
            if best is not None and subtable.max_priority < best.priority:
                break  # ranked descending: nothing later can win
            best = self._probe(subtable, key, best, wc)
        return best

    def lookup_hinted(
        self, key: FlowKey, signature: MaskSignature, wc=None
    ) -> Tuple[Optional[FlowEntry], bool]:
        """Lookup with an SMC hint: probe the hinted subtable first.

        Returns ``(best, confirmed)`` where ``confirmed`` is True when
        the winner came from the hinted subtable — the hint saved the
        full scan.  The hint is never trusted blindly: every subtable
        whose ``max_priority`` could outrank the hinted candidate is
        verified, so the result is always identical to :meth:`lookup`.
        """
        hinted = self._subtables.get(signature)
        if hinted is None:
            return self.lookup(key, wc), False
        self._account_lookup()
        best = self._probe(hinted, key, None, wc)
        confirmed = best is not None
        for subtable in self._ranked_subtables():
            if best is not None and subtable.max_priority < best.priority:
                break
            if subtable is hinted:
                continue
            candidate = self._probe(subtable, key, best, wc)
            if candidate is not best:
                best = candidate
                confirmed = False
        return best, confirmed

    @property
    def subtable_count(self) -> int:
        return len(self._subtables)

    def ranking(self) -> List[Tuple[str, int, int, int]]:
        """``(signature, rules, max_priority, hits)`` rows in probe
        order — the ``dpif/fastpath-show`` view of the subtable sort."""
        rows = []
        for subtable in self._ranked_subtables():
            fields = ",".join(name for name, _mask in subtable.fields)
            rows.append((fields or "<wildcard>", len(subtable),
                         subtable.max_priority, subtable.hits))
        return rows

    def __len__(self) -> int:
        return sum(len(subtable) for subtable in self._subtables.values())
