"""Tuple-space search classifier (OVS's ``dpcls``).

Rules are grouped into *subtables* by their mask signature (the set of
``(field, mask)`` pairs they constrain).  A lookup masks the packet's
flow key once per subtable and does a hash probe, so cost scales with the
number of distinct masks rather than the number of rules — the same
algorithm OVS-DPDK uses after an EMC miss.

The classifier is maintained incrementally from
:class:`~repro.openflow.table.FlowTable` change events and must always
agree with the table's linear priority lookup; a property test
(`tests/test_property_classifier.py`) drives both with random rule sets
and random packets to pin that equivalence down.
"""

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.openflow.table import FlowEntry, FlowTable
from repro.packet.flowkey import FlowKey

MaskSignature = FrozenSet[Tuple[str, int]]
MaskedValues = Tuple[Tuple[str, int], ...]


class _Subtable:
    """All rules sharing one mask signature."""

    __slots__ = ("signature", "fields", "buckets", "max_priority")

    def __init__(self, signature: MaskSignature) -> None:
        self.signature = signature
        # Sorted field list so masked-value tuples are canonical.
        self.fields: List[Tuple[str, int]] = sorted(signature)
        self.buckets: Dict[MaskedValues, List[FlowEntry]] = {}
        self.max_priority = 0

    def mask_key(self, key: FlowKey) -> MaskedValues:
        return tuple(
            (name, getattr(key, name) & mask) for name, mask in self.fields
        )

    def mask_entry(self, entry: FlowEntry) -> MaskedValues:
        return tuple(
            (name, entry.match.get(name)[0]) for name, _mask in self.fields
        )

    def recompute_max_priority(self) -> None:
        self.max_priority = max(
            (entry.priority for bucket in self.buckets.values()
             for entry in bucket),
            default=0,
        )

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self.buckets.values())


def _signature_of(entry: FlowEntry) -> MaskSignature:
    return frozenset(
        (name, mask) for name, (_value, mask) in entry.match.fields.items()
    )


class TupleSpaceClassifier:
    """The dpcls: subtable-per-mask lookup structure."""

    def __init__(self, table: Optional[FlowTable] = None) -> None:
        self._subtables: Dict[MaskSignature, _Subtable] = {}
        self.lookups = 0
        self.subtables_probed = 0
        if table is not None:
            self.bind(table)

    def bind(self, table: FlowTable) -> None:
        """Populate from ``table`` and track its future changes."""
        for entry in table.entries():
            self.add_entry(entry)
        table.add_listener(self._on_table_change)

    def _on_table_change(self, kind: str, entry: FlowEntry) -> None:
        if kind == "added":
            self.add_entry(entry)
        elif kind == "removed":
            self.remove_entry(entry)
        # "modified" only rewrites actions; the index is match-keyed.

    # -- maintenance -------------------------------------------------------

    def add_entry(self, entry: FlowEntry) -> None:
        signature = _signature_of(entry)
        subtable = self._subtables.get(signature)
        if subtable is None:
            subtable = _Subtable(signature)
            self._subtables[signature] = subtable
        values = subtable.mask_entry(entry)
        subtable.buckets.setdefault(values, []).append(entry)
        if entry.priority > subtable.max_priority:
            subtable.max_priority = entry.priority

    def remove_entry(self, entry: FlowEntry) -> None:
        signature = _signature_of(entry)
        subtable = self._subtables.get(signature)
        if subtable is None:
            return
        values = subtable.mask_entry(entry)
        bucket = subtable.buckets.get(values)
        if bucket is None or entry not in bucket:
            return
        bucket.remove(entry)
        if not bucket:
            del subtable.buckets[values]
        if not subtable.buckets:
            del self._subtables[signature]
        elif entry.priority >= subtable.max_priority:
            subtable.recompute_max_priority()

    # -- lookup ------------------------------------------------------------------

    def lookup(self, key: FlowKey) -> Optional[FlowEntry]:
        """Highest-priority matching entry (FIFO tie-break), or None.

        Matches :meth:`FlowTable.lookup` exactly, including the
        insertion-order tie-break encoded in ``FlowEntry.flow_id``.
        """
        self.lookups += 1
        best: Optional[FlowEntry] = None
        for subtable in self._subtables.values():
            if best is not None and subtable.max_priority < best.priority:
                continue
            self.subtables_probed += 1
            bucket = subtable.buckets.get(subtable.mask_key(key))
            if not bucket:
                continue
            for entry in bucket:
                if best is None or entry.priority > best.priority or (
                    entry.priority == best.priority
                    and entry.flow_id < best.flow_id
                ):
                    best = entry
        return best

    @property
    def subtable_count(self) -> int:
        return len(self._subtables)

    def __len__(self) -> int:
        return sum(len(subtable) for subtable in self._subtables.values())
