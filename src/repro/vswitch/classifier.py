"""Tuple-space search classifier (OVS's ``dpcls``).

Rules are grouped into *subtables* by their mask signature (the set of
``(field, mask)`` pairs they constrain).  A lookup masks the packet's
flow key once per subtable and does a hash probe, so cost scales with the
number of distinct masks rather than the number of rules — the same
algorithm OVS-DPDK uses after an EMC miss.

Two of OVS's lookup optimizations are modelled:

* **Subtable ranking.**  Subtables are visited in descending
  ``max_priority`` order (hit count breaking ties), so once a match is
  found every remaining subtable that could only yield a *lower*
  priority is skipped in one ``break`` — OVS's sorted subtable vector.
* **Hinted lookup** (:meth:`lookup_hinted`).  The signature-match cache
  (:mod:`repro.vswitch.smc`) remembers which subtable matched a key
  hash last time; the hinted subtable is probed first and the result is
  verified against every subtable that could outrank it, so a stale
  hint can never return the wrong rule.

The classifier is maintained incrementally from
:class:`~repro.openflow.table.FlowTable` change events and must always
agree with the table's linear priority lookup; a property test
(`tests/test_property_classifier.py`) drives both with random rule sets
and random packets to pin that equivalence down.
"""

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.openflow.table import FlowEntry, FlowTable
from repro.packet.flowkey import FlowKey

MaskSignature = FrozenSet[Tuple[str, int]]
MaskedValues = Tuple[Tuple[str, int], ...]


class _Subtable:
    """All rules sharing one mask signature."""

    __slots__ = ("signature", "fields", "buckets", "max_priority", "hits")

    def __init__(self, signature: MaskSignature) -> None:
        self.signature = signature
        # Sorted field list so masked-value tuples are canonical.
        self.fields: List[Tuple[str, int]] = sorted(signature)
        self.buckets: Dict[MaskedValues, List[FlowEntry]] = {}
        self.max_priority = 0
        self.hits = 0  # lookups that found a candidate here (rank input)

    def mask_key(self, key: FlowKey) -> MaskedValues:
        return tuple(
            (name, getattr(key, name) & mask) for name, mask in self.fields
        )

    def mask_entry(self, entry: FlowEntry) -> MaskedValues:
        return tuple(
            (name, entry.match.get(name)[0]) for name, _mask in self.fields
        )

    def recompute_max_priority(self) -> None:
        self.max_priority = max(
            (entry.priority for bucket in self.buckets.values()
             for entry in bucket),
            default=0,
        )

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self.buckets.values())


def signature_of(entry: FlowEntry) -> MaskSignature:
    """The mask signature of a rule — the subtable it lives in."""
    return frozenset(
        (name, mask) for name, (_value, mask) in entry.match.fields.items()
    )


# Backward-compatible private alias (pre-SMC name).
_signature_of = signature_of


class TupleSpaceClassifier:
    """The dpcls: subtable-per-mask lookup structure."""

    def __init__(self, table: Optional[FlowTable] = None) -> None:
        self._subtables: Dict[MaskSignature, _Subtable] = {}
        # Subtables in probe order; rebuilt lazily when the set of
        # subtables (or a max_priority) changes.
        self._ranked: List[_Subtable] = []
        self._rank_dirty = False
        self.lookups = 0
        self.subtables_probed = 0
        if table is not None:
            self.bind(table)

    def bind(self, table: FlowTable) -> None:
        """Populate from ``table`` and track its future changes."""
        for entry in table.entries():
            self.add_entry(entry)
        table.add_listener(self._on_table_change)

    def _on_table_change(self, kind: str, entry: FlowEntry) -> None:
        if kind == "added":
            self.add_entry(entry)
        elif kind == "removed":
            self.remove_entry(entry)
        # "modified" only rewrites actions; the index is match-keyed.

    # -- maintenance -------------------------------------------------------

    def add_entry(self, entry: FlowEntry) -> None:
        signature = signature_of(entry)
        subtable = self._subtables.get(signature)
        if subtable is None:
            subtable = _Subtable(signature)
            self._subtables[signature] = subtable
            self._rank_dirty = True
        values = subtable.mask_entry(entry)
        subtable.buckets.setdefault(values, []).append(entry)
        if entry.priority > subtable.max_priority:
            subtable.max_priority = entry.priority
            self._rank_dirty = True

    def remove_entry(self, entry: FlowEntry) -> None:
        signature = signature_of(entry)
        subtable = self._subtables.get(signature)
        if subtable is None:
            return
        values = subtable.mask_entry(entry)
        bucket = subtable.buckets.get(values)
        if bucket is None or entry not in bucket:
            return
        bucket.remove(entry)
        if not bucket:
            del subtable.buckets[values]
        if not subtable.buckets:
            del self._subtables[signature]
            self._rank_dirty = True
        elif entry.priority >= subtable.max_priority:
            subtable.recompute_max_priority()
            self._rank_dirty = True

    def _ranked_subtables(self) -> List[_Subtable]:
        if self._rank_dirty:
            self._ranked = sorted(
                self._subtables.values(),
                key=lambda s: (-s.max_priority, -s.hits),
            )
            self._rank_dirty = False
        return self._ranked

    # -- lookup ------------------------------------------------------------------

    @staticmethod
    def _better(entry: FlowEntry, best: Optional[FlowEntry]) -> bool:
        """OpenFlow winner order: priority, then FIFO (lower flow_id)."""
        return best is None or entry.priority > best.priority or (
            entry.priority == best.priority and entry.flow_id < best.flow_id
        )

    def _probe(self, subtable: _Subtable, key: FlowKey,
               best: Optional[FlowEntry]) -> Optional[FlowEntry]:
        self.subtables_probed += 1
        bucket = subtable.buckets.get(subtable.mask_key(key))
        if not bucket:
            return best
        subtable.hits += 1
        for entry in bucket:
            if self._better(entry, best):
                best = entry
        return best

    def lookup(self, key: FlowKey) -> Optional[FlowEntry]:
        """Highest-priority matching entry (FIFO tie-break), or None.

        Matches :meth:`FlowTable.lookup` exactly, including the
        insertion-order tie-break encoded in ``FlowEntry.flow_id``.
        Subtables are visited best-first, so the scan stops as soon as
        no remaining subtable can outrank the current winner (ties are
        still probed: FIFO order must be honoured across subtables).
        """
        self.lookups += 1
        best: Optional[FlowEntry] = None
        for subtable in self._ranked_subtables():
            if best is not None and subtable.max_priority < best.priority:
                break  # ranked descending: nothing later can win
            best = self._probe(subtable, key, best)
        return best

    def lookup_hinted(
        self, key: FlowKey, signature: MaskSignature
    ) -> Tuple[Optional[FlowEntry], bool]:
        """Lookup with an SMC hint: probe the hinted subtable first.

        Returns ``(best, confirmed)`` where ``confirmed`` is True when
        the winner came from the hinted subtable — the hint saved the
        full scan.  The hint is never trusted blindly: every subtable
        whose ``max_priority`` could outrank the hinted candidate is
        verified, so the result is always identical to :meth:`lookup`.
        """
        hinted = self._subtables.get(signature)
        if hinted is None:
            return self.lookup(key), False
        self.lookups += 1
        best = self._probe(hinted, key, None)
        confirmed = best is not None
        for subtable in self._ranked_subtables():
            if best is not None and subtable.max_priority < best.priority:
                break
            if subtable is hinted:
                continue
            candidate = self._probe(subtable, key, best)
            if candidate is not best:
                best = candidate
                confirmed = False
        return best, confirmed

    @property
    def subtable_count(self) -> int:
        return len(self._subtables)

    def ranking(self) -> List[Tuple[str, int, int, int]]:
        """``(signature, rules, max_priority, hits)`` rows in probe
        order — the ``dpif/fastpath-show`` view of the subtable sort."""
        rows = []
        for subtable in self._ranked_subtables():
            fields = ",".join(name for name, _mask in subtable.fields)
            rows.append((fields or "<wildcard>", len(subtable),
                         subtable.max_priority, subtable.hits))
        return rows

    def __len__(self) -> int:
        return sum(len(subtable) for subtable in self._subtables.values())
