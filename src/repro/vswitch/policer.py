"""Ingress policing: token-bucket rate limiting on switch ports.

The OVS feature behind ``ingress_policing_rate``: packets received from
a port beyond the configured rate are dropped at ingress.  The policer
runs in the datapath — which means a bypassed port would evade its own
rate limit entirely.  Like mirrors, policed ports are therefore
ineligible for p-2-p acceleration, and policing an active bypass
revokes it: an operator's rate limit is policy, not an optimization
hint.
"""

from typing import Callable, List

from repro.packet.mbuf import Mbuf


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/second, ``burst`` depth."""

    def __init__(self, rate: float, burst: float,
                 clock: Callable[[], float]) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = rate
        self.burst = burst
        self.clock = clock
        self._tokens = burst
        self._last_refill = clock()

    def _refill(self) -> None:
        now = self.clock()
        self._tokens = min(
            self.burst, self._tokens + (now - self._last_refill) * self.rate
        )
        self._last_refill = now

    def admit(self, count: float = 1.0) -> bool:
        """Consume ``count`` tokens if available; False = out of profile."""
        self._refill()
        if self._tokens >= count:
            self._tokens -= count
            return True
        return False

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens


class IngressPolicer:
    """Per-port packet-rate policer applied by the datapath at RX."""

    def __init__(self, ofport: int, rate_pps: float, burst: float,
                 clock: Callable[[], float]) -> None:
        self.ofport = ofport
        self.rate_pps = rate_pps
        self.bucket = TokenBucket(rate_pps, burst, clock)
        self.admitted = 0
        self.dropped = 0

    def filter_burst(self, mbufs: List[Mbuf]) -> List[Mbuf]:
        """Admit in-profile packets; free and count the excess."""
        admitted: List[Mbuf] = []
        for mbuf in mbufs:
            if self.bucket.admit():
                self.admitted += 1
                admitted.append(mbuf)
            else:
                self.dropped += 1
                mbuf.free()
        return admitted

    def __repr__(self) -> str:
        return "<IngressPolicer port=%d %.0fpps admitted=%d dropped=%d>" % (
            self.ofport, self.rate_pps, self.admitted, self.dropped
        )
