"""The bridge (ofproto layer): OpenFlow message handling and stats export.

The bridge owns the flow table and the datapath, speaks OpenFlow over a
:class:`~repro.openflow.controller.ControllerConnection`, and exports
flow/port statistics.  The paper-critical part is the **stats
augmentor** hook: when a p-2-p bypass carries traffic, the datapath's own
counters stop seeing it, so the bridge merges in the counters the guest
PMDs maintain in shared memory before answering a stats request — the
controller keeps seeing correct totals for a port it believes is
ordinary.
"""

from typing import List, Optional

from repro.openflow.controller import ControllerConnection
from repro.openflow.match import Match
from repro.openflow.messages import (
    BarrierReply,
    BarrierRequest,
    EchoReply,
    EchoRequest,
    ErrorMsg,
    FeaturesReply,
    FeaturesRequest,
    FlowMod,
    FlowModCommand,
    FlowRemoved,
    FlowRemovedReason,
    FlowStatsEntry,
    FlowStatsReply,
    FlowStatsRequest,
    Hello,
    OpenFlowMessage,
    PacketIn,
    PacketInReason,
    PortMod,
    PortStatsEntry,
    PortStatsReply,
    PortStatsRequest,
)
from repro.openflow.table import ExpiryReason, FlowEntry, FlowTable
from repro.packet.mbuf import Mbuf
from repro.packet.packet import Packet
from repro.sim.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.vswitch.datapath import Datapath


class StatsAugmentor:
    """Interface for merging externally-maintained (bypass) counters.

    The default implementation contributes nothing; the transparency
    layer in :mod:`repro.core.transparency` supplies the real one.
    """

    def flow_extra(self, entry: FlowEntry) -> "tuple[int, int]":
        """Extra (packets, bytes) for a flow entry."""
        return 0, 0

    def port_extra(self, ofport: int) -> "tuple[int, int, int, int]":
        """Extra (rx_packets, rx_bytes, tx_packets, tx_bytes) for a port."""
        return 0, 0, 0, 0


class Bridge:
    """One OpenFlow bridge over one datapath."""

    def __init__(
        self,
        name: str = "br0",
        datapath_id: int = 1,
        connection: Optional[ControllerConnection] = None,
        costs: CostModel = DEFAULT_COST_MODEL,
        clock=None,
    ) -> None:
        self.name = name
        self.datapath_id = datapath_id
        self.connection = connection
        self.costs = costs
        self.clock = clock or (lambda: 0.0)
        self.table = FlowTable()
        self.datapath = Datapath(
            self.table,
            costs=costs,
            clock=self.clock,
            upcall_handler=self._upcall,
        )
        # Pipeline tables (table 0 = self.table); later tables appear
        # lazily when a flowmod targets them.
        self.tables = self.datapath.tables
        self.max_tables = 8
        self.stats_augmentor: StatsAugmentor = StatsAugmentor()
        self.flowmods_processed = 0
        self.packet_ins_sent = 0
        # Fired with the OvsPort after a port-mod changed its admin
        # state; the highway subscribes (a down port loses its bypass).
        self.on_port_mod: List = []
        # Last externally-maintained packet total seen per flow id; used
        # to keep idle timeouts honest for bypassed rules (see
        # expire_flows).
        self._last_extra_packets: dict = {}

    # -- upcalls -------------------------------------------------------------

    def _upcall(self, mbuf: Mbuf, in_port: int, reason: str) -> None:
        """Datapath miss / controller action: emit PacketIn, free the mbuf."""
        if self.connection is not None:
            data = (
                mbuf.packet.pack() if isinstance(mbuf.packet, Packet)
                else bytes(mbuf.packet or b"")
            )
            self.connection.switch_send(PacketIn(
                in_port=in_port,
                reason=(PacketInReason.NO_MATCH if reason == "no_match"
                        else PacketInReason.ACTION),
                data=data,
            ))
            self.packet_ins_sent += 1
        mbuf.free()

    # -- message pump -----------------------------------------------------------

    def pump(self) -> int:
        """Handle all queued controller messages; returns count handled."""
        if self.connection is None:
            return 0
        handled = 0
        while True:
            message = self.connection.switch_recv()
            if message is None:
                return handled
            self.handle_message(message)
            handled += 1

    def handle_message(self, message: OpenFlowMessage) -> None:
        if isinstance(message, Hello):
            self._send(Hello(xid=message.xid))
        elif isinstance(message, EchoRequest):
            self._send(EchoReply(xid=message.xid, data=message.data))
        elif isinstance(message, FeaturesRequest):
            self._send(FeaturesReply(
                xid=message.xid,
                datapath_id=self.datapath_id,
                n_buffers=0,
                n_tables=self.max_tables,
            ))
        elif isinstance(message, FlowMod):
            self._handle_flowmod(message)
        elif type(message).__name__ == "PacketOut":
            self._handle_packet_out(message)
        elif isinstance(message, FlowStatsRequest):
            self._handle_flow_stats(message)
        elif isinstance(message, PortStatsRequest):
            self._handle_port_stats(message)
        elif isinstance(message, PortMod):
            self._handle_port_mod(message)
        elif isinstance(message, BarrierRequest):
            self._send(BarrierReply(xid=message.xid))
        # Unknown messages are silently ignored (OVS logs and continues).

    def _send(self, message: OpenFlowMessage) -> None:
        if self.connection is not None:
            self.connection.switch_send(message)

    # -- flowmods -------------------------------------------------------------------

    def _table_for(self, table_id: int) -> FlowTable:
        if not 0 <= table_id < self.max_tables:
            raise ValueError("table id %d out of range" % table_id)
        table = self.tables.get(table_id)
        if table is None:
            table = FlowTable(table_id=table_id)
            self.datapath.attach_table(table_id, table)
        return table

    @staticmethod
    def _validate_actions(flowmod: FlowMod) -> Optional[str]:
        from repro.openflow.actions import (
            GotoTableAction,
            SetFieldAction,
            goto_table_of,
        )

        goto = goto_table_of(flowmod.actions)
        if goto is None:
            return None
        if goto.table_id <= flowmod.table_id:
            return "goto_table must target a later table"
        if any(isinstance(a, SetFieldAction) for a in flowmod.actions):
            return "set_field cannot be combined with goto_table"
        if not isinstance(flowmod.actions[-1], GotoTableAction):
            return "goto_table must be the last instruction"
        return None

    def _handle_flowmod(self, flowmod: FlowMod) -> None:
        self.flowmods_processed += 1
        now = self.clock()
        command = flowmod.command
        try:
            table = self._table_for(flowmod.table_id)
        except ValueError:
            self._send(ErrorMsg(xid=flowmod.xid, error_type=5, code=2))
            return
        problem = self._validate_actions(flowmod)
        if problem is not None and command in (
            FlowModCommand.ADD, FlowModCommand.MODIFY,
            FlowModCommand.MODIFY_STRICT,
        ):
            self._send(ErrorMsg(xid=flowmod.xid, error_type=5, code=3))
            return
        if command == FlowModCommand.ADD:
            entry = FlowEntry(
                match=flowmod.match,
                actions=flowmod.actions,
                priority=flowmod.priority,
                cookie=flowmod.cookie,
                idle_timeout=float(flowmod.idle_timeout),
                hard_timeout=float(flowmod.hard_timeout),
                install_time=now,
            )
            try:
                table.add(entry, check_overlap=flowmod.check_overlap)
            except ValueError:
                self._send(ErrorMsg(
                    xid=flowmod.xid, error_type=5, code=1,  # OFPFMFC_OVERLAP
                ))
        elif command in (FlowModCommand.MODIFY, FlowModCommand.MODIFY_STRICT):
            table.modify(
                flowmod.match,
                flowmod.actions,
                strict=(command == FlowModCommand.MODIFY_STRICT),
                priority=flowmod.priority,
            )
        elif command in (FlowModCommand.DELETE, FlowModCommand.DELETE_STRICT):
            result = table.delete(
                flowmod.match,
                strict=(command == FlowModCommand.DELETE_STRICT),
                priority=flowmod.priority,
                out_port=flowmod.out_port,
            )
            for entry in result.removed:
                self._send_flow_removed(entry, FlowRemovedReason.DELETE, now)

    def _send_flow_removed(self, entry: FlowEntry,
                           reason: FlowRemovedReason, now: float) -> None:
        packets, byte_count = self._merged_flow_counters(entry)
        self._send(FlowRemoved(
            match=entry.match,
            priority=entry.priority,
            cookie=entry.cookie,
            reason=reason,
            duration_sec=now - entry.install_time,
            packet_count=packets,
            byte_count=byte_count,
        ))

    # -- port administration -----------------------------------------------------------

    def _handle_port_mod(self, message: PortMod) -> None:
        port = self.datapath.ports.get(message.port_no)
        if port is None:
            self._send(ErrorMsg(xid=message.xid, error_type=7, code=0))
            return
        wanted_up = not message.down
        if port.up == wanted_up:
            return
        port.up = wanted_up
        for listener in list(self.on_port_mod):
            listener(port)

    # -- packet-out --------------------------------------------------------------------

    def _handle_packet_out(self, message) -> None:
        """Inject a controller packet through the normal datapath path.

        This is the message that must keep working while a bypass is
        active: it lands on the port's *normal* channel.
        """
        mbuf = Mbuf()
        mbuf.packet = Packet.unpack(message.data) if message.data else None
        mbuf.wire_length = len(message.data)
        self.datapath.inject(mbuf, message.actions)

    # -- statistics ----------------------------------------------------------------------

    def _merged_flow_counters(self, entry: FlowEntry) -> "tuple[int, int]":
        extra_packets, extra_bytes = self.stats_augmentor.flow_extra(entry)
        return (entry.packet_count + extra_packets,
                entry.byte_count + extra_bytes)

    def _handle_flow_stats(self, request: FlowStatsRequest) -> None:
        from repro.openflow.actions import output_ports

        now = self.clock()
        stats: List[FlowStatsEntry] = []
        all_entries = [
            entry
            for table_id in sorted(self.tables)
            for entry in self.tables[table_id].entries()
        ]
        for entry in all_entries:
            if not request.match.covers(entry.match):
                continue
            if request.out_port is not None and request.out_port not in \
                    output_ports(entry.actions):
                continue
            packets, byte_count = self._merged_flow_counters(entry)
            stats.append(FlowStatsEntry(
                match=entry.match,
                priority=entry.priority,
                cookie=entry.cookie,
                packet_count=packets,
                byte_count=byte_count,
                duration_sec=now - entry.install_time,
                actions=list(entry.actions),
            ))
        self._send(FlowStatsReply(xid=request.xid, stats=stats))

    def _handle_port_stats(self, request: PortStatsRequest) -> None:
        stats: List[PortStatsEntry] = []
        for ofport in sorted(self.datapath.ports):
            if request.port_no is not None and ofport != request.port_no:
                continue
            port = self.datapath.ports[ofport]
            rx_p, rx_b, tx_p, tx_b = self.stats_augmentor.port_extra(ofport)
            stats.append(PortStatsEntry(
                port_no=ofport,
                rx_packets=port.rx_packets + rx_p,
                rx_bytes=port.rx_bytes + rx_b,
                tx_packets=port.tx_packets + tx_p,
                tx_bytes=port.tx_bytes + tx_b,
                tx_dropped=port.tx_dropped,
            ))
        self._send(PortStatsReply(xid=request.xid, stats=stats))

    # -- expiry --------------------------------------------------------------------------

    def expire_flows(self, now: Optional[float] = None) -> int:
        """Time out idle/hard-expired flows; returns count removed.

        Idle timeouts need special care with the highway: a rule whose
        traffic rides a bypass never bumps its datapath counters, so the
        vSwitch would wrongly consider it idle and expire it — killing
        the very link that carries the traffic.  Before expiring, the
        bridge therefore refreshes ``last_used`` for any rule whose
        shared-memory (bypass) counters advanced since the last check —
        the same lazily-read memory the paper uses for stats replies.
        """
        now = self.clock() if now is None else now
        total_expired = 0
        for table_id in sorted(self.tables):
            table = self.tables[table_id]
            for entry in table.entries():
                if not entry.idle_timeout:
                    continue
                extra_packets, _bytes = self.stats_augmentor.flow_extra(
                    entry
                )
                if extra_packets != self._last_extra_packets.get(
                    entry.flow_id, 0
                ):
                    self._last_extra_packets[entry.flow_id] = extra_packets
                    entry.last_used = now
            expired = table.expire(now)
            for entry, reason in expired:
                self._send_flow_removed(
                    entry,
                    (FlowRemovedReason.IDLE_TIMEOUT
                     if reason == ExpiryReason.IDLE
                     else FlowRemovedReason.HARD_TIMEOUT),
                    now,
                )
            total_expired += len(expired)
        return total_expired
