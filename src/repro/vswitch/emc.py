"""The exact-match cache (EMC): OVS-DPDK's first-level lookup.

Maps full flow keys straight to flow entries, skipping the classifier.
Entries are validated against a table *generation* counter: any flow-table
change bumps the generation, instantly invalidating the whole cache —
equivalent in behaviour (though cruder than) OVS's revalidator threads,
and sufficient because correctness only requires that no stale rule ever
forwards a packet after a flowmod.
"""

from typing import Dict, Optional, Tuple

from repro.openflow.table import FlowEntry
from repro.packet.flowkey import FlowKey


class ExactMatchCache:
    """Bounded FlowKey -> FlowEntry cache with generation invalidation."""

    def __init__(self, capacity: int = 8192) -> None:
        if capacity <= 0:
            raise ValueError("EMC capacity must be positive")
        self.capacity = capacity
        self.generation = 0
        self._entries: Dict[FlowKey, Tuple[int, FlowEntry]] = {}
        self.hits = 0
        self.misses = 0
        self.stale_hits = 0
        self.insertions = 0
        self.evictions = 0

    def lookup(self, key: FlowKey) -> Optional[FlowEntry]:
        """Return the cached entry for ``key`` or None.

        A hit from a previous table generation counts as a miss (and is
        removed) — the caller must fall back to the classifier.
        """
        cached = self._entries.get(key)
        if cached is None:
            self.misses += 1
            return None
        generation, entry = cached
        if generation != self.generation:
            del self._entries[key]
            self.stale_hits += 1
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def insert(self, key: FlowKey, entry: FlowEntry) -> None:
        """Cache ``key -> entry`` at the current generation."""
        if len(self._entries) >= self.capacity and key not in self._entries:
            # Evict the oldest insertion (dict preserves insertion order).
            evicted = next(iter(self._entries))
            del self._entries[evicted]
            self.evictions += 1
        self._entries[key] = (self.generation, entry)
        self.insertions += 1

    def invalidate_all(self) -> None:
        """Invalidate every cached entry (flow-table change)."""
        self.generation += 1

    def flush(self) -> None:
        """Drop storage as well (used when memory accounting matters)."""
        self._entries.clear()
        self.generation += 1

    def __len__(self) -> int:
        # Live entries only: stale ones are lazily collected on lookup.
        return sum(
            1 for generation, _entry in self._entries.values()
            if generation == self.generation
        )

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
