"""The exact-match cache (EMC): OVS-DPDK's first-level lookup.

Maps full flow keys straight to the pipeline *traversal* resolved for
them (the tuple of flow entries matched in pipeline order), skipping the
classifier.  Three mechanisms keep it correct and effective under churn,
mirroring real OVS-DPDK:

* **Precise invalidation.**  A back-index from flow entry to the cached
  keys it serves lets a single flowmod tombstone only the affected keys
  (``invalidate_entry`` / ``invalidate_matching``) instead of wiping the
  whole cache.  The crude whole-cache *generation* bump is retained as
  ``invalidate_all`` for callers that want the old behaviour (and as the
  baseline the benchmarks compare against).
* **Probabilistic insertion.**  Above an occupancy threshold only one in
  ``insert_inv_prob`` new keys is admitted (OVS's ``emc-insert-inv-prob``),
  so elephant flows are not thrashed out by a storm of mice.  The coin is
  a deterministic LCG — reruns stay bit-identical.
* **Stale-aware eviction.**  At capacity an invalidated/stale victim is
  preferred over a live one; the two cases are counted separately
  (``stale_evictions`` vs ``evictions``).

Correctness only requires that no stale rule ever forwards a packet
after a flowmod; a tombstoned key behaves exactly like a stale
generation (counted as ``stale_hits``, lazily collected on lookup).
"""

from typing import Dict, Iterable, Optional, Set, Tuple

from repro.openflow.table import FlowEntry
from repro.packet.flowkey import FlowKey

# A cached value: the flow entries matched in pipeline order (table 0
# first).  Unit tests may cache a bare FlowEntry; the cache itself is
# value-agnostic and only unwraps values to maintain the back-index.
Traversal = Tuple[FlowEntry, ...]

# Generation stamp marking a precisely-invalidated (tombstoned) key.
# Real generations start at 0 and only grow, so -1 never validates.
_TOMBSTONE = -1

# How many oldest entries the evictor probes looking for a stale victim
# before sacrificing a live one (bounded, like OVC's EM_FLOW_HASH_SHIFT
# probe depth — a full scan would be O(capacity) on the hot path).
_EVICTION_PROBE_DEPTH = 8


def _components(value) -> Iterable[FlowEntry]:
    """The flow entries referenced by a cached value (for the back-index)."""
    if isinstance(value, FlowEntry):
        return (value,)
    if isinstance(value, tuple):
        return value
    return ()


class ExactMatchCache:
    """Bounded FlowKey -> traversal cache with precise invalidation."""

    def __init__(self, capacity: int = 8192,
                 insert_inv_prob: int = 8,
                 insert_threshold: float = 0.5) -> None:
        if capacity <= 0:
            raise ValueError("EMC capacity must be positive")
        if insert_inv_prob < 1:
            raise ValueError("insert_inv_prob must be >= 1")
        self.capacity = capacity
        # 1-in-N admission for new keys once occupancy crosses the
        # threshold; 1 disables the filter (every insertion admitted).
        self.insert_inv_prob = insert_inv_prob
        self.insert_threshold = insert_threshold
        self.generation = 0
        self._entries: Dict[FlowKey, Tuple[int, Traversal]] = {}
        # flow_id -> keys whose cached traversal contains that entry.
        self._by_entry: Dict[int, Set[FlowKey]] = {}
        # Deterministic LCG state for the insertion coin (no wall-clock
        # randomness: reruns must be bit-identical).
        self._coin = 0x9E3779B9
        self.hits = 0
        self.misses = 0
        self.stale_hits = 0
        self.insertions = 0
        self.insertions_skipped = 0
        self.evictions = 0
        self.stale_evictions = 0
        self.precise_evictions = 0

    # -- back-index maintenance ---------------------------------------------

    def _link(self, key: FlowKey, value) -> None:
        for entry in _components(value):
            self._by_entry.setdefault(entry.flow_id, set()).add(key)

    def _unlink(self, key: FlowKey, value) -> None:
        for entry in _components(value):
            keys = self._by_entry.get(entry.flow_id)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._by_entry[entry.flow_id]

    def _delete(self, key: FlowKey) -> None:
        _generation, value = self._entries.pop(key)
        self._unlink(key, value)

    # -- lookup --------------------------------------------------------------

    def lookup(self, key: FlowKey) -> Optional[Traversal]:
        """Return the cached traversal for ``key`` or None.

        A hit from a previous table generation — or a key tombstoned by
        precise invalidation — counts as a miss (and is removed); the
        caller must fall back to the classifier.
        """
        cached = self._entries.get(key)
        if cached is None:
            self.misses += 1
            return None
        generation, value = cached
        if generation != self.generation:
            self._delete(key)
            self.stale_hits += 1
            self.misses += 1
            return None
        self.hits += 1
        return value

    # -- insertion ------------------------------------------------------------

    def _admit(self) -> bool:
        """The probabilistic-insertion coin (deterministic LCG)."""
        if self.insert_inv_prob <= 1:
            return True
        if len(self._entries) < self.capacity * self.insert_threshold:
            return True  # plenty of room: thrash is not a concern yet
        self._coin = (self._coin * 1103515245 + 12345) & 0x7FFFFFFF
        return self._coin % self.insert_inv_prob == 0

    def _evict_one(self) -> None:
        """Make room: prefer a stale victim within a bounded probe of the
        oldest entries, else sacrifice the oldest live one."""
        victim = None
        for probed, (key, (generation, _value)) in enumerate(
                self._entries.items()):
            if generation != self.generation:
                victim = key
                self.stale_evictions += 1
                break
            if probed + 1 >= _EVICTION_PROBE_DEPTH:
                break
        if victim is None:
            victim = next(iter(self._entries))
            self.evictions += 1
        self._delete(victim)

    def insert(self, key: FlowKey, traversal: Traversal) -> None:
        """Cache ``key -> traversal`` at the current generation.

        New keys are subject to the probabilistic-insertion filter;
        refreshing an existing key always succeeds (the flow already
        proved itself worth caching).
        """
        cached = self._entries.get(key)
        if cached is not None:
            self._unlink(key, cached[1])
        elif not self._admit():
            self.insertions_skipped += 1
            return
        elif len(self._entries) >= self.capacity:
            self._evict_one()
        self._entries[key] = (self.generation, traversal)
        self._link(key, traversal)
        self.insertions += 1

    # -- invalidation ---------------------------------------------------------

    def invalidate_all(self) -> None:
        """Invalidate every cached entry (whole-cache generation bump)."""
        self.generation += 1

    def invalidate_entry(self, entry: FlowEntry) -> int:
        """Tombstone every key whose traversal contains ``entry``
        (a removed or modified rule).  Returns how many keys died."""
        keys = self._by_entry.get(entry.flow_id)
        if not keys:
            return 0
        evicted = 0
        for key in list(keys):
            cached = self._entries.get(key)
            if cached is None or cached[0] != self.generation:
                continue  # already stale or collected
            self._entries[key] = (_TOMBSTONE, cached[1])
            evicted += 1
        self.precise_evictions += evicted
        return evicted

    def invalidate_matching(self, match) -> int:
        """Tombstone every live key that ``match`` covers (a newly added
        rule may now outrank the cached resolution).  Returns the count."""
        evicted = 0
        for key, (generation, value) in self._entries.items():
            if generation != self.generation:
                continue
            if match.matches(key):
                self._entries[key] = (_TOMBSTONE, value)
                evicted += 1
        self.precise_evictions += evicted
        return evicted

    def flush(self) -> None:
        """Drop storage as well (used when memory accounting matters)."""
        self._entries.clear()
        self._by_entry.clear()
        self.generation += 1

    def __len__(self) -> int:
        # Live entries only: stale ones are lazily collected on lookup.
        return sum(
            1 for generation, _value in self._entries.values()
            if generation == self.generation
        )

    @property
    def occupancy(self) -> float:
        """Stored fraction of capacity (stale entries included — they
        still take slots until collected)."""
        return len(self._entries) / self.capacity

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
