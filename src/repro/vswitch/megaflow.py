"""Megaflow (wildcard) cache: the missing OVS tier between the SMC and
the tuple-space classifier.

Real OVS gets most of its speed from the datapath *megaflow* cache: one
cached entry covers an entire traffic aggregate because it is keyed by
the packet's flow key masked down to the *minimal* set of bits the
classifier actually examined while resolving it — OVS's
``flow_wildcards`` / dynamic flow unwildcarding.  This module supplies
that tier for the simulated datapath:

* :class:`FlowWildcards` accumulates, during one classifier walk, the
  union of every ``(field, mask)`` a subtable probe examined.  The
  tuple-space classifier's staged probes (see
  :meth:`~repro.vswitch.classifier._Subtable.masked_key`) feed it, so a
  miss proven at an early stage unwildcards only the fields of that
  stage.
* :class:`MegaflowCache` stores ``masked key -> traversal`` entries
  grouped by distinct mask (a miniature tuple space of its own),
  bounded, with stale-aware eviction and the same per-flowmod precise
  invalidation contract as the EMC (back-index by ``flow_id`` plus
  overlap-based eviction for added rules).

Correctness invariant (pinned by ``tests/test_property_megaflow.py``):
a megaflow entry's mask covers every packet bit the classifier walk
examined — subtable probes unwildcard the fields they hash, staged
misses unwildcard exactly the prefix stages that proved the miss, and
priority comparisons examine *no* packet bits (the probe order and the
early-exit break depend only on table contents).  Therefore any key
matching ``key & mask == value`` reproduces the identical walk and the
identical winning traversal — a megaflow hit is priority-safe by
construction, never by revalidation.
"""

from typing import Dict, List, Optional, Set, Tuple

from repro.openflow.match import Match
from repro.openflow.table import FlowEntry
from repro.packet.flowkey import FlowKey

MaskTuple = Tuple[Tuple[str, int], ...]

#: Eviction probes before falling back to the oldest entry (EMC's
#: bounded-probe pattern: prefer reclaiming a tombstoned victim).
_EVICTION_PROBE_DEPTH = 8


class FlowWildcards:
    """Accumulator for the bits one classifier walk examined.

    ``add(field, mask)`` ORs ``mask`` into the field's unwildcarded
    bits.  The resulting mask is *minimal* for the walk that produced
    it: fields never examined stay fully wildcarded.
    """

    __slots__ = ("bits",)

    def __init__(self) -> None:
        self.bits: Dict[str, int] = {}

    def add(self, field: str, mask: int) -> None:
        if mask:
            self.bits[field] = self.bits.get(field, 0) | mask

    def mask_tuple(self) -> MaskTuple:
        """Canonical (sorted, nonzero-mask) form — the subtable key."""
        return tuple(sorted(self.bits.items()))

    def __repr__(self) -> str:
        inside = ",".join("%s/%#x" % (name, mask)
                          for name, mask in sorted(self.bits.items()))
        return "<FlowWildcards %s>" % (inside or "match-all")


class MegaflowEntry:
    """One cached aggregate: ``key & mask == values -> traversal``."""

    __slots__ = ("uid", "mask", "values", "traversal", "alive", "hit_count")

    def __init__(self, uid: int, mask: MaskTuple,
                 values: Tuple[int, ...],
                 traversal: Tuple[FlowEntry, ...]) -> None:
        self.uid = uid
        self.mask = mask
        self.values = values
        self.traversal = traversal
        self.alive = True
        self.hit_count = 0

    def matches(self, key: FlowKey) -> bool:
        return all(
            (getattr(key, name) & mask) == value
            for (name, mask), value in zip(self.mask, self.values)
        )

    def __repr__(self) -> str:
        inside = ",".join(
            "%s=%#x/%#x" % (name, value, mask)
            for (name, mask), value in zip(self.mask, self.values)
        )
        return "<MegaflowEntry %s %s>" % (
            inside or "match-all", "live" if self.alive else "dead")


class MegaflowCache:
    """Bounded wildcard cache keyed by minimally-masked flow keys.

    Lookup probes one hash bucket per *distinct mask* currently cached
    (a tiny tuple space — distinct masks stay few because masks come
    from subtable signatures, not from flows).  When two live entries
    with different masks both cover a key, either answer is correct:
    each entry's region reproduces the full classifier walk, so both
    traversals equal the classifier's answer for that key (see module
    docstring); the first live hit wins.

    Invalidation mirrors the EMC contract: ``invalidate_entry`` kills
    every cached traversal containing a removed/modified rule via the
    ``flow_id`` back-index; ``invalidate_matching`` kills every entry
    whose region overlaps a newly added rule's match (the new rule
    could outrank the cached winner anywhere in the overlap).  Dead
    entries are tombstoned in place and reclaimed lazily by lookups and
    preferentially by eviction.
    """

    def __init__(self, capacity: int = 2048) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        # mask -> (values tuple -> entry): the per-mask hash tables.
        self._masks: Dict[MaskTuple, Dict[Tuple[int, ...],
                                          MegaflowEntry]] = {}
        # uid -> entry in insertion order (dict order = age).
        self._entries: Dict[int, MegaflowEntry] = {}
        # flow_id -> entries whose traversal contains that rule.
        self._by_flow: Dict[int, Set[MegaflowEntry]] = {}
        self._next_uid = 0
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.refreshes = 0
        self.evictions = 0
        self.stale_evictions = 0
        self.invalidations = 0
        self.stale_lookups = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def mask_count(self) -> int:
        return len(self._masks)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # -- lookup ------------------------------------------------------------

    def lookup(self, key: FlowKey) -> Optional[Tuple[FlowEntry, ...]]:
        """The cached traversal covering ``key``, or None.

        Tombstoned entries found along the way are reclaimed (lazy
        collection) and never answer.
        """
        dead: List[MegaflowEntry] = []
        found: Optional[Tuple[FlowEntry, ...]] = None
        for mask, bucket in self._masks.items():
            values = tuple(getattr(key, name) & field_mask
                           for name, field_mask in mask)
            entry = bucket.get(values)
            if entry is None:
                continue
            if not entry.alive:
                dead.append(entry)
                continue
            entry.hit_count += 1
            found = entry.traversal
            break
        for entry in dead:
            self._remove(entry)
            self.stale_lookups += 1
        if found is not None:
            self.hits += 1
        else:
            self.misses += 1
        return found

    # -- population --------------------------------------------------------

    def insert(self, key: FlowKey, wc: FlowWildcards,
               traversal: Tuple[FlowEntry, ...]) -> MegaflowEntry:
        """Cache ``traversal`` under ``key`` masked down to ``wc``."""
        mask = wc.mask_tuple()
        values = tuple(getattr(key, name) & field_mask
                       for name, field_mask in mask)
        bucket = self._masks.get(mask)
        if bucket is not None:
            existing = bucket.get(values)
            if existing is not None:
                # Refresh in place (an invalidated region resolved
                # again): relink the back-index to the new traversal.
                self._unlink(existing)
                existing.traversal = traversal
                existing.alive = True
                self._link(existing)
                self.refreshes += 1
                return existing
        while len(self._entries) >= self.capacity:
            self._evict_one()
        entry = MegaflowEntry(self._next_uid, mask, values, traversal)
        self._next_uid += 1
        self._masks.setdefault(mask, {})[values] = entry
        self._entries[entry.uid] = entry
        self._link(entry)
        self.insertions += 1
        return entry

    def _link(self, entry: MegaflowEntry) -> None:
        for flow_entry in entry.traversal:
            self._by_flow.setdefault(flow_entry.flow_id, set()).add(entry)

    def _unlink(self, entry: MegaflowEntry) -> None:
        for flow_entry in entry.traversal:
            linked = self._by_flow.get(flow_entry.flow_id)
            if linked is not None:
                linked.discard(entry)
                if not linked:
                    del self._by_flow[flow_entry.flow_id]

    def _remove(self, entry: MegaflowEntry) -> None:
        self._entries.pop(entry.uid, None)
        bucket = self._masks.get(entry.mask)
        if bucket is not None and bucket.get(entry.values) is entry:
            del bucket[entry.values]
            if not bucket:
                del self._masks[entry.mask]
        self._unlink(entry)

    def _evict_one(self) -> None:
        """Reclaim one slot: a tombstone within the probe window if one
        exists (stale-aware), else the oldest entry."""
        victim = None
        probed = 0
        for entry in self._entries.values():
            if victim is None:
                victim = entry  # oldest entry: the live fallback
            if not entry.alive:
                victim = entry
                break
            probed += 1
            if probed >= _EVICTION_PROBE_DEPTH:
                break
        if victim is None:  # pragma: no cover - capacity >= 1 guards this
            return
        stale = not victim.alive
        self._remove(victim)
        if stale:
            self.stale_evictions += 1
        else:
            self.evictions += 1

    # -- invalidation ------------------------------------------------------

    def invalidate_entry(self, flow_entry: FlowEntry) -> int:
        """Tombstone every cached traversal containing ``flow_entry``
        (rule removed or its actions modified).  Returns the count."""
        linked = self._by_flow.get(flow_entry.flow_id)
        if not linked:
            return 0
        killed = 0
        for entry in linked:
            if entry.alive:
                entry.alive = False
                killed += 1
        self.invalidations += killed
        return killed

    def invalidate_matching(self, match: Match) -> int:
        """Tombstone every entry whose region overlaps ``match`` (a
        newly added rule could outrank the cached winner there)."""
        killed = 0
        for entry in self._entries.values():
            if entry.alive and self._region_overlaps(entry, match):
                entry.alive = False
                killed += 1
        self.invalidations += killed
        return killed

    @staticmethod
    def _region_overlaps(entry: MegaflowEntry, match: Match) -> bool:
        """Whether some key can satisfy both the entry's region and the
        match.  Disjoint iff some field disagrees on shared mask bits.

        Unlike :meth:`Match.overlaps` this works on arbitrary bit
        masks — megaflow masks on exact-only fields (``in_port``,
        ``l4_src``, ...) are legal here even though :class:`Match`
        itself refuses to construct them.
        """
        entry_fields = {name: (value, mask)
                        for (name, mask), value
                        in zip(entry.mask, entry.values)}
        for name, (match_value, match_mask) in match.fields.items():
            cached = entry_fields.get(name)
            if cached is None:
                continue  # region unconstrained on this field
            value, mask = cached
            common = mask & match_mask
            if (value & common) != (match_value & common):
                return False
        return True

    def flush(self) -> int:
        """Drop everything (generation-style wipe)."""
        count = len(self._entries)
        self._masks.clear()
        self._entries.clear()
        self._by_flow.clear()
        return count

    def __repr__(self) -> str:
        return "<MegaflowCache %d/%d entries, %d masks, %d hits>" % (
            len(self._entries), self.capacity, len(self._masks),
            self.hits)
