"""The Open vSwitch model: datapath, ports, bridge and daemon facade.

Structure mirrors OVS-DPDK:

* :mod:`repro.vswitch.ports` — switch-side port abstraction (dpdkr / phy);
* :mod:`repro.vswitch.emc` — exact-match cache (first-level lookup);
* :mod:`repro.vswitch.classifier` — tuple-space search classifier (dpcls);
* :mod:`repro.vswitch.datapath` — the PMD fast path tying those together;
* :mod:`repro.vswitch.bridge` — ofproto: OpenFlow handling + stats export;
* :mod:`repro.vswitch.vswitchd` — the daemon: cores, ports, control loop.

The paper's additions (p-2-p link detector, bypass manager, stats merge)
live in :mod:`repro.core` and attach to these classes through explicit
hooks — mirroring how the prototype patched OVS with localized changes.
"""

from repro.vswitch.bridge import Bridge
from repro.vswitch.classifier import TupleSpaceClassifier
from repro.vswitch.datapath import Datapath
from repro.vswitch.emc import ExactMatchCache
from repro.vswitch.mirror import Mirror
from repro.vswitch.ports import DpdkrOvsPort, OvsPort, PhyOvsPort, PortKind
from repro.vswitch.vswitchd import VSwitchd

__all__ = [
    "Bridge",
    "Datapath",
    "DpdkrOvsPort",
    "ExactMatchCache",
    "Mirror",
    "OvsPort",
    "PhyOvsPort",
    "PortKind",
    "TupleSpaceClassifier",
    "VSwitchd",
]
