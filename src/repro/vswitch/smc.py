"""The signature-match cache (SMC): OVS-DPDK's second-level lookup.

Sits between the EMC and the tuple-space classifier.  Where the EMC
stores the full resolution per exact flow key (expensive per entry, so
it thrashes at high flow counts), the SMC only remembers *which subtable
matched* a key's hash — 16 bits per flow in real OVS, a single mask
signature reference here — so it stays effective with orders of
magnitude more flows than EMC slots.

The cache is a direct-mapped hash table: ``hash(key)`` picks the slot,
collisions simply overwrite.  A hit is only ever a *hint*: the datapath
hands it to :meth:`TupleSpaceClassifier.lookup_hinted`, which probes the
hinted subtable first and then verifies against every subtable that
could outrank the candidate — a stale or colliding slot costs time,
never correctness.  That mirrors real OVS, where an SMC hit still runs
the subtable's rule-match before being believed.
"""

from typing import Dict, Optional

from repro.packet.flowkey import FlowKey
from repro.vswitch.classifier import MaskSignature


class SignatureMatchCache:
    """Direct-mapped FlowKey-hash -> subtable-signature cache."""

    def __init__(self, capacity: int = 1 << 13) -> None:
        if capacity <= 0 or capacity & (capacity - 1):
            raise ValueError("SMC capacity must be a positive power of two")
        self.capacity = capacity
        self._slots: Dict[int, MaskSignature] = {}
        self.hits = 0        # probes whose hint was validated by dpcls
        self.misses = 0      # empty slot, or hint failed validation
        self.insertions = 0
        self.replacements = 0  # collision/update overwrote a live slot

    def _slot(self, key: FlowKey) -> int:
        # FlowKey is a NamedTuple of ints, so hash() is deterministic
        # across runs (PYTHONHASHSEED only perturbs str/bytes).
        return hash(key) & (self.capacity - 1)

    def probe(self, key: FlowKey) -> Optional[MaskSignature]:
        """The hinted subtable signature for ``key``, or None.

        Pure read — the caller reports the validation outcome through
        :meth:`account` once the classifier has confirmed or refuted
        the hint.
        """
        return self._slots.get(self._slot(key))

    def account(self, validated: bool) -> None:
        """Record one probe outcome (hit = hint survived validation)."""
        if validated:
            self.hits += 1
        else:
            self.misses += 1

    def insert(self, key: FlowKey, signature: MaskSignature) -> None:
        """Remember that ``key`` matched in ``signature``'s subtable."""
        slot = self._slots
        index = self._slot(key)
        previous = slot.get(index)
        if previous is not None and previous != signature:
            self.replacements += 1
        slot[index] = signature
        self.insertions += 1

    def flush(self) -> None:
        self._slots.clear()

    def __len__(self) -> int:
        return len(self._slots)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
