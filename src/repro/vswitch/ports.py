"""Switch-side port abstraction.

An :class:`OvsPort` is what the datapath polls and outputs to; the two
concrete kinds the paper uses are ``dpdkr`` (shared rings to a VM) and
``phy`` (a DPDK-driven NIC).  Ports also carry the OVS-side counters the
controller sees in port-stats replies — for a bypassed port those numbers
are deliberately *incomplete* until the transparency layer merges the
PMD's shared-memory counters (the paper's §2 last paragraph).
"""

import enum
from typing import List

from repro.dpdk.dpdkr import DpdkrSharedRings
from repro.packet.mbuf import Mbuf
from repro.sim.nic import Nic


class PortKind(enum.Enum):
    DPDKR = "dpdkr"
    PHY = "phy"


class OvsPort:
    """Base port: counters + the receive/send contract."""

    kind: PortKind

    def __init__(self, ofport: int, name: str) -> None:
        self.ofport = ofport
        self.name = name
        self.rx_packets = 0
        self.rx_bytes = 0
        self.tx_packets = 0
        self.tx_bytes = 0
        self.tx_dropped = 0
        self.up = True

    # -- datapath contract ---------------------------------------------------

    def receive_burst(self, max_count: int) -> List[Mbuf]:
        """Packets entering the switch from this port."""
        raise NotImplementedError

    def send_burst(self, mbufs: List[Mbuf]) -> int:
        """Push packets out this port; frees and counts what didn't fit."""
        raise NotImplementedError

    # -- helpers -----------------------------------------------------------------

    def _account_rx(self, mbufs: List[Mbuf]) -> None:
        if mbufs:
            self.rx_packets += len(mbufs)
            self.rx_bytes += sum(m.wire_length for m in mbufs)

    def _account_tx(self, mbufs: List[Mbuf], accepted: int) -> int:
        self.tx_packets += accepted
        self.tx_bytes += sum(
            mbufs[index].wire_length for index in range(accepted)
        )
        for rejected in mbufs[accepted:]:
            self.tx_dropped += 1
            rejected.free()
        return accepted

    def __repr__(self) -> str:
        return "<%s ofport=%d %r rx=%d tx=%d>" % (
            type(self).__name__, self.ofport, self.name,
            self.rx_packets, self.tx_packets,
        )


class DpdkrOvsPort(OvsPort):
    """A dpdkr port as seen by the switch.

    The switch reads the guest's TX ring (``to_switch``) and writes the
    guest's RX ring (``to_guest``).  ``bypass_active`` is flipped by the
    bypass manager purely for observability — the datapath keeps polling
    the normal channel regardless, which is what lets controller
    packet-outs keep working during a bypass.
    """

    kind = PortKind.DPDKR

    def __init__(self, ofport: int, rings: DpdkrSharedRings) -> None:
        super().__init__(ofport, rings.port_name)
        self.rings = rings
        self.bypass_active = False

    def receive_burst(self, max_count: int) -> List[Mbuf]:
        mbufs = self.rings.to_switch.dequeue_burst(max_count)
        self._account_rx(mbufs)
        return mbufs

    def send_burst(self, mbufs: List[Mbuf]) -> int:
        accepted = self.rings.to_guest.enqueue_burst(mbufs)
        return self._account_tx(mbufs, accepted)


class PhyOvsPort(OvsPort):
    """A physical (NIC) port driven by the host PMD."""

    kind = PortKind.PHY

    def __init__(self, ofport: int, name: str, nic: Nic) -> None:
        super().__init__(ofport, name)
        self.nic = nic

    def receive_burst(self, max_count: int) -> List[Mbuf]:
        mbufs = self.nic.host_rx_burst(max_count)
        self._account_rx(mbufs)
        return mbufs

    def send_burst(self, mbufs: List[Mbuf]) -> int:
        accepted = self.nic.host_tx_burst(mbufs)
        return self._account_tx(mbufs, accepted)
