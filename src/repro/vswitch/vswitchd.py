"""vswitchd: the daemon facade tying bridge, datapath and PMD cores.

This is the deployment surface: create a :class:`VSwitchd`, add dpdkr /
phy ports (ovs-vsctl style), connect a controller, and — when running
inside a simulation — ``start()`` the PMD poll loops and the control
loop.  The number of PMD cores is the paper's key structural constant:
the demo testbed ran OVS-DPDK with a single PMD core that every
VM-to-VM hop had to share.
"""

from typing import Dict, List, Optional

from repro.dpdk.dpdkr import DpdkrSharedRings
from repro.mem.memzone import MemzoneRegistry
from repro.obs.cycles import PmdCycleReport, StageAccounting, StageTee
from repro.openflow.controller import ControllerConnection
from repro.overload import (
    BoundedUpcallQueue,
    FailModeManager,
    FailModePolicy,
    OverloadMonitor,
    OverloadPolicy,
    UpcallPolicy,
)
from repro.sched.autolb import (
    AutoLbPolicy,
    AutoLoadBalancer,
    DEFAULT_AUTO_LB_POLICY,
)
from repro.sched.scheduler import PmdScheduler, RebalancePlan
from repro.sim.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.sim.engine import Environment
from repro.sim.nic import Nic
from repro.sim.pollloop import PollLoop
from repro.vswitch.bridge import Bridge
from repro.vswitch.ports import DpdkrOvsPort, OvsPort, PhyOvsPort


class VSwitchd:
    """One vSwitch instance on a host."""

    def __init__(
        self,
        env: Optional[Environment] = None,
        registry: Optional[MemzoneRegistry] = None,
        connection: Optional[ControllerConnection] = None,
        costs: CostModel = DEFAULT_COST_MODEL,
        n_pmd_cores: int = 1,
        control_interval: float = 0.0005,
        name: str = "ovs",
        rxq_assign: str = "roundrobin",
        auto_lb: bool = False,
        auto_lb_policy: AutoLbPolicy = DEFAULT_AUTO_LB_POLICY,
        bounded_upcalls: bool = True,
        upcall_policy: Optional[UpcallPolicy] = None,
        fail_mode: str = "standalone",
        failmode_policy: Optional[FailModePolicy] = None,
        overload: bool = False,
        overload_policy: Optional[OverloadPolicy] = None,
    ) -> None:
        if n_pmd_cores < 1:
            raise ValueError("need at least one PMD core")
        self.env = env
        self.registry = registry if registry is not None else MemzoneRegistry()
        self.costs = costs
        self.name = name
        self.n_pmd_cores = n_pmd_cores
        self.control_interval = control_interval
        clock = (lambda: env.now) if env is not None else None
        self.bridge = Bridge(
            name="br0", connection=connection, costs=costs, clock=clock
        )
        self.datapath = self.bridge.datapath
        # Overload control: bounded upcalls + fail-mode routing.  The
        # fail-mode manager interposes on the upcall handler (it passes
        # through to bridge._upcall while the controller is reachable).
        self.upcall_queue: Optional[BoundedUpcallQueue] = None
        if bounded_upcalls or upcall_policy is not None:
            self.upcall_queue = BoundedUpcallQueue(
                upcall_policy, clock=clock or (lambda: 0.0)
            )
            self.datapath.upcall_queue = self.upcall_queue
        self.failmode: Optional[FailModeManager] = None
        if connection is not None:
            self.failmode = FailModeManager(
                self.bridge,
                connection,
                mode=fail_mode,
                policy=failmode_policy,
                clock=clock or (lambda: 0.0),
            )
            self.datapath.upcall_handler = self.failmode.handle_upcall
        self._overload_requested = overload
        self._overload_policy = overload_policy
        self._next_ofport = 1
        # The scheduler owns the core -> ports map; ``_core_ports``
        # aliases its lists (same objects — the PMD loops close over
        # them, so scheduler moves are live).
        self.scheduler = PmdScheduler(n_pmd_cores, policy=rxq_assign)
        self.scheduler.on_move.append(self._on_port_moved)
        self._core_ports: List[List[OvsPort]] = self.scheduler.core_ports
        # Per-core datapath stage accounting (pmd/stats-show): the
        # Datapath is shared, so attribution to a core happens by
        # passing the core's StageAccounting through process_ports.
        self._core_stages: List[StageAccounting] = [
            StageAccounting() for _ in range(n_pmd_cores)
        ]
        # Per-port stage tables (the reattribution unit when the
        # scheduler moves a port) and the per-port tees combining them
        # with the owning core's table.
        self._port_stages: Dict[int, StageAccounting] = {}
        self._port_tees: Dict[int, StageTee] = {}
        self.auto_lb: Optional[AutoLoadBalancer] = (
            AutoLoadBalancer(self, auto_lb_policy) if auto_lb else None
        )
        # The overload monitor needs the scheduler (rebalance grace) and
        # cross-links with the auto-lb (shedding masks the busy signal).
        self.overload: Optional[OverloadMonitor] = (
            OverloadMonitor(self, self._overload_policy)
            if self._overload_requested else None
        )
        if self.auto_lb is not None and self.overload is not None:
            self.auto_lb.overload_monitor = self.overload
        self._pmd_loops: List[PollLoop] = []
        self._control_loop = None
        self._running = False
        # Called with the Mirror after add/remove; the transparent
        # highway subscribes to revoke bypasses on mirrored ports.
        self.on_mirror_change: List = []

    # -- port management (ovs-vsctl add-port) ---------------------------------

    def _allocate_ofport(self, ofport: Optional[int]) -> int:
        if ofport is None:
            ofport = self._next_ofport
        self._next_ofport = max(self._next_ofport, ofport + 1)
        return ofport

    def add_dpdkr_port(
        self,
        port_name: str,
        ofport: Optional[int] = None,
        ring_size: int = 1024,
    ) -> DpdkrOvsPort:
        """Create a dpdkr port: reserves its memzone + shared rings."""
        rings = DpdkrSharedRings(self.registry, port_name,
                                 ring_size=ring_size)
        port = DpdkrOvsPort(self._allocate_ofport(ofport), rings)
        self._register(port)
        return port

    def add_phy_port(self, port_name: str, nic: Nic,
                     ofport: Optional[int] = None) -> PhyOvsPort:
        port = PhyOvsPort(self._allocate_ofport(ofport), port_name, nic)
        self._register(port)
        return port

    def _register(self, port: OvsPort) -> None:
        self.datapath.add_port(port)
        core_index = self.scheduler.add_port(port)
        port_stages = StageAccounting()
        self._port_stages[port.ofport] = port_stages
        self._port_tees[port.ofport] = StageTee(
            self._core_stages[core_index], port_stages
        )

    def del_port(self, ofport: int) -> OvsPort:
        port = self.datapath.remove_port(ofport)
        core_index = self.scheduler.remove_port(port)
        # Reattribution: the core's aggregate stage table stops
        # claiming work done for a port it no longer owns — without
        # this, pmd/stats-show silently mixes departed ports into the
        # core's story forever.
        port_stages = self._port_stages.pop(ofport, None)
        self._port_tees.pop(ofport, None)
        if port_stages is not None and core_index is not None:
            self._core_stages[core_index].subtract(port_stages)
        return port

    def _on_port_moved(self, port: OvsPort, src_core: int,
                       dst_core: int) -> None:
        """Scheduler move hook: reattribute stage accounting.

        The port's accumulated stages leave the old core's table (that
        work is history the new core never did) and the port table
        restarts from zero on the new core — never silently mixing two
        cores' attributions.  The loops' busy/idle accounting is
        untouched: it is the authority and already correct per core.
        """
        port_stages = self._port_stages.get(port.ofport)
        if port_stages is not None:
            self._core_stages[src_core].subtract(port_stages)
            port_stages.reset()
        tee = self._port_tees.get(port.ofport)
        if tee is not None:
            tee.targets[0] = self._core_stages[dst_core]

    def port_by_name(self, port_name: str) -> OvsPort:
        for port in self.datapath.ports.values():
            if port.name == port_name:
                return port
        raise KeyError("no port named %r" % port_name)

    # -- mirrors (ovs-vsctl create mirror) ------------------------------------

    def add_mirror(self, name: str, output: str,
                   select_src: Optional[List[str]] = None,
                   select_dst: Optional[List[str]] = None):
        """Mirror traffic of the named ports to the ``output`` port."""
        from repro.vswitch.mirror import Mirror

        if any(m.name == name for m in self.datapath.mirrors):
            raise ValueError("mirror %r already exists" % name)
        mirror = Mirror(
            name=name,
            output=self.port_by_name(output).ofport,
            select_src=frozenset(
                self.port_by_name(p).ofport for p in select_src or []
            ),
            select_dst=frozenset(
                self.port_by_name(p).ofport for p in select_dst or []
            ),
        )
        self.datapath.mirrors.append(mirror)
        for listener in self.on_mirror_change:
            listener(mirror)
        return mirror

    def remove_mirror(self, name: str) -> None:
        for mirror in list(self.datapath.mirrors):
            if mirror.name == name:
                self.datapath.mirrors.remove(mirror)
                for listener in self.on_mirror_change:
                    listener(mirror)
                return
        raise ValueError("no mirror named %r" % name)

    # -- ingress policing (ovs-vsctl ingress_policing_rate) --------------------

    def set_ingress_policing(self, port_name: str, rate_pps: float,
                             burst: Optional[float] = None):
        """Rate-limit packets received from ``port_name``.

        ``rate_pps <= 0`` removes the policer.  Notifies the same
        listeners as mirror changes (bypass eligibility is affected the
        same way).
        """
        from repro.vswitch.policer import IngressPolicer

        port = self.port_by_name(port_name)
        clock = (lambda: self.env.now) if self.env is not None \
            else (lambda: 0.0)
        if rate_pps <= 0:
            removed = self.datapath.policers.pop(port.ofport, None)
            if removed is not None:
                for listener in self.on_mirror_change:
                    listener(removed)
            return None
        policer = IngressPolicer(
            port.ofport, rate_pps,
            burst=burst if burst is not None else max(32.0, rate_pps / 100),
            clock=clock,
        )
        self.datapath.policers[port.ofport] = policer
        for listener in self.on_mirror_change:
            listener(policer)
        return policer

    def policed_ports(self) -> set:
        return set(self.datapath.policers)

    def mirrored_ports(self) -> set:
        """Ofports whose traffic some mirror wants to observe."""
        selected = set()
        for mirror in self.datapath.mirrors:
            selected |= mirror.selected_ports
        return selected

    # -- synchronous stepping (unit tests, env-less use) -------------------------

    def step_dataplane(self) -> float:
        """Run one PMD iteration on every core; returns total cpu cost."""
        return sum(
            self._core_iteration(core_index)
            for core_index in range(self.n_pmd_cores)
        )

    def _core_iteration(self, core_index: int) -> float:
        """One PMD iteration for ``core_index``.

        Looks the port list up through the scheduler-owned list object
        (moves are live), tees per-port stage costs into the core table
        *and* the port's own table, and feeds measured per-port cost
        into the scheduler's load tracker.
        """
        tracker = self.scheduler.tracker
        port_tees = self._port_tees

        def stages_for(port):
            return port_tees.get(port.ofport)

        def on_port_cost(port, cost, packets):
            tracker.record(port.ofport, core_index, cost, packets)

        return self.datapath.process_ports(
            self._core_ports[core_index],
            stages=self._core_stages[core_index],
            stages_for=stages_for,
            on_port_cost=on_port_cost,
        )

    def step_control(self) -> int:
        """Process pending controller messages + flow expirations."""
        now = self.env.now if self.env is not None else 0.0
        if self.failmode is not None:
            self.failmode.tick(now)
        handled = self.bridge.pump()
        if self.failmode is not None and self.failmode.expiry_frozen:
            self.failmode.frozen_expiry_skips += 1
        else:
            self.bridge.expire_flows(now)
        return handled

    def set_fail_mode(self, mode: str) -> None:
        """Switch the controller-loss behavior (``standalone|secure``)."""
        if self.failmode is None:
            raise RuntimeError("no controller connection: fail mode moot")
        self.failmode.set_mode(mode)

    # -- simulation lifecycle --------------------------------------------------------

    def start(self) -> None:
        """Start PMD poll loops and the control loop (needs an env)."""
        if self.env is None:
            raise RuntimeError("VSwitchd.start() requires an Environment")
        if self._running:
            raise RuntimeError("vswitchd already running")
        self._running = True
        for core_index in range(self.n_pmd_cores):
            loop = PollLoop(
                self.env,
                "%s.pmd%d" % (self.name, core_index),
                self._make_pmd_iteration(core_index),
                costs=self.costs,
            ).start()
            self._pmd_loops.append(loop)
        self._control_loop = self.env.process(
            self._control_process(), name="%s.control" % self.name
        )
        if self.auto_lb is not None:
            self.auto_lb.start(self.env)
        if self.overload is not None:
            self.overload.start(self.env)

    def _make_pmd_iteration(self, core_index: int):
        def iteration() -> float:
            return self._core_iteration(core_index)

        return iteration

    def _control_process(self):
        env = self.env
        while self._running:
            if self.failmode is not None:
                self.failmode.tick(env.now)
            handled = self.bridge.pump()
            if self.failmode is not None and self.failmode.expiry_frozen:
                self.failmode.frozen_expiry_skips += 1
            else:
                self.bridge.expire_flows(env.now)
            delay = self.control_interval
            if handled:
                delay += handled * self.costs.flowmod_processing
            yield env.timeout(delay)

    def stop(self) -> None:
        self._running = False
        if self.auto_lb is not None:
            self.auto_lb.stop()
        if self.overload is not None:
            self.overload.stop()
        for loop in self._pmd_loops:
            loop.stop()
        self._pmd_loops = []

    # -- rxq scheduling (pmd-rxq-assign / pmd-auto-lb) -------------------------

    def set_rxq_assign(self, policy: str) -> None:
        """Switch the assignment policy (``pmd-rxq-assign=...``)."""
        self.scheduler.set_policy(policy)

    def pin_port(self, port_name: str, core: int) -> None:
        """Pin a port to a core (``pmd-rxq-affinity`` analog); honored
        by the ``group`` policy."""
        self.scheduler.pin(self.port_by_name(port_name).ofport, core)

    def unpin_port(self, port_name: str) -> None:
        self.scheduler.unpin(self.port_by_name(port_name).ofport)

    def isolate_core(self, core: int, isolated: bool = True) -> None:
        """Exclude a core from non-pinned assignment (``group`` only)."""
        self.scheduler.isolate(core, isolated)

    def sample_core_busy(self) -> List[float]:
        """Per-core busy fractions since the previous sample.

        Empty when the PMD loops are not running (synchronous tests) so
        callers can fall back to tracker-attributed load.
        """
        fractions: List[float] = []
        for loop in self._pmd_loops:
            busy, idle = loop.sample_activity()
            total = busy + idle
            fractions.append(busy / total if total > 0.0 else 0.0)
        return fractions

    def rebalance(self) -> RebalancePlan:
        """Close the load interval and rebalance now (manual trigger)."""
        self.scheduler.tracker.roll()
        return self.scheduler.rebalance()

    # -- introspection ------------------------------------------------------------------

    @property
    def pmd_utilization(self) -> List[float]:
        return [loop.utilization for loop in self._pmd_loops]

    def reset_pmd_accounting(self) -> None:
        """Zero PMD busy/idle counters at a measurement-window start."""
        for loop in self._pmd_loops:
            loop.reset_accounting()
        for stages in self._core_stages:
            stages.reset()
        # Port tables must reset with the core tables: a stale port
        # table would over-subtract from the freshly-zeroed core table
        # at the next move or del_port.
        for stages in self._port_stages.values():
            stages.reset()

    def pmd_cycle_report(self) -> PmdCycleReport:
        """``pmd/stats-show``-style cycle report over the PMD cores."""
        report = PmdCycleReport()
        for loop, stages in zip(self._pmd_loops, self._core_stages):
            report.track(loop, stages)
        return report

    def core_assignment(self) -> Dict[int, List[str]]:
        return {
            core_index: [port.name for port in ports]
            for core_index, ports in enumerate(self._core_ports)
        }

    def __repr__(self) -> str:
        return "<VSwitchd %s ports=%d cores=%d>" % (
            self.name, len(self.datapath.ports), self.n_pmd_cores
        )
