"""Operator CLI surface: ovs-ofctl / ovs-appctl style commands.

Text-level management of a :class:`~repro.vswitch.vswitchd.VSwitchd`,
mirroring the commands operators drive the real prototype with, plus the
one command the paper's modification would add (``bypass/show``).  All
output is plain text, and ``dump-flows`` counters include bypassed
traffic through the same stats-merge path the controller uses — the
operator sees one consistent story.
"""

from typing import List, Optional

from repro.openflow.flowsyntax import format_flow, parse_flow
from repro.openflow.table import FlowEntry
from repro.vswitch.ports import DpdkrOvsPort
from repro.vswitch.vswitchd import VSwitchd


def add_flow(vswitchd: VSwitchd, text: str) -> FlowEntry:
    """``ovs-ofctl add-flow``: install a rule from its text form.

    Goes through the bridge's flow table, so the p-2-p detector sees the
    change exactly as it would a controller flowmod.  A ``table=N`` key
    selects a later pipeline table.
    """
    match, actions, attributes = parse_flow(text)
    entry = FlowEntry(
        match,
        actions,
        priority=attributes.get("priority", 0x8000),
        cookie=attributes.get("cookie", 0),
        idle_timeout=float(attributes.get("idle_timeout", 0)),
        hard_timeout=float(attributes.get("hard_timeout", 0)),
        install_time=vswitchd.bridge.clock(),
    )
    vswitchd.bridge._table_for(attributes.get("table", 0)).add(entry)
    return entry


def save_flows(vswitchd: VSwitchd) -> str:
    """Serialize every installed rule as restorable text (no counters)."""
    lines = []
    bridge = vswitchd.bridge
    for table_id in sorted(bridge.tables):
        for entry in bridge.tables[table_id].entries():
            line = format_flow(entry.match, entry.actions,
                               priority=entry.priority)
            if table_id:
                line = "table=%d,%s" % (table_id, line)
            lines.append(line)
    return "\n".join(lines)


def restore_flows(vswitchd: VSwitchd, text: str) -> int:
    """Replace the flow configuration with the ``save_flows`` output.

    Returns the number of rules installed.  Runs through the normal
    table paths, so detectors and caches react as usual.
    """
    for table in list(vswitchd.bridge.tables.values()):
        table.clear()
    count = 0
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        add_flow(vswitchd, line)
        count += 1
    return count


def del_flows(vswitchd: VSwitchd, text: str = "") -> int:
    """``ovs-ofctl del-flows``: delete rules matching a text spec.

    An empty spec deletes everything.  Returns the number removed.
    """
    if not text.strip():
        return len(vswitchd.bridge.table.clear())
    match, _actions, attributes = parse_flow(text + ",actions=drop")
    result = vswitchd.bridge.table.delete(
        match,
        strict="priority" in attributes,
        priority=attributes.get("priority", 0x8000),
    )
    return len(result.removed)


def dump_flows(vswitchd: VSwitchd) -> str:
    """``ovs-ofctl dump-flows``: one line per rule, counters merged with
    the shared-memory bypass statistics."""
    bridge = vswitchd.bridge
    lines = []
    for table_id in sorted(bridge.tables):
        for entry in bridge.tables[table_id].entries():
            packets, byte_count = bridge._merged_flow_counters(entry)
            line = format_flow(
                entry.match, entry.actions, priority=entry.priority,
                counters=(packets, byte_count),
            )
            if table_id:
                line = "table=%d, %s" % (table_id, line)
            lines.append(line)
    return "\n".join(lines)


def show(vswitchd: VSwitchd) -> str:
    """``ovs-ofctl show``-ish: bridge summary and port table."""
    lines = [
        "bridge %s (datapath id %#x): %d ports, %d flows"
        % (vswitchd.bridge.name, vswitchd.bridge.datapath_id,
           len(vswitchd.datapath.ports), len(vswitchd.bridge.table)),
    ]
    augmentor = vswitchd.bridge.stats_augmentor
    for ofport in sorted(vswitchd.datapath.ports):
        port = vswitchd.datapath.ports[ofport]
        rx_p, _rx_b, tx_p, _tx_b = augmentor.port_extra(ofport)
        flags = [port.kind.value]
        if isinstance(port, DpdkrOvsPort) and port.bypass_active:
            flags.append("BYPASS")
        policer = vswitchd.datapath.policers.get(ofport)
        if policer is not None:
            flags.append("POLICED@%.0fpps" % policer.rate_pps)
        lines.append(
            " %2d(%s): %s rx=%d tx=%d drops=%d"
            % (ofport, port.name, ",".join(flags),
               port.rx_packets + rx_p, port.tx_packets + tx_p,
               port.tx_dropped)
        )
    for mirror in vswitchd.datapath.mirrors:
        lines.append(
            " mirror %s: src=%s dst=%s -> %d"
            % (mirror.name, sorted(mirror.select_src),
               sorted(mirror.select_dst), mirror.output)
        )
    return "\n".join(lines)


def cache_stats(vswitchd: VSwitchd) -> str:
    """``dpif-netdev/pmd-stats-show``-ish: fast-path lookup statistics."""
    datapath = vswitchd.datapath
    emc = datapath.emc
    lines = [
        "packets processed: %d" % datapath.packets_processed,
        "emc hits: %d (%.1f%% hit rate)"
        % (datapath.emc_hits, emc.hit_rate * 100),
        "classifier hits: %d (%d subtables)"
        % (datapath.classifier_hits, datapath.classifier.subtable_count),
        "miss upcalls: %d" % datapath.miss_upcalls,
    ]
    for index, utilization in enumerate(vswitchd.pmd_utilization):
        lines.append("pmd core %d utilization: %.1f%%"
                     % (index, utilization * 100))
    return "\n".join(lines)


def fastpath_show(vswitchd: VSwitchd) -> str:
    """``appctl dpif/fastpath-show``: the vectorized fast-path view.

    One screen answering "which lookup tier is serving traffic, how full
    are the flow batches, and is invalidation precise or sledgehammer":
    EMC / SMC statistics, the dpcls subtable ranking, and the flow-batch
    fill histogram.
    """
    datapath = vswitchd.datapath
    emc = datapath.emc
    smc = datapath.smc
    megaflow = datapath.megaflow
    # The miss-chain waterfall: of the packets each tier saw, how many
    # did it resolve?  dpcls serves what no cache did.
    dpcls_hits = (datapath.classifier_hits - datapath.smc_hits
                  - datapath.megaflow_hits)
    lines = [
        "fast path: %s, burst size %d"
        % ("vectorized (flow batches)" if datapath.vectorized
           else "scalar (per-packet)", datapath.burst_size),
        "lookup tiers: emc=%s smc=%s megaflow=%s invalidation=%s"
        % ("on" if datapath.emc_enabled else "off",
           "on" if datapath.smc_enabled else "off",
           "on" if datapath.megaflow_enabled else "off",
           datapath.emc_invalidation),
        "miss chain: emc=%d -> smc=%d -> megaflow=%d -> dpcls=%d "
        "-> upcall=%d"
        % (datapath.emc_hits, datapath.smc_hits, datapath.megaflow_hits,
           dpcls_hits, datapath.miss_upcalls),
        "emc: %d entries, hits=%d misses=%d (%.1f%% hit rate) stale=%d"
        % (len(emc), emc.hits, emc.misses, emc.hit_rate * 100,
           emc.stale_hits),
        "emc: insertions=%d skipped=%d evictions=%d stale_evictions=%d "
        "precise_evictions=%d"
        % (emc.insertions, emc.insertions_skipped, emc.evictions,
           emc.stale_evictions, emc.precise_evictions),
        "smc: %d slots, hits=%d misses=%d (%.1f%% hit rate) "
        "insertions=%d replacements=%d"
        % (len(smc), smc.hits, smc.misses, smc.hit_rate * 100,
           smc.insertions, smc.replacements),
        "megaflow: %d entries (%d masks), hits=%d misses=%d "
        "(%.1f%% hit rate)"
        % (len(megaflow), megaflow.mask_count, megaflow.hits,
           megaflow.misses, megaflow.hit_rate * 100),
        "megaflow: insertions=%d refreshes=%d evictions=%d "
        "stale_evictions=%d invalidations=%d"
        % (megaflow.insertions, megaflow.refreshes, megaflow.evictions,
           megaflow.stale_evictions, megaflow.invalidations),
        "dpcls: %d lookups, %d subtables probed, %d rank decay(s)"
        % (datapath.classifier.lookups,
           datapath.classifier.subtables_probed,
           datapath.classifier.rank_decays),
    ]
    for fields, rules, max_priority, hits in datapath.classifier.ranking():
        lines.append(" subtable [%s]: %d rule(s) max_priority=%d hits=%d"
                     % (fields, rules, max_priority, hits))
    lines.append(
        "flow batches: %d batches, %d packets (avg fill %.2f)"
        % (datapath.flow_batches, datapath.packets_batched,
           datapath.avg_batch_fill))
    for fill in sorted(datapath.batch_fill_counts):
        lines.append(" fill %2d: %d batch(es)"
                     % (fill, datapath.batch_fill_counts[fill]))
    return "\n".join(lines)


def bypass_show(vswitchd: VSwitchd, manager=None) -> str:
    """``appctl bypass/show``: the command this prototype adds.

    Lists active bypass channels with their zones, rule attribution and
    shared-memory counters, and the lifecycle history.
    """
    if manager is None:
        return "transparent highway: disabled"
    lines = ["transparent highway: enabled, %d active channel(s)"
             % len(manager.active_links)]
    for src_ofport in sorted(manager.active_links):
        link = manager.active_links[src_ofport]
        if link.ring is None:
            # Establishing (or between retry attempts): nothing
            # provisioned to report yet.
            lines.append(
                " %s -> %s  state=%s flow=%d (unprovisioned, attempt %d)"
                % (link.src_port_name, link.dst_port_name,
                   link.state.value, link.link.flow_id, link.attempts)
            )
            continue
        lines.append(
            " %s -> %s  state=%s zone=%s flow=%d tx_packets=%d "
            "tx_bytes=%d ring=%d/%d enq_fail=%d partial=%d"
            % (link.src_port_name, link.dst_port_name, link.state.value,
               link.zone_name, link.link.flow_id, link.stats.tx_packets,
               link.stats.tx_bytes, len(link.ring),
               link.ring.capacity - 1, link.ring.enqueue_failures,
               link.ring.partial_enqueues)
        )
    removed = [link for link in manager.history
               if link not in manager.active_links.values()]
    if removed:
        lines.append(" history: %d channel(s) removed, %d packets "
                     "carried in total"
                     % (len(removed),
                        sum(link.stats.tx_packets for link in removed
                            if link.stats is not None)))
    return "\n".join(lines)


def bypass_faults(manager=None) -> str:
    """``appctl bypass/faults``: resilience counters and fault status.

    Shows the self-healing counters, the links currently in quarantine,
    and — when a fault plan is armed — what it has injected so far.
    """
    if manager is None:
        return "transparent highway: disabled"
    counters = manager.resilience
    lines = ["bypass control-plane resilience:"]
    for name, value in counters.rows():
        lines.append(" %-24s %d" % (name, value))
    lines.append(" %-24s %d" % ("faults survived",
                                counters.total_faults_survived))
    lines.append(" %-24s %d" % ("packets lost to failures",
                                manager.packets_lost_to_failures))
    quarantined = manager.quarantined_links
    lines.append("quarantine: %d link(s)" % len(quarantined))
    for src_ofport in sorted(quarantined):
        record = quarantined[src_ofport]
        lines.append(
            " src ofport %d -> %d  failures=%d next_attempt=%.3fs"
            % (src_ofport, record.link.dst_ofport, record.failures,
               record.until)
        )
    plan = manager.faults
    if plan is None:
        lines.append("fault plan: none armed")
    else:
        lines.append("fault plan: seed=%r, %d fault(s) injected"
                     % (plan.seed, plan.total_injected))
        for point, occurrences, injected in plan.summary_rows():
            lines.append(" %-20s occurrences=%d injected=%d"
                         % (point, occurrences, injected))
    return "\n".join(lines)


def bypass_health(manager=None) -> str:
    """``appctl bypass/health``: runtime-health view of active channels.

    Renders the watchdog's per-link verdicts and streak counters, its
    detection thresholds, the links quarantined for runtime degradation
    (with the heartbeat gate on their re-admission), and the fallback
    counters — the operator's one-stop answer to "is any bypass sick,
    and what did the host do about it?".
    """
    if manager is None:
        return "transparent highway: disabled"
    watchdog = manager.watchdog
    policy = watchdog.policy
    lines = [
        "bypass watchdog: %d check pass(es), %d link(s) tracked"
        % (watchdog.checks_run, len(watchdog.health)),
        " policy: poll_interval=%.3fs stall_polls=%d heartbeat_polls=%d "
        "validate_ring=%s"
        % (policy.poll_interval, policy.stall_polls,
           policy.heartbeat_polls, "yes" if policy.validate_ring else "no"),
    ]
    for key, verdict, detail in watchdog.rows():
        lines.append(" src ofport %d: %s  %s" % (key, verdict, detail))
    counters = manager.resilience
    lines.append("runtime fallback counters:")
    for name in ("stalled_consumers", "wedged_guests",
                 "dead_peer_fallbacks", "ring_integrity_failures",
                 "links_degraded", "packets_salvaged",
                 "degraded_readmissions", "readmissions_deferred"):
        lines.append(" %-24s %d" % (name.replace("_", " "),
                                    getattr(counters, name)))
    degraded = {
        src_ofport: record
        for src_ofport, record in manager.quarantined_links.items()
        if record.reason == "degraded"
    }
    lines.append("degraded quarantine: %d link(s)" % len(degraded))
    for src_ofport in sorted(degraded):
        record = degraded[src_ofport]
        lines.append(
            " src ofport %d -> %d  failures=%d next_attempt=%.3fs "
            "heartbeat_mark=%s"
            % (src_ofport, record.link.dst_ofport, record.failures,
               record.until, record.heartbeat_mark)
        )
    return "\n".join(lines)


def chain_health(repairer=None) -> str:
    """``appctl chain/health``: the chain repairer's per-NF view.

    One row per VNF (state, restart budget consumed, crashes seen) plus
    the lifecycle counters — the operator's answer to "is the service
    whole, and what did the supervisor do about the last crash?".
    """
    if repairer is None:
        return "chain repairer: not running"
    lines = ["chain repairer: %d NF(s) supervised" % len(repairer.records)]
    for name, state, restarts, crashes in repairer.rows():
        lines.append(" %-12s state=%-8s restarts=%d/%d crashes=%d"
                     % (name, state, restarts,
                        repairer.policy.max_restarts, crashes))
    lines.append("lifecycle counters:")
    for counter in ("crashes_detected", "repairs_started",
                    "repairs_succeeded", "repairs_failed", "demotions",
                    "flows_replayed", "packets_flushed"):
        lines.append(" %-24s %d" % (counter.replace("_", " "),
                                    getattr(repairer, counter)))
    return "\n".join(lines)


def mempool_show(mempools=None) -> str:
    """``appctl mempool/show``: pool occupancy and the ownership ledger.

    Per pool: capacity, free/in-use split, lifecycle counters (including
    double frees and reclamation sweeps), and one row per ledger holder
    with its in-flight mbuf count.
    """
    if not mempools:
        return "mempools: none tracked"
    lines = []
    for pool in mempools:
        lines.append(
            "%s: size=%d available=%d in_use=%d"
            % (pool.name, pool.size, pool.available, pool.in_use))
        lines.append(
            " allocs=%d frees=%d alloc_failures=%d double_frees=%d"
            % (pool.alloc_count, pool.free_count_total,
               pool.alloc_failures, pool.double_free_detected))
        lines.append(
            " reclaim: sweeps=%d reclaimed=%d leaked_found=%d "
            "leaked_permanent=%d"
            % (pool.reclaim_sweeps, pool.reclaimed_total,
               pool.leaked_found_total, pool.leaked_permanent))
        holders = pool.holders()
        if holders:
            for holder in sorted(holders):
                lines.append(" holder %-28s %d mbuf(s)"
                             % (holder, holders[holder]))
        else:
            lines.append(" ledger: no in-flight holders")
    return "\n".join(lines)


def pmd_rxq_show(vswitchd: VSwitchd) -> str:
    """``appctl dpif-netdev/pmd-rxq-show``: per-core port placement.

    Mirrors the real command's shape: one block per PMD core listing
    its ports with measured load share (EWMA cycles, as a percentage of
    the core's attributed total), plus pinning/isolation marks.
    """
    scheduler = vswitchd.scheduler
    tracker = scheduler.tracker
    lines = []
    for core_index, ports in enumerate(scheduler.core_ports):
        isolated = core_index in scheduler.isolated_cores
        lines.append("pmd thread core %d:%s" % (
            core_index, "  isolated: true" if isolated else ""
        ))
        core_total = sum(tracker.port_load(p.ofport) for p in ports)
        for port in ports:
            load = tracker.port_load(port.ofport)
            share = 100.0 * load / core_total if core_total > 0 else 0.0
            pinned = scheduler.pinned_core(port.ofport)
            mark = "  (pinned)" if pinned is not None else ""
            lines.append("  port: %-12s queue-id: 0  usage: %5.1f %%%s"
                         % (port.name, share, mark))
        if not ports:
            lines.append("  (no ports)")
    return "\n".join(lines)


def sched_show(vswitchd: VSwitchd) -> str:
    """``appctl sched/show``: scheduler + auto-LB state in one screen.

    Policy, per-core measured loads, rebalance history and — when the
    auto load balancer is enabled — its thresholds and every skip
    reason, answering "why did it (not) rebalance?".
    """
    scheduler = vswitchd.scheduler
    tracker = scheduler.tracker
    lines = [
        "rxq scheduler: policy=%s cores=%d ports=%d"
        % (scheduler.policy.name, scheduler.n_cores,
           len(scheduler.ports())),
        "load tracker: %d interval(s) closed, %d (port, core) pair(s)"
        % (tracker.intervals, len(tracker.pairs())),
    ]
    for core_index, load in enumerate(tracker.core_loads(
            scheduler.n_cores)):
        names = [p.name for p in scheduler.core_ports[core_index]]
        lines.append(" core %d: load=%.3g s/interval ports=[%s]"
                     % (core_index, load, ", ".join(names)))
    lines.append("rebalances: %d applied, %d port move(s)"
                 % (scheduler.rebalances, scheduler.port_moves))
    plan = scheduler.last_plan
    if plan is not None:
        lines.append(" last plan: %d move(s), variance %.3g -> %.3g "
                     "(%.0f%% improvement)"
                     % (len(plan.moves), plan.variance_before,
                        plan.variance_after, plan.improvement * 100))
        for move in plan.moves:
            lines.append("  move %s: core %d -> core %d"
                         % (move.port_name, move.src_core,
                            move.dst_core))
    auto_lb = vswitchd.auto_lb
    if auto_lb is None:
        lines.append("auto-lb: disabled")
        return "\n".join(lines)
    policy = auto_lb.policy
    lines.append(
        "auto-lb: enabled, interval=%gs load_threshold=%.2f "
        "improvement_threshold=%.2f"
        % (policy.rebalance_interval, policy.load_threshold,
           policy.improvement_threshold))
    lines.append(
        " checks=%d applied=%d skipped: warmup=%d no_overload=%d "
        "no_moves=%d small_improvement=%d"
        % (auto_lb.checks_run, auto_lb.rebalances_applied,
           auto_lb.skipped_warmup, auto_lb.skipped_no_overload,
           auto_lb.skipped_no_moves, auto_lb.skipped_small_improvement))
    if auto_lb.last_busy_fractions:
        lines.append(" last busy fractions: [%s]" % ", ".join(
            "%.2f" % b for b in auto_lb.last_busy_fractions))
    return "\n".join(lines)


def policer_show(vswitchd: VSwitchd) -> str:
    """``appctl policer/show``: ingress policer state per port."""
    policers = vswitchd.datapath.policers
    if not policers:
        return "policers: none configured"
    lines = ["policers: %d" % len(policers)]
    for ofport in sorted(policers):
        policer = policers[ofport]
        lines.append(
            " port %d: rate=%.0fpps burst=%.0f tokens=%.1f "
            "admitted=%d dropped=%d"
            % (ofport, policer.rate_pps, policer.bucket.burst,
               policer.bucket.tokens, policer.admitted, policer.dropped))
    return "\n".join(lines)


def overload_show(vswitchd: VSwitchd) -> str:
    """``appctl overload/show``: upcall queue, fail mode, shedding."""
    lines: List[str] = []
    queue = vswitchd.upcall_queue
    if queue is None:
        lines.append("upcall queue: unbounded (legacy inline path)")
    else:
        policy = queue.policy
        lines.append(
            "upcall queue: depth=%d/%d (control=%d, reserve=%d) "
            "high_watermark=%d"
            % (queue.depth, policy.max_queue, queue.control_depth,
               policy.control_reserve, queue.high_watermark))
        lines.append(
            " policy: port_quota=%d port_rate_pps=%g port_burst=%g "
            "dispatch_batch=%d"
            % (policy.port_quota, policy.port_rate_pps,
               policy.port_burst, policy.dispatch_batch))
        lines.append(
            " admitted: miss=%d control=%d  dispatched=%d"
            % (queue.admitted_miss, queue.admitted_control,
               queue.dispatched))
        shed = ", ".join("%s=%d" % (why, queue.shed[why])
                         for why in sorted(queue.shed))
        lines.append(" shed: total=%d%s"
                     % (queue.shed_total,
                        (" (%s)" % shed) if shed else ""))
    failmode = vswitchd.failmode
    if failmode is None:
        lines.append("fail mode: no controller connection")
    else:
        stats = failmode.stats()
        lines.append(
            "fail mode: %s, state=%s, outages=%d reconnects=%d "
            "(attempts=%d failures=%d)"
            % (stats["mode"], stats["state"], stats["outages"],
               stats["reconnects"], stats["reconnect_attempts"],
               stats["reconnect_failures"]))
        lines.append(
            " packet-ins: pending=%d buffered=%d replayed=%d shed=%d"
            % (stats["pending_packet_ins"], stats["packet_ins_buffered"],
               stats["packet_ins_replayed"], stats["packet_ins_shed"]))
        lines.append(
            " fallback: packets=%d floods=%d flows=%d removed=%d"
            % (stats["fallback_packets"], stats["fallback_floods"],
               stats["fallback_flows"], stats["fallback_flows_removed"]))
    monitor = vswitchd.overload
    if monitor is None:
        lines.append("overload monitor: disabled")
    else:
        stats = monitor.stats()
        lines.append(
            "overload monitor: checks=%d overloaded=%d raised=%d "
            "lowered=%d deferred_to_rebalance=%d"
            % (stats["checks_run"], stats["overloaded_checks"],
               stats["shed_increases"], stats["shed_decreases"],
               stats["deferred_to_rebalance"]))
    rx_shed = vswitchd.datapath.rx_shed
    if rx_shed:
        lines.append(" rx shed levels: %s" % ", ".join(
            "port %d=%.2f" % (ofport, rx_shed[ofport])
            for ofport in sorted(rx_shed)))
    drops = vswitchd.datapath.rx_early_drops
    if drops:
        lines.append(" rx early drops: %s" % ", ".join(
            "port %d=%d" % (ofport, drops[ofport])
            for ofport in sorted(drops)))
    return "\n".join(lines)


def overload_set(vswitchd: VSwitchd, argument: str) -> str:
    """``appctl overload/set KEY VALUE``: tune overload knobs live.

    ``fail_mode standalone|secure`` switches the fail mode; any numeric
    field of the active :class:`~repro.overload.UpcallPolicy` or
    :class:`~repro.overload.OverloadPolicy` can be set by name.
    """
    parts = argument.split()
    if len(parts) != 2:
        return "usage: overload/set KEY VALUE"
    key, raw = parts
    if key == "fail_mode":
        try:
            vswitchd.set_fail_mode(raw)
        except (ValueError, RuntimeError) as exc:
            return "error: %s" % exc
        return "fail_mode=%s" % raw
    targets = []
    if vswitchd.upcall_queue is not None:
        targets.append(vswitchd.upcall_queue.policy)
    if vswitchd.overload is not None:
        targets.append(vswitchd.overload.policy)
    for policy in targets:
        if hasattr(policy, key):
            current = getattr(policy, key)
            try:
                value = type(current)(raw)
            except ValueError:
                return "error: %r is not a valid %s" % (
                    raw, type(current).__name__)
            setattr(policy, key, value)
            return "%s=%s" % (key, value)
    known = sorted(
        {name for policy in targets for name in vars(policy)} | {"fail_mode"}
    )
    return "unknown knob %r (try: %s)" % (key, ", ".join(known))


def pmd_stats_show(vswitchd: VSwitchd, obs=None) -> str:
    """``appctl pmd/stats-show``: busy/idle cycles + per-stage breakdown.

    With an :class:`~repro.obs.plane.Observability` wired, covers every
    tracked loop (guest cores included); otherwise just the vSwitch's
    own PMD cores.
    """
    if obs is not None:
        return obs.pmd_cycle_report().render()
    return vswitchd.pmd_cycle_report().render()


def coverage_show(obs=None) -> str:
    """``appctl coverage/show``: event coverage counters."""
    if obs is None:
        return "observability: not wired"
    return obs.registry.coverage_report()


def metrics_dump(obs=None) -> str:
    """``appctl metrics/dump``: full registry, Prometheus text format."""
    if obs is None:
        return "observability: not wired"
    from repro.obs.export import prometheus_text

    return prometheus_text(obs.registry).rstrip("\n")


def trace_dump(obs=None, limit: int = 10) -> str:
    """``appctl trace/dump``: the most recent sampled packet paths."""
    if obs is None:
        return "observability: not wired"
    return obs.tracer.render(limit=limit)


def bench_last(bench=None) -> str:
    """``appctl bench/last``: the scenario runs this process produced."""
    if bench is None:
        return "benchmarks: no bench state wired"
    return bench.last_report()


def bench_trends(bench=None, argument: str = "") -> str:
    """``appctl bench/trends [SCENARIO]``: trend-file tail per scenario."""
    if bench is None:
        return "benchmarks: no bench state wired"
    scenario = argument.strip() or None
    return bench.trends_report(scenario=scenario)


class AppCtl:
    """Dispatcher bundling the commands (an ovs-appctl socket stand-in)."""

    def __init__(self, vswitchd: VSwitchd, manager=None, obs=None,
                 repairer=None, mempools=None, bench=None) -> None:
        self.vswitchd = vswitchd
        self.manager = manager
        self.obs = obs
        self.repairer = repairer
        self.mempools = mempools
        self.bench = bench

    def run(self, command: str, argument: str = "") -> str:
        handlers = {
            "add-flow": lambda: str(add_flow(self.vswitchd, argument)),
            "del-flows": lambda: "%d flows removed" % del_flows(
                self.vswitchd, argument
            ),
            "dump-flows": lambda: dump_flows(self.vswitchd),
            "save-flows": lambda: save_flows(self.vswitchd),
            "restore-flows": lambda: "%d flows restored" % restore_flows(
                self.vswitchd, argument
            ),
            "show": lambda: show(self.vswitchd),
            "pmd-stats-show": lambda: cache_stats(self.vswitchd),
            "dpif/fastpath-show": lambda: fastpath_show(self.vswitchd),
            "pmd/stats-show": lambda: pmd_stats_show(self.vswitchd,
                                                     self.obs),
            "dpif-netdev/pmd-rxq-show": lambda: pmd_rxq_show(
                self.vswitchd
            ),
            "sched/show": lambda: sched_show(self.vswitchd),
            "sched/rebalance": lambda: str(self.vswitchd.rebalance()),
            "policer/show": lambda: policer_show(self.vswitchd),
            "overload/show": lambda: overload_show(self.vswitchd),
            "overload/set": lambda: overload_set(self.vswitchd, argument),
            "coverage/show": lambda: coverage_show(self.obs),
            "metrics/dump": lambda: metrics_dump(self.obs),
            "trace/dump": lambda: trace_dump(
                self.obs,
                limit=int(argument) if argument.strip() else 10,
            ),
            "bypass/show": lambda: bypass_show(self.vswitchd,
                                               self.manager),
            "bypass/faults": lambda: bypass_faults(self.manager),
            "bypass/health": lambda: bypass_health(self.manager),
            "chain/health": lambda: chain_health(self.repairer),
            "mempool/show": lambda: mempool_show(self.mempools),
            "bench/last": lambda: bench_last(self.bench),
            "bench/trends": lambda: bench_trends(self.bench, argument),
        }
        handler = handlers.get(command)
        if handler is None:
            return "unknown command %r (try: %s)" % (
                command, ", ".join(sorted(handlers))
            )
        return handler()
