"""DPDK substrate: EAL, ethdev API, dpdkr shared-ring ports, virtio-serial.

The guest applications and the vSwitch are written against these
abstractions exactly as the paper's VNFs are written against DPDK:
``rx_burst``/``tx_burst`` over ``dpdkr`` ports whose rings live in shared
memzones, with a virtio-serial control channel host <-> guest for the PMD
reconfiguration the bypass switchover needs.
"""

from repro.dpdk.eal import Eal, EalError
from repro.dpdk.ethdev import DevStats, EthDev
from repro.dpdk.dpdkr import DpdkrPmd, DpdkrSharedRings, dpdkr_zone_name
from repro.dpdk.virtio_serial import ControlMessage, VirtioSerial

__all__ = [
    "ControlMessage",
    "DevStats",
    "DpdkrPmd",
    "DpdkrSharedRings",
    "Eal",
    "EalError",
    "EthDev",
    "VirtioSerial",
    "dpdkr_zone_name",
]
