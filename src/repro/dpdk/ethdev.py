"""The ethdev API: the port interface guest applications program against.

Transparency at this layer is the paper's core trick: the modified PMD
(:class:`repro.core.pmd.DualChannelPmd`) implements the same interface as
the plain single-channel :class:`repro.dpdk.dpdkr.DpdkrPmd`, so VNF code
cannot tell whether its port currently rides the vSwitch or a bypass.
"""

from dataclasses import dataclass
from typing import List

from repro.packet.mbuf import Mbuf


@dataclass
class DevStats:
    """rte_eth_stats subset."""

    ipackets: int = 0
    opackets: int = 0
    ibytes: int = 0
    obytes: int = 0
    imissed: int = 0   # rx drops (ring full on the far side)
    oerrors: int = 0   # tx failures (ring full)

    def snapshot(self) -> "DevStats":
        return DevStats(self.ipackets, self.opackets, self.ibytes,
                        self.obytes, self.imissed, self.oerrors)


class EthDev:
    """Abstract port device."""

    # Simulation clock (set by whoever wires the device into an env);
    # only consulted when stamping path-trace spans.
    clock = None

    def _trace_now(self) -> float:
        return self.clock() if self.clock is not None else 0.0

    @property
    def tx_extra_cost(self) -> float:
        """Extra per-packet CPU cost the sender pays on this device.

        Zero for plain devices; the dual-channel PMD charges the
        shared-memory statistics update here while a bypass is active.
        """
        return 0.0

    def __init__(self, port_id: int, name: str) -> None:
        self.port_id = port_id
        self.name = name
        self.stats = DevStats()
        self.started = False

    def start(self) -> None:
        self.started = True

    def stop(self) -> None:
        self.started = False

    def rx_burst(self, max_count: int) -> List[Mbuf]:
        """Receive up to ``max_count`` packets (non-blocking)."""
        raise NotImplementedError

    def tx_burst(self, mbufs: List[Mbuf]) -> int:
        """Transmit; returns the number accepted (rest stay with caller)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return "<%s port=%d %r>" % (
            type(self).__name__, self.port_id, self.name
        )
