"""dpdkr ports: shared-ring devices between a VM and the vSwitch.

A ``dpdkr`` port is a pair of rings in a dedicated memzone:

* ``to_switch`` — guest TX, polled by the OVS forwarding engine;
* ``to_guest`` — OVS output, polled by the guest PMD.

The memzone is exposed to the VM as an ivshmem device at VM creation
time (the *normal channel*).  :class:`DpdkrPmd` is the vanilla
single-channel guest PMD; the paper's dual-channel PMD in
:mod:`repro.core.pmd` wraps the same rings plus an optional bypass.
"""

from typing import List

from repro.dpdk.ethdev import EthDev
from repro.mem.memzone import Memzone, MemzoneRegistry
from repro.mem.ring import Ring, RingMode
from repro.packet.mbuf import Mbuf


def dpdkr_zone_name(port_name: str) -> str:
    """Memzone name for a dpdkr port (matches DPDK's rte_eth_ring names)."""
    return "rte_eth_ring.%s" % port_name


class DpdkrSharedRings:
    """The shared-memory structure of one dpdkr port."""

    def __init__(
        self,
        registry: MemzoneRegistry,
        port_name: str,
        ring_size: int = 1024,
    ) -> None:
        self.port_name = port_name
        self.zone: Memzone = registry.reserve(
            dpdkr_zone_name(port_name), size=ring_size * 2 * 8, owner="ovs"
        )
        # dpdkr rings are single-producer single-consumer: one side is the
        # guest PMD thread, the other a specific OVS PMD thread.
        self.to_switch: Ring = self.zone.put(
            "tx", Ring("%s.to_switch" % port_name, ring_size, RingMode.SP_SC)
        )
        self.to_guest: Ring = self.zone.put(
            "rx", Ring("%s.to_guest" % port_name, ring_size, RingMode.SP_SC)
        )
        # Ownership-ledger tokens: buffers parked in a dpdkr ring are
        # charged to the ring, so a crashed endpoint's backlog can be
        # swept back to its pool.
        self.to_switch.holder_token = "ring:%s.to_switch" % port_name
        self.to_guest.holder_token = "ring:%s.to_guest" % port_name
        # Guest-written, host-read liveness epoch.  Imported lazily:
        # repro.core pulls in the vswitch stack, which needs this module.
        from repro.core.stats import PortHeartbeat

        self.heartbeat = self.zone.put("heartbeat", PortHeartbeat())

    @classmethod
    def attach(cls, zone: Memzone) -> "DpdkrSharedRings":
        """Attach to an existing zone (guest side, post ivshmem map)."""
        rings = cls.__new__(cls)
        rings.port_name = zone.name.split(".", 1)[1]
        rings.zone = zone
        rings.to_switch = zone.get("tx")
        rings.to_guest = zone.get("rx")
        from repro.core.stats import PortHeartbeat

        # Tolerate zones built before heartbeats existed (hand-rolled
        # test fixtures): publish into a private block nobody reads.
        rings.heartbeat = (
            zone.get("heartbeat") if "heartbeat" in zone else PortHeartbeat()
        )
        return rings

    def __repr__(self) -> str:
        return "<DpdkrSharedRings %s tx=%d rx=%d>" % (
            self.port_name, len(self.to_switch), len(self.to_guest)
        )


class DpdkrPmd(EthDev):
    """Vanilla guest-side dpdkr PMD: one (normal) channel.

    All traffic goes through the vSwitch.  Chains built with this PMD are
    the paper's "traditional approach" baseline.
    """

    def __init__(self, port_id: int, rings: DpdkrSharedRings) -> None:
        super().__init__(port_id, rings.port_name)
        self.rings = rings

    def rx_burst(self, max_count: int) -> List[Mbuf]:
        mbufs = self.rings.to_guest.dequeue_burst(max_count)
        if mbufs:
            self.stats.ipackets += len(mbufs)
            self.stats.ibytes += sum(m.wire_length for m in mbufs)
            for mbuf in mbufs:
                if mbuf.trace is not None:
                    mbuf.trace.add(self._trace_now(), "guest-rx",
                                   channel="normal", port=self.name)
        return mbufs

    def tx_burst(self, mbufs: List[Mbuf]) -> int:
        sent = self.rings.to_switch.enqueue_burst(mbufs)
        if sent:
            self.stats.opackets += sent
            self.stats.obytes += sum(
                mbufs[index].wire_length for index in range(sent)
            )
            for index in range(sent):
                if mbufs[index].trace is not None:
                    mbufs[index].trace.add(self._trace_now(), "guest-tx",
                                           channel="normal",
                                           port=self.name)
        if sent < len(mbufs):
            self.stats.oerrors += len(mbufs) - sent
        return sent
