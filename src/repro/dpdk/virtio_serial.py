"""virtio-serial: the host <-> guest control channel.

The compute agent uses this to reconfigure the in-guest PMD (attach /
detach a bypass channel) without touching the network path.  Delivery is
in-order with a configurable one-way latency; with no environment the
channel degrades to synchronous delivery (handy in unit tests).
"""

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

from repro.sim.engine import Environment

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults import FaultPlan


@dataclass
class ControlMessage:
    """One message on the control channel."""

    command: str
    args: Dict[str, Any] = field(default_factory=dict)


Handler = Callable[[ControlMessage], Optional[ControlMessage]]


class VirtioSerial:
    """A bidirectional, in-order host/guest message channel.

    ``guest_handler`` / ``host_handler`` are invoked on delivery; a
    handler's non-None return value is sent back as an in-order reply on
    the opposite direction (request/response is how the agent confirms the
    PMD really switched channels before reporting success to OVS).
    """

    def __init__(
        self,
        name: str,
        env: Optional[Environment] = None,
        one_way_latency: float = 0.009,
        faults: Optional["FaultPlan"] = None,
    ) -> None:
        self.name = name
        self.env = env
        self.one_way_latency = one_way_latency
        self.faults = faults
        self.guest_handler: Optional[Handler] = None
        self.host_handler: Optional[Handler] = None
        self.to_guest_log: List[ControlMessage] = []
        self.to_host_log: List[ControlMessage] = []
        self.dropped_messages = 0
        # Set by kill(): the device is gone (VM crashed).  Everything
        # sent afterwards — including messages already in flight when
        # the crash hit — vanishes; senders recover via their timeouts.
        self.dead = False

    def kill(self) -> None:
        """The backing device died mid-conversation (VM crash)."""
        self.dead = True

    # -- sending ------------------------------------------------------------

    def host_send(self, message: ControlMessage) -> None:
        """Host -> guest; delivered after the one-way latency."""
        if self.dead:
            self.dropped_messages += 1
            return
        self.to_guest_log.append(message)
        self._deliver(message, to_guest=True)

    def guest_send(self, message: ControlMessage) -> None:
        """Guest -> host."""
        if self.dead:
            self.dropped_messages += 1
            return
        self.to_host_log.append(message)
        self._deliver(message, to_guest=False)

    # -- plumbing ---------------------------------------------------------------

    def _deliver(self, message: ControlMessage, *, to_guest: bool) -> None:
        extra_delay = 0.0
        if self.faults is not None:
            from repro.faults import (
                SERIAL_TO_GUEST, SERIAL_TO_HOST, FaultMode,
            )

            point = SERIAL_TO_GUEST if to_guest else SERIAL_TO_HOST
            action = self.faults.fire(point)
            if action is not None:
                if action.mode in (FaultMode.DROP, FaultMode.CRASH):
                    # The message vanishes in transit; the sender only
                    # recovers through its own timeout.
                    self.dropped_messages += 1
                    return
                if action.mode is FaultMode.DELAY:
                    extra_delay = action.delay
                elif action.mode is FaultMode.ERROR:
                    # Corrupted in transit: the receiver sees an explicit
                    # error carrying the same request id, so request/
                    # response correlation still works and the sender
                    # gets a prompt NACK instead of a silent loss.
                    message = ControlMessage("error", {
                        "request_id": message.args.get("request_id"),
                        "reason": action.message,
                    })
        if self.env is None:
            # Same NACK semantics as the simulated path: a receiver that
            # rejects the command answers with an error reply instead of
            # unwinding through the channel into the sender's stack.
            try:
                self._dispatch(message, to_guest=to_guest)
            except Exception as error:  # noqa: BLE001 - NACK, don't crash
                if message.command == "error":
                    # An error reply that itself failed to deliver ends
                    # here — NACKing a NACK would ping-pong forever.
                    self.dropped_messages += 1
                    return
                reply = ControlMessage("error", {
                    "request_id": message.args.get("request_id"),
                    "reason": str(error),
                })
                if to_guest:
                    self.guest_send(reply)
                else:
                    self.host_send(reply)
            return
        self.env.process(
            self._delayed_dispatch(message, to_guest, extra_delay),
            name="%s.deliver" % self.name,
        )

    def _delayed_dispatch(self, message: ControlMessage, to_guest: bool,
                          extra_delay: float = 0.0):
        yield self.env.timeout(self.one_way_latency + extra_delay)
        if self.dead:
            # The VM crashed while this message was on the wire.
            self.dropped_messages += 1
            return
        try:
            self._dispatch(message, to_guest=to_guest)
        except Exception as error:  # noqa: BLE001 - NACK, don't crash
            # The receiver rejected the command — typically a straggler
            # referring to state (a zone, an attachment) that was rolled
            # back while the message was in flight.  Surface a NACK to
            # the sender; crashing the channel would take the simulated
            # host down with it.
            reply = ControlMessage("error", {
                "request_id": message.args.get("request_id"),
                "reason": str(error),
            })
            if to_guest:
                self.guest_send(reply)
            else:
                self.host_send(reply)

    def _dispatch(self, message: ControlMessage, *, to_guest: bool) -> None:
        handler = self.guest_handler if to_guest else self.host_handler
        if handler is None:
            raise RuntimeError(
                "virtio-serial %r: no %s handler attached"
                % (self.name, "guest" if to_guest else "host")
            )
        reply = handler(message)
        if reply is not None:
            if to_guest:
                self.guest_send(reply)
            else:
                self.host_send(reply)
