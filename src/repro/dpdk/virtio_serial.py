"""virtio-serial: the host <-> guest control channel.

The compute agent uses this to reconfigure the in-guest PMD (attach /
detach a bypass channel) without touching the network path.  Delivery is
in-order with a configurable one-way latency; with no environment the
channel degrades to synchronous delivery (handy in unit tests).
"""

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.sim.engine import Environment


@dataclass
class ControlMessage:
    """One message on the control channel."""

    command: str
    args: Dict[str, Any] = field(default_factory=dict)


Handler = Callable[[ControlMessage], Optional[ControlMessage]]


class VirtioSerial:
    """A bidirectional, in-order host/guest message channel.

    ``guest_handler`` / ``host_handler`` are invoked on delivery; a
    handler's non-None return value is sent back as an in-order reply on
    the opposite direction (request/response is how the agent confirms the
    PMD really switched channels before reporting success to OVS).
    """

    def __init__(
        self,
        name: str,
        env: Optional[Environment] = None,
        one_way_latency: float = 0.009,
    ) -> None:
        self.name = name
        self.env = env
        self.one_way_latency = one_way_latency
        self.guest_handler: Optional[Handler] = None
        self.host_handler: Optional[Handler] = None
        self.to_guest_log: List[ControlMessage] = []
        self.to_host_log: List[ControlMessage] = []

    # -- sending ------------------------------------------------------------

    def host_send(self, message: ControlMessage) -> None:
        """Host -> guest; delivered after the one-way latency."""
        self.to_guest_log.append(message)
        self._deliver(message, to_guest=True)

    def guest_send(self, message: ControlMessage) -> None:
        """Guest -> host."""
        self.to_host_log.append(message)
        self._deliver(message, to_guest=False)

    # -- plumbing ---------------------------------------------------------------

    def _deliver(self, message: ControlMessage, *, to_guest: bool) -> None:
        if self.env is None:
            self._dispatch(message, to_guest=to_guest)
            return
        self.env.process(
            self._delayed_dispatch(message, to_guest),
            name="%s.deliver" % self.name,
        )

    def _delayed_dispatch(self, message: ControlMessage, to_guest: bool):
        yield self.env.timeout(self.one_way_latency)
        self._dispatch(message, to_guest=to_guest)

    def _dispatch(self, message: ControlMessage, *, to_guest: bool) -> None:
        handler = self.guest_handler if to_guest else self.host_handler
        if handler is None:
            raise RuntimeError(
                "virtio-serial %r: no %s handler attached"
                % (self.name, "guest" if to_guest else "host")
            )
        reply = handler(message)
        if reply is not None:
            if to_guest:
                self.guest_send(reply)
            else:
                self.host_send(reply)
