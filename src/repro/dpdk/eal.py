"""EAL: the per-process DPDK environment.

A host process (the vSwitch) runs a *primary* EAL that can reserve
memzones; each VM's DPDK application runs a *guest* EAL whose memzone
lookups are filtered through the ivshmem visibility model — a guest can
only find zones that have been mapped into its VM.  This is the property
that makes the bypass hot-plug sequence observable: before the compute
agent plugs the bypass zone, the guest PMD genuinely cannot reach it.
"""

from typing import Dict, List, Optional

from repro.dpdk.ethdev import EthDev
from repro.mem.memzone import Memzone, MemzoneError, MemzoneRegistry
from repro.mem.mempool import Mempool


class EalError(RuntimeError):
    """EAL-level failures (duplicate ports, invisible zones...)."""


class Eal:
    """One DPDK process environment."""

    def __init__(
        self,
        registry: MemzoneRegistry,
        *,
        vm_name: Optional[str] = None,
        name: Optional[str] = None,
    ) -> None:
        """``vm_name=None`` means the primary/host process (sees all zones);
        otherwise lookups are restricted to zones mapped into that VM."""
        self.registry = registry
        self.vm_name = vm_name
        self.name = name or (vm_name or "host")
        self._ports: Dict[int, EthDev] = {}
        self._mempools: Dict[str, Mempool] = {}
        self._next_port_id = 0

    @property
    def is_primary(self) -> bool:
        return self.vm_name is None

    # -- memzones ----------------------------------------------------------

    def reserve_memzone(self, zone_name: str, size: int = 0) -> Memzone:
        """Primary-only: allocate a shared zone."""
        if not self.is_primary:
            raise EalError(
                "guest EAL %r cannot reserve memzones" % self.name
            )
        return self.registry.reserve(zone_name, size=size, owner=self.name)

    def lookup_memzone(self, zone_name: str) -> Memzone:
        """Find a zone, honouring ivshmem visibility for guests."""
        zone = self.registry.lookup(zone_name)
        if self.is_primary:
            return zone
        if self.vm_name not in zone.mapped_by:
            raise EalError(
                "memzone %r not visible to VM %r (not hot-plugged?)"
                % (zone_name, self.vm_name)
            )
        return zone

    def visible_zones(self) -> List[Memzone]:
        if self.is_primary:
            return [self.registry.lookup(name) for name in
                    list(self.registry._zones)]
        return self.registry.zones_visible_to(self.vm_name)

    # -- mempools -------------------------------------------------------------

    def create_mempool(self, pool_name: str, size: int = 4096) -> Mempool:
        if pool_name in self._mempools:
            raise EalError("mempool %r already exists" % pool_name)
        pool = Mempool("%s.%s" % (self.name, pool_name), size=size)
        self._mempools[pool_name] = pool
        return pool

    def get_mempool(self, pool_name: str) -> Mempool:
        try:
            return self._mempools[pool_name]
        except KeyError:
            raise EalError("no mempool %r" % pool_name) from None

    # -- ethdev registry ---------------------------------------------------------

    def register_port(self, device: EthDev) -> int:
        """Assign the next port id to ``device`` and register it."""
        port_id = self._next_port_id
        self._next_port_id += 1
        device.port_id = port_id
        self._ports[port_id] = device
        return port_id

    def replace_port(self, port_id: int, device: EthDev) -> EthDev:
        """Swap the device behind a port id (PMD reconfiguration).

        The application keeps its port id; this is how the bypass
        switchover stays invisible to the VNF.  Returns the old device.
        """
        if port_id not in self._ports:
            raise EalError("no port %d to replace" % port_id)
        old = self._ports[port_id]
        device.port_id = port_id
        self._ports[port_id] = device
        return old

    def port(self, port_id: int) -> EthDev:
        try:
            return self._ports[port_id]
        except KeyError:
            raise EalError("no port %d in EAL %r" % (port_id, self.name)) \
                from None

    @property
    def port_count(self) -> int:
        return len(self._ports)

    def ports(self) -> List[EthDev]:
        return [self._ports[pid] for pid in sorted(self._ports)]

    def __repr__(self) -> str:
        role = "primary" if self.is_primary else "guest:%s" % self.vm_name
        return "<Eal %s ports=%d>" % (role, len(self._ports))
