"""Traffic profiles: the packet templates a source cycles through.

A template bundles a pre-built packet, its wire length and a
pre-extracted flow key, so per-packet generation in a benchmark costs a
couple of attribute writes instead of a parse.
"""

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.packet.builder import make_tcp_packet, make_udp_packet
from repro.packet.flowkey import FlowKey, extract_flow_key
from repro.packet.packet import Packet


@dataclass(frozen=True)
class Template:
    packet: Packet
    wire_length: int
    flow_key: FlowKey  # extracted at in_port=0; re-ported on first lookup


@dataclass(frozen=True)
class TrafficProfile:
    """A weighted set of packet templates."""

    name: str
    templates: Tuple[Template, ...]

    @property
    def mean_frame_size(self) -> float:
        return sum(t.wire_length for t in self.templates) / len(
            self.templates
        )


def _template(packet: Packet) -> Template:
    return Template(
        packet=packet,
        wire_length=packet.wire_length,
        flow_key=extract_flow_key(packet, in_port=0),
    )


def uniform_profile(
    frame_size: int = 64,
    flows: int = 1,
    name: str = "",
    web: bool = False,
) -> TrafficProfile:
    """Fixed-size frames spread over ``flows`` distinct UDP (or TCP/80)
    transport flows."""
    templates: List[Template] = []
    for flow in range(flows):
        if web:
            packet = make_tcp_packet(
                src_port=40000 + flow, dst_port=80, frame_size=frame_size
            )
        else:
            packet = make_udp_packet(
                src_port=1000 + flow, dst_port=2000, frame_size=frame_size
            )
        templates.append(_template(packet))
    return TrafficProfile(
        name=name or "%dB x%d" % (frame_size, flows),
        templates=tuple(templates),
    )


def zipf_weights(n: int, exponent: float = 1.0) -> List[float]:
    """Normalized Zipf weights: ``w_k ∝ 1 / k^exponent`` for k=1..n.

    The standard skewed-popularity model for flows and ports; with
    ``exponent=1`` the heaviest of 8 items carries ~37% of the total.
    """
    if n < 1:
        raise ValueError("need at least one weight")
    raw = [1.0 / (k ** exponent) for k in range(1, n + 1)]
    total = sum(raw)
    return [w / total for w in raw]


def skewed_profile(
    frame_size: int = 64,
    flows: int = 8,
    exponent: float = 1.0,
    name: str = "",
) -> TrafficProfile:
    """Zipf-skewed flow mix: flow k appears with multiplicity ∝ 1/k^e.

    Multiplicities are granted in 1%-of-total quanta (every flow keeps
    at least one template), so a round-robin source reproduces the skew
    without per-packet sampling.
    """
    weights = zipf_weights(flows, exponent)
    templates: List[Template] = []
    for flow, weight in enumerate(weights):
        packet = make_udp_packet(
            src_port=1000 + flow, dst_port=2000, frame_size=frame_size
        )
        templates.extend([_template(packet)] * max(1, int(weight * 100)))
    return TrafficProfile(
        name=name or "zipf-%g %dB x%d" % (exponent, frame_size, flows),
        templates=tuple(templates),
    )


def hot_port_rates(total_pps: float, n_ports: int,
                   exponent: float = 1.0) -> List[float]:
    """Split an aggregate offered load across ports Zipf-style.

    The scheduler benchmark's load shape: port 0 is the hot port, the
    tail ports trickle.  Returns per-port pps summing to ``total_pps``.
    """
    return [total_pps * w for w in zipf_weights(n_ports, exponent)]


def imix_profile(flows_per_size: int = 1) -> TrafficProfile:
    """The classic simple-IMIX mix: 64B x7, 570B x4, 1518B x1."""
    templates: List[Template] = []
    for frame_size, weight in ((64, 7), (570, 4), (1518, 1)):
        for flow in range(flows_per_size):
            packet = make_udp_packet(
                src_port=1000 + flow, dst_port=3000 + frame_size,
                frame_size=frame_size,
            )
            templates.extend([_template(packet)] * weight)
    return TrafficProfile(name="imix", templates=tuple(templates))


IMIX_PROFILE = imix_profile()
