"""Traffic profiles: the packet templates a source cycles through.

A template bundles a pre-built packet, its wire length and a
pre-extracted flow key, so per-packet generation in a benchmark costs a
couple of attribute writes instead of a parse.
"""

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.packet.builder import make_tcp_packet, make_udp_packet
from repro.packet.flowkey import FlowKey, extract_flow_key
from repro.packet.packet import Packet


@dataclass(frozen=True)
class Template:
    packet: Packet
    wire_length: int
    flow_key: FlowKey  # extracted at in_port=0; re-ported on first lookup


@dataclass(frozen=True)
class TrafficProfile:
    """A weighted set of packet templates."""

    name: str
    templates: Tuple[Template, ...]

    @property
    def mean_frame_size(self) -> float:
        return sum(t.wire_length for t in self.templates) / len(
            self.templates
        )


def _template(packet: Packet) -> Template:
    return Template(
        packet=packet,
        wire_length=packet.wire_length,
        flow_key=extract_flow_key(packet, in_port=0),
    )


def uniform_profile(
    frame_size: int = 64,
    flows: int = 1,
    name: str = "",
    web: bool = False,
) -> TrafficProfile:
    """Fixed-size frames spread over ``flows`` distinct UDP (or TCP/80)
    transport flows."""
    templates: List[Template] = []
    for flow in range(flows):
        if web:
            packet = make_tcp_packet(
                src_port=40000 + flow, dst_port=80, frame_size=frame_size
            )
        else:
            packet = make_udp_packet(
                src_port=1000 + flow, dst_port=2000, frame_size=frame_size
            )
        templates.append(_template(packet))
    return TrafficProfile(
        name=name or "%dB x%d" % (frame_size, flows),
        templates=tuple(templates),
    )


def imix_profile(flows_per_size: int = 1) -> TrafficProfile:
    """The classic simple-IMIX mix: 64B x7, 570B x4, 1518B x1."""
    templates: List[Template] = []
    for frame_size, weight in ((64, 7), (570, 4), (1518, 1)):
        for flow in range(flows_per_size):
            packet = make_udp_packet(
                src_port=1000 + flow, dst_port=3000 + frame_size,
                frame_size=frame_size,
            )
            templates.extend([_template(packet)] * weight)
    return TrafficProfile(name="imix", templates=tuple(templates))


IMIX_PROFILE = imix_profile()
