"""Traffic generation and sinking for the experiments.

Two families, matching the paper's two test setups:

* in-VM sources/sinks (:class:`SourceApp` / :class:`SinkApp`) — the
  first and last VM of a chain generate and drain traffic themselves
  (Figure 3(a), "memory-only": no NIC or PCIe bottleneck);
* wire sources/sinks (:class:`WireSource` / :class:`WireSink`) — traffic
  enters and leaves through the 10 G NICs (Figure 3(b)).
"""

from repro.traffic.generator import SourceApp, WireSource
from repro.traffic.sink import SinkApp, WireSink
from repro.traffic.profiles import (
    IMIX_PROFILE,
    TrafficProfile,
    uniform_profile,
)

__all__ = [
    "IMIX_PROFILE",
    "SinkApp",
    "SourceApp",
    "TrafficProfile",
    "WireSink",
    "WireSource",
    "uniform_profile",
]
