"""Traffic sources.

:class:`SourceApp` runs inside a VM on its own core and transmits
through an ethdev port (possibly a bypassed one — the source neither
knows nor cares).  :class:`WireSource` paces frames onto a NIC's receive
side at a configurable fraction of line rate.

Both draw mbufs from a dedicated mempool: when the downstream path is
congested, allocation pressure and ring-full TX failures provide the
same backpressure a hardware generator sees, and leaked packets are
detectable as pool exhaustion at the end of a run.
"""

import itertools
from typing import Optional

from repro.dpdk.ethdev import EthDev
from repro.mem.mempool import Mempool
from repro.sim.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.sim.engine import Environment, Interrupt, Process
from repro.sim.nic import Nic
from repro.sim.pollloop import PollLoop
from repro.traffic.profiles import TrafficProfile, uniform_profile


class SourceApp:
    """In-VM traffic generator (a DPDK app with no RX side).

    Generates as fast as its single core allows unless ``rate_pps`` caps
    it; each packet is stamped with the injection timestamp for latency
    probes downstream.
    """

    def __init__(
        self,
        name: str,
        port: EthDev,
        profile: Optional[TrafficProfile] = None,
        pool_size: int = 8192,
        rate_pps: Optional[float] = None,
        costs: CostModel = DEFAULT_COST_MODEL,
        burst_size: int = 32,
        tracer=None,
    ) -> None:
        self.name = name
        self.port = port
        self.profile = profile or uniform_profile()
        self.pool = Mempool("%s.pool" % name, size=pool_size)
        self.rate_pps = rate_pps
        self.costs = costs
        self.burst_size = burst_size
        # Optional repro.obs.trace.PathTracer: stamps 1-in-N mbufs at
        # this ingress point.
        self.tracer = tracer
        self.generated = 0
        self.tx_failures = 0
        self.loop: Optional[PollLoop] = None
        self._env: Optional[Environment] = None
        self._template_cycle = itertools.cycle(self.profile.templates)
        self._seq = itertools.count()
        self._credit = 0.0
        self._last_credit_time = 0.0

    def _now(self) -> float:
        return self._env.now if self._env is not None else 0.0

    def _allowance(self) -> int:
        """Packets the rate limiter permits right now."""
        if self.rate_pps is None:
            return self.burst_size
        now = self._now()
        self._credit += (now - self._last_credit_time) * self.rate_pps
        self._last_credit_time = now
        # Never accumulate more than a couple of bursts of credit.
        self._credit = min(self._credit, 4.0 * self.burst_size)
        return int(self._credit)

    def iteration(self) -> float:
        count = min(self._allowance(), self.burst_size,
                    self.pool.available)
        if count <= 0:
            return 0.0
        now = self._now()
        mbufs = self.pool.get_bulk(count)
        tracer = self.tracer
        for mbuf in mbufs:
            template = next(self._template_cycle)
            mbuf.packet = template.packet
            mbuf.wire_length = template.wire_length
            mbuf.userdata = template.flow_key  # pre-extracted
            mbuf.seq = next(self._seq)
            mbuf.ts_created = now
            mbuf.ts_injected = now
            if tracer is not None:
                tracer.ingress(mbuf, source=self.name)
        sent = self.port.tx_burst(mbufs)
        for rejected in mbufs[sent:]:
            self.tx_failures += 1
            rejected.free()
        self.generated += sent
        if self.rate_pps is not None:
            self._credit -= count
        return self.costs.burst_overhead + count * (
            self.costs.vm_forward + self.port.tx_extra_cost
        )

    def start(self, env: Environment) -> PollLoop:
        self._env = env
        self._last_credit_time = env.now
        self.loop = PollLoop(env, self.name, self.iteration,
                             costs=self.costs).start()
        return self.loop

    def stop(self) -> None:
        if self.loop is not None:
            self.loop.stop()
            self.loop = None


class WireSource:
    """External generator feeding a NIC at a fraction of line rate."""

    def __init__(
        self,
        env: Environment,
        nic: Nic,
        profile: Optional[TrafficProfile] = None,
        load: float = 1.0,
        pool_size: int = 16384,
        burst_size: int = 32,
        name: Optional[str] = None,
        tracer=None,
    ) -> None:
        if not 0.0 < load <= 1.0:
            raise ValueError("load must be in (0, 1]")
        self.env = env
        self.nic = nic
        self.profile = profile or uniform_profile()
        self.load = load
        self.burst_size = burst_size
        self.name = name or "%s.src" % nic.name
        self.tracer = tracer
        self.pool = Mempool("%s.pool" % self.name, size=pool_size)
        self.generated = 0
        self.nic_drops_seen = 0
        self._template_cycle = itertools.cycle(self.profile.templates)
        self._seq = itertools.count()
        self._stopped = False
        self.process: Process = env.process(self._run(), name=self.name)

    def _burst_interval(self, wire_length: int) -> float:
        serialization = (wire_length + 20) * 8 / self.nic.rate_bps
        return self.burst_size * serialization / self.load

    def _run(self):
        env = self.env
        try:
            while not self._stopped:
                count = min(self.burst_size, self.pool.available)
                if count:
                    now = env.now
                    mbufs = self.pool.get_bulk(count)
                    for mbuf in mbufs:
                        template = next(self._template_cycle)
                        mbuf.packet = template.packet
                        mbuf.wire_length = template.wire_length
                        mbuf.userdata = template.flow_key
                        mbuf.seq = next(self._seq)
                        mbuf.ts_created = now
                        mbuf.ts_injected = now
                        if self.tracer is not None:
                            self.tracer.ingress(mbuf, source=self.name)
                        if self.nic.wire_receive(mbuf):
                            self.generated += 1
                        else:
                            self.nic_drops_seen += 1
                interval = self._burst_interval(
                    int(self.profile.mean_frame_size)
                )
                yield env.timeout(interval)
        except Interrupt:
            return

    def stop(self) -> None:
        self._stopped = True
        if self.process.is_alive:
            self.process.interrupt("stop")
