"""Traffic sinks: drain, count, measure latency, recycle mbufs."""

from typing import Callable, Optional

from repro.dpdk.ethdev import EthDev
from repro.metrics.latency import LatencyRecorder
from repro.sim.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.sim.engine import Environment
from repro.sim.nic import Nic
from repro.sim.pollloop import PollLoop


class SinkApp:
    """In-VM traffic drain on one ethdev port."""

    def __init__(
        self,
        name: str,
        port: EthDev,
        costs: CostModel = DEFAULT_COST_MODEL,
        burst_size: int = 32,
        record_latency: bool = True,
    ) -> None:
        self.name = name
        self.port = port
        self.costs = costs
        self.burst_size = burst_size
        self.received = 0
        self.received_bytes = 0
        self.latency = LatencyRecorder() if record_latency else None
        self.loop: Optional[PollLoop] = None
        self._env: Optional[Environment] = None

    def iteration(self) -> float:
        mbufs = self.port.rx_burst(self.burst_size)
        if not mbufs:
            return 0.0
        now = self._env.now if self._env is not None else 0.0
        self.received += len(mbufs)
        for mbuf in mbufs:
            self.received_bytes += mbuf.wire_length
            if self.latency is not None and mbuf.ts_injected >= 0:
                self.latency.record(now - mbuf.ts_injected)
            if mbuf.trace is not None:
                mbuf.trace.finish(now, sink=self.name)
            mbuf.free()
        return (self.costs.burst_overhead
                + len(mbufs) * self.costs.ring_op)

    def start(self, env: Environment) -> PollLoop:
        self._env = env
        self.loop = PollLoop(env, self.name, self.iteration,
                             costs=self.costs).start()
        return self.loop

    def stop(self) -> None:
        if self.loop is not None:
            self.loop.stop()
            self.loop = None


class WireSink:
    """Counts frames leaving a NIC on the wire side."""

    def __init__(self, env: Environment, nic: Nic,
                 record_latency: bool = True,
                 on_frame: Optional[Callable] = None) -> None:
        self.env = env
        self.nic = nic
        self.received = 0
        self.received_bytes = 0
        self.latency = LatencyRecorder() if record_latency else None
        self.on_frame = on_frame
        nic.on_wire_tx = self._handle

    def _handle(self, mbuf) -> None:
        self.received += 1
        self.received_bytes += mbuf.wire_length
        if self.latency is not None and mbuf.ts_injected >= 0:
            self.latency.record(self.env.now - mbuf.ts_injected)
        if mbuf.trace is not None:
            mbuf.trace.finish(self.env.now, sink=self.nic.name)
        if self.on_frame is not None:
            self.on_frame(mbuf)
        mbuf.free()
