"""repro — reproduction of "A Transparent Highway for inter-VNF
Communication with Open vSwitch" (SIGCOMM 2016).

The package implements, in pure Python, every subsystem the paper's
prototype touches — shared-memory rings, a DPDK-like port/PMD layer, an
OpenFlow-programmable vSwitch, a QEMU/compute-agent control plane — plus
the paper's contribution: a p-2-p link detector and transparent bypass
channels that remove the vSwitch from the data path between two VMs.

Quick start::

    from repro.experiments import ChainExperiment

    result = ChainExperiment(num_vms=4, bypass=True).run(duration=0.05)
    print(result.throughput_mpps)

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

__version__ = "1.0.0"
