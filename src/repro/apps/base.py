"""The DPDK application skeleton: a single-core burst-processing loop.

An app owns one or more :class:`PortPair` pipelines (rx port -> process
-> tx port) and exposes ``iteration()`` with the poll-loop contract:
do one burst of work, return its simulated CPU cost.  The per-packet
cost defaults to the cost model's ``vm_forward``; heavier VNFs pass a
multiplier.
"""

from typing import List, Optional

from repro.dpdk.ethdev import EthDev
from repro.packet.mbuf import Mbuf
from repro.sim.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.sim.engine import Environment
from repro.sim.pollloop import PollLoop


class PortPair:
    """One direction of packet movement inside an app."""

    __slots__ = ("rx", "tx", "rx_count", "tx_count", "drop_count")

    def __init__(self, rx: EthDev, tx: EthDev) -> None:
        self.rx = rx
        self.tx = tx
        self.rx_count = 0
        self.tx_count = 0
        self.drop_count = 0

    def __repr__(self) -> str:
        return "<PortPair %s->%s rx=%d>" % (
            self.rx.name, self.tx.name, self.rx_count
        )


class DpdkApp:
    """Base class for single-core guest applications."""

    def __init__(
        self,
        name: str,
        pairs: List[PortPair],
        costs: CostModel = DEFAULT_COST_MODEL,
        burst_size: int = 32,
        cost_multiplier: float = 1.0,
    ) -> None:
        self.name = name
        self.pairs = pairs
        self.costs = costs
        self.burst_size = burst_size
        self.cost_multiplier = cost_multiplier
        self.loop: Optional[PollLoop] = None
        # Optional repro.obs.cycles.StageAccounting: when set, each
        # iteration attributes its cost to rx_normal / rx_bypass /
        # housekeeping by asking the dual-channel PMD which channel the
        # burst actually arrived on (pmd/stats-show for guest cores).
        self.stages = None

    # -- processing hook ------------------------------------------------------

    def process(self, mbufs: List[Mbuf], pair: PortPair) -> List[Mbuf]:
        """Transform a received burst into the burst to transmit.

        Packets not returned must be freed by the implementation.
        Default: forward everything untouched.
        """
        return mbufs

    # -- the poll-loop body -------------------------------------------------------

    def iteration(self) -> float:
        total_cost = 0.0
        stages = self.stages
        for pair in self.pairs:
            rx = pair.rx
            if stages is not None:
                bypass_before = getattr(rx, "rx_via_bypass", 0)
                normal_before = getattr(rx, "rx_via_normal", 0)
            mbufs = rx.rx_burst(self.burst_size)
            if not mbufs:
                continue
            pair.rx_count += len(mbufs)
            out = self.process(mbufs, pair)
            per_packet = (self.costs.vm_forward * self.cost_multiplier
                          + pair.tx.tx_extra_cost)
            total_cost += (
                self.costs.burst_overhead + len(mbufs) * per_packet
            )
            if stages is not None:
                bypass = getattr(rx, "rx_via_bypass", 0) - bypass_before
                normal = getattr(rx, "rx_via_normal", 0) - normal_before
                if not (bypass or normal):
                    normal = len(mbufs)  # plain single-channel port
                stages.add("housekeeping", self.costs.burst_overhead)
                if normal:
                    stages.add("rx_normal", normal * per_packet,
                               packets=normal)
                if bypass:
                    stages.add("rx_bypass", bypass * per_packet,
                               packets=bypass)
            if out:
                sent = pair.tx.tx_burst(out)
                pair.tx_count += sent
                for rejected in out[sent:]:
                    pair.drop_count += 1
                    rejected.free()
        return total_cost

    # -- lifecycle -------------------------------------------------------------------

    def start(self, env: Environment) -> PollLoop:
        """Run the app on its own simulated core."""
        if self.loop is not None:
            raise RuntimeError("app %r already started" % self.name)
        self.loop = PollLoop(env, self.name, self.iteration,
                             costs=self.costs).start()
        return self.loop

    def stop(self) -> None:
        if self.loop is not None:
            self.loop.stop()
            self.loop = None

    # -- introspection -----------------------------------------------------------------

    @property
    def rx_total(self) -> int:
        return sum(pair.rx_count for pair in self.pairs)

    @property
    def tx_total(self) -> int:
        return sum(pair.tx_count for pair in self.pairs)

    def __repr__(self) -> str:
        return "<%s %r rx=%d tx=%d>" % (
            type(self).__name__, self.name, self.rx_total, self.tx_total
        )
