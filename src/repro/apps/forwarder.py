"""The paper's chain VNF: a single-core bidirectional port forwarder."""

from typing import List

from repro.apps.base import DpdkApp, PortPair
from repro.dpdk.ethdev import EthDev
from repro.sim.costmodel import CostModel, DEFAULT_COST_MODEL


class ForwarderApp(DpdkApp):
    """Moves packets between two ports, in both directions.

    This is exactly the VM used in the paper's evaluation chains: "each
    VM has two dpdkr ports and runs a single core DPDK application that
    moves packets from one port to another".  The same VM image works on
    a normal or a bypassed port — transparency at the application level.
    """

    def __init__(
        self,
        name: str,
        port_a: EthDev,
        port_b: EthDev,
        costs: CostModel = DEFAULT_COST_MODEL,
        burst_size: int = 32,
        bidirectional: bool = True,
    ) -> None:
        pairs = [PortPair(port_a, port_b)]
        if bidirectional:
            pairs.append(PortPair(port_b, port_a))
        super().__init__(name, pairs, costs=costs, burst_size=burst_size)
