"""A passive network-monitor VNF: per-flow accounting, then forward."""

from typing import Dict, List, Tuple

from repro.apps.base import DpdkApp, PortPair
from repro.dpdk.ethdev import EthDev
from repro.packet.flowkey import cached_flow_key
from repro.packet.mbuf import Mbuf
from repro.sim.costmodel import CostModel, DEFAULT_COST_MODEL


class MonitorApp(DpdkApp):
    """Counts packets/bytes per transport flow and forwards everything."""

    def __init__(
        self,
        name: str,
        port_a: EthDev,
        port_b: EthDev,
        costs: CostModel = DEFAULT_COST_MODEL,
        burst_size: int = 32,
    ) -> None:
        super().__init__(
            name,
            [PortPair(port_a, port_b), PortPair(port_b, port_a)],
            costs=costs,
            burst_size=burst_size,
            cost_multiplier=1.3,  # hash-table update per packet
        )
        # 5-tuple -> (packets, bytes)
        self.flows: Dict[Tuple, Tuple[int, int]] = {}

    def process(self, mbufs: List[Mbuf], pair: PortPair) -> List[Mbuf]:
        for mbuf in mbufs:
            key = cached_flow_key(mbuf, in_port=0)
            five_tuple = (key.ip_src, key.ip_dst, key.ip_proto,
                          key.l4_src, key.l4_dst)
            packets, byte_count = self.flows.get(five_tuple, (0, 0))
            self.flows[five_tuple] = (
                packets + 1, byte_count + mbuf.wire_length
            )
        return mbufs

    @property
    def flow_count(self) -> int:
        return len(self.flows)

    def top_flows(self, count: int = 10) -> List[Tuple]:
        """Heaviest flows by byte count."""
        ranked = sorted(self.flows.items(), key=lambda item: -item[1][1])
        return ranked[:count]
