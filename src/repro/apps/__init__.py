"""Guest VNF applications written against the ethdev API.

The paper's VMs each run "a single core DPDK application that moves
packets from one port to another"; :class:`ForwarderApp` is exactly
that.  The other applications implement the service graph from the
paper's Figure 1 — firewall, network monitor, web cache — to exercise
classified (non-p-2-p) steering alongside the bypassable links.

Every app is transparency-agnostic: it sees ordinary ports and cannot
tell whether a bypass is active underneath.
"""

from repro.apps.base import DpdkApp, PortPair
from repro.apps.conntrack import (
    ConnState,
    ConnectionTracker,
    StatefulFirewallApp,
)
from repro.apps.forwarder import ForwarderApp
from repro.apps.firewall import FirewallApp, FirewallRule
from repro.apps.monitor import MonitorApp
from repro.apps.cache import WebCacheApp

__all__ = [
    "ConnState",
    "ConnectionTracker",
    "DpdkApp",
    "FirewallApp",
    "FirewallRule",
    "ForwarderApp",
    "MonitorApp",
    "PortPair",
    "StatefulFirewallApp",
    "WebCacheApp",
]
