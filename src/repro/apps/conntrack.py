"""Connection tracking and a stateful firewall VNF.

The stateless :class:`~repro.apps.firewall.FirewallApp` matches the
paper's demo graph; production middleboxes are stateful.
:class:`ConnectionTracker` implements a compact TCP/UDP flow state
machine (NEW → ESTABLISHED → FIN/CLOSED, with idle eviction) and
:class:`StatefulFirewallApp` uses it to enforce the classic perimeter
policy: connections may only be *initiated* from the inside port;
return traffic of established connections is admitted, unsolicited
outside traffic is dropped.

Because these apps run on ordinary ethdev ports, they work identically
over the vSwitch path and over a bypass — state lives in the guest, not
in the network.
"""

import enum
from typing import Dict, List, Optional, Tuple

from repro.apps.base import DpdkApp, PortPair
from repro.dpdk.ethdev import EthDev
from repro.packet.flowkey import FlowKey, cached_flow_key
from repro.packet.headers import IP_PROTO_TCP, IP_PROTO_UDP, Tcp
from repro.packet.mbuf import Mbuf
from repro.sim.costmodel import CostModel, DEFAULT_COST_MODEL

FiveTuple = Tuple[int, int, int, int, int]


class ConnState(enum.Enum):
    NEW = "new"
    SYN_SENT = "syn_sent"
    ESTABLISHED = "established"
    FIN_WAIT = "fin_wait"
    CLOSED = "closed"


class Connection:
    """Tracked state of one bidirectional transport flow."""

    __slots__ = ("key", "state", "created", "last_seen",
                 "packets_in", "packets_out", "originated_inside")

    def __init__(self, key: FiveTuple, now: float,
                 originated_inside: bool) -> None:
        self.key = key
        self.state = ConnState.NEW
        self.created = now
        self.last_seen = now
        self.packets_in = 0
        self.packets_out = 0
        self.originated_inside = originated_inside


def _canonical(key: FlowKey) -> "Tuple[FiveTuple, bool]":
    """Direction-independent 5-tuple plus 'is forward direction'.

    Forward = the orientation of the numerically smaller endpoint first,
    so both directions of a flow map to the same connection entry.
    """
    forward = (key.ip_src, key.l4_src) <= (key.ip_dst, key.l4_dst)
    if forward:
        tup = (key.ip_src, key.ip_dst, key.ip_proto, key.l4_src, key.l4_dst)
    else:
        tup = (key.ip_dst, key.ip_src, key.ip_proto, key.l4_dst, key.l4_src)
    return tup, forward


class ConnectionTracker:
    """Flow table with a TCP-aware state machine and idle eviction."""

    def __init__(self, max_connections: int = 65536,
                 idle_timeout: float = 30.0) -> None:
        self.max_connections = max_connections
        self.idle_timeout = idle_timeout
        self.connections: Dict[FiveTuple, Connection] = {}
        self.created_total = 0
        self.evicted_idle = 0
        self.rejected_full = 0

    def lookup(self, key: FlowKey) -> Optional[Connection]:
        tup, _forward = _canonical(key)
        return self.connections.get(tup)

    def observe(self, key: FlowKey, mbuf: Mbuf, now: float,
                from_inside: bool) -> Optional[Connection]:
        """Track one packet; returns its connection (None = table full
        and this packet did not belong to an existing connection)."""
        tup, _forward = _canonical(key)
        connection = self.connections.get(tup)
        if connection is None:
            if len(self.connections) >= self.max_connections:
                self.rejected_full += 1
                return None
            connection = Connection(tup, now, originated_inside=from_inside)
            self.connections[tup] = connection
            self.created_total += 1
        connection.last_seen = now
        if from_inside:
            connection.packets_out += 1
        else:
            connection.packets_in += 1
        self._advance(connection, key, mbuf)
        return connection

    def _advance(self, connection: Connection, key: FlowKey,
                 mbuf: Mbuf) -> None:
        if key.ip_proto != IP_PROTO_TCP:
            # UDP and friends: a packet each way means established.
            if connection.packets_in and connection.packets_out:
                connection.state = ConnState.ESTABLISHED
            return
        tcp = mbuf.packet.get(Tcp) if mbuf.packet is not None else None
        if tcp is None:
            return
        if tcp.flags & Tcp.RST:
            connection.state = ConnState.CLOSED
            return
        if tcp.flags & Tcp.FIN:
            if connection.state == ConnState.FIN_WAIT:
                connection.state = ConnState.CLOSED
            else:
                connection.state = ConnState.FIN_WAIT
            return
        if tcp.flags & Tcp.SYN:
            if tcp.flags & Tcp.ACK:
                connection.state = ConnState.ESTABLISHED
            else:
                connection.state = ConnState.SYN_SENT
            return
        if (tcp.flags & Tcp.ACK
                and connection.state == ConnState.SYN_SENT):
            connection.state = ConnState.ESTABLISHED

    def expire(self, now: float) -> int:
        """Evict idle and closed connections; returns count removed."""
        removed = 0
        for tup, connection in list(self.connections.items()):
            idle = now - connection.last_seen
            if (connection.state == ConnState.CLOSED
                    or idle >= self.idle_timeout):
                del self.connections[tup]
                removed += 1
        self.evicted_idle += removed
        return removed

    def __len__(self) -> int:
        return len(self.connections)


class StatefulFirewallApp(DpdkApp):
    """Perimeter firewall: inside may initiate; outside may only reply."""

    def __init__(
        self,
        name: str,
        inside_port: EthDev,
        outside_port: EthDev,
        tracker: Optional[ConnectionTracker] = None,
        costs: CostModel = DEFAULT_COST_MODEL,
        burst_size: int = 32,
        clock=None,
    ) -> None:
        super().__init__(
            name,
            [PortPair(inside_port, outside_port),
             PortPair(outside_port, inside_port)],
            costs=costs,
            burst_size=burst_size,
            cost_multiplier=2.2,  # state lookup + update per packet
        )
        self.inside_port = inside_port
        self.tracker = tracker or ConnectionTracker()
        self.clock = clock or (lambda: 0.0)
        self.allowed = 0
        self.blocked = 0

    def process(self, mbufs: List[Mbuf], pair: PortPair) -> List[Mbuf]:
        from_inside = pair.rx is self.inside_port
        now = self.clock()
        out: List[Mbuf] = []
        for mbuf in mbufs:
            key = cached_flow_key(mbuf, in_port=0)
            if key.ip_proto not in (IP_PROTO_TCP, IP_PROTO_UDP):
                out.append(mbuf)  # non-transport traffic passes (ARP...)
                continue
            if from_inside:
                self.tracker.observe(key, mbuf, now, from_inside=True)
                self.allowed += 1
                out.append(mbuf)
                continue
            connection = self.tracker.lookup(key)
            if connection is None or not connection.originated_inside \
                    or connection.state == ConnState.CLOSED:
                self.blocked += 1
                mbuf.free()
                continue
            self.tracker.observe(key, mbuf, now, from_inside=False)
            self.allowed += 1
            out.append(mbuf)
        return out
