"""A stateless 5-tuple firewall VNF (the service-graph example)."""

from dataclasses import dataclass
from typing import List, Optional

from repro.apps.base import DpdkApp, PortPair
from repro.dpdk.ethdev import EthDev
from repro.packet.flowkey import cached_flow_key
from repro.packet.mbuf import Mbuf
from repro.sim.costmodel import CostModel, DEFAULT_COST_MODEL


@dataclass(frozen=True)
class FirewallRule:
    """A deny rule; None fields are wildcards."""

    ip_src: Optional[int] = None
    ip_dst: Optional[int] = None
    ip_proto: Optional[int] = None
    l4_src: Optional[int] = None
    l4_dst: Optional[int] = None

    def matches(self, key) -> bool:
        for name in ("ip_src", "ip_dst", "ip_proto", "l4_src", "l4_dst"):
            wanted = getattr(self, name)
            if wanted is not None and getattr(key, name) != wanted:
                return False
        return True


class FirewallApp(DpdkApp):
    """Default-allow firewall: drops packets matching any deny rule."""

    def __init__(
        self,
        name: str,
        port_a: EthDev,
        port_b: EthDev,
        deny_rules: Optional[List[FirewallRule]] = None,
        costs: CostModel = DEFAULT_COST_MODEL,
        burst_size: int = 32,
    ) -> None:
        super().__init__(
            name,
            [PortPair(port_a, port_b), PortPair(port_b, port_a)],
            costs=costs,
            burst_size=burst_size,
            cost_multiplier=1.6,  # per-packet rule evaluation
        )
        self.deny_rules = list(deny_rules or [])
        self.passed = 0
        self.dropped = 0

    def add_rule(self, rule: FirewallRule) -> None:
        self.deny_rules.append(rule)

    def process(self, mbufs: List[Mbuf], pair: PortPair) -> List[Mbuf]:
        out: List[Mbuf] = []
        for mbuf in mbufs:
            key = cached_flow_key(mbuf, in_port=0)
            if any(rule.matches(key) for rule in self.deny_rules):
                self.dropped += 1
                mbuf.free()
            else:
                self.passed += 1
                out.append(mbuf)
        return out
