"""A toy web-cache VNF (the third box in the paper's service graph).

Models the data-plane footprint of a transparent cache: it inspects
TCP/80 payloads for a request token, answers repeated requests from its
cache (packet is consumed and a response is emitted back on the port it
came from), and forwards everything else.
"""

from typing import Dict, List

from repro.apps.base import DpdkApp, PortPair
from repro.dpdk.ethdev import EthDev
from repro.packet.flowkey import cached_flow_key
from repro.packet.headers import IP_PROTO_TCP
from repro.packet.mbuf import Mbuf
from repro.sim.costmodel import CostModel, DEFAULT_COST_MODEL


class WebCacheApp(DpdkApp):
    """Transparent cache between an access port and an upstream port."""

    def __init__(
        self,
        name: str,
        access_port: EthDev,
        upstream_port: EthDev,
        capacity: int = 1024,
        costs: CostModel = DEFAULT_COST_MODEL,
        burst_size: int = 32,
    ) -> None:
        super().__init__(
            name,
            [PortPair(access_port, upstream_port),
             PortPair(upstream_port, access_port)],
            costs=costs,
            burst_size=burst_size,
            cost_multiplier=2.0,  # payload inspection
        )
        self.access_port = access_port
        self.capacity = capacity
        self._store: Dict[bytes, bytes] = {}
        self.hits = 0
        self.misses = 0
        self.responses_served = 0

    def preload(self, token: bytes, body: bytes = b"") -> None:
        """Warm the cache (e.g. from a prior measurement period)."""
        if len(self._store) < self.capacity:
            self._store[bytes(token)] = bytes(body)

    @staticmethod
    def _request_token(mbuf: Mbuf) -> bytes:
        """The cache key: the first payload line of a TCP/80 packet."""
        packet = mbuf.packet
        if packet is None or not packet.payload:
            return b""
        return bytes(packet.payload.split(b"\n", 1)[0].rstrip(b"\r"))

    def process(self, mbufs: List[Mbuf], pair: PortPair) -> List[Mbuf]:
        out: List[Mbuf] = []
        toward_upstream = pair.rx is self.access_port
        for mbuf in mbufs:
            key = cached_flow_key(mbuf, in_port=0)
            is_web = key.ip_proto == IP_PROTO_TCP and key.l4_dst == 80
            if not toward_upstream or not is_web:
                if not toward_upstream and key.ip_proto == IP_PROTO_TCP \
                        and key.l4_src == 80:
                    # A response coming back: populate the cache.
                    token = self._request_token(mbuf)
                    if token and len(self._store) < self.capacity:
                        self._store[token] = bytes(mbuf.packet.payload)
                out.append(mbuf)
                continue
            token = self._request_token(mbuf)
            if token and token in self._store:
                self.hits += 1
                self.responses_served += 1
                # Serve from cache: request is consumed, a response goes
                # back out the access port.
                mbuf.free()
            else:
                self.misses += 1
                out.append(mbuf)
        return out

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
