"""Controller fail-modes: what the switch does when the controller dies.

OVS bridges carry a ``fail_mode`` column with two settings, and this
module reproduces both over the simulated OpenFlow channel:

* ``standalone`` — after the connection drops, the switch acts as an
  ordinary L2 learning switch: table misses are handled locally, learned
  destinations get low-priority fallback flows (tagged with
  :data:`FALLBACK_COOKIE`), unknown destinations flood.  On reconnect the
  fallback flows are deleted *by cookie*, which invalidates exactly the
  EMC/SMC entries they created and nothing else.
* ``secure`` — the switch keeps forwarding on the flows it already has
  and refuses to improvise: new misses are buffered (bounded) for replay,
  and flow expiry is frozen so the controller's state survives the
  outage.  On reconnect, entry timers are shifted forward by the outage
  duration (direct field writes — no table events fire, so the EMC/SMC
  are untouched) and buffered packet-ins are replayed.

Reconnection uses exponential backoff and is observable through the
``controller.reconnect`` fault point, so fault sweeps can keep the
controller unreachable for a deterministic number of attempts.
"""

import enum
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.faults import CONTROLLER_RECONNECT, FaultPlan
from repro.openflow.actions import OutputAction
from repro.openflow.match import Match
from repro.openflow.messages import PacketIn, PacketInReason
from repro.openflow.table import FlowEntry
from repro.packet.headers import Ethernet
from repro.packet.mbuf import Mbuf
from repro.packet.packet import Packet

#: Cookie stamped on every fallback flow so recovery can delete exactly
#: the improvised state and nothing the controller installed.
FALLBACK_COOKIE = 0xFA11BACC


class FailMode(enum.Enum):
    STANDALONE = "standalone"
    SECURE = "secure"


@dataclass
class FailModePolicy:
    """Knobs for outage handling and recovery."""

    max_pending_packet_ins: int = 256
    backoff_base: float = 0.005
    backoff_multiplier: float = 2.0
    backoff_max: float = 0.25
    fallback_priority: int = 1
    fallback_idle_timeout: float = 0.0

    def __post_init__(self) -> None:
        if self.max_pending_packet_ins < 0:
            raise ValueError("max_pending_packet_ins must be >= 0")
        if self.backoff_base <= 0 or self.backoff_max < self.backoff_base:
            raise ValueError("backoff window must satisfy 0 < base <= max")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")


DEFAULT_FAILMODE_POLICY = FailModePolicy()


class StandaloneFallback:
    """The learning-switch brain used while the controller is away.

    A local reimplementation of the reactive L2 program in
    :mod:`repro.openflow.learning`, but running *inside* the switch: it
    learns source MACs, installs cookie-tagged low-priority flows for
    known destinations, and floods unknowns through
    ``datapath.inject`` — no controller round-trip involved.
    """

    def __init__(self, bridge, policy: FailModePolicy,
                 clock: Callable[[], float]) -> None:
        self.bridge = bridge
        self.policy = policy
        self.clock = clock
        self.mac_table: Dict[int, int] = {}
        self._installed: Dict[int, int] = {}  # dst mac value -> out port
        self.packets_forwarded = 0
        self.floods = 0
        self.hairpin_drops = 0
        self.non_ethernet_drops = 0
        self.flows_installed = 0

    def handle(self, mbuf: Mbuf, in_port: int) -> None:
        packet = mbuf.packet
        eth = packet.get(Ethernet) if isinstance(packet, Packet) else None
        if eth is None:
            self.non_ethernet_drops += 1
            mbuf.free()
            return
        self.mac_table[eth.src.value] = in_port
        out_port = self.mac_table.get(eth.dst.value)
        if (out_port is None or eth.dst.is_broadcast
                or eth.dst.is_multicast):
            self._flood(mbuf, in_port)
            return
        if out_port == in_port:
            self.hairpin_drops += 1
            mbuf.free()
            return
        self._ensure_flow(eth.dst.value, out_port)
        self.packets_forwarded += 1
        self.bridge.datapath.inject(mbuf, [OutputAction(out_port)])

    def _flood(self, mbuf: Mbuf, in_port: int) -> None:
        self.floods += 1
        actions = [OutputAction(port)
                   for port in sorted(self.bridge.datapath.ports)
                   if port != in_port]
        if actions:
            self.bridge.datapath.inject(mbuf, actions)
        else:
            mbuf.free()

    def _ensure_flow(self, dst_value: int, out_port: int) -> None:
        known = self._installed.get(dst_value)
        if known == out_port:
            return
        table = self.bridge.table
        if known is not None:  # station moved: retarget the flow
            table.delete(Match(eth_dst=dst_value), cookie=FALLBACK_COOKIE)
        table.add(FlowEntry(
            match=Match(eth_dst=dst_value),
            actions=[OutputAction(out_port)],
            priority=self.policy.fallback_priority,
            cookie=FALLBACK_COOKIE,
            idle_timeout=self.policy.fallback_idle_timeout,
            install_time=self.clock(),
        ))
        self._installed[dst_value] = out_port
        self.flows_installed += 1

    def remove_flows(self) -> int:
        """Delete every fallback flow (by cookie). The table change
        events this fires invalidate exactly the cached traversals the
        fallback created — controller flows and their EMC entries
        survive untouched."""
        removed = 0
        for table_id in sorted(self.bridge.tables):
            result = self.bridge.tables[table_id].delete(
                Match(), cookie=FALLBACK_COOKIE)
            removed += len(result.removed)
        self._installed.clear()
        return removed


class FailModeManager:
    """Owns the switch's reaction to controller connectivity.

    Sits between the datapath's upcall dispatch and the bridge: while
    the connection is up, upcalls pass straight through to
    ``bridge._upcall``; when it drops, they are routed per the
    configured fail mode.  ``tick(now)`` (called from the control loop)
    detects transitions and drives backoff reconnection.
    """

    def __init__(self, bridge, connection, mode: str = "standalone",
                 policy: Optional[FailModePolicy] = None,
                 clock: Optional[Callable[[], float]] = None,
                 faults: Optional[FaultPlan] = None) -> None:
        self.bridge = bridge
        self.connection = connection
        self.mode = FailMode(mode)
        self.policy = policy if policy is not None else FailModePolicy()
        self.clock = clock if clock is not None else (lambda: 0.0)
        self.faults = faults
        self.fallback = StandaloneFallback(bridge, self.policy, self.clock)
        self.state = "connected"
        self.outage_start = 0.0
        self._pending: Deque[Tuple[int, str, bytes]] = deque()
        self._backoff = self.policy.backoff_base
        self._next_attempt = 0.0
        # Counters.
        self.outages = 0
        self.reconnect_attempts = 0
        self.reconnect_failures = 0
        self.reconnects = 0
        self.packet_ins_buffered = 0
        self.packet_ins_replayed = 0
        self.packet_ins_shed = 0
        self.fallback_flows_removed = 0
        self.frozen_expiry_skips = 0
        self.timers_shifted = 0
        # Hooks.
        self.coverage: Optional[Callable[..., None]] = None
        self.on_event: List[Callable[[str, dict], None]] = []

    # -- introspection -------------------------------------------------

    @property
    def connected(self) -> bool:
        return self.connection is not None and self.connection.connected

    @property
    def expiry_frozen(self) -> bool:
        """Secure mode freezes flow expiry for the outage duration."""
        return self.mode is FailMode.SECURE and self.state == "down"

    @property
    def pending_packet_ins(self) -> int:
        return len(self._pending)

    def set_mode(self, mode: str) -> None:
        self.mode = FailMode(mode)

    def _emit(self, name: str, **attrs) -> None:
        for listener in self.on_event:
            listener(name, attrs)

    def _cover(self, name: str) -> None:
        if self.coverage is not None:
            self.coverage(name)

    # -- upcall routing ------------------------------------------------

    def handle_upcall(self, mbuf: Mbuf, in_port: int, reason: str) -> None:
        if self.connected:
            self.bridge._upcall(mbuf, in_port, reason)
            return
        self._note_outage(self.clock())
        if self.mode is FailMode.STANDALONE:
            self.fallback.handle(mbuf, in_port)
            return
        # Secure: buffer (bounded) for replay after reconnect.
        if len(self._pending) >= self.policy.max_pending_packet_ins:
            self.packet_ins_shed += 1
            self._cover("failmode_packet_in_shed")
        else:
            packet = mbuf.packet
            data = (packet.pack() if isinstance(packet, Packet)
                    else bytes(packet or b""))
            self._pending.append((in_port, reason, data))
            self.packet_ins_buffered += 1
        mbuf.free()

    # -- outage / recovery ---------------------------------------------

    def _note_outage(self, now: float) -> None:
        if self.state == "down":
            return
        self.state = "down"
        self.outages += 1
        self.outage_start = now
        self._backoff = self.policy.backoff_base
        self._next_attempt = now + self._backoff
        self._cover("failmode_outage")
        self._emit("controller-outage", mode=self.mode.value)

    def tick(self, now: Optional[float] = None) -> None:
        """Detect connectivity transitions; attempt backoff reconnects."""
        if self.connection is None:
            return
        now = self.clock() if now is None else now
        if self.connection.connected:
            if self.state == "down":
                self._recover(now)
            return
        self._note_outage(now)
        if now + 1e-12 < self._next_attempt:
            return
        self.reconnect_attempts += 1
        blocked = False
        if self.faults is not None and self.faults.has_specs(
                CONTROLLER_RECONNECT):
            blocked = self.faults.fire(CONTROLLER_RECONNECT) is not None
        if not blocked and self.connection.reconnect():
            self._recover(now)
            return
        self.reconnect_failures += 1
        self._backoff = min(self._backoff * self.policy.backoff_multiplier,
                            self.policy.backoff_max)
        self._next_attempt = now + self._backoff

    def _recover(self, now: float) -> None:
        duration = now - self.outage_start
        self.state = "connected"
        self.reconnects += 1
        if self.mode is FailMode.STANDALONE:
            self.fallback_flows_removed += self.fallback.remove_flows()
        else:
            self._shift_timers(duration)
            self._replay()
        self._cover("failmode_recovered")
        self._emit("controller-recovered", mode=self.mode.value,
                   duration=duration)

    def _shift_timers(self, duration: float) -> None:
        """Advance flow timers past the frozen window.

        Direct field writes: no table listeners fire, so no EMC/SMC
        invalidation — the caches carry straight through recovery."""
        if duration <= 0:
            return
        for table_id in sorted(self.bridge.tables):
            for entry in self.bridge.tables[table_id].entries():
                entry.install_time += duration
                entry.last_used += duration
                self.timers_shifted += 1

    def _replay(self) -> None:
        while self._pending:
            in_port, reason, data = self._pending.popleft()
            self.connection.switch_send(PacketIn(
                in_port=in_port,
                reason=(PacketInReason.NO_MATCH if reason == "no_match"
                        else PacketInReason.ACTION),
                data=data,
            ))
            self.bridge.packet_ins_sent += 1
            self.packet_ins_replayed += 1

    def stats(self) -> Dict[str, float]:
        return {
            "mode": self.mode.value,
            "state": self.state,
            "outages": self.outages,
            "reconnect_attempts": self.reconnect_attempts,
            "reconnect_failures": self.reconnect_failures,
            "reconnects": self.reconnects,
            "pending_packet_ins": self.pending_packet_ins,
            "packet_ins_buffered": self.packet_ins_buffered,
            "packet_ins_replayed": self.packet_ins_replayed,
            "packet_ins_shed": self.packet_ins_shed,
            "fallback_packets": self.fallback.packets_forwarded,
            "fallback_floods": self.fallback.floods,
            "fallback_flows": self.fallback.flows_installed,
            "fallback_flows_removed": self.fallback_flows_removed,
            "frozen_expiry_skips": self.frozen_expiry_skips,
        }
